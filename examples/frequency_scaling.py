#!/usr/bin/env python3
"""Fig. 14-style study: does DDB keep paying off as channels get faster?

Sweeps the channel clock from 1.33 to 2.4 GHz (DRAM core fixed at
200 MHz) and compares VSB with bank-group timing against VSB with the
dual data bus, plus the idealised DRAM.  The paper's claim: bank-grouped
designs saturate as the frequency gap grows, DDB tracks the ideal.

Run:  python examples/frequency_scaling.py [accesses] [mix]
"""

import sys

from repro import ExperimentContext, ExperimentSettings
from repro.dram.timing import FIG14_BUS_FREQUENCIES_HZ
from repro.sim.experiments import fig14


def main() -> None:
    accesses = int(sys.argv[1]) if len(sys.argv) > 1 else 1200
    mix = sys.argv[2] if len(sys.argv) > 2 else "mix0"
    context = ExperimentContext(ExperimentSettings(
        accesses_per_core=accesses, mixes=(mix,)))

    print(f"sweeping channel frequency on {mix} "
          f"({accesses} accesses/core); CPU clock scales along...\n")
    points = fig14(context)

    configs = []
    for p in points:
        if p.config not in configs:
            configs.append(p.config)
    print(f"{'config':30s} " + " ".join(
        f"{f / 1e9:>5.2f}GHz" for f in FIG14_BUS_FREQUENCIES_HZ))
    for config in configs:
        row = [p.normalized_ws for p in points if p.config == config]
        print(f"{config:30s} " + "    ".join(f"{v:5.3f}" for v in row))

    ddb = [p.normalized_ws for p in points if "DDB" in p.config]
    bg = [p.normalized_ws for p in points
          if "VSB" in p.config and "DDB" not in p.config]
    print(f"\nDDB advantage over bank-grouped VSB: "
          f"{ddb[0] - bg[0]:+.3f} at 1.33 GHz -> "
          f"{ddb[-1] - bg[-1]:+.3f} at 2.40 GHz")


if __name__ == "__main__":
    main()
