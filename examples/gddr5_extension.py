#!/usr/bin/env python3
"""Extension: ERUCA on a GDDR5-like graphics memory (paper Section V).

The paper reports a preliminary experiment applying DDB-style dual
buses to GDDR5 with a simulated GPGPU and observing ~10% speedup on
memory-intensive Rodinia kernels.  This example uses the first-class
``gddr5`` technology backend (:func:`repro.sim.config.gddr5` --
GDDR5 core timings, 2.5 GHz bus, its own refresh grade and power
model) as the baseline, and compares it against the VSB organisations
running at the same clock, with latency-tolerant "GPU-like" cores
(huge instruction windows, massive MLP, streaming-heavy traffic).

Run:  python examples/gddr5_extension.py [accesses]
"""

import sys

from repro import CoreConfig, EruConfig, run_traces
from repro.sim.config import gddr5, vsb
from repro.workloads.generator import generate_traces
from repro.workloads.profiles import BenchmarkProfile


def gpu_core() -> CoreConfig:
    """A latency-tolerant SM-like front end: modest clock, wide issue,
    an effectively huge window (warps hide latency)."""
    return CoreConfig(clock_hz=1.4e9, issue_width=16, rob_size=1024)


def rodinia_like(name: str, mpki: float) -> BenchmarkProfile:
    """Streaming GPU kernels: near-pure streams, wide footprints."""
    return BenchmarkProfile(
        name=name, mpki=mpki, intensity="H", footprint_mb=512,
        stream_fraction=0.92, stream_count=16,
        hot_fraction=0.3, hot_set=0.05,
        write_fraction=0.3, neighbor_fraction=0.25,
        dependent_fraction=0.02)


def main() -> None:
    accesses = int(sys.argv[1]) if len(sys.argv) > 1 else 2500
    profiles = [rodinia_like("hotspot", 55), rodinia_like("srad", 48),
                rodinia_like("lud", 40), rodinia_like("bfs", 60)]
    traces = generate_traces(profiles, accesses, fragmentation=0.1,
                             seed=0)

    # GDDR5-class channel: the core-to-channel frequency gap is what
    # makes the dual-bus scheme matter (Fig. 14's regime).
    baseline = gddr5()
    gddr_clock = baseline.bus_frequency_hz
    core = gpu_core()

    bank_grouped = vsb(EruConfig.full(4, ddb=False)).at_frequency(
        gddr_clock)
    with_ddb = vsb(EruConfig.full(4, ddb=True)).at_frequency(gddr_clock)

    print(f"GDDR5-like channel at {gddr_clock / 1e9:.1f} GHz, "
          f"GPU-like cores, {accesses} accesses/core\n")
    base_ipc = None
    for config in (baseline, bank_grouped, with_ddb):
        result = run_traces(config, traces, core_config=core)
        ipc = sum(result.ipcs)
        if base_ipc is None:
            base_ipc = ipc
        print(f"{config.name:44s} speedup={ipc / base_ipc:5.3f}")

    print("\npaper (Section V): ~10% speedup from DDB-style dual buses "
          "on memory-intensive GPU kernels.")


if __name__ == "__main__":
    main()
