#!/usr/bin/env python3
"""Quickstart: measure ERUCA's speedup over baseline DDR4 on one mix.

Builds the paper's mix0 (mcf + lbm + omnetpp + gemsFDTD) at 10% memory
fragmentation, runs it on baseline DDR4, on ERUCA (4-plane VSB with
EWLR + RAP + DDB), and on the idealised 32-bank DRAM, then reports
throughput, conflict statistics, and EWLR activity.

Run:  python examples/quickstart.py [accesses_per_core]
"""

import sys

from repro import EruConfig, ddr4_baseline, ideal32, run_traces, vsb
from repro.workloads.mixes import mix_traces


def main() -> None:
    accesses = int(sys.argv[1]) if len(sys.argv) > 1 else 2000
    print(f"generating mix0 traces ({accesses} accesses/core, "
          "fragmentation 10%)...")
    traces = mix_traces("mix0", accesses_per_core=accesses,
                        fragmentation=0.1, seed=0)
    for trace in traces:
        print(f"  {trace.name:10s} MPKI={trace.mpki():5.1f} "
              f"reads={trace.reads} writes={trace.writes}")

    configs = [
        ddr4_baseline(),
        vsb(EruConfig.naive(planes=4)),
        vsb(EruConfig.full(planes=4)),
        ideal32(),
    ]
    baseline_ipc = None
    print(f"\n{'config':28s} {'IPC sum':>8s} {'speedup':>8s} "
          f"{'row hit':>8s} {'plane-pre':>10s}")
    for config in configs:
        result = run_traces(config, traces)
        ipc = sum(result.ipcs)
        if baseline_ipc is None:
            baseline_ipc = ipc
        hit_rate = 1 - result.stats.acts / max(1, result.stats.columns)
        print(f"{config.name:28s} {ipc:8.3f} {ipc / baseline_ipc:8.3f} "
              f"{hit_rate:8.1%} "
              f"{result.plane_conflict_precharge_fraction:10.1%}")

    print("\nExpected shape (paper Fig. 12): naive VSB < ERUCA "
          "(EWLR+RAP+DDB) <= Ideal32, all above DDR4.")


if __name__ == "__main__":
    main()
