#!/usr/bin/env python3
"""Bring your own workload: define a profile, sweep fragmentation.

Shows the full user-facing pipeline: a custom benchmark profile, trace
generation through the fragmentation-aware allocator, and a sweep of
the FMFI level to watch RAP's conflict avoidance degrade -- the paper's
Fig. 13 fragmentation story on a workload you control.

Run:  python examples/custom_workload.py [accesses]
"""

import sys

from repro import EruConfig, ddr4_baseline, run_traces, vsb
from repro.workloads.generator import generate_traces
from repro.workloads.profiles import BenchmarkProfile


def main() -> None:
    accesses = int(sys.argv[1]) if len(sys.argv) > 1 else 2000

    # A stencil-heavy scientific kernel: strong streams, paired arrays,
    # frequent neighbouring-row touches -- the access shape ERUCA's
    # EWLR and RAP both target.
    stencil = BenchmarkProfile(
        name="stencil3d", mpki=35.0, intensity="H", footprint_mb=512,
        stream_fraction=0.85, stream_count=10,
        hot_fraction=0.5, hot_set=0.05,
        write_fraction=0.33, neighbor_fraction=0.3)

    # A pointer-chasing graph traversal: almost no spatial locality.
    chaser = BenchmarkProfile(
        name="graphwalk", mpki=50.0, intensity="H", footprint_mb=1024,
        stream_fraction=0.1, stream_count=2,
        hot_fraction=0.6, hot_set=0.02,
        write_fraction=0.2, neighbor_fraction=0.02)

    profiles = [stencil, stencil, chaser, chaser]
    print(f"4-core custom mix: 2x {stencil.name} + 2x {chaser.name}, "
          f"{accesses} accesses/core\n")

    print(f"{'FMFI':>5s} {'DDR4':>7s} {'naive':>7s} {'RAP':>7s} "
          f"{'full':>7s}  {'RAP plane-pre':>13s}")
    for fragmentation in (0.1, 0.3, 0.5, 0.7, 0.9):
        traces = generate_traces(profiles, accesses,
                                 fragmentation=fragmentation, seed=1)
        base = run_traces(ddr4_baseline(), traces)
        base_ipc = sum(base.ipcs)
        row = [f"{fragmentation:5.1f}", f"{1.0:7.3f}"]
        rap_pre = 0.0
        for eru in (EruConfig.naive(4), EruConfig.rap_only(4),
                    EruConfig.full(4)):
            result = run_traces(vsb(eru), traces)
            row.append(f"{sum(result.ipcs) / base_ipc:7.3f}")
            if eru.rap and not eru.ewlr:
                rap_pre = result.plane_conflict_precharge_fraction
        print(" ".join(row) + f"  {rap_pre:13.1%}")

    print("\nExpected: RAP's edge over naive VSB shrinks as "
          "fragmentation destroys huge-page address locality.")


if __name__ == "__main__":
    main()
