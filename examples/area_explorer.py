#!/usr/bin/env python3
"""Explore the Fig. 11 die-area model: cost of each ERUCA mechanism.

Prints the area overhead of every mechanism combination across plane
counts, the DDB component breakdown, and the comparison against prior
sub-banking schemes -- the paper's "<0.3% for everything" claim.

Run:  python examples/area_explorer.py
"""

from repro.core.area import (
    HALF_DRAM_OVERHEAD_PCT,
    MASA_OVERHEAD_PCT,
    ddb_overhead_pct,
    eruca_overhead_pct,
    latch_select_wire_overhead_pct,
    paired_bank_overhead_pct,
    vsb_latch_overhead_pct,
)
from repro.core.mechanisms import EruConfig


def main() -> None:
    print("ERUCA die-area overhead (percent of an 8Gb x4 DDR4 die)\n")
    print(f"{'configuration':24s} " + " ".join(
        f"{n:>3d}P" for n in (2, 4, 8, 16)))
    for label, ewlr, rap, ddb in (
            ("RAP", False, True, False),
            ("EWLR+RAP", True, True, False),
            ("DDB+RAP", False, True, True),
            ("DDB+EWLR+RAP", True, True, True)):
        row = []
        for planes in (2, 4, 8, 16):
            cfg = EruConfig(planes=planes, ewlr=ewlr, rap=rap, ddb=ddb)
            row.append(f"{eruca_overhead_pct(cfg):4.2f}")
        print(f"{label:24s} " + " ".join(f"{v:>4s}" for v in row))

    print("\ncomponent breakdown at 4 planes (EWLR on):")
    print(f"  latch sets          {vsb_latch_overhead_pct(4, True):6.3f}%")
    print(f"  latch-select wires  "
          f"{latch_select_wire_overhead_pct(4, True):6.3f}%")
    print(f"  DDB (switches+mux+wires) {ddb_overhead_pct():6.3f}%")

    print("\nversus prior work:")
    full = eruca_overhead_pct(EruConfig.full(4))
    print(f"  ERUCA (4P, all mechanisms)  {full:6.2f}%")
    print(f"  Half-DRAM                   {HALF_DRAM_OVERHEAD_PCT:6.2f}%"
          f"  ({HALF_DRAM_OVERHEAD_PCT / full:4.1f}x ERUCA)")
    for groups, pct in MASA_OVERHEAD_PCT.items():
        print(f"  MASA{groups}                       {pct:6.2f}%"
              f"  ({pct / full:4.1f}x ERUCA)")
    paired = paired_bank_overhead_pct(EruConfig.full(4))
    print(f"  Paired-bank ERUCA           {paired:6.2f}%  (a net saving)")


if __name__ == "__main__":
    main()
