#!/usr/bin/env python3
"""Fig. 12-style per-mix weighted-speedup comparison.

Runs every configuration of the paper's main result on one mix (or all
nine), reporting weighted speedup normalised to DDR4.

Run:  python examples/mix_speedup.py [mix0|...|mix8|all] [accesses]
"""

import sys

from repro import ExperimentContext, ExperimentSettings
from repro.sim.experiments import fig12, fig12_configs
from repro.workloads.mixes import MIX_NAMES


def main() -> None:
    which = sys.argv[1] if len(sys.argv) > 1 else "mix0"
    accesses = int(sys.argv[2]) if len(sys.argv) > 2 else 1500
    mixes = MIX_NAMES if which == "all" else (which,)
    if any(m not in MIX_NAMES for m in mixes):
        raise SystemExit(f"unknown mix {which!r}; choose from "
                         f"{', '.join(MIX_NAMES)} or 'all'")

    context = ExperimentContext(ExperimentSettings(
        accesses_per_core=accesses, mixes=mixes))
    print(f"running {len(fig12_configs())} configurations on "
          f"{', '.join(mixes)} ({accesses} accesses/core)...\n")
    table = fig12(context)

    norm = table.normalized()
    gmeans = table.gmeans()
    print(f"{'config':36s} " + " ".join(f"{m:>7s}" for m in mixes)
          + f" {'GMEAN':>7s}")
    for config, row in norm.items():
        cells = " ".join(f"{row[m]:7.3f}" for m in mixes)
        print(f"{config:36s} {cells} {gmeans[config]:7.3f}")


if __name__ == "__main__":
    main()
