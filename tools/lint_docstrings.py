#!/usr/bin/env python
"""Fail if a public class/function in the given packages lacks a docstring.

Usage::

    python tools/lint_docstrings.py src/repro/core src/repro/dram ...

Walks every ``.py`` file under the given paths with :mod:`ast` (the code
is never imported, so the linter has no dependency or side-effect
surface) and reports public definitions -- module, class, function,
method -- without a docstring.  Exit status 1 if anything is missing.

"Public" means the name has no leading underscore and none of its
enclosing scopes do.  Conventional exemptions: ``__init__`` (documented
by its class), other dunder methods, ``@property`` setters/deleters
(documented by the getter), and trivial ``__init__.py`` re-export
modules are *not* exempt -- a package docstring is exactly where a
module map belongs.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path
from typing import Iterator, List, Tuple

#: Decorator names whose functions inherit their doc from a sibling.
_DOC_ELSEWHERE_DECORATORS = {"setter", "deleter", "overload"}


def _decorator_exempt(node: ast.AST) -> bool:
    for dec in getattr(node, "decorator_list", []):
        name = None
        if isinstance(dec, ast.Attribute):
            name = dec.attr
        elif isinstance(dec, ast.Name):
            name = dec.id
        if name in _DOC_ELSEWHERE_DECORATORS:
            return True
    return False


def _missing_in(tree: ast.Module) -> Iterator[Tuple[int, str]]:
    """Yield (line, qualified name) of public defs without docstrings."""
    if ast.get_docstring(tree) is None:
        yield 1, "<module>"

    def walk(node: ast.AST, scope: List[str]) -> Iterator[Tuple[int, str]]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                                  ast.ClassDef)):
                name = child.name
                if name.startswith("_"):
                    # Private (or dunder: documented by convention);
                    # do not descend -- nothing inside is public API.
                    continue
                if _decorator_exempt(child):
                    continue
                qualified = ".".join(scope + [name])
                if ast.get_docstring(child) is None:
                    yield child.lineno, qualified
                yield from walk(child, scope + [name])
            else:
                yield from walk(child, scope)

    yield from walk(tree, [])


def lint_paths(paths: List[str]) -> List[str]:
    """Return "file:line: name" problem strings for all given paths."""
    problems: List[str] = []
    for root in paths:
        root_path = Path(root)
        files = ([root_path] if root_path.is_file()
                 else sorted(root_path.rglob("*.py")))
        for py in files:
            tree = ast.parse(py.read_text(), filename=str(py))
            for line, name in _missing_in(tree):
                problems.append(f"{py}:{line}: missing docstring: {name}")
    return problems


def main(argv: List[str]) -> int:
    """CLI entry point; returns the process exit status."""
    if not argv:
        print(__doc__)
        return 2
    problems = lint_paths(argv)
    for problem in problems:
        print(problem)
    if problems:
        print(f"{len(problems)} public definitions lack docstrings")
        return 1
    print(f"docstring lint clean: {', '.join(argv)}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
