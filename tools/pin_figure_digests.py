#!/usr/bin/env python
"""Pin the reduced-output digest of every figure runner.

Runs each builder in :mod:`repro.sim.pinning` at the pinned scale and
writes ``tests/data/figure_digests.json`` holding, per figure, the
payload itself (for diagnosable diffs) and its canonical-JSON SHA-256.
``tests/sim/test_figure_digests.py`` asserts the digests never drift --
the experiment-layer refactor's bit-identical-figures invariant.

Usage::

    PYTHONPATH=src python tools/pin_figure_digests.py [--check]

``--check`` recomputes and compares instead of rewriting (exit 1 on any
drift), which is how a modelling PR proves it re-baselined on purpose.
"""

import argparse
import json
import os
import sys
import tempfile

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.sim.experiments import ExperimentContext  # noqa: E402
from repro.sim.pinning import (  # noqa: E402
    FIGURE_BUILDERS,
    PINNED_DIGESTS_PATH,
    payload_digest,
    pinned_settings,
)


def compute() -> dict:
    # A throwaway cache directory keeps the pinning run hermetic: no
    # developer-machine cache entry may leak into the pinned numbers.
    with tempfile.TemporaryDirectory() as tmp:
        os.environ["REPRO_CACHE_DIR"] = tmp
        context = ExperimentContext(pinned_settings())
        figures = {}
        for name, builder in FIGURE_BUILDERS.items():
            payload = builder(context)
            figures[name] = {"digest": payload_digest(payload),
                             "payload": payload}
            print(f"{name:10s} {figures[name]['digest']}")
    settings = pinned_settings()
    return {
        "settings": {
            "accesses_per_core": settings.accesses_per_core,
            "fragmentation": settings.fragmentation,
            "seed": settings.seed,
            "mixes": list(settings.mixes),
        },
        "figures": figures,
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--check", action="store_true",
                        help="compare against the pinned file instead "
                             "of rewriting it")
    parser.add_argument("--output", default=PINNED_DIGESTS_PATH)
    args = parser.parse_args()

    table = compute()
    if args.check:
        with open(args.output) as fh:
            pinned = json.load(fh)
        drift = [name for name, entry in table["figures"].items()
                 if pinned["figures"].get(name, {}).get("digest")
                 != entry["digest"]]
        if drift:
            print(f"DRIFT in: {', '.join(drift)}")
            return 1
        print("all pinned digests match")
        return 0
    with open(args.output, "w") as fh:
        json.dump(table, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
