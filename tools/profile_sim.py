#!/usr/bin/env python3
"""Profile the simulator over any preset x workload cell.

Standalone wrapper around :mod:`repro.sim.profiling` -- the same
harness ``repro profile`` uses -- with one extra mode: ``--compare``
profiles the reference and the table-based incremental scheduler paths
back to back on the identical cell, checks the two digests match, and
prints both effort summaries so a regression in either speed or
behaviour is visible from one command.

::

    python tools/profile_sim.py --config vsb --mix mix0
    python tools/profile_sim.py --config masa8-eruca --compare
    python tools/profile_sim.py --config ddr4 --shards serial --compare
    python tools/profile_sim.py --config ddr4 --output ddr4.pstats
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

try:
    import repro  # noqa: F401
except ImportError:  # pragma: no cover - direct invocation
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.cli import CONFIG_FACTORIES
from repro.sim.profiling import profile_run
from repro.workloads.mixes import MIX_NAMES


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--config", default="vsb",
                        choices=sorted(CONFIG_FACTORIES))
    parser.add_argument("--mix", default="mix0", choices=MIX_NAMES)
    parser.add_argument("--accesses", type=int, default=1500)
    parser.add_argument("--fragmentation", type=float, default=0.1)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--sort", default="cumulative",
                        help="pstats sort key (default cumulative)")
    parser.add_argument("--limit", type=int, default=25,
                        help="pstats rows to print (default 25)")
    parser.add_argument("--output", metavar="FILE",
                        help="dump binary pstats to FILE (in --compare "
                             "mode the incremental run is dumped)")
    parser.add_argument("--reference", action="store_true",
                        help="profile the reference scheduler path")
    parser.add_argument("--shards", choices=("off", "serial", "threads"),
                        default=None,
                        help="event loop to profile: 'off' (default) = "
                             "classic global loop, 'serial'/'threads' = "
                             "the sharded drivers; in --compare mode "
                             "both paths run on the chosen loop")
    parser.add_argument("--compare", action="store_true",
                        help="profile both paths and assert digests "
                             "match")
    args = parser.parse_args(argv)

    config = CONFIG_FACTORIES[args.config]()
    cell = dict(mix=args.mix, accesses=args.accesses,
                fragmentation=args.fragmentation, seed=args.seed,
                shards=args.shards)

    if args.compare:
        reference = profile_run(config, incremental=False, **cell)
        incremental = profile_run(config, incremental=True, **cell)
        for title, report in (("reference", reference),
                              ("incremental", incremental)):
            print(f"== {title} path " + "=" * 50)
            print(report.format_table(limit=args.limit, sort=args.sort))
        if reference.digest != incremental.digest:
            print("DIGEST MISMATCH between scheduler paths",
                  file=sys.stderr)
            return 1
        speedup = (reference.wall_time_s
                   / max(1e-9, incremental.wall_time_s))
        print(f"digests match; incremental examined "
              f"{incremental.candidates_examined} candidates vs "
              f"{reference.candidates_examined} reference "
              f"({speedup:.2f}x wall under profiler)")
        if args.output:
            incremental.dump(args.output)
            print(f"wrote {args.output}")
        return 0

    report = profile_run(
        config, incremental=False if args.reference else None, **cell)
    print(report.format_table(limit=args.limit, sort=args.sort), end="")
    if args.output:
        report.dump(args.output)
        print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
