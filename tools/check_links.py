#!/usr/bin/env python
"""Check that relative markdown links in the given files resolve.

Usage::

    python tools/check_links.py README.md docs/*.md

Extracts every inline markdown link/image target (``[text](target)``)
and verifies that relative targets exist on disk, resolved against the
containing file's directory.  External targets (``http(s)://``,
``mailto:``) and pure in-page anchors (``#...``) are skipped; a
``path#anchor`` target is checked for the path part only.  Exit status
1 if any target is missing.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path
from typing import List

#: Inline links/images: [text](target) -- good enough for these docs;
#: reference-style links are not used here.
_LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")

_SKIP_PREFIXES = ("http://", "https://", "mailto:", "#")


def check_file(path: Path) -> List[str]:
    """Return problem strings for one markdown file."""
    problems: List[str] = []
    text = path.read_text()
    # Ignore fenced code blocks: they may contain example links.
    text = re.sub(r"```.*?```", "", text, flags=re.S)
    for match in _LINK_RE.finditer(text):
        target = match.group(1)
        if target.startswith(_SKIP_PREFIXES):
            continue
        file_part = target.split("#", 1)[0]
        if not file_part:
            continue
        resolved = (path.parent / file_part).resolve()
        if not resolved.exists():
            line = text.count("\n", 0, match.start()) + 1
            problems.append(
                f"{path}:{line}: broken link -> {target}")
    return problems


def main(argv: List[str]) -> int:
    """CLI entry point; returns the process exit status."""
    if not argv:
        print(__doc__)
        return 2
    problems: List[str] = []
    for name in argv:
        problems.extend(check_file(Path(name)))
    for problem in problems:
        print(problem)
    if problems:
        print(f"{len(problems)} broken links")
        return 1
    print(f"links ok: {len(argv)} files")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
