#!/usr/bin/env python
"""Check that relative markdown links in the given files resolve.

Usage::

    python tools/check_links.py README.md docs/*.md

Extracts every inline markdown link/image target (``[text](target)``)
and verifies that relative targets exist on disk, resolved against the
containing file's directory.  External targets (``http(s)://``,
``mailto:``) and pure in-page anchors (``#...``) are skipped; a
``path#anchor`` target is checked for the path part only.

Backticked inline code that *looks like a path* is checked too: an
absolute path (``/root/...``), or a relative one anchored at an entry
that exists in the repository root (``docs/FOO.md``, ``tools/x.py``).
The anchor requirement keeps slash-joined jargon (``tRFC/tREFI``,
``serial/threads``) out of scope while still catching references to
files that were moved, renamed, or never existed.  Exit status 1 if
any target is missing.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path
from typing import List

#: Inline links/images: [text](target) -- good enough for these docs;
#: reference-style links are not used here.
_LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")

#: Backticked inline code spans (fenced blocks are stripped first).
_CODE_RE = re.compile(r"`([^`\n]+)`")

_SKIP_PREFIXES = ("http://", "https://", "mailto:", "#")

#: Repository root: path references in any doc resolve against this.
_ROOT = Path(__file__).resolve().parent.parent


def _path_candidate(span: str) -> str:
    """The path a backticked span refers to, or '' if it is not one.

    A candidate has no whitespace (commands and prose disqualify
    themselves), contains a slash, carries no glob/placeholder
    characters, and -- for relative spans -- is anchored at a name
    that exists in the repository root.  Trailing ``:LINE`` suffixes
    (``src/x.py:12``) are dropped before checking.
    """
    if any(c in span for c in " \t*?<>{}$=()|"):
        return ""
    if span.startswith(_SKIP_PREFIXES) or "/" not in span:
        return ""
    span = re.sub(r":\d+(-\d+)?$", "", span)
    if span.startswith("/"):
        return span
    anchor = span.split("/", 1)[0]
    if anchor in ("..", "."):
        return span
    return span if (_ROOT / anchor).exists() else ""


def check_file(path: Path) -> List[str]:
    """Return problem strings for one markdown file."""
    problems: List[str] = []
    text = path.read_text()
    # Ignore fenced code blocks: they may contain example links.
    text = re.sub(r"```.*?```", "", text, flags=re.S)
    for match in _LINK_RE.finditer(text):
        target = match.group(1)
        if target.startswith(_SKIP_PREFIXES):
            continue
        file_part = target.split("#", 1)[0]
        if not file_part:
            continue
        resolved = (path.parent / file_part).resolve()
        if not resolved.exists():
            line = text.count("\n", 0, match.start()) + 1
            problems.append(
                f"{path}:{line}: broken link -> {target}")
    for match in _CODE_RE.finditer(text):
        candidate = _path_candidate(match.group(1))
        if not candidate:
            continue
        if candidate.startswith("/"):
            exists = Path(candidate).exists()
        else:
            # Accept either anchoring: the containing file's directory
            # (how markdown links resolve) or the repository root (how
            # docs cite repo files regardless of their own location).
            exists = ((path.parent / candidate).exists()
                      or (_ROOT / candidate).exists())
        if not exists:
            line = text.count("\n", 0, match.start()) + 1
            problems.append(
                f"{path}:{line}: dangling path reference -> "
                f"{match.group(1)}")
    return problems


def main(argv: List[str]) -> int:
    """CLI entry point; returns the process exit status."""
    if not argv:
        print(__doc__)
        return 2
    problems: List[str] = []
    for name in argv:
        problems.extend(check_file(Path(name)))
    for problem in problems:
        print(problem)
    if problems:
        print(f"{len(problems)} broken links")
        return 1
    print(f"links ok: {len(argv)} files")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
