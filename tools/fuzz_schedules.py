#!/usr/bin/env python
"""Differential schedule fuzzer: scheduler vs. independent rule checker.

Usage::

    PYTHONPATH=src python tools/fuzz_schedules.py --seeds 100
    PYTHONPATH=src python tools/fuzz_schedules.py --start 42 --seeds 1 \
        --accesses 120 --cores 2   # replay one (possibly minimized) case

Each seed deterministically draws a case -- a configuration preset
(round-robin over :func:`repro.sim.config.all_presets`, filtered by
``--backend`` to one memory technology -- the default ``dram`` keeps
the historical seed-to-preset mapping over the 17 DDR4 presets), a
synthetic trace set (core count,
access count, gap/write/locality profile), a channel-frequency grade,
and occasionally a ``tFAW`` override (disabled, or tightened) -- then
runs the simulator with command logging and cross-checks four
independent oracles.  Half the cases additionally draw a DRAM refresh
density grade and policy (``--refresh`` forces refresh on in every
case), so the refresh scheduler rides every oracle below:

1. **Reference vs. incremental scheduling**: the two selection paths
   must produce bit-identical command streams and result digests.
2. **The rule checker**: every channel's command log must pass
   :func:`repro.dram.validation.validate_log`, a second implementation
   of the timing rules written straight from their definitions.
3. **Cycle accounting**: the observed run's stall buckets must sum
   exactly to each channel's wall time
   (:meth:`AccountingReport.verify`).
4. **Observer neutrality**: the observed run's digest must equal the
   unobserved run's.
5. **Sharded backends** (``--sharded``): the channel-sharded loop
   (:mod:`repro.sim.shards`), serial and threaded, must reproduce the
   reference command streams and digests bit-for-bit, pass the rule
   checker, and keep the accounting bucket-sum invariant.

On failure the case is shrunk (halve accesses, then drop cores) while
it still fails, and a copy-pasteable repro command is printed.  Exit
status 1 if any seed fails.
"""

from __future__ import annotations

import argparse
import hashlib
import random
import sys
from dataclasses import dataclass, replace
from typing import Callable, List, Optional

try:
    import repro  # noqa: F401  (probe: is src/ already importable?)
except ImportError:  # direct invocation without PYTHONPATH=src
    from pathlib import Path
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.cpu.core import CoreConfig, TraceCore
from repro.cpu.trace import Trace, TraceEntry
from repro.dram.validation import TimingViolation, validate_log
from repro.sim import config as cfgs
from repro.sim.simulator import MemorySystem, Simulator

#: Channel-frequency grades a case may draw (None = the preset's own).
FREQUENCY_GRADES = (None, 1.6e9, 2.0e9, 2.4e9)

#: tFAW overrides in ns (None = the preset's value, 0 disables the
#: window, 45 tightens it well past DDR4's worst case so the floor
#: actually binds in short runs).
TFAW_GRADES_NS = (None, None, None, 0, 45)

#: DDR4 refresh density grades a case may draw (each fixes tRFC and
#: tRFCpb, see :data:`repro.dram.timing.REFRESH_DENSITY_GRADES_NS`).
REFRESH_DENSITIES = ("4Gb", "8Gb", "16Gb")

#: The refresh draw: half the cases leave refresh off (None), the rest
#: enable one density grade.  ``--refresh`` restricts the draw to the
#: density grades so every case exercises the refresh machinery.
REFRESH_GRADES = (None, None, None) + REFRESH_DENSITIES


@dataclass(frozen=True)
class Case:
    """One fuzz case, fully determined by its draw parameters."""

    seed: int
    config_name: str
    cores: int
    accesses: int
    #: ``--refresh`` was given: the density draw skips the None grades.
    refresh: bool = False
    #: Memory-technology backend of the drawn preset (the ``--backend``
    #: axis; replay must filter the preset list the same way).
    backend: str = "dram"

    def repro_command(self) -> str:
        """A shell command that replays exactly this case."""
        return (f"PYTHONPATH=src python tools/fuzz_schedules.py "
                f"--start {self.seed} --seeds 1 "
                f"--cores {self.cores} --accesses {self.accesses}"
                + (" --refresh" if self.refresh else "")
                + (f" --backend {self.backend}"
                   if self.backend != "dram" else ""))


def draw_case(seed: int, presets: Optional[List] = None,
              cores: Optional[int] = None,
              accesses: Optional[int] = None,
              refresh: bool = False) -> Case:
    """Deterministically draw a case from its seed (plus overrides)."""
    presets = presets if presets is not None else cfgs.all_presets()
    rng = random.Random(seed)
    preset = presets[seed % len(presets)]
    return Case(
        seed=seed,
        config_name=preset.name,
        cores=cores if cores is not None else rng.randint(1, 4),
        accesses=accesses if accesses is not None
        else rng.randint(80, 280),
        refresh=refresh,
        backend=preset.backend,
    )


def build_config(case: Case, presets: Optional[List] = None):
    """The case's SystemConfig: preset + frequency/tFAW grade."""
    presets = presets if presets is not None else cfgs.all_presets()
    by_name = {p.name: p for p in presets}
    config = by_name[case.config_name]
    rng = random.Random(case.seed ^ 0x5EED)
    freq = rng.choice(FREQUENCY_GRADES)
    if freq is not None:
        config = config.at_frequency(freq)
    tfaw = rng.choice(TFAW_GRADES_NS)
    if tfaw is not None:
        config = replace(config, tfaw_ns=tfaw,
                         name=f"{config.name}+tFAW{tfaw:g}ns")
    # Draw the refresh grade and policy unconditionally so the rng
    # stream (and thus every other draw) is identical across backends;
    # only *application* is gated on the technology's capability.
    density = rng.choice(REFRESH_DENSITIES if case.refresh
                         else REFRESH_GRADES)
    from repro.controller.scheduler import REFRESH_POLICIES
    policy = rng.choice(REFRESH_POLICIES)
    if density is not None:
        from repro.dram.backends import get_backend
        tech = get_backend(config.backend)
        if not tech.refresh_capable:
            density = None  # e.g. PCM: the case runs refresh-free
        elif density not in tech.refresh_grades_ns:
            # Map a DDR4-only grade onto one the technology ships
            # (deterministically, by the grade's position in the draw
            # tuple -- str hashes are salted per process).
            grades = sorted(tech.refresh_grades_ns)
            density = grades[REFRESH_DENSITIES.index(density)
                             % len(grades)]
    if density is not None:
        config = replace(config, refresh_density=density,
                         refresh_policy=policy,
                         name=f"{config.name}+ref-{policy}-{density}")
    return replace(config, record_commands=True)


def build_traces(case: Case) -> List[Trace]:
    """Synthetic traffic: streaming/random blend, bursts, write mix."""
    rng = random.Random(case.seed ^ 0x7ACE)
    streaming = rng.uniform(0.2, 0.8)
    write_frac = rng.uniform(0.0, 0.6)
    max_gap = rng.choice((4, 16, 40))
    traces = []
    for core in range(case.cores):
        base = rng.randrange(0, 1 << 30) & ~63
        entries = []
        for i in range(case.accesses):
            if rng.random() < streaming:
                addr = (base + i * 64) & ((1 << 34) - 64)
            else:
                addr = rng.randrange(0, 1 << 34) & ~63
            entries.append(TraceEntry(rng.randrange(0, max_gap),
                                      rng.random() < write_frac, addr))
        traces.append(Trace.from_entries(entries, name=f"fuzz{core}"))
    return traces


def command_stream_hash(system: MemorySystem) -> str:
    """Hash of every issued command across all channels, in order."""
    h = hashlib.sha256()
    for controller in system.controllers:
        for rec in controller.channel.command_log:
            h.update(f"{rec.kind},{rec.time},{rec.bank},{rec.bank_group},"
                     f"{rec.slot},{rec.row};".encode())
    return h.hexdigest()


def _run(config, traces, incremental: bool, observe: bool,
         shards: str = "off"):
    """One simulation; returns (result, command hash, system)."""
    system = MemorySystem(replace(config, incremental=incremental),
                          observe=observe or None)
    cores = [TraceCore(t, CoreConfig(), core_id=i)
             for i, t in enumerate(traces)]
    if shards == "off":
        result = Simulator(system, cores).run()
    else:
        from repro.sim.shards import ShardedSimulator
        result = ShardedSimulator(system, cores, backend=shards).run()
    return result, command_stream_hash(system), system


def _validate(system) -> Optional[str]:
    """The independent rule checker over every channel's command log."""
    for controller in system.controllers:
        channel = controller.channel
        try:
            validate_log(channel.command_log, channel.timing,
                         channel.resources.policy)
        except TimingViolation as exc:
            return f"rule checker: {exc}"
    return None


def check_case(case: Case, presets: Optional[List] = None,
               sharded: bool = False) -> Optional[str]:
    """Run all oracles on one case; returns a failure message or None."""
    config = build_config(case, presets)
    traces = build_traces(case)
    inc, inc_hash, inc_system = _run(config, traces,
                                     incremental=True, observe=True)
    ref, ref_hash, _ = _run(config, traces,
                            incremental=False, observe=False)
    if inc_hash != ref_hash:
        return "incremental/reference command streams diverge"
    if inc.digest() != ref.digest():
        return ("incremental/reference digests diverge "
                "(or the observer changed behaviour)")
    message = _validate(inc_system)
    if message is not None:
        return message
    try:
        inc.accounting.verify()
    except AssertionError as exc:
        return f"accounting invariant: {exc}"
    if sharded:
        # The sharded loop is driven directly (not via run_traces) so
        # 1-core cases exercise the shard protocol too instead of the
        # classic-loop fast path.
        for backend in ("serial", "threads"):
            res, res_hash, res_system = _run(
                config, traces, incremental=True, observe=True,
                shards=backend)
            if res_hash != ref_hash:
                return (f"sharded-{backend}/reference command streams "
                        f"diverge")
            if res.digest() != ref.digest():
                return f"sharded-{backend}/reference digests diverge"
            message = _validate(res_system)
            if message is not None:
                return f"sharded-{backend} {message}"
            try:
                res.accounting.verify()
            except AssertionError as exc:
                return (f"sharded-{backend} accounting invariant: "
                        f"{exc}")
    return None


def minimize(case: Case,
             fails: Callable[[Case], Optional[str]]) -> Case:
    """Shrink a failing case while it keeps failing.

    First halve the access count, then drop cores; each step keeps the
    shrunk case only if ``fails`` still reports a failure.  ``fails``
    is the oracle (normally :func:`check_case`), injectable for tests.
    """
    while case.accesses > 10:
        smaller = replace(case, accesses=max(10, case.accesses // 2))
        if fails(smaller) is None:
            break
        case = smaller
    while case.cores > 1:
        smaller = replace(case, cores=case.cores - 1)
        if fails(smaller) is None:
            break
        case = smaller
    return case


def run_seeds(start: int, count: int, presets: Optional[List] = None,
              cores: Optional[int] = None,
              accesses: Optional[int] = None,
              sharded: bool = False, refresh: bool = False,
              out=sys.stdout) -> int:
    """Fuzz ``count`` seeds from ``start``; returns the failure count."""
    presets = presets if presets is not None else cfgs.all_presets()
    failures = 0
    for seed in range(start, start + count):
        case = draw_case(seed, presets, cores=cores, accesses=accesses,
                         refresh=refresh)
        message = check_case(case, presets, sharded=sharded)
        if message is None:
            print(f"seed {seed:4d} ok    {case.config_name:24s} "
                  f"cores={case.cores} accesses={case.accesses}",
                  file=out)
            continue
        failures += 1
        print(f"seed {seed:4d} FAIL  {case.config_name}: {message}",
              file=out)
        small = minimize(
            case, lambda c: check_case(c, presets, sharded=sharded))
        print(f"  minimized to cores={small.cores} "
              f"accesses={small.accesses}; reproduce with:", file=out)
        print(f"  {small.repro_command()}", file=out)
    return failures


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="differential fuzz of the command scheduler")
    parser.add_argument("--seeds", type=int, default=25,
                        help="number of seeds to run (default 25)")
    parser.add_argument("--start", type=int, default=0,
                        help="first seed (default 0)")
    parser.add_argument("--config", default=None,
                        help="restrict to one preset by name")
    parser.add_argument("--cores", type=int, default=None,
                        help="override the drawn core count")
    parser.add_argument("--accesses", type=int, default=None,
                        help="override the drawn access count")
    parser.add_argument("--sharded", action="store_true",
                        help="also run the channel-sharded backends "
                             "(serial and threads) against every case "
                             "and hold them to the reference command "
                             "stream, digest, rule checker, and "
                             "accounting invariant")
    parser.add_argument("--refresh", action="store_true",
                        help="force DRAM refresh on in every case "
                             "(density grade and policy still drawn "
                             "per seed) instead of the default "
                             "half-on/half-off draw; refresh-free "
                             "technologies (pcm_palp) ignore the draw")
    parser.add_argument("--backend", default="dram",
                        choices=("dram", "pcm_palp", "gddr5", "all"),
                        help="restrict the preset round-robin to one "
                             "memory-technology backend (default dram, "
                             "which preserves the historical "
                             "seed-to-preset mapping); 'all' cycles "
                             "through every preset")
    args = parser.parse_args(argv)
    presets = cfgs.all_presets()
    if args.backend != "all":
        presets = [p for p in presets if p.backend == args.backend]
    if args.config is not None:
        presets = [p for p in presets if p.name == args.config]
        if not presets:
            parser.error(f"unknown config {args.config!r} for backend "
                         f"{args.backend!r}; known: "
                         + ", ".join(p.name for p in cfgs.all_presets()))
    failures = run_seeds(args.start, args.seeds, presets,
                         cores=args.cores, accesses=args.accesses,
                         sharded=args.sharded, refresh=args.refresh)
    if failures:
        print(f"{failures} of {args.seeds} seeds failed")
        return 1
    print(f"all {args.seeds} seeds clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
