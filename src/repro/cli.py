"""Command-line interface: regenerate any paper artefact from a shell.

::

    python -m repro list
    python -m repro fig12 --mixes mix0,mix3 --accesses 1500
    python -m repro fig12 --emit-stats out/          # + JSON sidecars
    python -m repro fig14 --accesses 1000
    python -m repro fig11
    python -m repro fig4 --accesses 3000
    python -m repro figref --mixes mix0,mix3     # refresh policy sweep
    python -m repro run --config vsb --mix mix0
    python -m repro run fig12 --jobs 0           # spec-driven, resumable
    python -m repro run my_spec.json
    python -m repro cells fig12                  # expansion + store diff
    python -m repro gc --max-age-days 30         # prune the result store
    python -m repro stats --config vsb --mix mix0 --per-bank
    python -m repro trace --config vsb --mix mix0 --limit 50
    python -m repro profile --config vsb --mix mix0 --sort tottime

Each figure sub-command prints the same rows as the corresponding
benchmark in ``benchmarks/`` (the benches add assertions and timing on
top).  ``run`` with a positional argument executes a declarative
experiment spec -- a named figure grid or a JSON file (see
``docs/EXPERIMENTS_SERVICE.md``) -- against the content-addressed
result store, simulating only cells the store does not already hold;
``cells`` previews that diff and ``gc`` prunes the store.  ``stats``
and ``trace`` expose the cycle-accounting layer
(:mod:`repro.sim.accounting`): ``stats`` attributes every channel cycle
to one stall bucket, ``trace`` streams the per-command event log; both
are documented in ``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.core.mechanisms import EruConfig
from repro.sim import config as cfgs
from repro.sim.experiments import (
    REFRESH_SWEEP_DENSITIES,
    ExperimentContext,
    ExperimentSettings,
    emit_stats_sidecars,
    fig12,
    fig13,
    fig14,
    fig15,
    fig16,
    fig_refresh,
)
from repro.workloads.mixes import MIX_NAMES

#: Shell-friendly names for the evaluated configurations.
CONFIG_FACTORIES = {
    "ddr4": cfgs.ddr4_baseline,
    "bg32": cfgs.bg32,
    "ideal32": cfgs.ideal32,
    "vsb": cfgs.vsb,
    "vsb-naive": lambda: cfgs.vsb(EruConfig.naive(4)),
    "paired-bank": cfgs.paired_bank,
    "half-dram": cfgs.half_dram,
    "masa4": lambda: cfgs.masa(4),
    "masa8": lambda: cfgs.masa(8),
    "masa8-eruca": lambda: cfgs.masa_eruca(8),
    "pcm-palp": cfgs.pcm_palp,
    "pcm-palp-vsb": lambda: cfgs.pcm_palp(EruConfig.full(4, ddb=False)),
    "gddr5": cfgs.gddr5,
}


def _settings(args) -> ExperimentSettings:
    mixes = tuple(args.mixes.split(",")) if args.mixes else MIX_NAMES
    for m in mixes:
        if m not in MIX_NAMES:
            raise SystemExit(f"unknown mix {m!r}")
    return ExperimentSettings(accesses_per_core=args.accesses,
                              fragmentation=args.fragmentation,
                              seed=args.seed, mixes=mixes)


def _context(args) -> ExperimentContext:
    from repro.sim.parallel import default_workers
    jobs = getattr(args, "jobs", 1)
    if jobs <= 0:
        jobs = default_workers()
    observe = getattr(args, "emit_stats", None) is not None
    return ExperimentContext(_settings(args), jobs=jobs, observe=observe)


def _emit_sidecars(context: ExperimentContext, args,
                   prefix: str = "") -> None:
    """Write stall-attribution sidecars if ``--emit-stats`` was given."""
    directory = getattr(args, "emit_stats", None)
    if directory is None:
        return
    for path in emit_stats_sidecars(context, directory, prefix=prefix):
        print(f"wrote {path}")


def _cell_config(args):
    """The selected preset, with the refresh knobs applied if given."""
    import dataclasses
    factory = CONFIG_FACTORIES.get(args.config)
    if factory is None:
        raise SystemExit(f"unknown config {args.config!r}; see 'list'")
    config = factory()
    density = getattr(args, "refresh", None)
    if density is not None:
        policy = getattr(args, "refresh_policy", "baseline")
        try:
            config = dataclasses.replace(
                config, refresh_density=density, refresh_policy=policy,
                name=f"{config.name}+ref-{policy}-{density}")
        except ValueError as exc:
            # e.g. --refresh on a refresh-free technology (PCM), or a
            # density grade the backend does not ship.
            raise SystemExit(str(exc)) from None
    return config


def _observed_run(args, trace: bool = False, trace_limit=None):
    """Run one (config, mix) cell with the observability layer on."""
    from repro.sim.accounting import ObserveOptions
    from repro.sim.simulator import run_traces
    from repro.workloads.mixes import mix_traces
    config = _cell_config(args)
    traces = mix_traces(args.mix, args.accesses,
                        fragmentation=args.fragmentation, seed=args.seed)
    observe = ObserveOptions(trace=trace, trace_limit=trace_limit)
    return run_traces(config, traces, observe=observe)


def cmd_list(args) -> None:
    from repro.sim.specs import NAMED_SPECS
    print("configurations:")
    for name in CONFIG_FACTORIES:
        print(f"  {name:14s} -> {CONFIG_FACTORIES[name]().name}")
    print("mixes:", ", ".join(MIX_NAMES))
    print("experiments: fig4 fig11 fig12 fig13 fig14 fig15 fig16 "
          "figref")
    print("named specs (run/cells):", " ".join(sorted(NAMED_SPECS)))
    print("observability: stats trace profile "
          "(and --emit-stats on figures)")


def _progress_printer():
    """Per-cell progress lines for the spec runner."""
    def progress(cell, status):
        d = cell.describe()
        print(f"[{status:6s}] {d['kind']:5s} {d['workload']:10s} "
              f"frag={d['fragmentation']:.2f} seed={d['seed']} "
              f"{d['config']}", flush=True)
    return progress


def _run_spec_cmd(args) -> None:
    """``repro run <spec.json|named-fig>``: execute a declarative spec.

    Diffs the expanded grid against the result store and simulates only
    the missing cells; the final counter line (``cells=... submitted=...``)
    is stable for scripting -- the CI resume-smoke step asserts
    ``submitted=0`` on a second run.
    """
    from repro.sim.parallel import default_workers
    from repro.sim.runner import run_spec
    from repro.sim.specs import resolve_spec
    spec = resolve_spec(args.spec, _settings(args))
    jobs = args.jobs if args.jobs > 0 else default_workers()
    _, report = run_spec(spec, jobs=jobs,
                         progress=_progress_printer())
    print(f"spec {spec.name} digest {spec.digest()[:12]}")
    print(report.summary())


def cmd_cells(args) -> None:
    """``repro cells``: preview a spec's expansion and its store diff."""
    from repro.sim.specs import resolve_spec
    from repro.sim.store import ResultStore
    spec = resolve_spec(args.spec, _settings(args))
    store = ResultStore()
    cached = 0
    for cell in spec.expand():
        hit = store.contains(cell.store_key())
        cached += hit
        d = cell.describe()
        print(f"[{'cached' if hit else 'missing'}] {d['kind']:5s} "
              f"{d['workload']:10s} frag={d['fragmentation']:.2f} "
              f"seed={d['seed']} {d['config']}")
    total = len(spec.expand())
    print(f"spec {spec.name} digest {spec.digest()[:12]}: "
          f"{total} cells, {cached} cached, {total - cached} missing")


def cmd_gc(args) -> None:
    """``repro gc``: prune old / excess result-store entries."""
    from repro.sim.store import ResultStore
    store = ResultStore()
    report = store.gc(max_age_days=args.max_age_days,
                      max_entries=args.max_entries)
    print(f"store {store.root}: scanned {report.scanned}, "
          f"removed {report.removed} ({report.freed_bytes} bytes), "
          f"kept {report.kept}")


def cmd_run(args) -> None:
    if getattr(args, "spec", None):
        return _run_spec_cmd(args)
    from repro.sim.simulator import run_traces
    from repro.workloads.mixes import mix_traces
    config = _cell_config(args)
    traces = mix_traces(args.mix, args.accesses,
                        fragmentation=args.fragmentation, seed=args.seed)
    result = run_traces(config, traces)
    print(f"config: {config.name}")
    print(f"IPC per core: "
          + " ".join(f"{ipc:.3f}" for ipc in result.ipcs))
    print(f"transactions: {result.transactions}, "
          f"commands: {result.stats.commands_issued}")
    hit = 1 - result.stats.acts / max(1, result.stats.columns)
    print(f"row-hit rate: {hit:.1%}, EWLR hits: {result.ewlr_hit_rate:.1%}")
    print(f"plane-conflict precharges: "
          f"{result.plane_conflict_precharge_fraction:.1%}")
    print(f"elapsed: {result.elapsed_ps / 1e6:.1f} us simulated")


def cmd_stats(args) -> None:
    """``repro stats``: full stall attribution for one (config, mix)."""
    from repro.sim.parallel import trace_memo_stats
    from repro.sim.store import store_counter_stats
    result = _observed_run(args)
    report = result.accounting
    report.verify()
    print(report.format_table(per_bank=args.per_bank))
    memo = trace_memo_stats()
    print(f"route cache: {result.route_cache_size} entries, "
          f"{result.route_cache_clears} oldest-half evictions; "
          f"trace memo: {memo['size']} entries, "
          f"{memo['evictions']} oldest-half evictions")
    sc = store_counter_stats()
    print(f"result store: {sc['hits']} hits, {sc['misses']} misses, "
          f"{sc['puts']} puts, {sc['evictions']} evictions")
    if result.rounds:
        from repro.sim.shards import lookahead_memo_stats
        la = lookahead_memo_stats()
        print(f"sharded loop: {result.rounds} sweeps, horizons "
              f"{result.horizons_reused} reused / "
              f"{result.horizons_recomputed} recomputed, "
              f"{result.stats.peek_reuses} peek reuses; lookahead "
              f"memo: {la['size']} entries, {la['hits']} hits, "
              f"{la['misses']} misses")
    if args.json:
        with open(args.json, "w") as fh:
            report.write_json(fh)
        print(f"wrote {args.json}")
    if args.csv:
        with open(args.csv, "w") as fh:
            fh.write("\n".join(
                ",".join(str(v) for v in row)
                for row in report.bucket_csv_rows()) + "\n")
        print(f"wrote {args.csv}")


def cmd_trace(args) -> None:
    """``repro trace``: per-command event log for one (config, mix)."""
    result = _observed_run(args, trace=True, trace_limit=args.limit)
    sink = result.trace
    out = open(args.output, "w") if args.output else sys.stdout
    try:
        if args.format == "csv":
            sink.write_csv(out)
        else:
            sink.write_jsonl(out)
    finally:
        if args.output:
            out.close()
            print(f"wrote {len(sink)} events to {args.output}"
                  + (f" ({sink.dropped} dropped past --limit)"
                     if sink.dropped else ""))
    if not args.output and sink.dropped:
        print(f"# {sink.dropped} events dropped past --limit",
              file=sys.stderr)


def cmd_profile(args) -> None:
    """``repro profile``: cProfile one (config, mix) cell."""
    from repro.sim.profiling import profile_run
    incremental = {"incremental": True, "reference": False,
                   "config": None}[args.path]
    report = profile_run(_cell_config(args), args.mix,
                         accesses=args.accesses,
                         fragmentation=args.fragmentation,
                         seed=args.seed, incremental=incremental,
                         shards=getattr(args, "shards", None))
    print(report.format_table(limit=args.limit, sort=args.sort), end="")
    if args.output:
        report.dump(args.output)
        print(f"wrote {args.output}")


def cmd_fig4(args) -> None:
    from repro.analysis.plane_conflict import (
        FIG4_PLANE_COUNTS, analyze_plane_conflicts)
    from repro.controller.mapping import skylake_mapping
    from repro.workloads.generator import generate_traces
    from repro.workloads.profiles import PROFILES
    names = ("mcf", "lbm", "gemsFDTD", "omnetpp")
    traces = generate_traces([PROFILES[n] for n in names],
                             args.accesses,
                             fragmentation=args.fragmentation,
                             seed=args.seed)
    results = analyze_plane_conflicts(traces,
                                      skylake_mapping(subbanked=True))
    total = sum(len(t) for t in traces)
    print(f"{'planes':>8s} {'conflict':>10s} {'no conflict':>12s}")
    for n in FIG4_PLANE_COUNTS:
        c = results[n]
        print(f"{n:8d} {c.conflict_fraction(total):10.1%} "
              f"{c.no_conflict_fraction(total):12.1%}")


def cmd_fig11(args) -> None:
    from repro.core.area import fig11_table
    for row in fig11_table():
        print(f"{row.scheme:28s} {row.planes:3d}P "
              f"{row.overhead_pct:7.3f}%")


def cmd_fig12(args) -> None:
    context = _context(args)
    table = fig12(context)
    norm = table.normalized()
    gmeans = table.gmeans()
    mixes = context.settings.mixes
    print(f"{'config':36s} " + " ".join(f"{m:>6s}" for m in mixes)
          + f" {'GMEAN':>7s}")
    for config, row in norm.items():
        cells = " ".join(f"{row[m]:6.3f}" for m in mixes)
        print(f"{config:36s} {cells} {gmeans[config]:7.3f}")
    _emit_sidecars(context, args, prefix="fig12__")


def cmd_fig13(args) -> None:
    context = _context(args)
    for p in fig13(context):
        print(f"{p.scheme:22s} {p.planes:2d}P frag={p.fragmentation:3.0%} "
              f"ws={p.normalized_ws:5.3f} "
              f"plane-pre={p.plane_precharge_fraction:5.1%} "
              f"ewlr={p.ewlr_hit_rate:5.1%}")
    _emit_sidecars(context, args, prefix="fig13__")


def cmd_fig14(args) -> None:
    context = _context(args)
    for p in fig14(context):
        print(f"{p.config:30s} {p.bus_frequency_hz / 1e9:4.2f}GHz "
              f"ws={p.normalized_ws:5.3f}")
    _emit_sidecars(context, args, prefix="fig14__")


def cmd_fig15(args) -> None:
    context = _context(args)
    for name, value in fig15(context).items():
        print(f"{name:36s} {value:6.3f}")
    _emit_sidecars(context, args, prefix="fig15__")


def cmd_fig16(args) -> None:
    context = _context(args)
    rows = fig16(context)
    base = rows[0]
    for row in rows:
        s = row.latency_stats_ns
        rel = row.relative_to(base)
        print(f"{row.config:26s} lat mean/med/q3 = "
              f"{s['mean']:6.1f}/{s['median']:6.1f}/{s['q3']:6.1f} ns"
              f"   energy bg/act/total = {rel['background']:.1%}/"
              f"{rel['activation']:.1%}/{rel['total']:.1%}")
    _emit_sidecars(context, args, prefix="fig16__")


def cmd_figref(args) -> None:
    """``repro figref``: refresh policy x density sweep (docs/REFRESH.md)."""
    context = _context(args)
    points = fig_refresh(context)
    policies = []
    for p in points:
        if p.policy not in policies:
            policies.append(p.policy)
    by_key = {(p.policy, p.density): p for p in points}
    print(f"{'policy':10s} " + " ".join(
        f"{d:>8s}" for d in REFRESH_SWEEP_DENSITIES))
    for policy in policies:
        print(f"{policy:10s} " + "    ".join(
            f"{by_key[(policy, d)].normalized_ws:5.3f}"
            for d in REFRESH_SWEEP_DENSITIES))
    _emit_sidecars(context, args, prefix="figref__")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p):
        p.add_argument("--accesses", type=int, default=1500,
                       help="memory accesses per core (default 1500)")
        p.add_argument("--fragmentation", type=float, default=0.1,
                       help="FMFI level in [0,1] (default 0.1)")
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("--jobs", type=int, default=1,
                       help="worker processes for the experiment grid "
                            "(default 1 = serial; 0 = all cores)")
        p.add_argument("--shards", choices=("off", "serial", "threads"),
                       default=None,
                       help="simulation backend: 'off' = classic global "
                            "event loop, 'serial' = channel-sharded "
                            "(default), 'threads' = one worker thread "
                            "per channel; all three are "
                            "digest-identical")
        return p

    sub.add_parser("list", help="configurations, mixes, experiments"
                   ).set_defaults(func=cmd_list)

    def cell(p):
        """--config/--mix selectors shared by run/stats/trace."""
        from repro.controller.scheduler import REFRESH_POLICIES
        from repro.dram.timing import REFRESH_DENSITY_GRADES_NS
        p.add_argument("--config", default="vsb",
                       choices=sorted(CONFIG_FACTORIES))
        p.add_argument("--mix", default="mix0", choices=MIX_NAMES)
        p.add_argument("--refresh", metavar="DENSITY", default=None,
                       choices=sorted(REFRESH_DENSITY_GRADES_NS),
                       help="enable DRAM refresh at this density grade "
                            "(e.g. 8Gb; default: refresh off, matching "
                            "the presets)")
        p.add_argument("--refresh-policy", default="baseline",
                       choices=REFRESH_POLICIES,
                       help="refresh scheduling policy when --refresh "
                            "is given (see docs/REFRESH.md)")
        return p

    run = cell(common(sub.add_parser(
        "run", help="one config on one mix, or a full experiment spec",
        description="With no positional argument: simulate one "
                    "(--config, --mix) cell and print its headline "
                    "numbers.  With SPEC (a named figure grid such as "
                    "fig12, or a path to a spec JSON file): expand the "
                    "spec, serve every cell already in the result "
                    "store, and simulate only the missing ones -- a "
                    "killed sweep resubmitted re-runs only what is "
                    "absent.  See docs/EXPERIMENTS_SERVICE.md.")))
    run.add_argument("spec", nargs="?", default=None,
                     help="named spec (see 'list') or spec JSON path; "
                          "omit for the single-cell --config/--mix "
                          "form")
    run.add_argument("--mixes", default=None,
                     help="comma-separated mix subset for named specs")
    run.set_defaults(func=cmd_run)

    cells = common(sub.add_parser(
        "cells", help="expand a spec and diff it against the store",
        description="Print one line per grid cell of SPEC with its "
                    "store status (cached/missing) -- a dry run of "
                    "'repro run SPEC'."))
    cells.add_argument("spec",
                       help="named spec (see 'list') or spec JSON path")
    cells.add_argument("--mixes", default=None,
                       help="comma-separated mix subset for named "
                            "specs")
    cells.set_defaults(func=cmd_cells)

    gc = sub.add_parser(
        "gc", help="prune the on-disk result store",
        description="Remove unreadable entries and entries from other "
                    "cache versions; optionally also drop entries by "
                    "age or cap the store at a size.")
    gc.add_argument("--max-age-days", type=float, default=None,
                    help="also remove entries older than this")
    gc.add_argument("--max-entries", type=int, default=None,
                    help="keep only the newest N entries")
    gc.set_defaults(func=cmd_gc)

    stats = cell(common(sub.add_parser(
        "stats", help="stall attribution for one config on one mix",
        description="Run one (config, mix) cell with cycle accounting "
                    "and print the stall-attribution table: every "
                    "channel cycle filed under exactly one bucket "
                    "(the buckets sum to the wall time).  See "
                    "docs/OBSERVABILITY.md for bucket meanings.")))
    stats.add_argument("--per-bank", action="store_true",
                       help="append the per-(sub-)bank breakdown")
    stats.add_argument("--json", metavar="FILE",
                       help="also write the report as JSON")
    stats.add_argument("--csv", metavar="FILE",
                       help="also write per-channel buckets as CSV")
    stats.set_defaults(func=cmd_stats)

    trace = cell(common(sub.add_parser(
        "trace", help="per-command event trace for one config on one mix",
        description="Run one (config, mix) cell with event tracing and "
                    "stream one record per DRAM command (issue time, "
                    "bank/sub-bank, kind, stall bucket, wait).  See "
                    "docs/OBSERVABILITY.md for the schema.")))
    trace.add_argument("--limit", type=int, default=None,
                       help="keep at most N events (excess is counted, "
                            "not stored)")
    trace.add_argument("--format", choices=("jsonl", "csv"),
                       default="jsonl")
    trace.add_argument("--output", metavar="FILE",
                       help="write to FILE instead of stdout")
    trace.set_defaults(func=cmd_trace)

    profile = cell(common(sub.add_parser(
        "profile", help="cProfile one config on one mix",
        description="Run one (config, mix) cell under cProfile and "
                    "print scheduler-effort counters (peeks/command, "
                    "candidates examined/peek), the behaviour digest, "
                    "and the hottest functions.  --output dumps the "
                    "binary pstats file for snakeviz/gprof2dot.")))
    profile.add_argument("--path",
                         choices=("config", "incremental", "reference"),
                         default="config",
                         help="scheduler selection path to profile "
                              "(default: whatever the config says)")
    profile.add_argument("--sort", default="cumulative",
                         help="pstats sort key (default cumulative)")
    profile.add_argument("--limit", type=int, default=25,
                         help="pstats rows to print (default 25)")
    profile.add_argument("--output", metavar="FILE",
                         help="dump binary pstats to FILE")
    profile.set_defaults(func=cmd_profile)

    for name, func, needs_mixes in (
            ("fig4", cmd_fig4, False), ("fig11", cmd_fig11, False),
            ("fig12", cmd_fig12, True), ("fig13", cmd_fig13, True),
            ("fig14", cmd_fig14, True), ("fig15", cmd_fig15, True),
            ("fig16", cmd_fig16, True), ("figref", cmd_figref, True)):
        p = sub.add_parser(name, help=f"regenerate {name}")
        if name != "fig11":
            common(p)
        if needs_mixes:
            p.add_argument("--mixes", default="mix0,mix3,mix6",
                           help="comma-separated mix subset")
            p.add_argument("--emit-stats", metavar="DIR", default=None,
                           help="run observed and write one stall-"
                                "attribution JSON sidecar per "
                                "(config, mix) cell into DIR")
        p.set_defaults(func=func)
    return parser


def main(argv: Optional[List[str]] = None) -> None:
    args = build_parser().parse_args(argv)
    shards = getattr(args, "shards", None)
    if shards is not None:
        # Set the module default so every simulation this invocation
        # triggers -- including grid workers forked later -- inherits
        # the chosen backend.
        from repro.sim import shards as shards_mod
        shards_mod.SHARDS_DEFAULT = shards
    args.func(args)


if __name__ == "__main__":  # pragma: no cover
    main()
