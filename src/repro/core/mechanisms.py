"""ERUCA mechanism configuration.

:class:`EruConfig` says which of the paper's mechanisms are active on a
sub-banked organisation:

* ``planes`` -- number of shared row-address latch sets per bank (VSB).
* ``ewlr`` -- per-sub-bank LWL_SEL latches (EWLR, Section IV).
* ``rap`` -- per-sub-bank plane-ID permutation (RAP, Section IV).
* ``ddb`` -- dual data bus (Section V).

The named constructors match the configurations evaluated in Figs. 12-15.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.controller.mapping import PlanePlacement, RowLayout


@dataclass(frozen=True)
class EruConfig:
    """Which ERUCA mechanisms are enabled, and the plane geometry."""

    planes: int = 4
    ewlr: bool = True
    rap: bool = True
    ddb: bool = True
    ewlr_bits: int = 3
    row_bits: int = 16

    def __post_init__(self) -> None:
        if self.planes < 1 or self.planes & (self.planes - 1):
            raise ValueError("planes must be a power of two >= 1")

    @property
    def name(self) -> str:
        """The paper's label for this combination, e.g.
        ``VSB(EWLR+RAP,4P)+DDB`` (the Fig. 12 legend)."""
        if not (self.ewlr or self.rap or self.ddb):
            return f"VSB(naive,{self.planes}P)"
        parts = []
        if self.ewlr:
            parts.append("EWLR")
        if self.rap:
            parts.append("RAP")
        label = "+".join(parts) if parts else "naive"
        suffix = "+DDB" if self.ddb else ""
        return f"VSB({label},{self.planes}P){suffix}"

    def row_layout(self) -> RowLayout:
        """The row-address field layout this configuration implies.

        Fig. 9: with RAP the plane ID comes from the row MSBs (and RAP
        inverts them on one sub-bank); with EWLR alone the plane ID comes
        from the row LSBs so that spatially-adjacent rows land in
        different planes.  Naive VSB planes are contiguous row regions
        (row MSBs), as drawn in Fig. 3a/3b.
        """
        placement = (PlanePlacement.LSB
                     if self.ewlr and not self.rap else PlanePlacement.MSB)
        return RowLayout(
            row_bits=self.row_bits,
            plane_count=self.planes,
            plane_placement=placement,
            ewlr_bits=self.ewlr_bits if self.ewlr else 0,
        )

    # -- the paper's named configurations ------------------------------

    @classmethod
    def naive(cls, planes: int = 4) -> "EruConfig":
        """VSB with no conflict avoidance and no DDB (Fig. 12 leftmost)."""
        return cls(planes=planes, ewlr=False, rap=False, ddb=False)

    @classmethod
    def naive_ddb(cls, planes: int = 4) -> "EruConfig":
        """Naive VSB plus the dual data bus -- isolates DDB's
        contribution from conflict avoidance (Fig. 12/13)."""
        return cls(planes=planes, ewlr=False, rap=False, ddb=True)

    @classmethod
    def ewlr_only(cls, planes: int = 4, ddb: bool = True) -> "EruConfig":
        """EWLR without RAP: conflict avoidance by shared main
        wordlines alone (a Fig. 13 ablation arm)."""
        return cls(planes=planes, ewlr=True, rap=False, ddb=ddb)

    @classmethod
    def rap_only(cls, planes: int = 4, ddb: bool = True) -> "EruConfig":
        """RAP without EWLR: conflict avoidance by plane permutation
        alone (a Fig. 13 ablation arm)."""
        return cls(planes=planes, ewlr=False, rap=True, ddb=ddb)

    @classmethod
    def full(cls, planes: int = 4, ddb: bool = True) -> "EruConfig":
        """EWLR + RAP (+ DDB): the headline ERUCA configuration."""
        return cls(planes=planes, ewlr=True, rap=True, ddb=ddb)
