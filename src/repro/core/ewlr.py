"""EWLR: effective wordline range (paper Section IV).

EWLR duplicates only the LWL_SEL row-address latch bits per sub-bank, so
both sub-banks can hold different rows in the *same* plane as long as the
rows share their main-wordline (MWL) address -- i.e. they differ only in
the local-wordline-select field.  An *EWLR hit*:

* removes the plane conflict (no inter-sub-bank row-buffer thrashing);
* skips re-driving the already-raised MWL, saving 18% of the Vpp
  charge-pump energy of the activation;
* enables the *partial precharge* command, which closes one sub-bank
  without dropping the shared MWL.

This module provides the standalone address predicates; the timing
simulator applies them through
:meth:`repro.controller.mapping.RowLayout.mwl_tag`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.controller.mapping import RowLayout

#: DDR4 has 8 local wordlines per main wordline (3 LWL_SEL bits).
DEFAULT_EWLR_BITS = 3

#: Fraction of an activation's Vpp energy an EWLR hit saves (Section IV,
#: from the Rambus power model for a 55 nm 2 Gb DDR3 device).
VPP_SAVING_FRACTION = 0.18


@dataclass(frozen=True)
class EwlrRange:
    """The EWLR an open row belongs to: its plane and MWL tag."""

    plane: int
    mwl_tag: int


def ewlr_range(layout: RowLayout, row: int, subbank: int,
               rap: bool) -> EwlrRange:
    """The (plane, MWL tag) range activating this row would occupy.

    Two rows in paired sub-banks can coexist exactly when their ranges
    are equal (Section IV: same raised main wordline, per-sub-bank
    LWL_SEL latches select different local wordlines under it).
    """
    return EwlrRange(plane=layout.plane_id(row, subbank, rap),
                     mwl_tag=layout.mwl_tag(row))


def is_ewlr_hit(layout: RowLayout, open_row: int, open_subbank: int,
                target_row: int, target_subbank: int,
                rap: bool = False) -> bool:
    """Would activating ``target_row`` hit the open row's EWLR?

    True when both rows select the same plane latch set and share their
    MWL tag, so the target activation reuses the raised main wordline.
    """
    if open_subbank == target_subbank:
        return False  # EWLR is an *inter*-sub-bank mechanism
    a = ewlr_range(layout, open_row, open_subbank, rap)
    b = ewlr_range(layout, target_row, target_subbank, rap)
    return a == b


def rows_per_ewlr(layout: RowLayout) -> int:
    """How many rows one EWLR covers (the LWL_SEL fan-out)."""
    return 1 << layout.ewlr_bits
