"""RAP: row address permutation (paper Section IV).

RAP gives each sub-bank a different plane-ID mapping so that the rows the
two sub-banks tend to hold concurrently -- which share high-order address
bits thanks to OS huge-page allocation -- land in *different* plane latch
sets.  The permutation is a bit-wise inversion of the plane-ID field on
the right sub-bank: two rows with equal plane fields can then never
conflict, and two rows conflict only when their plane fields are exact
complements.

RAP is a pure controller-side hash (no DRAM change, two extra gate delays
for the multiplex by sub-bank ID).  The timing simulator applies it
through :meth:`repro.controller.mapping.RowLayout.plane_id`; this module
provides the standalone permutation plus the analytical conflict
probabilities used by tests and the ablation benches.
"""

from __future__ import annotations


def permute_plane(plane: int, subbank: int, plane_count: int) -> int:
    """RAP's per-sub-bank plane permutation (identity on sub-bank 0)."""
    if plane_count < 1 or plane_count & (plane_count - 1):
        raise ValueError("plane_count must be a power of two")
    if not 0 <= plane < plane_count:
        raise ValueError(f"plane {plane} out of range")
    if subbank not in (0, 1):
        raise ValueError("subbank must be 0 or 1")
    if subbank == 1 and plane_count > 1:
        return plane ^ (plane_count - 1)
    return plane


def conflicts(plane_left: int, plane_right: int, plane_count: int,
              rap: bool) -> bool:
    """Do rows with these plane fields conflict across sub-banks?"""
    left = permute_plane(plane_left, 0, plane_count) if rap else plane_left
    right = (permute_plane(plane_right, 1, plane_count)
             if rap else plane_right)
    return left == right


def conflict_probability_random(plane_count: int) -> float:
    """P(plane conflict) for independently uniform plane fields.

    RAP is a bijection, so for *uniform* random plane fields the conflict
    probability is 1/n with or without RAP -- RAP only helps when plane
    fields are correlated (the realistic, huge-page-backed case).  This
    is the "RAP has only two candidates to remap" effect the paper notes
    for small plane counts.
    """
    return 1.0 / plane_count


def conflict_probability_equal_fields(rap: bool) -> float:
    """P(conflict) when both sub-banks see the *same* plane field --
    the huge-page locality case RAP is designed for."""
    return 0.0 if rap else 1.0
