"""The paper's mechanisms as pure, untimed decision logic.

Everything ERUCA adds to a DRAM chip lives here, independent of any
simulator state: the VSB sub-bank plane-latch activation rules
(:mod:`repro.core.subbank`, Section IV / Fig. 5), the EWLR shared-main-
wordline predicates (:mod:`repro.core.ewlr`, Section IV-C), the RAP
plane permutation (:mod:`repro.core.rap`, Section IV-D), the mechanism-
selection dataclass (:mod:`repro.core.mechanisms`), and the Fig. 11
analytic die-area model (:mod:`repro.core.area`).  The timed models in
:mod:`repro.dram` consult these rules but never duplicate them.
"""
