"""The VSB sub-bank plane-latch activation rules (paper Section IV, Fig. 5).

A sub-banked bank holds up to two active rows, one per sub-bank.  The two
sub-banks share ``n`` plane latch sets; whether a new activation is legal
depends on what the *other* sub-bank currently holds:

* different plane -> independent activation, no interaction;
* same plane, naive VSB -> legal only if the rows are *identical* (the
  shared latch can hold one row address), otherwise a **plane conflict**:
  the other sub-bank must be precharged first;
* same plane with EWLR -> legal whenever the MWL tags match (rows differ
  only in their LWL_SEL bits): an **EWLR hit**, which also skips the MWL
  charge-pump energy;
* RAP changes which plane a row lands in per sub-bank (handled by
  :meth:`repro.controller.mapping.RowLayout.plane_id`), it does not change
  the rules here.

This module is pure decision logic with no timing; the timed bank FSM in
:mod:`repro.dram.bank` consults it.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from repro.controller.mapping import RowLayout


class ActivationVerdict(enum.Enum):
    """Outcome of asking "may sub-bank ``s`` activate row ``r`` now?"."""

    #: Target row already active in the target sub-bank.
    ROW_HIT = "row_hit"
    #: Target sub-bank idle, no plane interaction: plain ACT.
    ACT_OK = "act_ok"
    #: Target sub-bank idle; the paired sub-bank holds a row in the same
    #: plane with a matching MWL tag: ACT allowed, Vpp energy saved.
    EWLR_HIT = "ewlr_hit"
    #: Target sub-bank holds a different row: precharge *own* sub-bank.
    OWN_ROW_CONFLICT = "own_row_conflict"
    #: Paired sub-bank holds a conflicting row in the same plane:
    #: precharge the *other* sub-bank (inter-sub-bank row thrashing).
    PLANE_CONFLICT = "plane_conflict"


@dataclass
class SubbankPairState:
    """Active-row bookkeeping for one physical bank's two sub-banks.

    ``active`` maps sub-bank index (0 = left, 1 = right) to its open row,
    or ``None``.  The plane latches themselves need no separate state: a
    plane latch is "held" exactly when some sub-bank has an active row
    mapping to it, so conflicts are derivable from ``active`` alone.
    """

    layout: RowLayout
    ewlr_enabled: bool
    rap_enabled: bool

    def __post_init__(self) -> None:
        self.active: list = [None, None]

    def plane_of(self, row: int, subbank: int) -> int:
        """The plane latch set this row selects in this sub-bank.

        With RAP enabled the selection is permuted per sub-bank
        (Section IV-D), which is exactly what de-aliases same-plane
        collisions between the two sub-banks.
        """
        return self.layout.plane_id(row, subbank, self.rap_enabled)

    def open_row(self, subbank: int) -> Optional[int]:
        """The sub-bank's active row, or ``None`` when precharged."""
        return self.active[subbank]

    def classify(self, subbank: int, row: int) -> ActivationVerdict:
        """Apply the Fig. 5 operation flow to one target (subbank, row)."""
        own = self.active[subbank]
        if own == row:
            return ActivationVerdict.ROW_HIT
        if own is not None:
            return ActivationVerdict.OWN_ROW_CONFLICT
        other = self.active[1 - subbank]
        if other is None:
            return ActivationVerdict.ACT_OK
        own_plane = self.plane_of(row, subbank)
        other_plane = self.plane_of(other, 1 - subbank)
        if own_plane != other_plane:
            return ActivationVerdict.ACT_OK
        if self.ewlr_enabled:
            if self.layout.mwl_tag(other) == self.layout.mwl_tag(row):
                return ActivationVerdict.EWLR_HIT
            return ActivationVerdict.PLANE_CONFLICT
        # Naive VSB: the shared latch set holds one full row address, so
        # the sub-banks may only share a plane when the rows are identical.
        if other == row:
            return ActivationVerdict.ACT_OK
        return ActivationVerdict.PLANE_CONFLICT

    def activate(self, subbank: int, row: int) -> None:
        """Open ``row`` in ``subbank``; must be legal per Fig. 5.

        Raises ``ValueError`` on a conflicting activation -- the
        scheduler is expected to have issued the precharge the
        :meth:`classify` verdict called for first.
        """
        verdict = self.classify(subbank, row)
        if verdict not in (ActivationVerdict.ACT_OK,
                           ActivationVerdict.EWLR_HIT):
            raise ValueError(
                f"illegal activation of sb{subbank} row {row:#x}: {verdict}")
        self.active[subbank] = row

    def precharge(self, subbank: int) -> None:
        """Close the sub-bank's open row, releasing its plane latch."""
        if self.active[subbank] is None:
            raise ValueError(f"sub-bank {subbank} has no open row")
        self.active[subbank] = None

    def partial_precharge_possible(self, subbank: int) -> bool:
        """Whether closing ``subbank`` may keep the shared MWL raised.

        True exactly when both sub-banks sit in the same plane and EWLR
        (same MWL tag), i.e. the paired sub-bank still needs that MWL
        (paper Section VI-A, "Partial precharge").
        """
        own = self.active[subbank]
        other = self.active[1 - subbank]
        if own is None or other is None or not self.ewlr_enabled:
            return False
        return (self.plane_of(own, subbank)
                == self.plane_of(other, 1 - subbank)
                and self.layout.mwl_tag(own) == self.layout.mwl_tag(other))
