"""DRAM die-area overhead model (paper Section VI-C, Fig. 11).

The model composes the paper's published component figures for an 8 Gb x4
DDR4 die in 32 nm (die size from CACTI-3DD, logic blocks from Synopsys
SAED-32 synthesis):

* die: 8.98 mm x 13.47 mm = 120.992 mm^2;
* row-address latch sets: 203 um^2 for a 40-bit set (plain VSB), 244 um^2
  for a 48-bit set (with the doubled LWL_SEL bits of EWLR); one set per
  plane per bank, the per-set bit count shrinking slightly as planes get
  smaller (3:8 pre-decoding);
* latch-select wires: 1 um pitch, one wire per plane-doubling, replicated
  across the 8 row decoders of the die, running the die's bitline
  direction (an effective routed length calibrated to the published 0.06%
  per-doubling total); EWLR adds two sub-bank select wires;
* DDB: 64 pass-transistor switches + control = 191 um^2 per sub-bank,
  674 um^2 of MUX/DEMUX, and four bus-select wires that grow the die by
  4 um -- 0.05% total, ~85% of it wires.

Prior-work overheads quoted for Fig. 11/Fig. 15 comparisons (Half-DRAM,
MASA) are the numbers the paper cites from [4], [14], [2]; the
paired-bank *saving* (-1.1%) comes from removing half the row decoders at
an assumed 25% decoder-width reduction.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.mechanisms import EruConfig

#: CACTI-3DD die estimate for 8 Gb x4 DDR4 in 32 nm.
DIE_WIDTH_MM = 8.98
DIE_HEIGHT_MM = 13.47
DIE_AREA_MM2 = 120.992

BANKS_PER_CHIP = 16
ROW_DECODERS_PER_CHIP = 8
SUBBANKS_PER_CHIP = 2 * BANKS_PER_CHIP

#: Synthesised latch-set areas (um^2) at the 2-plane baseline widths.
LATCH_SET_40B_UM2 = 203.0
LATCH_SET_48B_UM2 = 244.0
LATCH_BITS_PLAIN = 40
LATCH_BITS_EWLR = 48

#: Latch-select wiring: 1 um pitch, 8 decoders; the effective routed
#: length is calibrated so one plane-doubling costs the published 0.06%
#: of the die.
LATCH_WIRE_PITCH_UM = 1.0
LATCH_WIRE_EFFECTIVE_MM = 8.2

#: EWLR wiring: one LWL_SEL-latch select wire per row decoder plus the
#: two chip-global left/right sub-bank selection signals -- together the
#: published "+0.06%" EWLR increment.
EWLR_GLOBAL_WIRES = 2

#: DDB components.
DDB_SWITCHES_UM2_PER_SUBBANK = 191.0
DDB_MUX_DEMUX_UM2 = 674.0
DDB_BUS_WIRES = 4
DDB_WIRE_GROWTH_UM = 1.0  # per wire, across the die height

#: Prior-work overheads the paper quotes (percent of die area).
HALF_DRAM_OVERHEAD_PCT = 1.46
MASA_OVERHEAD_PCT = {4: 3.03, 8: 4.76}
#: Paired-bank removes half the row decoders (25% decoder-width saving).
PAIRED_BANK_SAVING_PCT = -1.1


def _pct(area_um2: float) -> float:
    """um^2 -> percent of the die."""
    return area_um2 / (DIE_AREA_MM2 * 1e6) * 100.0


def latch_bits(planes: int, ewlr: bool) -> int:
    """Bits per latch set: slightly fewer as planes shrink the row range."""
    base = LATCH_BITS_EWLR if ewlr else LATCH_BITS_PLAIN
    doublings = max(0, int(math.log2(planes)) - 1)
    return base - doublings


def latch_set_area_um2(planes: int, ewlr: bool) -> float:
    """Die area of one plane latch set, scaled from the paper's
    synthesised 40b (plain) / 48b (EWLR) latch figures."""
    per_bit = (LATCH_SET_48B_UM2 / LATCH_BITS_EWLR if ewlr
               else LATCH_SET_40B_UM2 / LATCH_BITS_PLAIN)
    return per_bit * latch_bits(planes, ewlr)


def vsb_latch_overhead_pct(planes: int, ewlr: bool) -> float:
    """Latch sets: one per plane per bank across the chip."""
    sets = BANKS_PER_CHIP * planes
    return _pct(sets * latch_set_area_um2(planes, ewlr))


def latch_select_wire_overhead_pct(planes: int, ewlr: bool) -> float:
    """Plane-select wiring across the 8 row decoders.

    One wire per plane-doubling per decoder, 1 um pitch, running an
    effective ``LATCH_WIRE_EFFECTIVE_MM`` of bitline-direction routing;
    EWLR adds the two LWL_SEL-latch select wires.
    """
    doublings = int(math.log2(planes)) if planes > 1 else 0
    wires = doublings * ROW_DECODERS_PER_CHIP
    if ewlr:
        wires += ROW_DECODERS_PER_CHIP + EWLR_GLOBAL_WIRES
    return _pct(wires * LATCH_WIRE_PITCH_UM * LATCH_WIRE_EFFECTIVE_MM
                * 1e3)


def ddb_overhead_pct() -> float:
    """Dual data bus: switches + MUX/DEMUX + four bus-select wires."""
    switches = DDB_SWITCHES_UM2_PER_SUBBANK * SUBBANKS_PER_CHIP
    mux = DDB_MUX_DEMUX_UM2
    wires = (DDB_BUS_WIRES * DDB_WIRE_GROWTH_UM
             * DIE_HEIGHT_MM * 1e3)
    return _pct(switches + mux + wires)


def eruca_overhead_pct(config: EruConfig) -> float:
    """Total die overhead of a VSB-based ERUCA configuration (Fig. 11)."""
    total = vsb_latch_overhead_pct(config.planes, config.ewlr)
    total += latch_select_wire_overhead_pct(config.planes, config.ewlr)
    if config.ddb:
        total += ddb_overhead_pct()
    return total


def paired_bank_overhead_pct(config: EruConfig) -> float:
    """Paired-bank ERUCA: same mechanisms, minus half the row decoders."""
    return eruca_overhead_pct(config) + PAIRED_BANK_SAVING_PCT


@dataclass(frozen=True)
class AreaReport:
    """One row of the Fig. 11 comparison."""

    scheme: str
    planes: int
    overhead_pct: float


def fig11_table(plane_counts=(2, 4, 8, 16)) -> list:
    """All four ERUCA series of Fig. 11 plus the prior-work points."""
    rows = []
    series = (
        ("RAP", dict(ewlr=False, ddb=False)),
        ("EWLR+RAP", dict(ewlr=True, ddb=False)),
        ("DDB+RAP", dict(ewlr=False, ddb=True)),
        ("DDB+EWLR+RAP", dict(ewlr=True, ddb=True)),
    )
    for label, kw in series:
        for planes in plane_counts:
            cfg = EruConfig(planes=planes, rap=True, **kw)
            rows.append(AreaReport(label, planes, eruca_overhead_pct(cfg)))
    rows.append(AreaReport("Half-DRAM", 1, HALF_DRAM_OVERHEAD_PCT))
    for groups, pct in MASA_OVERHEAD_PCT.items():
        rows.append(AreaReport(f"MASA{groups}", groups, pct))
    rows.append(AreaReport(
        "Paired-bank(DDB+EWLR+RAP)", 4,
        paired_bank_overhead_pct(EruConfig.full(4))))
    return rows
