"""Memory transactions and DRAM coordinates.

A :class:`Transaction` is one cache-line read or write as seen by the memory
controller; :class:`DramCoordinates` is the fully decoded DRAM location the
address mapping produced for it.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional


class TransactionKind(enum.Enum):
    READ = "read"
    WRITE = "write"


@dataclass(frozen=True)
class DramCoordinates:
    """A decoded DRAM location.

    ``bank`` is the bank index *within* its bank group; ``global_bank``
    flattens (group, bank).  ``subbank`` is 0 for full-bank organisations
    and 0/1 (left/right) for sub-banked ones.  ``column`` indexes cache
    lines within the (sub-)bank row.
    """

    channel: int
    rank: int
    bank_group: int
    bank: int
    subbank: int
    row: int
    column: int

    def global_bank(self, banks_per_group: int) -> int:
        return self.bank_group * banks_per_group + self.bank

    def bank_key(self, banks_per_group: int) -> tuple:
        """Hashable identity of the physical bank this maps to."""
        return (self.channel, self.rank,
                self.global_bank(banks_per_group))


@dataclass
class Transaction:
    """One cache-line memory request flowing through the controller."""

    kind: TransactionKind
    address: int
    coords: DramCoordinates
    #: Core that issued the request (index into the mix), -1 for synthetic.
    core: int = -1
    #: Position in the core's instruction stream (for ROB accounting).
    instruction: int = 0
    #: Time the request entered the controller queue (ps).
    arrival_time: int = -1
    #: Time the column command's data burst completed (ps); -1 if pending.
    completion_time: int = -1
    #: Scheduler caches (filled in by the controller on enqueue): the
    #: flattened bank index, target row slot, and the row's plane / MWL
    #: tag under the run's layout.  -1 / None mean "not computed yet".
    bank_index: int = -1
    slot: Optional[tuple] = None
    plane: Optional[int] = None
    mwl: Optional[int] = None
    #: Enqueue sequence number within the channel, assigned by the
    #: scheduler; the deterministic last-resort tie-break in FR-FCFS
    #: candidate selection.
    seq: int = -1

    @property
    def is_read(self) -> bool:
        return self.kind is TransactionKind.READ

    @property
    def queueing_latency(self) -> int:
        """Arrival to completion, the paper's Fig. 16a metric."""
        if self.completion_time < 0 or self.arrival_time < 0:
            raise ValueError("transaction has not completed")
        return self.completion_time - self.arrival_time
