"""The per-channel memory controller: queues + scheduler + statistics.

The controller exposes a two-phase interface so a multi-channel simulator
can interleave command issue in global time order: :meth:`peek` proposes
the next command and its issue time without side effects, :meth:`commit`
applies it.  Completed transactions are returned so the CPU model can be
notified of read completions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.controller.queue import QueueConfig, TransactionQueues
from repro.controller.scheduler import Candidate, Scheduler
from repro.controller.transaction import Transaction
from repro.dram.commands import CommandKind
from repro.dram.device import Channel


@dataclass
class ControllerStats:
    """Per-channel statistics the experiments aggregate."""

    commands_issued: int = 0
    acts: int = 0
    ewlr_hits: int = 0
    columns: int = 0
    precharges: int = 0
    #: Read queueing latencies (arrival -> data end), ps. Fig. 16a.
    read_latencies: List[int] = field(default_factory=list)
    #: Perf counters: scheduler peeks and candidate proposals built.
    #: peeks/candidates_built stay flat while commands_issued grows when
    #: the incremental candidate cache is doing its job.
    peeks: int = 0
    candidates_built: int = 0

    def merge(self, other: "ControllerStats") -> None:
        self.commands_issued += other.commands_issued
        self.acts += other.acts
        self.ewlr_hits += other.ewlr_hits
        self.columns += other.columns
        self.precharges += other.precharges
        self.read_latencies.extend(other.read_latencies)
        self.peeks += other.peeks
        self.candidates_built += other.candidates_built


class ChannelController:
    """Drives one :class:`~repro.dram.device.Channel`."""

    def __init__(self, channel: Channel,
                 queue_config: QueueConfig = QueueConfig(),
                 idle_close_ps=None) -> None:
        self.channel = channel
        self.queues = TransactionQueues(queue_config)
        self.scheduler = Scheduler(channel, self.queues, idle_close_ps)
        self.stats = ControllerStats()

    # -- admission ---------------------------------------------------------

    def has_room(self, is_read: bool) -> bool:
        return self.queues.has_room(is_read)

    def enqueue(self, txn: Transaction, time: int) -> None:
        self.queues.enqueue(txn, time)
        self.scheduler.note_enqueue(txn)

    def pending(self) -> bool:
        return self.queues.pending()

    # -- scheduling ----------------------------------------------------------

    def peek(self, now: int) -> Optional[Candidate]:
        """The command this channel would issue next, or None if idle."""
        cand = self.scheduler.best(now)
        self.stats.peeks = self.scheduler.peeks
        self.stats.candidates_built = self.scheduler.candidates_built
        return cand

    def commit(self, candidate: Candidate) -> List[Transaction]:
        """Issue the candidate; returns transactions completed by it."""
        txn = candidate.txn
        time = candidate.issue_time
        self.stats.commands_issued += 1
        if candidate.kind is CommandKind.PRE:
            bank_index, slot = candidate.victim
            self.channel.issue_precharge(bank_index, slot, time,
                                         candidate.cause)
            self.scheduler.note_bank_change(bank_index)
            self.stats.precharges += 1
            return []
        c = txn.coords
        if candidate.kind is CommandKind.ACT:
            ewlr_hit = self.channel.issue_act(c, time)
            self.scheduler.note_bank_change(txn.bank_index)
            self.stats.acts += 1
            if ewlr_hit:
                self.stats.ewlr_hits += 1
            return []
        is_write = candidate.kind is CommandKind.WR
        data_end = self.channel.issue_column(c, time, is_write)
        txn.completion_time = data_end
        self.queues.remove(txn)
        self.scheduler.note_remove(txn)
        self.stats.columns += 1
        if txn.is_read:
            self.stats.read_latencies.append(txn.queueing_latency)
        return [txn]
