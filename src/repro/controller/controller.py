"""The per-channel memory controller: queues + scheduler + statistics.

The controller exposes a two-phase interface so a multi-channel simulator
can interleave command issue in global time order: :meth:`peek` proposes
the next command and its issue time without side effects, :meth:`commit`
applies it.  Completed transactions are returned so the CPU model can be
notified of read completions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.controller.queue import QueueConfig, TransactionQueues
from repro.controller.scheduler import Candidate, Scheduler
from repro.controller.transaction import Transaction
from repro.dram.commands import CommandKind
from repro.dram.device import Channel
from repro.sim.metrics import LatencyHistogram


@dataclass
class ControllerStats:
    """Per-channel statistics the experiments aggregate."""

    commands_issued: int = 0
    acts: int = 0
    ewlr_hits: int = 0
    columns: int = 0
    precharges: int = 0
    #: REF/REFpb commands issued (always zero with refresh disabled).
    #: Deliberately not part of the digest -- the digest already pins
    #: refresh behaviour through finish times, latencies and the
    #: precharge-cause split.
    refreshes: int = 0
    #: PCM write pulses cancelled by a conflicting PRE (always zero on
    #: pulse-free technologies).  Like :attr:`refreshes`, not part of
    #: the digest -- cancellations are pinned through command times and
    #: the replayed write's energy.
    write_cancels: int = 0
    #: Read queueing latencies (arrival -> data end), ps. Fig. 16a.
    #: Counter-backed: memory stays O(unique latencies) however long
    #: the run; iteration yields the exact sorted expansion.
    read_latencies: LatencyHistogram = field(
        default_factory=LatencyHistogram)
    #: Perf counters, copied from the scheduler once at result
    #: collection (:meth:`ChannelController.collect_perf_counters`):
    #: peeks (selections), candidates_built (proposals constructed),
    #: candidates_examined (proposals the selection loop compared).
    #: peeks/candidates_built stay flat while commands_issued grows when
    #: the incremental candidate cache is doing its job;
    #: candidates_examined/peeks is what the floor-indexed selection
    #: tables shrink.
    peeks: int = 0
    candidates_built: int = 0
    candidates_examined: int = 0
    #: :meth:`ChannelController.cached_peek` calls answered from the
    #: mutation-keyed cache without re-running the scheduler.  Perf
    #: counter like :attr:`peeks` -- never part of the digest.
    peek_reuses: int = 0

    def merge(self, other: "ControllerStats") -> None:
        self.commands_issued += other.commands_issued
        self.acts += other.acts
        self.ewlr_hits += other.ewlr_hits
        self.columns += other.columns
        self.precharges += other.precharges
        self.refreshes += other.refreshes
        self.write_cancels += other.write_cancels
        self.read_latencies.merge(other.read_latencies)
        self.peeks += other.peeks
        self.candidates_built += other.candidates_built
        self.candidates_examined += other.candidates_examined
        self.peek_reuses += other.peek_reuses


class ChannelController:
    """Drives one :class:`~repro.dram.device.Channel`.

    ``observer`` is an optional
    :class:`~repro.sim.accounting.CommandObserver` fed from the commit
    path (cycle accounting + event tracing).  It is a pure observer --
    it never influences scheduling -- and when absent the controller
    pays a single ``is None`` check per event.
    """

    def __init__(self, channel: Channel,
                 queue_config: QueueConfig = QueueConfig(),
                 idle_close_ps=None, observer=None,
                 incremental=None, refresh_policy=None) -> None:
        self.channel = channel
        self.queues = TransactionQueues(queue_config)
        self.scheduler = Scheduler(channel, self.queues, idle_close_ps,
                                   incremental=incremental,
                                   refresh_policy=refresh_policy)
        self.stats = ControllerStats()
        self.observer = observer
        #: Optional retire hook: called with each transaction the moment
        #: a column command removes it from the queues (the only event
        #: that frees queue room).  The sharded simulator
        #: (:mod:`repro.sim.shards`) uses it for wake-on-room parking;
        #: the classic loop keeps using :meth:`commit`'s return value.
        self.on_retire = None
        #: Mutation-keyed peek cache (:meth:`cached_peek`): the latest
        #: proposal plus the ``(scheduler.mutations, now)`` key it was
        #: computed under.  Valid across barrier rounds of the sharded
        #: loop: a shard whose queues and bank state were untouched at
        #: a round boundary skips the scheduler entirely.
        self._peek_mutations = -1
        self._peek_now = -1
        self._peek_value = None
        #: Cache hits (perf counter, mirrored into :attr:`stats` at
        #: result collection).
        self.peek_reuses = 0

    # -- admission ---------------------------------------------------------

    def has_room(self, is_read: bool) -> bool:
        return self.queues.has_room(is_read)

    def enqueue(self, txn: Transaction, time: int) -> None:
        obs = self.observer
        if not self.queues.pending():
            refresh = self.scheduler.refresh
            if refresh is not None:
                # Settle refreshes owed across the idle span before this
                # arrival (the scheduler proposes no refresh candidates
                # while the queues are empty, so runs terminate).
                closes, refreshes = refresh.catch_up(
                    time, self.scheduler.note_bank_change)
                self.stats.commands_issued += closes + refreshes
                self.stats.precharges += closes
                self.stats.refreshes += refreshes
            if obs is not None:
                obs.note_nonempty(time)
        self.queues.enqueue(txn, time)
        self.scheduler.note_enqueue(txn)

    def pending(self) -> bool:
        return self.queues.pending()

    def refresh_horizon(self) -> Optional[int]:
        """Run-ahead bound from the pending refresh deadline, if any.

        ``None`` with refresh disabled or while the queues are empty
        (owed refreshes are then settled by the idle catch-up at the
        next admission, so there is no deadline to run into).  The
        sharded loop clamps a shard's horizon to this bound.
        """
        refresh = self.scheduler.refresh
        if refresh is None or not self.queues.pending():
            return None
        return refresh.forced_horizon()

    # -- scheduling ----------------------------------------------------------

    def peek(self, now: int) -> Optional[Candidate]:
        """The command this channel would issue next, or None if idle."""
        return self.scheduler.best(now)

    def cached_peek(self, now: int) -> Optional[Candidate]:
        """Like :meth:`peek`, but memoised on channel state.

        The answer is a pure function of the queues, the bank FSMs and
        ``now``; the scheduler bumps :attr:`Scheduler.mutations` on
        every change notification, so ``(mutations, now)`` is a sound
        cache key (held as two ints -- this sits on the sharded loop's
        innermost path).  The cache holds only the *latest* proposal
        (the scheduler reuses one scratch :class:`Candidate`, so older
        returns are overwritten in place anyway -- exactly the contract
        the sharded loop's per-shard cache already relied on).
        """
        mutations = self.scheduler.mutations
        if mutations == self._peek_mutations and now == self._peek_now:
            self.peek_reuses += 1
            return self._peek_value
        value = self.scheduler.best(now)
        self._peek_mutations = mutations
        self._peek_now = now
        self._peek_value = value
        return value

    def collect_perf_counters(self) -> None:
        """Copy the scheduler's perf counters into :attr:`stats`.

        Called once when results are collected (they used to be
        mirrored on every peek, two attribute stores per scheduling
        decision for counters nothing reads mid-run).
        """
        scheduler = self.scheduler
        self.stats.peeks = scheduler.peeks
        self.stats.candidates_built = scheduler.candidates_built
        self.stats.candidates_examined = scheduler.candidates_examined
        self.stats.peek_reuses = self.peek_reuses
        self.stats.write_cancels = self.channel.write_cancels

    def commit(self, candidate: Candidate) -> List[Transaction]:
        """Issue the candidate; returns transactions completed by it."""
        txn = candidate.txn
        time = candidate.issue_time
        obs = self.observer
        # Floors must be read before the issue mutates channel state.
        floors = obs.floors_for(candidate) if obs is not None else None
        self.stats.commands_issued += 1
        if candidate.kind is CommandKind.PRE:
            bank_index, slot = candidate.victim
            partial = self.channel.issue_precharge(bank_index, slot, time,
                                                   candidate.cause)
            self.scheduler.note_bank_change(bank_index)
            self.stats.precharges += 1
            if obs is not None:
                obs.on_command(candidate, floors, ewlr_hit=False,
                               partial=partial,
                               queue_empty_after=not self.queues.pending())
            return []
        if candidate.kind.is_refresh:
            bank_index, slot = candidate.victim
            self.channel.issue_refresh(time, bank_index, slot[0])
            if bank_index < 0:
                for bi in range(len(self.channel.banks)):
                    self.scheduler.note_bank_change(bi)
            else:
                self.scheduler.note_bank_change(bank_index)
            self.scheduler.refresh.note_refresh(candidate)
            self.stats.refreshes += 1
            if obs is not None:
                obs.on_command(candidate, floors, ewlr_hit=False,
                               partial=False,
                               queue_empty_after=not self.queues.pending())
            return []
        c = txn.coords
        if candidate.kind is CommandKind.ACT:
            ewlr_hit = self.channel.issue_act(c, time)
            self.scheduler.note_bank_change(txn.bank_index)
            self.stats.acts += 1
            if ewlr_hit:
                self.stats.ewlr_hits += 1
            if obs is not None:
                obs.on_command(candidate, floors, ewlr_hit=ewlr_hit,
                               partial=False,
                               queue_empty_after=not self.queues.pending())
            return []
        is_write = candidate.kind is CommandKind.WR
        data_end = self.channel.issue_column(c, time, is_write)
        txn.completion_time = data_end
        self.queues.remove(txn)
        self.scheduler.note_remove(txn)
        if self.on_retire is not None:
            self.on_retire(txn)
        self.stats.columns += 1
        if txn.is_read:
            self.stats.read_latencies.add(txn.queueing_latency)
        if obs is not None:
            obs.on_command(candidate, floors, ewlr_hit=False,
                           partial=False,
                           queue_empty_after=not self.queues.pending())
        return [txn]
