"""Physical-address to DRAM-coordinate mapping.

This module implements the address hashing side of ERUCA (Fig. 9 of the
paper):

* a Skylake-like base mapping that places frequently-changing physical
  address LSBs on the parallel resources (channel, bank group, bank) and
  XOR-hashes bank/bank-group bits with low row bits (permutation-based
  interleaving), keeping row bits in the MSBs;
* the *plane-ID* extraction for sub-banked organisations -- row LSBs when
  EWLR is used alone (mapping (2) in Fig. 9), row MSBs when RAP is on
  (mapping (1));
* the *EWLR offset* field (the LWL_SEL bits), placed adjacent to the plane
  ID so that a plane conflict is maximally likely to be an EWLR hit;
* **RAP** itself: the per-sub-bank plane-ID permutation, implemented as a
  bit-wise inversion of the plane bits on the right sub-bank.

The mapping is exactly invertible (``encode(decode(a)) == a``), which the
property tests rely on.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Tuple

from repro.controller.transaction import DramCoordinates


class PlanePlacement(enum.Enum):
    """Which row-address bits select the plane latch set."""

    MSB = "msb"
    LSB = "lsb"


def _bits(value: int, low: int, count: int) -> int:
    """Extract ``count`` bits of ``value`` starting at bit ``low``."""
    return (value >> low) & ((1 << count) - 1)


@dataclass(frozen=True)
class RowLayout:
    """How the DRAM row address subdivides into plane / EWLR / MWL fields.

    ``plane_count`` is the number of shared row-address latch sets per bank
    (paper Fig. 3).  ``ewlr_bits`` is the width of the LWL_SEL field that
    EWLR duplicates per sub-bank (3 in DDR4: 8 local wordlines per MWL).
    ``ewlr_bits = 0`` models a device without EWLR latches.
    """

    row_bits: int = 16
    plane_count: int = 4
    plane_placement: PlanePlacement = PlanePlacement.MSB
    ewlr_bits: int = 3

    def __post_init__(self) -> None:
        if self.plane_count < 1 or self.plane_count & (self.plane_count - 1):
            raise ValueError("plane_count must be a power of two >= 1")
        if self.plane_bits + self.ewlr_bits > self.row_bits:
            raise ValueError("plane + EWLR fields exceed the row address")
        # Field extraction constants, cached once: plane_id / mwl_tag
        # run on every activation classification and every enqueue, and
        # re-deriving shifts and masks through property/helper calls
        # dominated their cost.
        object.__setattr__(self, "_pshift", self._plane_shift())
        object.__setattr__(self, "_pmask", self.plane_count - 1)
        object.__setattr__(self, "_eshift", self._ewlr_shift())
        object.__setattr__(
            self, "_mwl_mask",
            ~(((1 << self.ewlr_bits) - 1) << self._ewlr_shift()))

    @property
    def plane_bits(self) -> int:
        return (self.plane_count - 1).bit_length()

    @property
    def rows(self) -> int:
        return 1 << self.row_bits

    def _plane_shift(self) -> int:
        if self.plane_placement is PlanePlacement.MSB:
            return self.row_bits - self.plane_bits
        return 0

    def _ewlr_shift(self) -> int:
        """The EWLR offset sits adjacent to the plane field (Fig. 9)."""
        if self.plane_placement is PlanePlacement.MSB:
            return self.row_bits - self.plane_bits - self.ewlr_bits
        return self.plane_bits

    def plane_id(self, row: int, subbank: int, rap: bool) -> int:
        """Plane latch set used by ``row`` on ``subbank``.

        With RAP, the right sub-bank (subbank 1) inverts the plane bits so
        that identical row addresses on the two sub-banks use different
        latch sets.
        """
        plane = (row >> self._pshift) & self._pmask
        if rap and subbank == 1:
            plane ^= self._pmask
        return plane

    def mwl_tag(self, row: int) -> int:
        """Row address with the EWLR-offset (LWL_SEL) field masked out.

        Two rows with equal plane ID and equal MWL tag differ only in their
        LWL_SEL bits, so both sub-banks can hold them concurrently when
        EWLR latches are present -- an *EWLR hit*.
        """
        return row & self._mwl_mask

    def ewlr_offset(self, row: int) -> int:
        """The LWL_SEL field value of ``row``."""
        return _bits(row, self._ewlr_shift(), self.ewlr_bits)


@dataclass(frozen=True)
class MappingConfig:
    """Geometry and hashing options of the physical address mapping.

    The bit layout, LSB to MSB, is::

        offset | col_lo | channel | bank_group | col_hi | bank
               | [subbank] | row

    which mirrors the Intel Skylake-style mapping the paper uses: column
    LSBs below the channel bit for fine interleave, bank-group and bank
    bits in the low-middle, and the row in the MSBs.  When ``xor_hash`` is
    on, the bank-group and bank fields are XORed with the row LSBs
    (permutation-based page interleaving [Zhang et al.]).
    """

    offset_bits: int = 6
    channel_bits: int = 1
    rank_bits: int = 0
    bank_group_bits: int = 2
    bank_bits: int = 2
    subbank_bits: int = 0
    col_lo_bits: int = 3
    col_hi_bits: int = 4
    row_bits: int = 16
    xor_hash: bool = True
    #: Fig. 9 places the sub-bank ID among the frequently-changing low
    #: bits (just above the low bank-group field) so consecutive lines
    #: interleave the two sub-banks; False parks it below the row bits
    #: instead (an ablation knob).
    subbank_low: bool = True

    @property
    def column_bits(self) -> int:
        return self.col_lo_bits + self.col_hi_bits

    @property
    def channels(self) -> int:
        return 1 << self.channel_bits

    @property
    def ranks(self) -> int:
        return 1 << self.rank_bits

    @property
    def bank_groups(self) -> int:
        return 1 << self.bank_group_bits

    @property
    def banks_per_group(self) -> int:
        return 1 << self.bank_bits

    @property
    def banks(self) -> int:
        return self.bank_groups * self.banks_per_group

    @property
    def subbanks(self) -> int:
        return 1 << self.subbank_bits

    @property
    def total_bits(self) -> int:
        return (self.offset_bits + self.channel_bits + self.rank_bits
                + self.bank_group_bits + self.bank_bits + self.subbank_bits
                + self.column_bits + self.row_bits)

    @property
    def capacity_bytes(self) -> int:
        return 1 << self.total_bits


class AddressMapping:
    """Decode physical addresses into DRAM coordinates and back."""

    def __init__(self, config: MappingConfig,
                 row_layout: RowLayout = None) -> None:
        if row_layout is None:
            row_layout = RowLayout(row_bits=config.row_bits,
                                   plane_count=1, ewlr_bits=0)
        if row_layout.row_bits != config.row_bits:
            raise ValueError("row layout and mapping disagree on row bits")
        self.config = config
        self.row_layout = row_layout
        # Precompute field shifts, LSB first.
        shift = config.offset_bits
        self._col_lo_shift = shift
        shift += config.col_lo_bits
        self._channel_shift = shift
        shift += config.channel_bits
        self._bg_shift = shift
        shift += config.bank_group_bits
        if config.subbank_low:
            self._subbank_shift = shift
            shift += config.subbank_bits
        self._col_hi_shift = shift
        shift += config.col_hi_bits
        self._bank_shift = shift
        shift += config.bank_bits
        self._rank_shift = shift
        shift += config.rank_bits
        if not config.subbank_low:
            self._subbank_shift = shift
            shift += config.subbank_bits
        self._row_shift = shift

    def _hash_fields(self, row: int) -> Tuple[int, int]:
        """XOR masks applied to (bank_group, bank) from the row LSBs."""
        cfg = self.config
        if not cfg.xor_hash:
            return 0, 0
        bg_mask = _bits(row, 0, cfg.bank_group_bits)
        bank_mask = _bits(row, cfg.bank_group_bits, cfg.bank_bits)
        return bg_mask, bank_mask

    def decode(self, address: int) -> DramCoordinates:
        cfg = self.config
        if address < 0 or address >> cfg.total_bits:
            raise ValueError(
                f"address {address:#x} outside {cfg.total_bits}-bit space")
        row = _bits(address, self._row_shift, cfg.row_bits)
        bg_mask, bank_mask = self._hash_fields(row)
        col = (_bits(address, self._col_hi_shift, cfg.col_hi_bits)
               << cfg.col_lo_bits) | _bits(address, self._col_lo_shift,
                                           cfg.col_lo_bits)
        return DramCoordinates(
            channel=_bits(address, self._channel_shift, cfg.channel_bits),
            rank=_bits(address, self._rank_shift, cfg.rank_bits),
            bank_group=_bits(address, self._bg_shift,
                             cfg.bank_group_bits) ^ bg_mask,
            bank=_bits(address, self._bank_shift, cfg.bank_bits) ^ bank_mask,
            subbank=_bits(address, self._subbank_shift, cfg.subbank_bits),
            row=row,
            column=col,
        )

    def encode(self, coords: DramCoordinates) -> int:
        """Inverse of :meth:`decode` (the XOR hash is an involution)."""
        cfg = self.config
        bg_mask, bank_mask = self._hash_fields(coords.row)
        col_lo = _bits(coords.column, 0, cfg.col_lo_bits)
        col_hi = _bits(coords.column, cfg.col_lo_bits, cfg.col_hi_bits)
        address = 0
        address |= col_lo << self._col_lo_shift
        address |= coords.channel << self._channel_shift
        address |= (coords.bank_group ^ bg_mask) << self._bg_shift
        address |= col_hi << self._col_hi_shift
        address |= (coords.bank ^ bank_mask) << self._bank_shift
        address |= coords.rank << self._rank_shift
        address |= coords.subbank << self._subbank_shift
        address |= coords.row << self._row_shift
        return address

    # -- ERUCA address fields ------------------------------------------

    def plane_id(self, coords: DramCoordinates, rap: bool) -> int:
        return self.row_layout.plane_id(coords.row, coords.subbank, rap)

    def mwl_tag(self, coords: DramCoordinates) -> int:
        return self.row_layout.mwl_tag(coords.row)


def skylake_mapping(subbanked: bool = False,
                    row_layout: RowLayout = None,
                    bank_groups: int = 4,
                    banks_per_group: int = 4,
                    channels: int = 2,
                    row_bits: int = None,
                    subbank_low: bool = True) -> AddressMapping:
    """The paper's baseline mapping (Tab. III: "Intel Skylake address
    mapping"), optionally carving one bit into a sub-bank ID.

    All organisations use 4 KiB rank-level rows (the x4 Combo half-page):
    the baseline's half-bank select is simply its row MSB, and a
    sub-banked organisation turns that bit into the sub-bank ID, keeping
    total capacity constant.  ``row_bits`` defaults accordingly: 17 for
    flat organisations, 16 for sub-banked ones (``row_layout`` wins if
    given).
    """
    bg_bits = (bank_groups - 1).bit_length()
    bank_bits = (banks_per_group - 1).bit_length()
    ch_bits = (channels - 1).bit_length()
    if row_layout is not None:
        row_bits = row_layout.row_bits
    elif row_bits is None:
        row_bits = 16 if subbanked else 17
    config = MappingConfig(
        channel_bits=ch_bits,
        bank_group_bits=bg_bits,
        bank_bits=bank_bits,
        subbank_bits=1 if subbanked else 0,
        col_hi_bits=3,
        row_bits=row_bits,
        subbank_low=subbank_low,
    )
    return AddressMapping(config, row_layout)
