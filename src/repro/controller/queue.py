"""Per-channel transaction queues with write-drain watermarks.

Reads are latency-critical and normally have priority; writes accumulate in
the write queue and are drained in batches -- either when the queue crosses
its high watermark (forced drain, down to the low watermark) or
opportunistically when no reads are pending.  This is the standard
USIMM-style policy the paper's FR-FCFS controller builds on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.controller.transaction import Transaction


@dataclass(frozen=True)
class QueueConfig:
    """Queue depths and drain watermarks for one channel."""

    read_depth: int = 32
    write_depth: int = 32
    drain_high: int = 24
    drain_low: int = 8

    def __post_init__(self) -> None:
        if not 0 < self.drain_low < self.drain_high <= self.write_depth:
            raise ValueError(
                "watermarks must satisfy 0 < low < high <= depth")
        if self.read_depth < 1:
            raise ValueError("read queue depth must be positive")


class TransactionQueues:
    """Read/write queues plus the drain-mode state machine."""

    def __init__(self, config: QueueConfig = QueueConfig()) -> None:
        self.config = config
        self.reads: List[Transaction] = []
        self.writes: List[Transaction] = []
        self._draining = False

    # -- admission -------------------------------------------------------

    def has_room(self, is_read: bool) -> bool:
        if is_read:
            return len(self.reads) < self.config.read_depth
        return len(self.writes) < self.config.write_depth

    def enqueue(self, txn: Transaction, time: int) -> None:
        if not self.has_room(txn.is_read):
            raise ValueError("queue full; check has_room() first")
        txn.arrival_time = time
        (self.reads if txn.is_read else self.writes).append(txn)

    # -- drain policy ------------------------------------------------------

    def update_drain_mode(self) -> bool:
        """Advance the watermark state machine; returns drain mode."""
        cfg = self.config
        if self._draining:
            if len(self.writes) <= cfg.drain_low:
                self._draining = False
        elif len(self.writes) >= cfg.drain_high:
            self._draining = True
        return self._draining

    def schedulable(self) -> List[Transaction]:
        """The transactions the scheduler may consider right now.

        Forced drain serves writes exclusively (reads wait so the data bus
        does not thrash direction); otherwise reads are served, with
        writes drained opportunistically only when no reads are pending.
        """
        if self.update_drain_mode():
            return self.writes
        if self.reads:
            return self.reads
        return self.writes

    def remove(self, txn: Transaction) -> None:
        queue = self.reads if txn.is_read else self.writes
        queue.remove(txn)

    @property
    def draining(self) -> bool:
        return self._draining

    def __len__(self) -> int:
        return len(self.reads) + len(self.writes)

    def pending(self) -> bool:
        return bool(self.reads or self.writes)
