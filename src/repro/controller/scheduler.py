"""FR-FCFS command scheduling with the ERUCA operation flow (Fig. 5).

For every schedulable transaction the scheduler derives the *next* DRAM
command it needs -- a column command on a row hit, an ACT when its
(sub-)bank is ready (including EWLR hits), or a precharge of whichever slot
blocks it (its own row conflict, or a paired sub-bank's plane conflict) --
together with the earliest legal issue time from the device model.

Priority is first-ready, first-come-first-serve with column-over-row
ordering: among the candidates that can issue soonest, row-buffer hits win,
then older transactions.  A precharge that would close a row other, older
transactions still hit on is suppressed (anti-thrashing guard), which also
prevents inter-transaction livelock.

Two selection paths produce *identical* command streams:

* the **reference** path (:meth:`Scheduler.candidates`) rebuilds every
  candidate from scratch on each call -- simple, obviously correct, and
  kept as the equivalence oracle;
* the **incremental** path (the default) caches the bank-local part of
  every candidate per bank and only rebuilds banks whose FSM or queue
  membership actually changed since the last peek.  Channel-shared
  resource constraints (command/data bus, tRRD, the tFAW four-activate
  window, DDB windows) change on every commit, so they are re-applied
  cheaply at selection time.

The decomposition is exact because every bank-local input of a candidate
-- the activation verdict, the victim slot, the pending-hit map used by
the anti-thrashing guard, and the bank-side earliest issue times -- only
reads state of the transaction's own bank.  Ties are broken by a
deterministic per-transaction sequence number (queue order), so both
paths agree bit-for-bit regardless of enumeration order.

Observability (:mod:`repro.sim.accounting`) is orthogonal to both
paths: the controller reads the winning candidate's floor decomposition
(``Channel.explain_*``) *after* selection and *before* commit, so the
observer sees exactly the pre-issue device state the scheduler
consulted, and neither selection path ever branches on whether an
observer is attached -- the digest-equality tests in
``tests/sim/test_accounting.py`` hold for both.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.controller.queue import TransactionQueues
from repro.controller.transaction import Transaction
from repro.core.subbank import ActivationVerdict
from repro.dram.bank import SlotKey
from repro.dram.commands import CommandKind, PrechargeCause
from repro.dram.device import Channel

#: Priority classes, lower is better: row hits beat ACTs beat precharges;
#: speculative (page-policy) closes come last.
PRIO_COLUMN = 0
PRIO_ACT = 1
PRIO_PRE = 2
PRIO_POLICY = 3

#: Arrival stamp for candidates that serve no transaction (policy closes).
_NO_ARRIVAL = 1 << 62

#: Default selection path for newly built schedulers; the golden-digest
#: equivalence tests flip this to compare against the reference path.
INCREMENTAL_DEFAULT = True


def _policy_seq(bank_index: int, slot: SlotKey) -> int:
    """Deterministic tie-break rank for a policy close of (bank, slot)."""
    subbank, group = slot
    return (bank_index << 16) | (subbank << 15) | group


@dataclass(slots=True)
class Candidate:
    """One issuable command proposal.

    ``txn`` is the queued transaction the command serves; policy
    precharges serve no transaction and carry ``txn = None``.  ``seq``
    breaks exact (issue_time, priority, arrival) ties deterministically:
    it is the serving transaction's enqueue sequence number, or a
    bank/slot rank for policy closes.  ``arrival`` and ``col_args`` are
    denormalised copies of transaction state so the selection loop never
    chases ``cand.txn.*`` attribute chains.
    """

    issue_time: int
    priority: int
    txn: Optional[Transaction]
    kind: CommandKind
    victim: Optional[Tuple[int, SlotKey]] = None
    cause: Optional[PrechargeCause] = None
    seq: int = -1
    #: Serving transaction's arrival time (``_NO_ARRIVAL`` for policy
    #: closes), the FCFS component of the sort key.
    arrival: int = _NO_ARRIVAL
    #: For column candidates: (is_write, bank_group, bank_index) --
    #: the arguments of the shared-resource floor lookup.
    col_args: Optional[Tuple[bool, int, int]] = None

    def sort_key(self) -> Tuple[int, int, int, int]:
        return (self.issue_time, self.priority, self.arrival, self.seq)


class Scheduler:
    """Candidate generation and FR-FCFS selection for one channel.

    ``idle_close_ps`` enables the adaptive open-page policy (Tab. III):
    an open row with no pending requests is speculatively closed after
    that much idle time, hiding the tRP of a future conflict.  ``None``
    keeps rows open until a conflict forces a precharge.

    The controller must report every event that can change candidates:
    :meth:`note_enqueue` when a transaction is admitted,
    :meth:`note_remove` when a column command retires one, and
    :meth:`note_bank_change` when a committed command touched a bank's
    FSM.  Anything missed would silently stale the incremental cache, so
    the golden-digest tests run both paths over every configuration.
    """

    def __init__(self, channel: Channel, queues: TransactionQueues,
                 idle_close_ps: Optional[int] = None,
                 incremental: Optional[bool] = None) -> None:
        self.channel = channel
        self.queues = queues
        self.idle_close_ps = idle_close_ps
        self.incremental = INCREMENTAL_DEFAULT if incremental is None \
            else incremental
        #: Perf counters (mirrored into ControllerStats by the controller).
        self.peeks = 0
        self.candidates_built = 0
        # -- incremental state ------------------------------------------
        self._seq = 0
        #: Which queue the current membership was built from ('R'/'W'),
        #: or None before the first peek.
        self._source: Optional[str] = None
        #: Schedulable transactions per bank, in queue order.
        self._bank_txns: Dict[int, List[Transaction]] = {}
        #: Cached candidates per bank with *bank-local* issue times (the
        #: channel-resource floor and the ``now`` clamp are re-applied at
        #: selection).  Banks with no candidates are absent.
        self._bank_cands: Dict[int, List[Candidate]] = {}
        #: Banks whose cached candidates must be rebuilt.
        self._dirty: Set[int] = set()

    # -- transaction preparation (memoised) ------------------------------

    def _prepare(self, txn: Transaction) -> None:
        """Fill the transaction's scheduler caches once."""
        c = txn.coords
        bank_index = self.channel.bank_index(c)
        bank = self.channel.banks[bank_index]
        txn.bank_index = bank_index
        txn.slot = bank.slot_key(c.subbank, c.row)
        if bank.row_layout is not None and bank.geometry.subbanks == 2:
            txn.plane = bank.row_layout.plane_id(c.row, c.subbank,
                                                 bank.rap)
            txn.mwl = bank.row_layout.mwl_tag(c.row)

    # -- change notifications (controller-facing) -------------------------

    def note_enqueue(self, txn: Transaction) -> None:
        """A transaction entered the queues: prepare it and track it."""
        if txn.bank_index < 0:
            self._prepare(txn)
        if txn.seq < 0:
            txn.seq = self._seq
            self._seq += 1
        # Only fold it into the membership if it joins the queue the
        # current candidate set was built from; otherwise the source
        # check in best() picks it up on the next drain-mode flip.
        if self._source == ('R' if txn.is_read else 'W'):
            self._bank_txns.setdefault(txn.bank_index, []).append(txn)
            self._dirty.add(txn.bank_index)

    def note_remove(self, txn: Transaction) -> None:
        """A column command retired ``txn``; drop it from its bank."""
        txns = self._bank_txns.get(txn.bank_index)
        if txns is not None:
            try:
                txns.remove(txn)
            except ValueError:
                pass
        self._dirty.add(txn.bank_index)

    def note_bank_change(self, bank_index: int) -> None:
        """A committed command changed this bank's FSM state."""
        self._dirty.add(bank_index)

    # -- reference path ----------------------------------------------------

    def _pending_hits(self, txns: List[Transaction]
                      ) -> Dict[Tuple[int, SlotKey], int]:
        """Oldest arrival per (bank, slot) whose open row still has hits."""
        hits: Dict[Tuple[int, SlotKey], int] = {}
        banks = self.channel.banks
        for txn in txns:
            if txn.bank_index < 0:
                self._prepare(txn)
            slot = banks[txn.bank_index].slots[txn.slot]
            if slot.active_row == txn.coords.row:
                loc = (txn.bank_index, txn.slot)
                if loc not in hits or txn.arrival_time < hits[loc]:
                    hits[loc] = txn.arrival_time
        return hits

    def _policy_closes(self, now: int,
                       hits: Dict[Tuple[int, SlotKey], int]
                       ) -> List[Candidate]:
        """Adaptive open-page: close rows idle past the threshold."""
        out: List[Candidate] = []
        banks = self.channel.banks
        for loc in self.channel.open_slots:
            if loc in hits:
                continue  # a pending request still wants this row
            bank_index, key = loc
            slot = banks[bank_index].slots[key]
            due = slot.last_use + self.idle_close_ps
            t = max(now, due,
                    self.channel.earliest_precharge(bank_index, key))
            out.append(Candidate(t, PRIO_POLICY, None, CommandKind.PRE,
                                 victim=loc,
                                 cause=PrechargeCause.POLICY,
                                 seq=_policy_seq(bank_index, key)))
        return out

    def candidates(self, now: int) -> List[Candidate]:
        """Every issuable command, rebuilt from scratch (reference path).

        This is the equivalence oracle the incremental path is tested
        against; it is also what ``incremental=False`` schedulers use.
        """
        txns = self.queues.schedulable()
        if not txns and self.idle_close_ps is None:
            return []
        hits = self._pending_hits(txns)
        out: List[Candidate] = []
        if self.idle_close_ps is not None:
            out.extend(self._policy_closes(now, hits))
        if not txns:
            self.candidates_built += len(out)
            return out
        seen_acts: set = set()
        seen_pres: set = set()
        banks = self.channel.banks
        for txn in txns:
            c = txn.coords
            bank = banks[txn.bank_index]
            verdict, victim_slot = bank.classify(
                c.subbank, c.row, txn.plane, txn.mwl, txn.slot)
            if verdict is ActivationVerdict.ROW_HIT:
                t = self.channel.earliest_column(c, not txn.is_read)
                out.append(Candidate(max(now, t), PRIO_COLUMN, txn,
                                     CommandKind.WR if not txn.is_read
                                     else CommandKind.RD, seq=txn.seq,
                                     arrival=txn.arrival_time,
                                     col_args=(not txn.is_read,
                                               c.bank_group,
                                               txn.bank_index)))
            elif verdict in (ActivationVerdict.ACT_OK,
                             ActivationVerdict.EWLR_HIT):
                slot = (txn.bank_index, txn.slot)
                if slot in seen_acts:
                    continue  # one ACT proposal per target slot
                seen_acts.add(slot)
                t = self.channel.earliest_act(c)
                out.append(Candidate(max(now, t), PRIO_ACT, txn,
                                     CommandKind.ACT, seq=txn.seq,
                                     arrival=txn.arrival_time))
            else:
                bank_index = txn.bank_index
                loc = (bank_index, victim_slot)
                # Anti-thrashing: do not close a row that an older (or
                # equally old) transaction still hits on.
                if loc in hits and hits[loc] <= txn.arrival_time:
                    continue
                if loc in seen_pres:
                    continue
                seen_pres.add(loc)
                cause = (PrechargeCause.PLANE_CONFLICT
                         if verdict is ActivationVerdict.PLANE_CONFLICT
                         else PrechargeCause.ROW_CONFLICT)
                t = self.channel.earliest_precharge(bank_index, victim_slot)
                out.append(Candidate(max(now, t), PRIO_PRE, txn,
                                     CommandKind.PRE, victim=loc,
                                     cause=cause, seq=txn.seq,
                                     arrival=txn.arrival_time))
        self.candidates_built += len(out)
        return out

    # -- incremental path --------------------------------------------------

    def _rebuild_all(self, txns: List[Transaction]) -> None:
        """Drain-mode flip (or first peek): regroup the whole source."""
        stale = set(self._bank_cands)
        self._bank_txns = {}
        for txn in txns:
            if txn.bank_index < 0:
                self._prepare(txn)
            if txn.seq < 0:
                txn.seq = self._seq
                self._seq += 1
            self._bank_txns.setdefault(txn.bank_index, []).append(txn)
        self._dirty = stale | set(self._bank_txns)
        if self.idle_close_ps is not None:
            self._dirty.update(loc[0] for loc in self.channel.open_slots)

    def _rebuild_bank(self, bank_index: int) -> None:
        """Recompute the bank-local candidates of one bank.

        Issue times stored here exclude the channel-resource floor and
        the ``now`` clamp -- both are re-applied at selection, so a
        cached candidate never goes stale from *other* banks' traffic.
        """
        bank = self.channel.banks[bank_index]
        txns = self._bank_txns.get(bank_index, ())
        hits: Dict[Tuple[int, SlotKey], int] = {}
        for txn in txns:
            if bank.slots[txn.slot].active_row == txn.coords.row:
                loc = (bank_index, txn.slot)
                if loc not in hits or txn.arrival_time < hits[loc]:
                    hits[loc] = txn.arrival_time
        out: List[Candidate] = []
        if self.idle_close_ps is not None:
            for key, slot in bank.slots.items():
                if slot.active_row is None:
                    continue
                loc = (bank_index, key)
                if loc in hits:
                    continue  # a pending request still wants this row
                t = max(slot.last_use + self.idle_close_ps,
                        bank.earliest_precharge(key))
                out.append(Candidate(t, PRIO_POLICY, None, CommandKind.PRE,
                                     victim=loc,
                                     cause=PrechargeCause.POLICY,
                                     seq=_policy_seq(bank_index, key)))
        seen_acts: set = set()
        seen_pres: set = set()
        seen_cols: set = set()
        for txn in txns:
            c = txn.coords
            verdict, victim_slot = bank.classify(
                c.subbank, c.row, txn.plane, txn.mwl, txn.slot)
            if verdict is ActivationVerdict.ROW_HIT:
                # All hits on one slot target the same open row, share
                # the same issue time and direction, and are visited in
                # (arrival, seq) order -- only the first can ever win,
                # so later duplicates are provably unselectable.
                if txn.slot in seen_cols:
                    continue
                seen_cols.add(txn.slot)
                t = bank.earliest_column(c.subbank, c.row)
                out.append(Candidate(t, PRIO_COLUMN, txn,
                                     CommandKind.WR if not txn.is_read
                                     else CommandKind.RD, seq=txn.seq,
                                     arrival=txn.arrival_time,
                                     col_args=(not txn.is_read,
                                               c.bank_group,
                                               bank_index)))
            elif verdict in (ActivationVerdict.ACT_OK,
                             ActivationVerdict.EWLR_HIT):
                if txn.slot in seen_acts:
                    continue  # one ACT proposal per target slot
                seen_acts.add(txn.slot)
                out.append(Candidate(bank.earliest_act(c.subbank, c.row),
                                     PRIO_ACT, txn, CommandKind.ACT,
                                     seq=txn.seq,
                                     arrival=txn.arrival_time))
            else:
                loc = (bank_index, victim_slot)
                if loc in hits and hits[loc] <= txn.arrival_time:
                    continue
                if victim_slot in seen_pres:
                    continue
                seen_pres.add(victim_slot)
                cause = (PrechargeCause.PLANE_CONFLICT
                         if verdict is ActivationVerdict.PLANE_CONFLICT
                         else PrechargeCause.ROW_CONFLICT)
                out.append(Candidate(bank.earliest_precharge(victim_slot),
                                     PRIO_PRE, txn, CommandKind.PRE,
                                     victim=loc, cause=cause, seq=txn.seq,
                                     arrival=txn.arrival_time))
        self.candidates_built += len(out)
        if out:
            self._bank_cands[bank_index] = out
        else:
            self._bank_cands.pop(bank_index, None)

    def _best_incremental(self, now: int) -> Optional[Candidate]:
        txns = self.queues.schedulable()
        source = 'W' if txns is self.queues.writes else 'R'
        if source != self._source:
            self._source = source
            self._rebuild_all(txns)
        if self._dirty:
            for bank_index in self._dirty:
                self._rebuild_bank(bank_index)
            self._dirty.clear()
        if not self._bank_cands:
            return None
        resources = self.channel.resources
        earliest_column = resources.earliest_column
        res_act = res_pre = None  # computed lazily, shared by all banks
        #: Column floors repeat per (direction, group, bank) within one
        #: peek -- memoise them for the duration of this selection.
        col_memo: Dict[Tuple[bool, int, int], int] = {}
        best: Optional[Candidate] = None
        best_time = 0
        best_rest: Optional[Tuple[int, int, int]] = None
        for cands in self._bank_cands.values():
            for cand in cands:
                prio = cand.priority
                if prio == PRIO_COLUMN:
                    args = cand.col_args
                    t = col_memo.get(args)
                    if t is None:
                        t = earliest_column(*args)
                        col_memo[args] = t
                elif prio == PRIO_ACT:
                    if res_act is None:
                        res_act = resources.earliest_act()
                    t = res_act
                else:
                    if res_pre is None:
                        res_pre = resources.earliest_precharge()
                    t = res_pre
                if t < cand.issue_time:
                    t = cand.issue_time
                if t < now:
                    t = now
                # Compare on time first; the tie-break tuple is only
                # built for genuine time ties.
                if best is not None and t > best_time:
                    continue
                rest = (prio, cand.arrival, cand.seq)
                if best is None or t < best_time or rest < best_rest:
                    best, best_time, best_rest = cand, t, rest
        if best is None:
            return None
        # Cached candidates are shared across peeks -- never mutate them.
        return Candidate(best_time, best.priority, best.txn, best.kind,
                         victim=best.victim, cause=best.cause,
                         seq=best.seq, arrival=best.arrival,
                         col_args=best.col_args)

    # -- selection ---------------------------------------------------------

    def best(self, now: int) -> Optional[Candidate]:
        self.peeks += 1
        if self.incremental:
            return self._best_incremental(now)
        cands = self.candidates(now)
        if not cands:
            return None
        return min(cands, key=Candidate.sort_key)
