"""FR-FCFS command scheduling with the ERUCA operation flow (Fig. 5).

For every schedulable transaction the scheduler derives the *next* DRAM
command it needs -- a column command on a row hit, an ACT when its
(sub-)bank is ready (including EWLR hits), or a precharge of whichever slot
blocks it (its own row conflict, or a paired sub-bank's plane conflict) --
together with the earliest legal issue time from the device model.

Priority is first-ready, first-come-first-serve with column-over-row
ordering: among the candidates that can issue soonest, row-buffer hits win,
then older transactions.  A precharge that would close a row other, older
transactions still hit on is suppressed (anti-thrashing guard), which also
prevents inter-transaction livelock.

Two selection paths produce *identical* command streams:

* the **reference** path (:meth:`Scheduler.candidates`) rebuilds every
  candidate from scratch on each call -- simple, obviously correct, and
  kept as the equivalence oracle;
* the **incremental** path (the default) caches the bank-local part of
  every candidate per bank and only rebuilds banks whose FSM or queue
  membership actually changed since the last peek.  Channel-shared
  resource constraints (command/data bus, tRRD, the tFAW four-activate
  window, DDB windows) change on every commit, so they are re-applied
  cheaply at selection time.

The decomposition is exact because every bank-local input of a candidate
-- the activation verdict, the victim slot, the pending-hit map used by
the anti-thrashing guard, and the bank-side earliest issue times -- only
reads state of the transaction's own bank.  Ties are broken by a
deterministic per-transaction sequence number (queue order), so both
paths agree bit-for-bit regardless of enumeration order.

Selection over the cached candidates is *floor-indexed*: within one
bank, every candidate of one priority class shares the same
channel-resource floor (all column candidates share the bank's
``col_args`` because the drain mode fixes the direction and the bank
fixes group/index; all ACTs share the channel ACT floor; precharges and
policy closes share the PRE floor).  Clamping a whole class to one floor
``F`` collapses every bank-local time ``t <= F`` onto ``F``, so the
class winner is either the minimal ``(arrival, seq)`` among those -- a
prefix-minimum over the ``t``-sorted candidates -- or, when every ``t``
exceeds ``F``, the first candidate in ``(t, arrival, seq)`` order.  Each
bank-class therefore keeps a :class:`SelectionTable` (a ``t``-sorted
array with prefix-min ``(arrival, seq)``) and answers a peek with one
binary search, making selection O(banks x classes x log candidates)
instead of O(total candidates).

Observability (:mod:`repro.sim.accounting`) is orthogonal to both
paths: the controller reads the winning candidate's floor decomposition
(``Channel.explain_*``) *after* selection and *before* commit, so the
observer sees exactly the pre-issue device state the scheduler
consulted, and neither selection path ever branches on whether an
observer is attached -- the digest-equality tests in
``tests/sim/test_accounting.py`` hold for both.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.controller.queue import TransactionQueues
from repro.controller.transaction import Transaction
from repro.core.subbank import ActivationVerdict
from repro.dram.bank import SlotKey
from repro.dram.commands import CommandKind, PrechargeCause
from repro.dram.device import Channel

#: Priority classes, lower is better: row hits beat ACTs beat precharges;
#: speculative (page-policy) closes come last.
PRIO_COLUMN = 0
PRIO_ACT = 1
PRIO_PRE = 2
PRIO_POLICY = 3
#: Refresh-chain commands (scope closes and REF/REFpb) rank below every
#: demand class: on an exact issue-time tie the demand command wins and
#: the refresh retries at the next peek.
PRIO_REFRESH = 4

#: Arrival stamp for candidates that serve no transaction (policy closes).
_NO_ARRIVAL = 1 << 62

#: Default selection path for newly built schedulers; the golden-digest
#: equivalence tests flip this to compare against the reference path.
INCREMENTAL_DEFAULT = True


def _policy_seq(bank_index: int, slot: SlotKey) -> int:
    """Deterministic tie-break rank for a policy close of (bank, slot).

    Must be injective: two policy closes can tie on every other sort-key
    component (same time, same priority, ``_NO_ARRIVAL`` arrivals), so a
    seq collision would let the reference and table-based paths pick
    different winners depending on enumeration order.  The fields are
    packed wide enough that even a 2^32-group geometry cannot overlap
    the sub-bank or bank bits; the packing is ordered (bank, sub-bank,
    group), the same rank the narrow historical packing produced.
    """
    subbank, group = slot
    return (((bank_index << 1) | subbank) << 32) | group


@dataclass(slots=True)
class Candidate:
    """One issuable command proposal.

    ``txn`` is the queued transaction the command serves; policy
    precharges serve no transaction and carry ``txn = None``.  ``seq``
    breaks exact (issue_time, priority, arrival) ties deterministically:
    it is the serving transaction's enqueue sequence number, or a
    bank/slot rank for policy closes.  ``arrival`` and ``col_args`` are
    denormalised copies of transaction state so the selection loop never
    chases ``cand.txn.*`` attribute chains.
    """

    issue_time: int
    priority: int
    txn: Optional[Transaction]
    kind: CommandKind
    victim: Optional[Tuple[int, SlotKey]] = None
    cause: Optional[PrechargeCause] = None
    seq: int = -1
    #: Serving transaction's arrival time (``_NO_ARRIVAL`` for policy
    #: closes), the FCFS component of the sort key.
    arrival: int = _NO_ARRIVAL
    #: For column candidates: (is_write, bank_group, bank_index) --
    #: the arguments of the shared-resource floor lookup.
    col_args: Optional[Tuple[bool, int, int]] = None

    def sort_key(self) -> Tuple[int, int, int, int]:
        return (self.issue_time, self.priority, self.arrival, self.seq)


class SelectionTable:
    """``t``-sorted entries of one (bank, priority class), answering
    "who wins after clamping to floor ``F``?" with one binary search.

    Entries are plain tuples whose first three fields are
    ``(t, arrival, seq)`` -- the class-local part of the FR-FCFS sort
    key -- followed by whatever payload the class needs to materialise
    the winning :class:`Candidate` (the serving transaction, the
    precharge victim, ...).  ``seq`` is unique within a table, so a
    key-less tuple sort never falls through to comparing payloads.

    Every entry in one table shares the same channel-resource floor
    (identical ``col_args`` within a bank, the channel-wide ACT floor,
    or the PRE floor), so the per-peek effective issue time of entry
    ``i`` is ``max(t_i, F)`` with one ``F`` for the whole table.  Every
    entry with ``t <= F`` collapses onto ``F`` and strictly beats every
    entry with ``t > F`` on time, hence the winner is

    * the prefix-minimum ``(arrival, seq)`` over the ``t``-sorted prefix
      ``t <= F`` when that prefix is non-empty, else
    * the first entry in ``(t, arrival, seq)`` order (the lexicographic
      minimum of the un-clamped keys).

    Exactness against the brute-force ``min`` over floor-clamped
    entries is property-tested in
    ``tests/controller/test_selection_table.py``.

    Single-entry tables (the overwhelmingly common case on these
    workloads) skip the sort and prefix arrays entirely; the head entry
    ``(t0, a0, s0, e0)`` -- the minimum of the un-clamped keys -- is
    denormalised into slots so the selection loop can answer the
    floor-above-everything case with two attribute loads and a compare.
    """

    __slots__ = ("times", "entries", "pmin", "single",
                 "t0", "a0", "s0", "e0")

    def __init__(self, entries: List[tuple]) -> None:
        if len(entries) > 1:
            entries.sort()
            self.single = False
            self.times = [e[0] for e in entries]
            #: ``pmin[i]`` = (arrival, seq, index) of the minimal
            #: ``(arrival, seq)`` among ``entries[: i + 1]``.
            pmin: List[Tuple[int, int, int]] = []
            best_a = best_s = best_i = -1
            first = True
            for i, e in enumerate(entries):
                if first or e[1] < best_a or (e[1] == best_a
                                              and e[2] < best_s):
                    best_a, best_s, best_i = e[1], e[2], i
                    first = False
                pmin.append((best_a, best_s, best_i))
            self.pmin = pmin
        else:
            self.single = True
            self.times = None
            self.pmin = None
        self.entries = entries
        head = entries[0]
        self.t0 = head[0]
        self.a0 = head[1]
        self.s0 = head[2]
        self.e0 = head

    def __len__(self) -> int:
        return len(self.entries)

    def select(self, floor: int) -> Tuple[int, int, int, tuple]:
        """Winner after clamping every entry to ``floor``.

        Returns ``(time, arrival, seq, entry)`` where ``time`` is the
        winner's effective issue time (already >= ``floor`` clamping).
        """
        t0 = self.t0
        if t0 > floor:
            # The floor clamps nothing: the head is the lexicographic
            # minimum of the un-clamped keys.
            return t0, self.a0, self.s0, self.e0
        if self.single:
            return floor, self.a0, self.s0, self.e0
        # t0 <= floor, so the clamped prefix is non-empty (pos >= 1).
        pos = bisect_right(self.times, floor)
        arrival, seq, i = self.pmin[pos - 1]
        return floor, arrival, seq, self.entries[i]


#: One bank's cached column table ``(table, col_args)``.  ``col_args``
#: is shared by every column candidate of the bank (the drain mode
#: fixes the direction, the bank fixes group and index), so one
#: :meth:`~repro.dram.resources.ChannelResources.earliest_column` call
#: floors the whole table.  A plain tuple, not a dataclass: one is
#: built per bank rebuild, ~1.6x per command.
ColTable = Tuple[SelectionTable, Tuple[bool, int, int]]

#: One bank's cached non-column tables ``(act, pre, policy)``.  ACTs
#: share the channel-wide ACT floor; precharges and policy closes share
#: the PRE floor (but stay in separate tables because their priorities
#: differ).  Kept apart from the column tables so the selection loop's
#: second pass only visits banks that actually have row work pending --
#: on row-hit-friendly workloads that is a near-empty dict.
AuxTables = Tuple[Optional[SelectionTable],
                  Optional[SelectionTable],
                  Optional[SelectionTable]]


#: The schedulable refresh policies (``SystemConfig.refresh_policy``).
REFRESH_POLICIES = ("baseline", "darp", "sarp")


class RefreshScheduler:
    """Deadline tracking and candidate generation for DRAM refresh.

    One refresh *scope* is the unit a single REF/REFpb command covers:
    the whole rank (``baseline``), one bank (``darp``), or one sub-bank
    (``sarp``, degrading to per-bank on flat-bank geometries).  One
    refresh is owed per ``period = tREFI / len(scopes)`` elapsed, so
    every policy retires the same rank-wide refresh bandwidth; JEDEC's
    eight-deferral allowance becomes ``defer_slack = 8 * period`` of
    schedule slip before a refresh is forced over pending demand.

    The three policies differ only in *when* a scope refreshes:

    * ``baseline`` -- on-deadline all-bank REF: demand issues while it
      beats the deadline, then the rank closes and refreshes.
    * ``darp`` -- deferred per-bank REFpb, out of order: banks with no
      pending demand refresh early (up to 8 periods pulled in), busy
      banks defer until forced.
    * ``sarp`` -- like ``darp`` at sub-bank granularity: one sub-bank
      refreshes (half a ``tRFCpb`` -- half the rows) while its partner
      keeps serving hits through ERUCA's partial-precharge machinery.

    Backend safety: refresh candidates exist only while the demand
    queues are non-empty, and the demand-vs-refresh decision compares
    ``demand.issue_time`` (already ``max(now, ...)``-clamped the same
    way in every backend) against channel-state constants (``ref_due``
    and offsets of it) -- never raw ``now`` -- so all four execution
    backends pick identical winners.  While the queues are empty the
    controller settles owed refreshes in one idle catch-up at the next
    admission (:meth:`catch_up`), which keeps run termination trivially
    intact: a drained simulation proposes no further events.
    """

    def __init__(self, channel: Channel, queues: TransactionQueues,
                 policy: str) -> None:
        if policy not in REFRESH_POLICIES:
            raise ValueError(
                f"unknown refresh policy {policy!r}; known: "
                + ", ".join(REFRESH_POLICIES))
        self.channel = channel
        self.queues = queues
        self.policy = policy
        banks = len(channel.banks)
        subbanks = channel.banks[0].geometry.subbanks
        if policy == "baseline":
            scopes = [(-1, -1)]
        elif policy == "darp" or subbanks == 1:
            scopes = [(b, -1) for b in range(banks)]
        else:
            scopes = [(b, s) for b in range(banks)
                      for s in range(subbanks)]
        #: Scope rotation order of one tREFI round, (bank, sub-bank)
        #: with -1 as "all" wildcards.
        self.scopes = scopes
        self.period = max(1, channel.timing.tREFI // len(scopes))
        self.defer_slack = 8 * self.period
        #: Scopes still owed a refresh this round, deadline order.
        self.rotation = list(scopes)
        channel.resources.init_refresh_schedule(self.period)
        #: Memoised (bank, sub-bank) pairs with schedulable demand;
        #: ``None`` = stale (queue membership changed since computed).
        self._busy: Optional[Set[Tuple[int, int]]] = None

    # -- internals ---------------------------------------------------------

    def _busy_pairs(self) -> Set[Tuple[int, int]]:
        busy = self._busy
        if busy is None:
            busy = {(txn.bank_index, txn.coords.subbank)
                    for txn in self.queues.schedulable()}
            self._busy = busy
        return busy

    def _scope_idle(self, scope: Tuple[int, int],
                    busy: Set[Tuple[int, int]]) -> bool:
        bank_index, subbank = scope
        if subbank >= 0:
            return (bank_index, subbank) not in busy
        return not any(b == bank_index for b, _ in busy)

    def _chain(self, now: int, scope: Tuple[int, int],
               clamp: int) -> Candidate:
        """Next step of refreshing ``scope``: close its first open slot,
        or the REF/REFpb itself once the scope is fully precharged.

        ``clamp`` is the earliest the policy may act (the deadline for
        baseline, the 8-period pull-in bound for darp/sarp).
        """
        bank_index, subbank = scope
        channel = self.channel
        open_slots = channel.refresh_scope_open(bank_index, subbank)
        if open_slots:
            bi, key = open_slots[0]
            t = channel.earliest_precharge(bi, key)
            if t < clamp:
                t = clamp
            if t < now:
                t = now
            return Candidate(t, PRIO_REFRESH, None, CommandKind.PRE,
                             victim=(bi, key),
                             cause=PrechargeCause.REFRESH,
                             seq=_policy_seq(bi, key))
        t = channel.earliest_refresh(bank_index, subbank)
        if t < clamp:
            t = clamp
        if t < now:
            t = now
        kind = CommandKind.REF if bank_index < 0 else CommandKind.REFPB
        return Candidate(t, PRIO_REFRESH, None, kind,
                         victim=(bank_index, (subbank, -1)))

    def _opportunistic(self, now: int) -> Optional[Candidate]:
        """DARP/SARP pull-in: refresh the oldest-owed scope that has no
        pending demand and no open rows (no closes ever race demand)."""
        busy = self._busy_pairs()
        channel = self.channel
        clamp = channel.resources.ref_due - self.defer_slack
        for scope in self.rotation:
            if not self._scope_idle(scope, busy):
                continue
            bank_index, subbank = scope
            if channel.refresh_scope_open(bank_index, subbank):
                continue
            t = channel.earliest_refresh(bank_index, subbank)
            if t < clamp:
                t = clamp
            if t < now:
                t = now
            kind = (CommandKind.REF if bank_index < 0
                    else CommandKind.REFPB)
            return Candidate(t, PRIO_REFRESH, None, kind,
                             victim=(bank_index, (subbank, -1)))
        return None

    # -- scheduler-facing --------------------------------------------------

    def arbitrate(self, now: int,
                  demand: Optional[Candidate]) -> Optional[Candidate]:
        """Pick between the demand winner and the refresh machine.

        Called once per peek while the queues are non-empty.
        """
        due = self.channel.resources.ref_due
        if self.policy == "baseline":
            if demand is not None and demand.issue_time < due:
                return demand
            return self._chain(now, self.rotation[0], due)
        forced_at = due + self.defer_slack
        if demand is None or demand.issue_time >= forced_at:
            # Out of slack: the oldest owed scope refreshes now, closing
            # rows over demand if it must.
            return self._chain(now, self.rotation[0], due - self.defer_slack)
        cand = self._opportunistic(now)
        if cand is not None and (cand.issue_time, cand.priority) < \
                (demand.issue_time, demand.priority):
            return cand
        return demand

    def note_refresh(self, candidate: Candidate) -> None:
        """A REF/REFpb committed: retire one owed period and advance the
        scope rotation."""
        self.channel.resources.retire_refresh()
        bank_index, slot = candidate.victim
        scope = (bank_index, slot[0])
        try:
            self.rotation.remove(scope)
        except ValueError:
            pass
        if not self.rotation:
            self.rotation = list(self.scopes)

    def catch_up(self, time: int, note_bank_change) -> Tuple[int, int]:
        """Settle refreshes owed across an idle span, at admission time.

        While the queues are empty the scheduler proposes no refresh
        candidates (so drained runs terminate); a controller with no
        demand would in reality keep refreshing on schedule.  When a
        transaction arrives at ``time`` with refreshes owed, this
        replays that schedule: close any open rows (idle-close may have
        beaten us to it), then issue on-deadline all-bank REFs until
        the deadline passes ``time``.  Each all-bank REF covers a whole
        rotation round, so it retires ``len(scopes)`` owed periods.

        Returns ``(closes, refreshes)`` issued so the controller can
        count them; the commands enter the device log (the validator
        sees them) but bypass the accounting observer -- the span they
        occupy is queue-empty time by construction.
        """
        resources = self.channel.resources
        if resources.ref_due > time:
            return 0, 0
        channel = self.channel
        closes = refreshes = 0
        for bi, key in channel.refresh_scope_open():
            channel.issue_precharge(bi, key,
                                    channel.earliest_precharge(bi, key),
                                    PrechargeCause.REFRESH)
            note_bank_change(bi)
            closes += 1
        banks = range(len(channel.banks))
        while resources.ref_due <= time:
            t = channel.earliest_refresh()
            if t < resources.ref_due:
                t = resources.ref_due
            channel.issue_refresh(t)
            resources.ref_due += resources.ref_period * len(self.scopes)
            refreshes += 1
            for bi in banks:
                note_bank_change(bi)
        self.rotation = list(self.scopes)
        return closes, refreshes

    def forced_horizon(self) -> int:
        """Latest instant this channel can run ahead to without missing
        a forced refresh (the sharded loop's run-ahead bound)."""
        due = self.channel.resources.ref_due
        if self.policy == "baseline":
            return due
        return due + self.defer_slack


class Scheduler:
    """Candidate generation and FR-FCFS selection for one channel.

    ``idle_close_ps`` enables the adaptive open-page policy (Tab. III):
    an open row with no pending requests is speculatively closed after
    that much idle time, hiding the tRP of a future conflict.  ``None``
    keeps rows open until a conflict forces a precharge.

    The controller must report every event that can change candidates:
    :meth:`note_enqueue` when a transaction is admitted,
    :meth:`note_remove` when a column command retires one, and
    :meth:`note_bank_change` when a committed command touched a bank's
    FSM.  Anything missed would silently stale the incremental cache, so
    the golden-digest tests run both paths over every configuration.
    """

    def __init__(self, channel: Channel, queues: TransactionQueues,
                 idle_close_ps: Optional[int] = None,
                 incremental: Optional[bool] = None,
                 refresh_policy: Optional[str] = None) -> None:
        self.channel = channel
        self.queues = queues
        self.idle_close_ps = idle_close_ps
        self.incremental = INCREMENTAL_DEFAULT if incremental is None \
            else incremental
        #: The refresh machine, or ``None`` when the timing preset has
        #: refresh disabled (the historical machine: zero overhead, and
        #: schedules stay bit-identical to pre-refresh builds).
        self.refresh: Optional[RefreshScheduler] = (
            RefreshScheduler(channel, queues, refresh_policy or "baseline")
            if channel.timing.refresh_enabled else None)
        #: Perf counters (copied into ControllerStats once, at result
        #: collection -- :meth:`ChannelController.collect_perf_counters`).
        self.peeks = 0
        self.candidates_built = 0
        #: Candidates the selection loop actually compared.  The
        #: reference path examines every rebuilt candidate per peek; the
        #: table path examines one pre-reduced winner per (bank, class).
        self.candidates_examined = 0
        #: Monotone mutation counter: bumped by every change
        #: notification (enqueue, retire, bank FSM change), i.e.
        #: whenever a fresh :meth:`best` could answer differently.
        #: :meth:`ChannelController.cached_peek` keys its cache on it,
        #: so a peek is recomputed exactly when the queues or bank
        #: state were touched since the previous one.
        self.mutations = 0
        # -- incremental state ------------------------------------------
        self._seq = 0
        #: Whether queue membership changed since the last peek.  The
        #: drain source is a pure function of queue contents (the
        #: watermark state machine only advances when a length
        #: changes), so peeks in between skip the drain-mode
        #: re-evaluation entirely.
        self._queues_changed = True
        #: Which queue the current membership was built from ('R'/'W'),
        #: or None before the first peek.
        self._source: Optional[str] = None
        #: Schedulable transactions per bank, in queue order.
        self._bank_txns: Dict[int, List[Transaction]] = {}
        #: Cached selection tables per bank, holding candidates with
        #: *bank-local* issue times (the channel-resource floor and the
        #: ``now`` clamp are re-applied at selection).  Banks with no
        #: candidates of the kind are absent from the respective dict.
        self._col_tables: Dict[int, ColTable] = {}
        self._aux_tables: Dict[int, AuxTables] = {}
        #: Banks whose cached candidates must be rebuilt.
        self._dirty: Set[int] = set()
        #: Channel-resource floor lookups, bound once (the resources
        #: object lives as long as the channel).  Saves the
        #: ``self.channel.resources.*`` attribute chain on every peek.
        resources = channel.resources
        self._res_earliest_column = resources.earliest_column
        self._res_earliest_act = resources.earliest_act
        self._res_earliest_precharge = resources.earliest_precharge
        #: Reusable return vehicle for :meth:`_best_incremental`: one
        #: peek's winner is always consumed (committed or discarded)
        #: before the next peek of the same scheduler overwrites it,
        #: and nothing downstream stores the object itself -- the
        #: simulator's peek cache holds at most the latest one per
        #: channel, and the accounting observer copies scalar fields.
        self._scratch = Candidate(0, 0, None, CommandKind.PRE)

    # -- transaction preparation (memoised) ------------------------------

    def _prepare(self, txn: Transaction) -> None:
        """Fill the transaction's scheduler caches once."""
        c = txn.coords
        bank_index = self.channel.bank_index(c)
        bank = self.channel.banks[bank_index]
        txn.bank_index = bank_index
        txn.slot = bank.slot_key(c.subbank, c.row)
        if bank.row_layout is not None and bank.geometry.subbanks == 2:
            txn.plane = bank.row_layout.plane_id(c.row, c.subbank,
                                                 bank.rap)
            txn.mwl = bank.row_layout.mwl_tag(c.row)

    # -- change notifications (controller-facing) -------------------------

    def note_enqueue(self, txn: Transaction) -> None:
        """A transaction entered the queues: prepare it and track it."""
        if txn.bank_index < 0:
            self._prepare(txn)
        if txn.seq < 0:
            txn.seq = self._seq
            self._seq += 1
        self.mutations += 1
        self._queues_changed = True
        if self.refresh is not None:
            self.refresh._busy = None
        # Only fold it into the membership if it joins the queue the
        # current candidate set was built from; otherwise the source
        # check in best() picks it up on the next drain-mode flip.
        if self._source == ('R' if txn.is_read else 'W'):
            self._bank_txns.setdefault(txn.bank_index, []).append(txn)
            self._dirty.add(txn.bank_index)

    def note_remove(self, txn: Transaction) -> None:
        """A column command retired ``txn``; drop it from its bank."""
        self.mutations += 1
        self._queues_changed = True
        if self.refresh is not None:
            self.refresh._busy = None
        txns = self._bank_txns.get(txn.bank_index)
        if txns is not None:
            try:
                txns.remove(txn)
            except ValueError:
                pass
        self._dirty.add(txn.bank_index)

    def note_bank_change(self, bank_index: int) -> None:
        """A committed command changed this bank's FSM state."""
        self.mutations += 1
        self._dirty.add(bank_index)

    # -- reference path ----------------------------------------------------

    def _pending_hits(self, txns: List[Transaction]
                      ) -> Dict[Tuple[int, SlotKey], int]:
        """Oldest arrival per (bank, slot) whose open row still has hits."""
        hits: Dict[Tuple[int, SlotKey], int] = {}
        banks = self.channel.banks
        for txn in txns:
            if txn.bank_index < 0:
                self._prepare(txn)
            slot = banks[txn.bank_index].slots[txn.slot]
            if slot.active_row == txn.coords.row:
                loc = (txn.bank_index, txn.slot)
                if loc not in hits or txn.arrival_time < hits[loc]:
                    hits[loc] = txn.arrival_time
        return hits

    def _policy_closes(self, now: int,
                       hits: Dict[Tuple[int, SlotKey], int]
                       ) -> List[Candidate]:
        """Adaptive open-page: close rows idle past the threshold."""
        out: List[Candidate] = []
        banks = self.channel.banks
        for loc in self.channel.open_slots:
            if loc in hits:
                continue  # a pending request still wants this row
            bank_index, key = loc
            slot = banks[bank_index].slots[key]
            due = slot.last_use + self.idle_close_ps
            t = max(now, due,
                    self.channel.earliest_precharge(bank_index, key))
            out.append(Candidate(t, PRIO_POLICY, None, CommandKind.PRE,
                                 victim=loc,
                                 cause=PrechargeCause.POLICY,
                                 seq=_policy_seq(bank_index, key)))
        return out

    def candidates(self, now: int) -> List[Candidate]:
        """Every issuable command, rebuilt from scratch (reference path).

        This is the equivalence oracle the incremental path is tested
        against; it is also what ``incremental=False`` schedulers use.
        """
        txns = self.queues.schedulable()
        if not txns and self.idle_close_ps is None:
            return []
        hits = self._pending_hits(txns)
        out: List[Candidate] = []
        if self.idle_close_ps is not None:
            out.extend(self._policy_closes(now, hits))
        if not txns:
            self.candidates_built += len(out)
            return out
        seen_acts: set = set()
        seen_pres: set = set()
        banks = self.channel.banks
        for txn in txns:
            c = txn.coords
            bank = banks[txn.bank_index]
            verdict, victim_slot = bank.classify(
                c.subbank, c.row, txn.plane, txn.mwl, txn.slot)
            if verdict is ActivationVerdict.ROW_HIT:
                t = self.channel.earliest_column(c, not txn.is_read)
                out.append(Candidate(max(now, t), PRIO_COLUMN, txn,
                                     CommandKind.WR if not txn.is_read
                                     else CommandKind.RD, seq=txn.seq,
                                     arrival=txn.arrival_time,
                                     col_args=(not txn.is_read,
                                               c.bank_group,
                                               txn.bank_index)))
            elif verdict in (ActivationVerdict.ACT_OK,
                             ActivationVerdict.EWLR_HIT):
                slot = (txn.bank_index, txn.slot)
                if slot in seen_acts:
                    continue  # one ACT proposal per target slot
                seen_acts.add(slot)
                t = self.channel.earliest_act(c)
                out.append(Candidate(max(now, t), PRIO_ACT, txn,
                                     CommandKind.ACT, seq=txn.seq,
                                     arrival=txn.arrival_time))
            else:
                bank_index = txn.bank_index
                loc = (bank_index, victim_slot)
                # Anti-thrashing: do not close a row that an older (or
                # equally old) transaction still hits on.
                if loc in hits and hits[loc] <= txn.arrival_time:
                    continue
                if loc in seen_pres:
                    continue
                seen_pres.add(loc)
                cause = (PrechargeCause.PLANE_CONFLICT
                         if verdict is ActivationVerdict.PLANE_CONFLICT
                         else PrechargeCause.ROW_CONFLICT)
                # A PRE serving a pending read may *cancel* an in-flight
                # PCM write pulse (a no-op floor change on DRAM).
                t = self.channel.earliest_precharge(bank_index, victim_slot,
                                                    txn.is_read)
                out.append(Candidate(max(now, t), PRIO_PRE, txn,
                                     CommandKind.PRE, victim=loc,
                                     cause=cause, seq=txn.seq,
                                     arrival=txn.arrival_time))
        self.candidates_built += len(out)
        return out

    # -- incremental path --------------------------------------------------

    def _rebuild_all(self, txns: List[Transaction]) -> None:
        """Drain-mode flip (or first peek): regroup the whole source."""
        stale = set(self._col_tables) | set(self._aux_tables)
        self._bank_txns = {}
        for txn in txns:
            if txn.bank_index < 0:
                self._prepare(txn)
            if txn.seq < 0:
                txn.seq = self._seq
                self._seq += 1
            self._bank_txns.setdefault(txn.bank_index, []).append(txn)
        self._dirty = stale | set(self._bank_txns)
        if self.idle_close_ps is not None:
            self._dirty.update(loc[0] for loc in self.channel.open_slots)

    def _rebuild_bank(self, bank_index: int) -> None:
        """Recompute the bank-local selection tables of one bank.

        Issue times stored here exclude the channel-resource floor and
        the ``now`` clamp -- both are re-applied at selection, so a
        cached candidate never goes stale from *other* banks' traffic.
        A refresh blackout over this bank *is* folded in: it is
        bank-local state that only moves when a refresh commits, which
        dirties every bank in scope (so the fold can never go stale).
        """
        bank = self.channel.banks[bank_index]
        slots = bank.slots
        ru = self.channel.resources.ref_until
        rb = ru[bank_index] if ru is not None else None
        txns = self._bank_txns.get(bank_index, ())
        if self.idle_close_ps is None and len(txns) <= 1:
            # Most rebuilds see zero or one transaction (the committed
            # command retired the only pending one, or a lone arrival
            # dirtied an idle bank).  With no page policy and a single
            # transaction, the anti-thrashing hit map is provably empty
            # for every conflict verdict -- a hit on the own slot would
            # have classified as ROW_HIT -- so the general path's list,
            # set and dict machinery below is pure overhead here.
            if not txns:
                self._col_tables.pop(bank_index, None)
                self._aux_tables.pop(bank_index, None)
                return
            txn = txns[0]
            c = txn.coords
            # The head of Bank.classify, inlined: a hit or an own-slot
            # conflict resolves on one slot load, and a flat bank can
            # never plane-conflict.  Only the sub-banked
            # empty-own-slot case needs the full plane/EWLR scan.
            active = slots[txn.slot].active_row
            self.candidates_built += 1
            if active == c.row:  # ROW_HIT
                t = bank.earliest_column(c.subbank, c.row, not txn.is_read)
                if rb is not None and rb[c.subbank] > t:
                    t = rb[c.subbank]
                table = SelectionTable(
                    [(t, txn.arrival_time, txn.seq, txn)])
                self._col_tables[bank_index] = (
                    table, (not txn.is_read, c.bank_group, bank_index))
                self._aux_tables.pop(bank_index, None)
                return
            self._col_tables.pop(bank_index, None)
            if active is not None:  # OWN_ROW_CONFLICT
                verdict, victim_slot = None, txn.slot
                cause = PrechargeCause.ROW_CONFLICT
            elif (bank.geometry.subbanks == 1
                  or bank.row_layout is None):  # ACT_OK
                verdict, victim_slot = ActivationVerdict.ACT_OK, None
            else:
                verdict, victim_slot = bank.classify(
                    c.subbank, c.row, txn.plane, txn.mwl, txn.slot)
                cause = (PrechargeCause.PLANE_CONFLICT
                         if verdict is ActivationVerdict.PLANE_CONFLICT
                         else PrechargeCause.ROW_CONFLICT)
            if verdict in (ActivationVerdict.ACT_OK,
                           ActivationVerdict.EWLR_HIT):
                t = bank.earliest_act(c.subbank, c.row)
                if rb is not None and rb[c.subbank] > t:
                    t = rb[c.subbank]
                table = SelectionTable(
                    [(t, txn.arrival_time, txn.seq, txn)])
                self._aux_tables[bank_index] = (table, None, None)
            else:
                t = bank.earliest_precharge(victim_slot, txn.is_read)
                if rb is not None and rb[victim_slot[0]] > t:
                    t = rb[victim_slot[0]]
                table = SelectionTable(
                    [(t, txn.arrival_time, txn.seq, txn,
                      (bank_index, victim_slot), cause)])
                self._aux_tables[bank_index] = (None, table, None)
            return
        #: Oldest arrival per (bank, slot) whose open row still has
        #: hits; ``None`` until the first hit (most rebuilds see a
        #: single transaction, so the dict is usually never needed).
        hits: Optional[Dict[Tuple[int, SlotKey], int]] = None
        for txn in txns:
            if slots[txn.slot].active_row == txn.coords.row:
                loc = (bank_index, txn.slot)
                if hits is None:
                    hits = {loc: txn.arrival_time}
                elif loc not in hits or txn.arrival_time < hits[loc]:
                    hits[loc] = txn.arrival_time
        policies: List[tuple] = []
        if self.idle_close_ps is not None:
            for key, slot in slots.items():
                if slot.active_row is None:
                    continue
                loc = (bank_index, key)
                if hits is not None and loc in hits:
                    continue  # a pending request still wants this row
                t = max(slot.last_use + self.idle_close_ps,
                        bank.earliest_precharge(key))
                if rb is not None and rb[key[0]] > t:
                    t = rb[key[0]]
                policies.append((t, _NO_ARRIVAL,
                                 _policy_seq(bank_index, key), loc))
        cols: List[tuple] = []
        acts: List[tuple] = []
        pres: List[tuple] = []
        col_args: Optional[Tuple[bool, int, int]] = None
        seen_acts: set = set()
        seen_pres: set = set()
        seen_cols: set = set()
        for txn in txns:
            c = txn.coords
            verdict, victim_slot = bank.classify(
                c.subbank, c.row, txn.plane, txn.mwl, txn.slot)
            if verdict is ActivationVerdict.ROW_HIT:
                # All hits on one slot target the same open row, share
                # the same issue time and direction, and are visited in
                # (arrival, seq) order -- only the first can ever win,
                # so later duplicates are provably unselectable.
                if txn.slot in seen_cols:
                    continue
                seen_cols.add(txn.slot)
                # The drain mode fixes the direction and the bank fixes
                # (group, index), so col_args is one value per table.
                col_args = (not txn.is_read, c.bank_group, bank_index)
                t = bank.earliest_column(c.subbank, c.row, not txn.is_read)
                if rb is not None and rb[c.subbank] > t:
                    t = rb[c.subbank]
                cols.append((t, txn.arrival_time, txn.seq, txn))
            elif verdict in (ActivationVerdict.ACT_OK,
                             ActivationVerdict.EWLR_HIT):
                if txn.slot in seen_acts:
                    continue  # one ACT proposal per target slot
                seen_acts.add(txn.slot)
                t = bank.earliest_act(c.subbank, c.row)
                if rb is not None and rb[c.subbank] > t:
                    t = rb[c.subbank]
                acts.append((t, txn.arrival_time, txn.seq, txn))
            else:
                loc = (bank_index, victim_slot)
                if (hits is not None and loc in hits
                        and hits[loc] <= txn.arrival_time):
                    continue
                if victim_slot in seen_pres:
                    continue
                seen_pres.add(victim_slot)
                cause = (PrechargeCause.PLANE_CONFLICT
                         if verdict is ActivationVerdict.PLANE_CONFLICT
                         else PrechargeCause.ROW_CONFLICT)
                t = bank.earliest_precharge(victim_slot, txn.is_read)
                if rb is not None and rb[victim_slot[0]] > t:
                    t = rb[victim_slot[0]]
                pres.append((t, txn.arrival_time, txn.seq, txn, loc,
                             cause))
        self.candidates_built += (len(cols) + len(acts) + len(pres)
                                  + len(policies))
        if cols:
            self._col_tables[bank_index] = (SelectionTable(cols),
                                            col_args)
        else:
            self._col_tables.pop(bank_index, None)
        if acts or pres or policies:
            self._aux_tables[bank_index] = (
                SelectionTable(acts) if acts else None,
                SelectionTable(pres) if pres else None,
                SelectionTable(policies) if policies else None)
        else:
            self._aux_tables.pop(bank_index, None)

    def _best_incremental(self, now: int) -> Optional[Candidate]:
        if self._queues_changed:
            # Queue membership moved since the last peek: re-evaluate
            # the drain source (idempotent between length changes) and
            # regroup everything if it flipped.  Peeks triggered by
            # ACT/PRE commits leave the queues untouched and skip this.
            self._queues_changed = False
            txns = self.queues.schedulable()
            source = 'W' if txns is self.queues.writes else 'R'
            if source != self._source:
                self._source = source
                self._rebuild_all(txns)
        if self._dirty:
            rebuild = self._rebuild_bank
            for bank_index in self._dirty:
                rebuild(bank_index)
            self._dirty.clear()
        col_tables = self._col_tables
        aux_tables = self._aux_tables
        if not col_tables and not aux_tables:
            return None
        earliest_column = self._res_earliest_column
        select = SelectionTable.select
        # Class floors, already clamped to ``now``.  The ACT and PRE
        # floors are channel-wide, computed lazily once per peek and
        # shared by every bank; column floors are per bank (one
        # earliest_column call floors the bank's whole column table).
        #
        # Pruning: a table's effective winner time is >= max(t0, now)
        # whatever its floor turns out to be (floors only lift times),
        # so a table whose lower bound already loses to the running best
        # -- strictly on time, or tied on time with a worse priority --
        # is skipped without computing its floor.  Columns go first:
        # they carry the top priority and the smallest times on
        # row-hit-friendly workloads, so they set a tight bound that
        # prunes most ACT/PRE tables down to one integer compare.
        res_act = res_pre = None
        examined = 0
        best: Optional[tuple] = None
        best_col_args: Optional[Tuple[bool, int, int]] = None
        best_t = best_prio = 1 << 62
        best_key: Tuple[int, int, int, int] = (best_t, best_prio, 0, 0)
        for table, col_args in col_tables.values():
            t0 = table.t0
            lb = t0 if t0 > now else now
            if lb > best_t:
                continue
            floor = earliest_column(*col_args)
            if floor < now:
                floor = now
            # SelectionTable.select, inlined (the hottest few lines of
            # the simulator -- one winner per column table per peek).
            if t0 > floor:
                t, arrival, seq, entry = t0, table.a0, table.s0, table.e0
            elif table.single:
                t, arrival, seq, entry = floor, table.a0, table.s0, \
                    table.e0
            else:
                pos = bisect_right(table.times, floor)
                arrival, seq, i = table.pmin[pos - 1]
                t, entry = floor, table.entries[i]
            examined += 1
            if t <= best_t:
                key = (t, PRIO_COLUMN, arrival, seq)
                if key < best_key:
                    best, best_key = entry, key
                    best_t, best_prio = t, PRIO_COLUMN
                    best_col_args = col_args
        for act_table, pre_table, policy_table in aux_tables.values():
            if act_table is not None:
                lb = act_table.t0
                if lb < now:
                    lb = now
                if lb < best_t or (lb == best_t
                                   and PRIO_ACT <= best_prio):
                    if res_act is None:
                        res_act = self._res_earliest_act()
                        if res_act < now:
                            res_act = now
                    t, arrival, seq, entry = select(act_table, res_act)
                    examined += 1
                    if t <= best_t:
                        key = (t, PRIO_ACT, arrival, seq)
                        if key < best_key:
                            best, best_key = entry, key
                            best_t, best_prio = t, PRIO_ACT
            if pre_table is None and policy_table is None:
                continue
            for table, prio in ((pre_table, PRIO_PRE),
                                (policy_table, PRIO_POLICY)):
                if table is None:
                    continue
                lb = table.t0
                if lb < now:
                    lb = now
                if lb > best_t or (lb == best_t and prio > best_prio):
                    continue
                if res_pre is None:
                    res_pre = self._res_earliest_precharge()
                    if res_pre < now:
                        res_pre = now
                t, arrival, seq, entry = select(table, res_pre)
                examined += 1
                if t <= best_t:
                    key = (t, prio, arrival, seq)
                    if key < best_key:
                        best, best_key = entry, key
                        best_t, best_prio = t, prio
        self.candidates_examined += examined
        if best is None:
            return None
        # The winner is materialised into the scratch Candidate (the
        # cached tuples are shared across peeks -- never mutated).
        out = self._scratch
        out.issue_time = best_t
        out.priority = best_prio
        if best_prio == PRIO_COLUMN:
            _, out.arrival, out.seq, out.txn = best
            out.kind = CommandKind.WR if best_col_args[0] \
                else CommandKind.RD
            out.victim = out.cause = None
            out.col_args = best_col_args
        elif best_prio == PRIO_ACT:
            _, out.arrival, out.seq, out.txn = best
            out.kind = CommandKind.ACT
            out.victim = out.cause = out.col_args = None
        elif best_prio == PRIO_PRE:
            _, out.arrival, out.seq, out.txn, out.victim, out.cause = \
                best
            out.kind = CommandKind.PRE
            out.col_args = None
        else:
            _, out.arrival, out.seq, out.victim = best
            out.txn = None
            out.kind = CommandKind.PRE
            out.cause = PrechargeCause.POLICY
            out.col_args = None
        return out

    # -- selection ---------------------------------------------------------

    def best(self, now: int) -> Optional[Candidate]:
        self.peeks += 1
        if self.incremental:
            demand = self._best_incremental(now)
        else:
            cands = self.candidates(now)
            self.candidates_examined += len(cands)
            demand = (min(cands, key=Candidate.sort_key)
                      if cands else None)
        refresh = self.refresh
        if refresh is not None and self.queues.pending():
            # Refresh arbitration is computed fresh per peek *after*
            # demand selection and is shared verbatim by both selection
            # paths, so path equivalence is unaffected.
            return refresh.arbitrate(now, demand)
        return demand
