"""FR-FCFS command scheduling with the ERUCA operation flow (Fig. 5).

For every schedulable transaction the scheduler derives the *next* DRAM
command it needs -- a column command on a row hit, an ACT when its
(sub-)bank is ready (including EWLR hits), or a precharge of whichever slot
blocks it (its own row conflict, or a paired sub-bank's plane conflict) --
together with the earliest legal issue time from the device model.

Priority is first-ready, first-come-first-serve with column-over-row
ordering: among the candidates that can issue soonest, row-buffer hits win,
then older transactions.  A precharge that would close a row other, older
transactions still hit on is suppressed (anti-thrashing guard), which also
prevents inter-transaction livelock.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.controller.queue import TransactionQueues
from repro.controller.transaction import Transaction
from repro.core.subbank import ActivationVerdict
from repro.dram.bank import SlotKey
from repro.dram.commands import CommandKind, PrechargeCause
from repro.dram.device import Channel

#: Priority classes, lower is better: row hits beat ACTs beat precharges;
#: speculative (page-policy) closes come last.
PRIO_COLUMN = 0
PRIO_ACT = 1
PRIO_PRE = 2
PRIO_POLICY = 3


@dataclass
class Candidate:
    """One issuable command proposal.

    ``txn`` is the queued transaction the command serves; policy
    precharges serve no transaction and carry ``txn = None``.
    """

    issue_time: int
    priority: int
    txn: Optional[Transaction]
    kind: CommandKind
    victim: Optional[Tuple[int, SlotKey]] = None
    cause: Optional[PrechargeCause] = None

    def sort_key(self) -> Tuple[int, int, int]:
        arrival = self.txn.arrival_time if self.txn is not None \
            else 1 << 62
        return (self.issue_time, self.priority, arrival)


class Scheduler:
    """Candidate generation and FR-FCFS selection for one channel.

    ``idle_close_ps`` enables the adaptive open-page policy (Tab. III):
    an open row with no pending requests is speculatively closed after
    that much idle time, hiding the tRP of a future conflict.  ``None``
    keeps rows open until a conflict forces a precharge.
    """

    def __init__(self, channel: Channel, queues: TransactionQueues,
                 idle_close_ps: Optional[int] = None) -> None:
        self.channel = channel
        self.queues = queues
        self.idle_close_ps = idle_close_ps

    def _prepare(self, txn: Transaction) -> None:
        """Fill the transaction's scheduler caches once."""
        c = txn.coords
        bank_index = self.channel.bank_index(c)
        bank = self.channel.banks[bank_index]
        txn.bank_index = bank_index
        txn.slot = bank.slot_key(c.subbank, c.row)
        if bank.row_layout is not None and bank.geometry.subbanks == 2:
            txn.plane = bank.row_layout.plane_id(c.row, c.subbank,
                                                 bank.rap)
            txn.mwl = bank.row_layout.mwl_tag(c.row)

    def _pending_hits(self, txns: List[Transaction]
                      ) -> Dict[Tuple[int, SlotKey], int]:
        """Oldest arrival per (bank, slot) whose open row still has hits."""
        hits: Dict[Tuple[int, SlotKey], int] = {}
        banks = self.channel.banks
        for txn in txns:
            if txn.bank_index < 0:
                self._prepare(txn)
            slot = banks[txn.bank_index].slots[txn.slot]
            if slot.active_row == txn.coords.row:
                loc = (txn.bank_index, txn.slot)
                if loc not in hits or txn.arrival_time < hits[loc]:
                    hits[loc] = txn.arrival_time
        return hits

    def _policy_closes(self, now: int,
                       hits: Dict[Tuple[int, SlotKey], int]
                       ) -> List[Candidate]:
        """Adaptive open-page: close rows idle past the threshold."""
        out: List[Candidate] = []
        banks = self.channel.banks
        for loc in self.channel.open_slots:
            if loc in hits:
                continue  # a pending request still wants this row
            bank_index, key = loc
            slot = banks[bank_index].slots[key]
            due = slot.last_use + self.idle_close_ps
            t = max(now, due,
                    self.channel.earliest_precharge(bank_index, key))
            out.append(Candidate(t, PRIO_POLICY, None, CommandKind.PRE,
                                 victim=loc,
                                 cause=PrechargeCause.POLICY))
        return out

    def candidates(self, now: int) -> List[Candidate]:
        txns = self.queues.schedulable()
        if not txns and self.idle_close_ps is None:
            return []
        hits = self._pending_hits(txns)
        out: List[Candidate] = []
        if self.idle_close_ps is not None:
            out.extend(self._policy_closes(now, hits))
        if not txns:
            return out
        seen_acts: set = set()
        seen_pres: set = set()
        banks = self.channel.banks
        for txn in txns:
            c = txn.coords
            bank = banks[txn.bank_index]
            verdict, victim_slot = bank.classify(
                c.subbank, c.row, txn.plane, txn.mwl, txn.slot)
            if verdict is ActivationVerdict.ROW_HIT:
                t = self.channel.earliest_column(c, not txn.is_read)
                out.append(Candidate(max(now, t), PRIO_COLUMN, txn,
                                     CommandKind.WR if not txn.is_read
                                     else CommandKind.RD))
            elif verdict in (ActivationVerdict.ACT_OK,
                             ActivationVerdict.EWLR_HIT):
                slot = (txn.bank_index, txn.slot)
                if slot in seen_acts:
                    continue  # one ACT proposal per target slot
                seen_acts.add(slot)
                t = self.channel.earliest_act(c)
                out.append(Candidate(max(now, t), PRIO_ACT, txn,
                                     CommandKind.ACT))
            else:
                bank_index = txn.bank_index
                loc = (bank_index, victim_slot)
                # Anti-thrashing: do not close a row that an older (or
                # equally old) transaction still hits on.
                if loc in hits and hits[loc] <= txn.arrival_time:
                    continue
                if loc in seen_pres:
                    continue
                seen_pres.add(loc)
                cause = (PrechargeCause.PLANE_CONFLICT
                         if verdict is ActivationVerdict.PLANE_CONFLICT
                         else PrechargeCause.ROW_CONFLICT)
                t = self.channel.earliest_precharge(bank_index, victim_slot)
                out.append(Candidate(max(now, t), PRIO_PRE, txn,
                                     CommandKind.PRE, victim=loc,
                                     cause=cause))
        return out

    def best(self, now: int) -> Optional[Candidate]:
        cands = self.candidates(now)
        if not cands:
            return None
        return min(cands, key=Candidate.sort_key)
