"""The PCM-PALP backend: phase-change memory, partition-level parallelism.

PALP (Arjomand et al.) transplants the plane/partition-conflict idea to
phase-change memory, whose device physics invert DRAM's assumptions:

* **Asymmetric RAS-to-CAS**: a read must sense resistive cells through a
  long ``tRCD`` (48 ns here), but a *write* opens the row almost
  immediately (``tRCD_WR`` = 12 ns) because the slow part -- the
  programming pulse -- happens after the burst, not before it.
* **Write pulse** (``tWRP``): after the WR burst the partition spends
  ~150 ns programming cells.  No column command may address the slot
  until the pulse completes.
* **Write cancellation** (``tWCT``): a PRE may abort an in-flight pulse
  once ``tWCT`` has elapsed since the burst, so a pending read is not
  held hostage for the full pulse; the cancelled write replays after the
  next ACT (modelled as a ``tWRP`` column-readiness gate).
* **No refresh**: PCM cells are non-volatile, so the command vocabulary
  has no ``REF``/``REFPB`` and the backend rejects refresh knobs.

Reads are non-destructive (no row restore), hence the short ``tRP`` and
the read-heavy energy asymmetry in :meth:`EnergyParams.pcm`.
"""

from __future__ import annotations

from repro.dram.backends.base import (
    MemoryTechBackend,
    register_backend,
    rule,
)
from repro.dram.power import EnergyParams

PCM_PALP_BACKEND = register_backend(MemoryTechBackend(
    name="pcm_palp",
    description="PCM with PALP partition-level parallelism: asymmetric "
                "tRCD, 150 ns write pulses with cancellation, no refresh",
    commands=("ACT", "RD", "WR", "PRE", "PRE_PARTIAL"),
    rules={
        "tRCD": rule((48, "ns")),
        "tRCD_WR": rule((12, "ns")),
        "tRP": rule((10, "ns")),
        "tRAS": rule((50, "ns")),
        "tRC": rule((60, "ns")),
        "tCL": rule((12, "ns")),
        "tCWL": rule((5, "ns")),
        "tCCD_S": rule((4, "clk")),
        "tCCD_L": rule((4, "clk")),
        "tWTR_S": rule((2.5, "ns")),
        "tWTR_L": rule((2.5, "ns")),
        "tRRD": rule((4, "clk")),
        "tWR": rule((6, "ns")),
        "tRTP": rule((5, "ns")),
        "tWRP": rule((150, "ns")),
        "tWCT": rule((7.5, "ns")),
    },
    burst_length=8,
    reference_clock_ps=750,
    default_frequency_hz=1.333e9,
    refresh_grades_ns={},
    trefi_ns=0.0,
    energy=EnergyParams.pcm(),
))
