"""The GDDR5 backend: ``examples/gddr5_extension.py`` made first-class.

The example script approximated GDDR5 by running the DDR4 rule table at
2.5 GHz; this backend gives the graphics part its own table: tighter
core timings (graphics dies trade density for speed), a 2.5 GHz default
channel, bank-group CAS scoping like DDR4, and a short-tRFC refresh
(smaller pages, faster refresh bursts, a 1.9 us tREFI).
"""

from __future__ import annotations

from repro.dram.backends.base import (
    MemoryTechBackend,
    register_backend,
    rule,
)
from repro.dram.power import EnergyParams

GDDR5_BACKEND = register_backend(MemoryTechBackend(
    name="gddr5",
    description="GDDR5 graphics DRAM: 2.5 GHz channel, tighter core "
                "timings, short-tRFC refresh",
    commands=("ACT", "RD", "WR", "PRE", "PRE_PARTIAL", "REF", "REFPB"),
    rules={
        "tRCD": rule((14, "ns")),
        "tRP": rule((14, "ns")),
        "tRAS": rule((28, "ns")),
        "tRC": rule((42, "ns")),
        "tCL": rule((15, "ns")),
        "tCWL": rule((15, "ns"), subtract_clk=8),
        "tCCD_S": rule((4, "clk")),
        "tCCD_L": rule((3, "ns")),
        "tWTR_S": rule((2.5, "ns")),
        "tWTR_L": rule((7.5, "ns")),
        "tRRD": rule((5.5, "ns")),
        "tWR": rule((12, "ns")),
        "tRTP": rule((5, "ns")),
        "tFAW": rule((23, "ns")),
    },
    burst_length=8,
    reference_clock_ps=400,
    default_frequency_hz=2.5e9,
    refresh_grades_ns={"8Gb": (110.0, 60.0)},
    trefi_ns=1900.0,
    energy=EnergyParams.gddr5(),
))
