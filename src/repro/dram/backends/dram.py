"""The DDR4 backend: the paper's evaluation machine, as a rule table.

This table resolves byte-identically to
:func:`repro.dram.timing.ddr4_timings` at every bus frequency (enforced
by ``tests/dram/test_backends.py``), so the ``dram`` backend *is* the
pre-refactor model: every preset keeps its behaviour digest.

The idioms it encodes (Tab. III, 18-18-18 DDR4 at 1.33 GHz):

* CAS latencies are constant in **nanoseconds** across Fig. 14's
  frequency sweep -- expressed as 18 clocks at the 1.333 GHz reference
  (``ref_clk`` terms, 750 ps each);
* bus-side quantities (``tCCD_S``, ``tRRD``) are constant in **clocks**;
* ``tCCD_L`` is one fixed 200 MHz DRAM **core clock** (5 ns);
* analog core latencies (``tRAS``, ``tWR``, ...) are constant in ns;
* ``tCWL`` is CAS minus four clocks, falling back to CAS when the
  subtraction goes non-positive.
"""

from __future__ import annotations

from repro.dram.backends.base import (
    MemoryTechBackend,
    register_backend,
    rule,
)
from repro.dram.power import EnergyParams
from repro.dram.timing import DDR4_TREFI_NS, REFRESH_DENSITY_GRADES_NS

#: 1.333 GHz reference bus period: 18 of these is the 13.5 ns CAS.
_DDR4_REF_CLK_PS = 750

DRAM_BACKEND = register_backend(MemoryTechBackend(
    name="dram",
    description="DDR4 (Tab. III): 18-18-18 at a 1.333 GHz channel, "
                "200 MHz core, opt-in JEDEC refresh",
    commands=("ACT", "RD", "WR", "PRE", "PRE_PARTIAL", "REF", "REFPB"),
    rules={
        "tRCD": rule((18, "ref_clk")),
        "tRP": rule((18, "ref_clk")),
        "tRAS": rule((32, "ns")),
        "tRC": rule((32, "ns"), (18, "ref_clk")),
        "tCL": rule((18, "ref_clk")),
        "tCWL": rule((18, "ref_clk"), subtract_clk=4),
        "tCCD_S": rule((4, "clk")),
        "tCCD_L": rule((1, "core_clk")),
        "tWTR_S": rule((2.5, "ns")),
        "tWTR_L": rule((7.5, "ns")),
        "tRRD": rule((4, "clk")),
        "tWR": rule((15, "ns")),
        "tRTP": rule((7.5, "ns")),
        "tFAW": rule((25, "ns")),
    },
    burst_length=8,
    reference_clock_ps=_DDR4_REF_CLK_PS,
    default_frequency_hz=1.333e9,
    refresh_grades_ns=dict(REFRESH_DENSITY_GRADES_NS),
    trefi_ns=DDR4_TREFI_NS,
    energy=EnergyParams(),
))
