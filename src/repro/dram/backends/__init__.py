"""Pluggable memory-technology backends (see :mod:`.base`).

Importing this package registers the three shipped technologies --
``dram`` (DDR4), ``pcm_palp``, and ``gddr5`` -- so
``get_backend("dram")`` works as soon as anything imports
``repro.dram.backends``.
"""

from repro.dram.backends.base import (
    MemoryTechBackend,
    TimingRule,
    TimingTerm,
    backend_names,
    get_backend,
    register_backend,
    rule,
)
from repro.dram.backends.dram import DRAM_BACKEND
from repro.dram.backends.gddr5 import GDDR5_BACKEND
from repro.dram.backends.pcm_palp import PCM_PALP_BACKEND

__all__ = [
    "MemoryTechBackend",
    "TimingRule",
    "TimingTerm",
    "backend_names",
    "get_backend",
    "register_backend",
    "rule",
    "DRAM_BACKEND",
    "PCM_PALP_BACKEND",
    "GDDR5_BACKEND",
]
