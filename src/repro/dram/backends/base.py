"""The pluggable memory-technology backend interface.

A :class:`MemoryTechBackend` declares everything that distinguishes one
memory technology from another **as data** (in the spirit of hazard /
collision tables in classic controller RTL): the command vocabulary, a
timing-rule table resolving each :class:`~repro.dram.timing.TimingParams`
field from frequency-aware terms, the refresh semantics (density grades
and cadence, or none at all), and the rank power model.  The rest of the
machine -- device FSMs, channel resources, scheduler, validator,
accounting -- is technology-agnostic and consumes the resolved
:class:`~repro.dram.timing.TimingParams`.

Three backends ship:

``dram``
    The paper's DDR4 model.  Its rule table resolves byte-identically to
    :func:`repro.dram.timing.ddr4_timings` at every frequency (enforced
    by test), so every pre-existing preset keeps its behaviour digest.

``pcm_palp``
    Phase-change memory with PALP-style partition-level parallelism:
    asymmetric ``tRCD`` (writes open a row fast, the slow programming
    pulse happens after the burst), a long write pulse ``tWRP`` blocking
    the slot, write cancellation after ``tWCT`` so a pending read can
    steal the slot, and no refresh (PCM cells are non-volatile).

``gddr5``
    The graphics part promoted from ``examples/gddr5_extension.py``:
    a 2.5 GHz channel, tighter core timings, and a short-tRFC refresh.

Timing-rule terms
-----------------

Each timing parameter is the sum of :class:`TimingTerm` values.  A term
is a number plus a unit:

``ns`` / ``ps``
    Analog core-side latencies, constant across speed grades.
``clk``
    Bus clocks at the *requested* frequency (scales with the channel).
``core_clk``
    DRAM core clocks (fixed 5 ns; the tCCD_L/tTCW scale).
``ref_clk``
    Bus clocks at the backend's *reference* frequency -- how DDR4 keeps
    CAS latency constant in nanoseconds across Fig. 14's sweep.

``subtract_clk`` handles DDR4's write latency idiom
(``tCWL = tCL - 4 clocks``, falling back to ``tCL`` when the subtraction
goes non-positive at low frequencies).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Tuple

from repro.dram.commands import command_set
from repro.dram.power import EnergyParams
from repro.dram.timing import (
    DRAM_CORE_PERIOD_PS,
    TimingParams,
    clock_period_ps,
    ns,
)


@dataclass(frozen=True)
class TimingTerm:
    """One additive term of a timing rule (see the module docstring)."""

    value: float
    unit: str = "ns"

    def resolve(self, tck: int, ref_clk_ps: int) -> int:
        """This term in integer picoseconds at bus period ``tck``."""
        if self.unit == "ns":
            return ns(self.value)
        if self.unit == "ps":
            return int(round(self.value))
        if self.unit == "clk":
            return int(round(self.value * tck))
        if self.unit == "core_clk":
            return int(round(self.value * DRAM_CORE_PERIOD_PS))
        if self.unit == "ref_clk":
            return int(round(self.value * ref_clk_ps))
        raise ValueError(f"unknown timing-term unit {self.unit!r}")


@dataclass(frozen=True)
class TimingRule:
    """How one ``TimingParams`` field resolves at a given frequency.

    The resolved value is ``sum(terms) - subtract_clk * tCK``; when that
    is non-positive the rule falls back to the plain term sum (DDR4's
    ``tCWL`` idiom).
    """

    terms: Tuple[TimingTerm, ...]
    subtract_clk: int = 0

    def resolve(self, tck: int, ref_clk_ps: int) -> int:
        """The field's integer-picosecond value at bus period ``tck``."""
        total = sum(t.resolve(tck, ref_clk_ps) for t in self.terms)
        if self.subtract_clk:
            adjusted = total - self.subtract_clk * tck
            if adjusted > 0:
                return adjusted
        return total


def rule(*terms, subtract_clk: int = 0) -> TimingRule:
    """Shorthand: ``rule((18, "ref_clk"), (32, "ns"))``."""
    return TimingRule(
        terms=tuple(TimingTerm(value, unit) for value, unit in terms),
        subtract_clk=subtract_clk)


@dataclass(frozen=True)
class MemoryTechBackend:
    """One memory technology, declared as data (module docstring)."""

    #: Registry key (``SystemConfig.backend``) and display name.
    name: str
    description: str
    #: Command vocabulary as :class:`CommandKind` member names; command
    #: logs from this backend may contain nothing else.
    commands: Tuple[str, ...]
    #: Timing-rule table: one rule per ``TimingParams`` field (``tCK``
    #: and ``burst_length`` are handled separately).
    rules: Mapping[str, TimingRule]
    #: Burst length in beats.
    burst_length: int
    #: Bus period anchoring ``ref_clk`` terms (DDR4: 750 ps = 1.333 GHz).
    reference_clock_ps: int
    #: The frequency presets run at unless overridden.
    default_frequency_hz: float
    #: ``(tRFC, tRFCpb)`` in ns per die-density grade; empty means the
    #: technology has no refresh at all (PCM).
    refresh_grades_ns: Mapping[str, Tuple[float, float]] = \
        field(default_factory=dict)
    #: Average refresh interval in ns (one owed refresh per tREFI).
    trefi_ns: float = 0.0
    #: Rank power model for this technology.
    energy: EnergyParams = field(default_factory=EnergyParams)

    # -- resolution ------------------------------------------------------

    def timings(self, bus_frequency_hz: float = 0.0) -> TimingParams:
        """Resolve the rule table into :class:`TimingParams`.

        ``bus_frequency_hz`` defaults to the backend's own default
        frequency; refresh stays off (opt-in via
        :meth:`refresh_overrides`, matching the DDR4 presets).
        """
        if not bus_frequency_hz:
            bus_frequency_hz = self.default_frequency_hz
        tck = clock_period_ps(bus_frequency_hz)
        ref = self.reference_clock_ps
        fields: Dict[str, int] = {
            name: r.resolve(tck, ref) for name, r in self.rules.items()}
        return TimingParams(tCK=tck, burst_length=self.burst_length,
                            **fields)

    @property
    def refresh_capable(self) -> bool:
        """Whether this technology has refresh to model at all."""
        return bool(self.refresh_grades_ns)

    def refresh_overrides(self, density: str) -> dict:
        """``TimingParams.replace`` keywords enabling refresh at a grade."""
        if not self.refresh_capable:
            raise ValueError(
                f"backend {self.name!r} has no refresh to enable")
        try:
            trfc_ns, trfcpb_ns = self.refresh_grades_ns[density]
        except KeyError:
            raise ValueError(
                f"backend {self.name!r} knows no density {density!r}; "
                "known: " + ", ".join(sorted(self.refresh_grades_ns))
            ) from None
        return {"tRFC": ns(trfc_ns), "tREFI": ns(self.trefi_ns),
                "tRFCpb": ns(trfcpb_ns)}

    def adhoc_refresh_overrides(self, refresh_ns: float,
                                anchor: str = "8Gb") -> dict:
        """Overrides for a free-form tRFC (the Tab. I ``refresh_ns``
        column): per-bank cost scales from the anchor grade's ratio."""
        if not self.refresh_capable:
            raise ValueError(
                f"backend {self.name!r} has no refresh to enable")
        if anchor not in self.refresh_grades_ns:
            anchor = sorted(self.refresh_grades_ns)[0]
        trfc, trfcpb = self.refresh_grades_ns[anchor]
        return {"tRFC": ns(refresh_ns), "tREFI": ns(self.trefi_ns),
                "tRFCpb": ns(refresh_ns * trfcpb / trfc)}

    def command_kinds(self) -> frozenset:
        """The command vocabulary as a :class:`CommandKind` set."""
        return command_set(self.commands)


#: Populated by the technology modules at import time (see __init__).
_REGISTRY: Dict[str, MemoryTechBackend] = {}


def register_backend(backend: MemoryTechBackend) -> MemoryTechBackend:
    """Add a backend to the registry (idempotent by name)."""
    _REGISTRY[backend.name] = backend
    return backend


def get_backend(name: str) -> MemoryTechBackend:
    """Look up a registered backend by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown memory backend {name!r}; known: "
            + ", ".join(sorted(_REGISTRY))) from None


def backend_names() -> Tuple[str, ...]:
    """All registered backend names, sorted."""
    return tuple(sorted(_REGISTRY))
