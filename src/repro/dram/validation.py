"""Independent post-hoc validation of issued command schedules.

The event-driven controller computes earliest-issue times incrementally;
this module re-checks a finished run's *complete command log* against the
timing rules written down directly from their definitions -- a second,
independent implementation.  Any bug in the scheduler's bookkeeping
(stale caches, missed constraints, window mix-ups) surfaces here as a
:class:`TimingViolation`.

Enable logging with ``SystemConfig(record_commands=True)`` (or
``Channel(..., record_commands=True)``) and call :func:`validate_log`.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.dram.bank import NEVER, SlotKey
from repro.dram.resources import TURNAROUND_CLOCKS, BusPolicy
from repro.dram.timing import TimingParams


class TimingViolation(AssertionError):
    """A command in the log breaks a DRAM timing rule."""


@dataclass(frozen=True)
class CommandRecord:
    """One issued command, as logged by the Channel."""

    kind: str            # "ACT" | "RD" | "WR" | "PRE" | "PRE_PARTIAL"
                         # | "REF" | "REFPB"
    time: int
    bank: int            # flattened bank index
    bank_group: int
    slot: SlotKey
    row: int = -1


@dataclass
class _SlotState:
    act_time: int = NEVER
    pre_time: int = NEVER
    open_row: int = -1
    last_rd: int = NEVER
    last_wr_end: int = NEVER
    # PCM write-pulse state (stay at NEVER on pulse-free technologies).
    wr_pulse_end: int = NEVER
    replay_until: int = NEVER


def _fail(record: CommandRecord, rule: str, bound: int) -> None:
    raise TimingViolation(
        f"{record.kind} at {record.time} to bank {record.bank} "
        f"slot {record.slot} violates {rule} (earliest legal {bound})")


def validate_log(log: List[CommandRecord], timing: TimingParams,
                 policy: BusPolicy) -> int:
    """Check every command against the full rule set; returns the count.

    Rules checked (straight from the JEDEC-style definitions):

    * Every command: the shared command bus carries one command per
      channel clock, so consecutive commands must be >= tCK apart.
    * ACT: tRC from the slot's previous ACT, tRP from its precharge,
      tRRD from any ACT on the rank, at most four ACTs rank-wide in any
      tFAW window, and the slot must be closed.
    * RD/WR: tRCD from the slot's ACT, row must be open; CAS-to-CAS
      tCCD_S globally plus tCCD_L within the policy's long scope (bank
      group, or bank under DDB); DDB's tTCW (at most two column commands
      per group per window) and tTWTRW (read after two writes); write-
      to-read turnaround (tWTR_S/_L); non-overlapping data bursts with a
      turnaround bubble on direction change.
    * PRE / PRE_PARTIAL: tRAS from ACT, tRTP from the last read, tWR
      after the last write burst, and the slot must be open.  A
      PRE_PARTIAL (Section VI-A) additionally requires an open row in
      the *other* sub-bank of the same bank -- without a raised MWL to
      preserve, a partial precharge is structurally impossible.
    * PCM write pulses (``tWRP > 0`` technologies only): after a WR the
      slot's self-timed programming pulse runs until the data burst end
      plus tWRP; no column command may target the slot inside it.  A
      PRE inside the pulse is a *write cancellation*: legal only with
      cancellation support (``tWCT > 0``) and at least tWCT past the
      data burst end, and the cancelled write must be replayed -- no
      column may reach the slot before the cancel time plus tWRP.
    * Asymmetric array access (``tRCD_WR > 0``): writes use the write
      row-to-column delay instead of the read tRCD.
    * REF / REFPB (refresh-enabled timings only): every slot in the
      refresh scope -- the rank, one bank, or one sub-bank, per the
      record's (bank, slot) wildcards -- must be precharged with tRP
      and tRC satisfied, and the scope must not overlap an in-flight
      refresh blackout.
    * Blackout: while a refresh is in flight (``tRFC`` all-bank,
      ``tRFCpb`` per-bank, half that per-sub-bank), no command may
      target a covered (bank, sub-bank).
    * Refresh interval: no demand command may find its (bank,
      sub-bank) more than 9 x tREFI past its last covering refresh
      (JEDEC's eight-deferral allowance; the window opens at time 0).
    """
    slots: Dict[Tuple[int, SlotKey], _SlotState] = defaultdict(_SlotState)
    last_cmd_time = NEVER
    last_act_rank = NEVER
    act_times_rank: List[int] = []
    last_cas_any = NEVER
    last_cas_long: Dict[int, int] = defaultdict(lambda: NEVER)
    cas_times_by_group: Dict[int, List[int]] = defaultdict(list)
    wr_times_by_group: Dict[int, List[int]] = defaultdict(list)
    wr_end_any = NEVER
    wr_end_long: Dict[int, int] = defaultdict(lambda: NEVER)
    last_data_end = NEVER
    last_data_write: Optional[bool] = None

    windows_active = (policy is BusPolicy.DDB and timing.tTCW > 0
                      and timing.ddb_windows_needed())

    # Refresh bookkeeping: in-flight blackout windows as
    # (end, bank, subbank) with -1 wildcards, and the last refresh
    # covering each scope level (rank / bank / sub-bank), all opening
    # at time 0.
    refresh_windows: List[Tuple[int, int, int]] = []
    last_ref_rank = 0
    last_ref_bank: Dict[int, int] = {}
    last_ref_pair: Dict[Tuple[int, int], int] = {}
    max_ref_gap = 9 * timing.tREFI

    for rec in sorted(log, key=lambda r: r.time):
        if rec.time < last_cmd_time + timing.tCK:
            _fail(rec, "command bus (one command per tCK)",
                  last_cmd_time + timing.tCK)
        last_cmd_time = rec.time
        if refresh_windows:
            refresh_windows = [w for w in refresh_windows
                               if w[0] > rec.time]
        if rec.kind in ("REF", "REFPB"):
            if not timing.refresh_enabled:
                _fail(rec, "refresh with refresh modelling disabled "
                      "(tRFC == 0)", -1)
            b, sb = rec.bank, rec.slot[0]
            for end, wb, ws in refresh_windows:
                if (wb < 0 or b < 0 or wb == b) and \
                        (ws < 0 or sb < 0 or ws == sb):
                    _fail(rec, "refresh into an active blackout", end)
            for (bank, slot), s in slots.items():
                if b >= 0 and bank != b:
                    continue
                if sb >= 0 and slot[0] != sb:
                    continue
                if s.open_row >= 0:
                    _fail(rec, "refresh with an open row in scope", -1)
                if rec.time < s.pre_time + timing.tRP:
                    _fail(rec, "tRP before refresh",
                          s.pre_time + timing.tRP)
                if rec.time < s.act_time + timing.tRC:
                    _fail(rec, "tRC before refresh",
                          s.act_time + timing.tRC)
            duration = (timing.tRFC if b < 0 else
                        timing.trfc_pb if sb < 0 else
                        (timing.trfc_pb + 1) // 2)
            refresh_windows.append((rec.time + duration, b, sb))
            if b < 0:
                last_ref_rank = max(last_ref_rank, rec.time)
            elif sb < 0:
                last_ref_bank[b] = max(last_ref_bank.get(b, 0),
                                       rec.time)
            else:
                last_ref_pair[(b, sb)] = max(
                    last_ref_pair.get((b, sb), 0), rec.time)
            continue
        if timing.refresh_enabled:
            sb = rec.slot[0]
            for end, wb, ws in refresh_windows:
                if (wb < 0 or wb == rec.bank) and (ws < 0 or ws == sb):
                    _fail(rec, "tRFC blackout (refresh in flight)", end)
            covered = max(last_ref_rank,
                          last_ref_bank.get(rec.bank, 0),
                          last_ref_pair.get((rec.bank, sb), 0))
            if rec.time - covered > max_ref_gap:
                _fail(rec, "9 x tREFI (bank starved of refresh)",
                      covered + max_ref_gap)
        key = (rec.bank, rec.slot)
        state = slots[key]
        if rec.kind == "ACT":
            if state.open_row >= 0:
                _fail(rec, "ACT to an open slot", -1)
            if rec.time < state.act_time + timing.tRC:
                _fail(rec, "tRC", state.act_time + timing.tRC)
            if rec.time < state.pre_time + timing.tRP:
                _fail(rec, "tRP", state.pre_time + timing.tRP)
            if rec.time < last_act_rank + timing.tRRD:
                _fail(rec, "tRRD", last_act_rank + timing.tRRD)
            if timing.tFAW > 0:
                # Rank-wide four-activate window: this ACT is illegal
                # while four earlier ACTs are still inside it.
                recent = [t for t in act_times_rank
                          if rec.time - t < timing.tFAW]
                if len(recent) >= 4:
                    _fail(rec, "tFAW (fifth ACT in window)",
                          sorted(recent)[len(recent) - 4] + timing.tFAW)
                act_times_rank = recent
                act_times_rank.append(rec.time)
            state.act_time = rec.time
            state.open_row = rec.row
            last_act_rank = max(last_act_rank, rec.time)
        elif rec.kind in ("RD", "WR"):
            is_write = rec.kind == "WR"
            if state.open_row < 0:
                _fail(rec, "column to closed slot", -1)
            rcd = timing.trcd_wr if is_write else timing.tRCD
            if rec.time < state.act_time + rcd:
                _fail(rec, "tRCD_WR" if is_write and timing.tRCD_WR
                      else "tRCD", state.act_time + rcd)
            if rec.time < state.wr_pulse_end:
                _fail(rec, "column into an in-flight write pulse",
                      state.wr_pulse_end)
            if rec.time < state.replay_until:
                _fail(rec, "write replay after cancellation",
                      state.replay_until)
            if rec.time < last_cas_any + timing.tCCD_S:
                _fail(rec, "tCCD_S", last_cas_any + timing.tCCD_S)
            long_scope = (rec.bank if policy is BusPolicy.DDB
                          else rec.bank_group)
            if policy is not BusPolicy.NO_GROUPS:
                if rec.time < last_cas_long[long_scope] + timing.tCCD_L:
                    _fail(rec, "tCCD_L",
                          last_cas_long[long_scope] + timing.tCCD_L)
            if windows_active:
                # Prune to the live window first: the lists stay at most
                # two long, so a marathon log cannot degrade to O(n^2),
                # and a stale entry can never shadow the window edge.
                recent = [t for t in cas_times_by_group[rec.bank_group]
                          if rec.time - t < timing.tTCW]
                cas_times_by_group[rec.bank_group] = recent
                if len(recent) >= 2:
                    _fail(rec, "tTCW (third CAS in window)",
                          min(recent) + timing.tTCW)
            if not is_write:
                if rec.time < wr_end_any + timing.tWTR_S:
                    _fail(rec, "tWTR_S", wr_end_any + timing.tWTR_S)
                if policy is not BusPolicy.NO_GROUPS:
                    if rec.time < (wr_end_long[long_scope]
                                   + timing.tWTR_L):
                        _fail(rec, "tWTR_L",
                              wr_end_long[long_scope] + timing.tWTR_L)
                if windows_active:
                    writes = [t for t in wr_times_by_group[rec.bank_group]
                              if rec.time - t < timing.tTWTRW]
                    wr_times_by_group[rec.bank_group] = writes
                    if len(writes) >= 2:
                        _fail(rec, "tTWTRW",
                              min(writes) + timing.tTWTRW)
            # Data bus occupancy.
            latency = timing.tCWL if is_write else timing.tCL
            start = rec.time + latency
            end = start + timing.burst_time
            gap = 0
            if (last_data_write is not None
                    and last_data_write != is_write):
                gap = TURNAROUND_CLOCKS * timing.tCK
            if start < last_data_end + gap:
                _fail(rec, "data-bus overlap", last_data_end + gap)
            # max(): a shorter-latency command (a read after a write)
            # must not rewind the occupancy horizon and mask a later
            # overlap with the still-draining earlier burst.
            last_data_end = max(last_data_end, end)
            last_data_write = is_write
            last_cas_any = rec.time
            last_cas_long[long_scope] = rec.time
            cas_times_by_group[rec.bank_group].append(rec.time)
            if is_write:
                state.last_wr_end = end
                if timing.write_pulse_enabled:
                    state.wr_pulse_end = end + timing.tWRP
                wr_end_any = max(wr_end_any, end)
                wr_end_long[long_scope] = max(
                    wr_end_long[long_scope], end)
                wr_times_by_group[rec.bank_group].append(rec.time)
            else:
                state.last_rd = rec.time
        elif rec.kind in ("PRE", "PRE_PARTIAL"):
            if state.open_row < 0:
                _fail(rec, "PRE of a closed slot", -1)
            if rec.time < state.wr_pulse_end:
                # A PRE inside the self-timed pulse is a cancellation.
                if timing.tWCT <= 0:
                    _fail(rec, "PRE into a write pulse (technology has "
                          "no cancellation)", state.wr_pulse_end)
                cancel_ready = state.last_wr_end + timing.tWCT
                if rec.time < cancel_ready:
                    _fail(rec, "tWCT (cancel before the data is safely "
                          "captured)", cancel_ready)
                state.replay_until = rec.time + timing.tWRP
            state.wr_pulse_end = NEVER
            if rec.time < state.act_time + timing.tRAS:
                _fail(rec, "tRAS", state.act_time + timing.tRAS)
            if rec.time < state.last_rd + timing.tRTP:
                _fail(rec, "tRTP", state.last_rd + timing.tRTP)
            if rec.time < state.last_wr_end + timing.tWR:
                _fail(rec, "tWR", state.last_wr_end + timing.tWR)
            if rec.kind == "PRE_PARTIAL":
                # Section VI-A: a partial precharge keeps the MWL raised
                # for an EWLR partner row, which can only live in the
                # other sub-bank of the same bank.  The log carries no
                # plane/MWL tags, but the necessary structural condition
                # is checkable: that sub-bank must have an open row now.
                other_sb = 1 - rec.slot[0]
                if not any(
                        s.open_row >= 0
                        for (bank, slot), s in slots.items()
                        if bank == rec.bank and slot[0] == other_sb):
                    _fail(rec, "PRE_PARTIAL without an open row in the "
                          "other sub-bank", -1)
            state.pre_time = rec.time
            state.open_row = -1
        else:
            raise ValueError(f"unknown command kind {rec.kind!r}")
    return len(log)
