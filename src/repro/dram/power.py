"""DRAM energy accounting.

The paper's Fig. 16b reports *relative* energy (ERUCA and Ideal vs. DDR4)
split into background, activation, and total.  We therefore model energy as
rank-level per-event quantities plus a background power, with magnitudes in
the right ballpark for a DDR4 x4 RDIMM rank (derived from Micron 8Gb DDR4
IDD figures); only the ratios matter for the reproduction.

Two paper-specific effects:

* an **EWLR hit** skips driving the already-raised main wordline, saving
  18% of the Vpp charge-pump energy of an activation (Section IV, based on
  the Rambus power model);
* **Half-DRAM** activates half-length wordlines, halving activation energy
  (its original purpose, Zhang et al. [4]).
"""

from __future__ import annotations

from dataclasses import dataclass, field

PS_PER_S = 1_000_000_000_000


@dataclass(frozen=True)
class EnergyParams:
    """Per-event energies (nJ) and background power (W) for one channel."""

    #: Row activation (ACT), rank level, one 4 KiB rank-slice.
    act_nj: float = 10.0
    #: Precharge (PRE).
    pre_nj: float = 5.0
    #: Fraction of the ACT energy drawn from the Vpp wordline supply.
    vpp_fraction: float = 0.35
    #: Fraction of Vpp activation energy spent driving the MWL -- the part
    #: an EWLR hit skips (paper: "saves 18% of Vpp power").
    ewlr_mwl_fraction: float = 0.18
    #: One read burst including I/O.
    rd_nj: float = 6.0
    #: One write burst including I/O.
    wr_nj: float = 6.5
    #: Background (standby + clocking) power per channel, W.
    background_w: float = 0.6
    #: Activation-energy scale for half-wordline organisations (Half-DRAM).
    act_scale: float = 1.0

    @property
    def ewlr_hit_saving_nj(self) -> float:
        """Energy saved by one EWLR-hit activation."""
        return self.act_nj * self.act_scale * \
            self.vpp_fraction * self.ewlr_mwl_fraction

    # -- per-technology parameter sets ----------------------------------

    @classmethod
    def pcm(cls) -> "EnergyParams":
        """PCM rank energies: cheap non-destructive reads (no restore on
        PRE), expensive programming pulses on writes, and no refresh so
        a lower background floor.  Magnitudes follow the PALP ballpark;
        as with DRAM only the ratios matter for the reproduction."""
        return cls(act_nj=4.0, pre_nj=1.0, rd_nj=8.0, wr_nj=35.0,
                   background_w=0.25)

    @classmethod
    def gddr5(cls) -> "EnergyParams":
        """GDDR5 rank energies: a higher-clocked I/O path spends more on
        each burst and on standby clocking than DDR4."""
        return cls(act_nj=9.0, pre_nj=4.5, rd_nj=9.0, wr_nj=9.5,
                   background_w=1.1)


@dataclass
class EnergyMeter:
    """Event counters and accumulated energy for one simulation."""

    params: EnergyParams = field(default_factory=EnergyParams)
    activations: int = 0
    ewlr_hit_activations: int = 0
    precharges: int = 0
    partial_precharges: int = 0
    reads: int = 0
    writes: int = 0

    def record_act(self, ewlr_hit: bool = False) -> None:
        """Count an ACT; EWLR hits are cheaper (Section IV's 18% Vpp)."""
        self.activations += 1
        if ewlr_hit:
            self.ewlr_hit_activations += 1

    def record_precharge(self, partial: bool = False) -> None:
        """Count a PRE, noting ERUCA partial precharges (Section VI-A)."""
        self.precharges += 1
        if partial:
            self.partial_precharges += 1

    def record_read(self) -> None:
        """Count one read burst."""
        self.reads += 1

    def record_write(self) -> None:
        """Count one write burst."""
        self.writes += 1

    # -- energy roll-ups (nJ) -------------------------------------------

    def activation_energy_nj(self) -> float:
        """ACT+PRE energy, net of EWLR-hit savings (Fig. 16b "act")."""
        p = self.params
        base = self.activations * p.act_nj * p.act_scale
        saved = self.ewlr_hit_activations * p.ewlr_hit_saving_nj
        return base - saved + self.precharges * p.pre_nj

    def access_energy_nj(self) -> float:
        """RD/WR burst energy."""
        return self.reads * self.params.rd_nj + \
            self.writes * self.params.wr_nj

    def background_energy_nj(self, elapsed_ps: int) -> float:
        """Standby power integrated over the run (Fig. 16b "bg")."""
        return self.params.background_w * elapsed_ps / PS_PER_S * 1e9

    def total_energy_nj(self, elapsed_ps: int) -> float:
        """Activation + access + background (the Fig. 16b total bar)."""
        return (self.activation_energy_nj() + self.access_energy_nj()
                + self.background_energy_nj(elapsed_ps))

    def merge(self, other: "EnergyMeter") -> None:
        """Fold another channel's counters into this one."""
        self.activations += other.activations
        self.ewlr_hit_activations += other.ewlr_hit_activations
        self.precharges += other.precharges
        self.partial_precharges += other.partial_precharges
        self.reads += other.reads
        self.writes += other.writes
