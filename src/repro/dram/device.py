"""One DRAM channel: banks plus shared resources, with legality queries.

The :class:`Channel` is the device-side API the memory controller talks to.
For every prospective command it answers "what is the earliest time this
command may legally issue?", and applies the state change once the
controller commits to an issue time.  All organisation differences (bank
groups vs. ideal vs. DDB, full banks vs. sub-banks vs. MASA groups) live in
the :class:`~repro.dram.bank.Bank` geometry and the
:class:`~repro.dram.resources.BusPolicy` -- the controller code is
organisation-agnostic.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.controller.mapping import RowLayout
from repro.controller.transaction import DramCoordinates
from repro.core.subbank import ActivationVerdict
from repro.dram.bank import Bank, BankGeometry, SlotKey
from repro.dram.commands import PrechargeCause
from repro.dram.power import EnergyMeter, EnergyParams
from repro.dram.resources import (FLOOR_BANK, FLOOR_BUS, FLOOR_REFRESH,
                                  BusPolicy, ChannelResources)
from repro.dram.timing import TimingParams


class Channel:
    """A single DRAM channel (one rank) of some organisation."""

    def __init__(self, timing: TimingParams, policy: BusPolicy,
                 bank_groups: int, banks_per_group: int,
                 bank_geometry: BankGeometry,
                 row_layout: Optional[RowLayout] = None,
                 ewlr: bool = False, rap: bool = False,
                 energy_params: Optional[EnergyParams] = None,
                 record_commands: bool = False) -> None:
        self.timing = timing
        self.policy = policy
        self.bank_groups = bank_groups
        self.banks_per_group = banks_per_group
        n_banks = bank_groups * banks_per_group
        self.banks: List[Bank] = [
            Bank(bank_geometry, timing, row_layout, ewlr, rap)
            for _ in range(n_banks)
        ]
        self.resources = ChannelResources(
            timing, policy, bank_groups, n_banks)
        self.energy = EnergyMeter(energy_params or EnergyParams())
        #: Precharge counts by cause, for Fig. 13b.
        self.precharge_causes = {cause: 0 for cause in PrechargeCause}
        #: PCM write cancellations: PREs that aborted an in-flight
        #: programming pulse (always 0 on pulse-free technologies).
        self.write_cancels = 0
        #: Registry of open row slots, (bank index, slot key), kept in
        #: sync by issue_act/issue_precharge for the page policy's scan.
        #: A dict (insertion-ordered, values unused) so the scan order is
        #: reproducible -- set iteration order would depend on hashes.
        self.open_slots: dict = {}
        #: Optional command log for post-hoc validation
        #: (:mod:`repro.dram.validation`).
        self.command_log: Optional[list] = [] if record_commands else None

    # -- addressing ------------------------------------------------------

    def bank_index(self, coords: DramCoordinates) -> int:
        """Flat bank index of (bank group, bank) within the channel."""
        return coords.bank_group * self.banks_per_group + coords.bank

    def bank(self, coords: DramCoordinates) -> Bank:
        """The :class:`~repro.dram.bank.Bank` serving these coords."""
        return self.banks[self.bank_index(coords)]

    # -- classification ---------------------------------------------------

    def classify(self, coords: DramCoordinates
                 ) -> Tuple[ActivationVerdict, Optional[SlotKey]]:
        """Fig. 5 activation verdict (and victim slot) for these coords."""
        return self.bank(coords).classify(coords.subbank, coords.row)

    # -- earliest legal issue times ---------------------------------------

    def earliest_act(self, coords: DramCoordinates) -> int:
        """Earliest legal ACT: command bus, ``tRRD``, the slot FSM, and
        any refresh blackout covering the slot's sub-bank."""
        bank = self.bank(coords)
        best = max(self.resources.earliest_act(),
                   bank.earliest_act(coords.subbank, coords.row))
        ru = self.resources.ref_until
        if ru is not None:
            v = ru[self.bank_index(coords)][coords.subbank]
            if v > best:
                best = v
        return best

    def earliest_column(self, coords: DramCoordinates,
                        is_write: bool) -> int:
        """Earliest legal RD/WR: shared CAS/bus windows + ``tRCD``."""
        bank = self.bank(coords)
        bank_index = self.bank_index(coords)
        best = max(
            self.resources.earliest_column(
                is_write, coords.bank_group, bank_index),
            bank.earliest_column(coords.subbank, coords.row, is_write),
        )
        ru = self.resources.ref_until
        if ru is not None:
            v = ru[bank_index][coords.subbank]
            if v > best:
                best = v
        return best

    def earliest_precharge(self, bank_index: int, slot: SlotKey,
                           cancel: bool = False) -> int:
        """Earliest legal PRE: command bus + the slot's ``tRAS``/``tWR``
        horizons.  ``cancel=True`` asks for the PCM write-cancellation
        floor when a pulse is in flight (a no-op on DRAM)."""
        best = max(self.resources.earliest_precharge(),
                   self.banks[bank_index].earliest_precharge(slot, cancel))
        ru = self.resources.ref_until
        if ru is not None:
            v = ru[bank_index][slot[0]]
            if v > best:
                best = v
        return best

    # -- refresh ----------------------------------------------------------

    def refresh_scope_open(self, bank_index: int = -1,
                           subbank: int = -1) -> list:
        """Open slots inside a refresh scope, as (bank index, slot key).

        ``bank_index < 0`` scopes the whole rank (all-bank REF);
        ``subbank >= 0`` narrows a bank to one sub-bank (SARP).  A
        refresh may only issue once this list is empty.
        """
        out = []
        indices = (range(len(self.banks)) if bank_index < 0
                   else (bank_index,))
        for bi in indices:
            for key, slot in self.banks[bi].slots.items():
                if subbank >= 0 and key[0] != subbank:
                    continue
                if slot.active_row is not None:
                    out.append((bi, key))
        return out

    def refresh_duration(self, bank_index: int = -1,
                         subbank: int = -1) -> int:
        """Blackout length of a refresh to this scope: ``tRFC`` all-bank,
        ``tRFCpb`` per-bank, and half of ``tRFCpb`` for one sub-bank
        (half the rows are walked)."""
        t = self.timing
        if bank_index < 0:
            return t.tRFC
        if subbank < 0:
            return t.trfc_pb
        return (t.trfc_pb + 1) // 2

    def earliest_refresh(self, bank_index: int = -1,
                         subbank: int = -1) -> int:
        """Earliest legal REF/REFpb to a fully precharged scope: command
        bus, ``tRP``/``tRC`` from every slot in scope, and the end of
        any overlapping blackout."""
        best = self.resources.cmd_bus_free
        ru = self.resources.ref_until
        indices = (range(len(self.banks)) if bank_index < 0
                   else (bank_index,))
        for bi in indices:
            for key, slot in self.banks[bi].slots.items():
                if subbank >= 0 and key[0] != subbank:
                    continue
                if slot.act_allowed > best:
                    best = slot.act_allowed
            if ru is not None:
                row = ru[bi]
                if subbank < 0:
                    v = row[0] if row[0] >= row[1] else row[1]
                else:
                    v = row[subbank]
                if v > best:
                    best = v
        return best

    def explain_refresh(self, bank_index: int = -1,
                        subbank: int = -1) -> list:
        """Tagged floors of :meth:`earliest_refresh`."""
        return [(FLOOR_BUS, self.resources.cmd_bus_free),
                (FLOOR_REFRESH, self.earliest_refresh(bank_index, subbank))]

    # -- explain API (cycle accounting) -----------------------------------
    #
    # The ``explain_*`` methods mirror their ``earliest_*`` twins as
    # tagged (tag, time) floors: the max floor time equals the earliest
    # legal issue time exactly.  They must be called *before* the
    # command is issued (they read pre-issue state) and exist only for
    # observability -- the scheduler never calls them.

    def _refresh_floors(self, bank_index: int, subbank: int) -> list:
        """The (possibly empty) refresh-blackout floor for one slot."""
        ru = self.resources.ref_until
        if ru is None:
            return []
        return [(FLOOR_REFRESH, ru[bank_index][subbank])]

    def explain_act(self, coords: DramCoordinates) -> list:
        """Tagged floors of :meth:`earliest_act` for these coordinates."""
        bank = self.bank(coords)
        return self.resources.act_floors() + [
            (FLOOR_BANK, bank.earliest_act(coords.subbank, coords.row))
        ] + self._refresh_floors(self.bank_index(coords), coords.subbank)

    def explain_column(self, coords: DramCoordinates,
                       is_write: bool) -> list:
        """Tagged floors of :meth:`earliest_column`."""
        bank = self.bank(coords)
        bank_index = self.bank_index(coords)
        return self.resources.column_floors(
            is_write, coords.bank_group, bank_index) + [
            (FLOOR_BANK,
             bank.earliest_column(coords.subbank, coords.row, is_write))
        ] + self._refresh_floors(bank_index, coords.subbank)

    def explain_precharge(self, bank_index: int, slot: SlotKey,
                          cancel: bool = False) -> list:
        """Tagged floors of :meth:`earliest_precharge`."""
        return self.resources.precharge_floors() + [
            (FLOOR_BANK,
             self.banks[bank_index].earliest_precharge(slot, cancel))
        ] + self._refresh_floors(bank_index, slot[0])

    # -- committed issues --------------------------------------------------

    def issue_act(self, coords: DramCoordinates, time: int) -> bool:
        """Issue an ACT; returns whether it was an EWLR hit."""
        bank = self.bank(coords)
        verdict, _ = bank.classify(coords.subbank, coords.row)
        ewlr_hit = verdict is ActivationVerdict.EWLR_HIT
        bank.do_activate(coords.subbank, coords.row, time)
        self.resources.record_act(time)
        self.energy.record_act(ewlr_hit=ewlr_hit)
        bank_index = self.bank_index(coords)
        slot = bank.slot_key(coords.subbank, coords.row)
        self.open_slots[(bank_index, slot)] = None
        if self.command_log is not None:
            from repro.dram.validation import CommandRecord
            self.command_log.append(CommandRecord(
                "ACT", time, bank_index, coords.bank_group, slot,
                coords.row))
        return ewlr_hit

    def issue_column(self, coords: DramCoordinates, time: int,
                     is_write: bool) -> int:
        """Issue a RD/WR; returns the data-burst completion time."""
        bank = self.bank(coords)
        bank.do_column(coords.subbank, coords.row, time, is_write)
        bank_index = self.bank_index(coords)
        data_end = self.resources.record_column(
            time, is_write, coords.bank_group, bank_index)
        if is_write:
            self.energy.record_write()
        else:
            self.energy.record_read()
        if self.command_log is not None:
            from repro.dram.validation import CommandRecord
            self.command_log.append(CommandRecord(
                "WR" if is_write else "RD", time, bank_index,
                coords.bank_group, bank.slot_key(coords.subbank,
                                                 coords.row)))
        return data_end

    def issue_precharge(self, bank_index: int, slot: SlotKey, time: int,
                        cause: PrechargeCause) -> bool:
        """Issue a PRE; returns whether it was a partial precharge."""
        bank = self.banks[bank_index]
        partial = bank.partial_precharge_possible(slot)
        cancelled = bank.do_precharge(slot, time)
        if cancelled:
            # The aborted write replays after the next ACT: count the
            # cancellation and charge the second programming burst.
            self.write_cancels += 1
            self.energy.record_write()
        self.resources.record_precharge(time)
        self.energy.record_precharge(partial=partial)
        self.precharge_causes[cause] += 1
        self.open_slots.pop((bank_index, slot), None)
        if self.command_log is not None:
            from repro.dram.validation import CommandRecord
            self.command_log.append(CommandRecord(
                "PRE_PARTIAL" if partial else "PRE", time, bank_index,
                bank_index // self.banks_per_group, slot))
        return partial

    def issue_refresh(self, time: int, bank_index: int = -1,
                      subbank: int = -1) -> int:
        """Issue a REF/REFpb; returns the blackout end time.

        Every slot in scope must already be precharged (the policies
        close them first, counting those precharges under
        :attr:`~repro.dram.commands.PrechargeCause.REFRESH`).
        """
        still_open = self.refresh_scope_open(bank_index, subbank)
        if still_open:
            raise ValueError(
                f"refresh at {time} with open rows in scope: {still_open}")
        duration = self.refresh_duration(bank_index, subbank)
        end = self.resources.record_refresh(
            time, duration, bank_index, subbank)
        if self.command_log is not None:
            from repro.dram.validation import CommandRecord
            self.command_log.append(CommandRecord(
                "REF" if bank_index < 0 else "REFPB", time, bank_index,
                -1 if bank_index < 0
                else bank_index // self.banks_per_group,
                (subbank if subbank >= 0 else -1, -1)))
        return end

    # -- introspection -----------------------------------------------------

    def open_row(self, coords: DramCoordinates) -> Optional[int]:
        """The row open in the slot these coords map to, if any."""
        bank = self.bank(coords)
        return bank.slot(coords.subbank, coords.row).active_row
