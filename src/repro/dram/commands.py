"""DRAM command vocabulary.

The controller drives the device with a small set of commands.  ERUCA adds
``PRE_PARTIAL`` (Section VI-A of the paper): precharge one sub-bank's logic
and data path without deactivating the main wordline it shares with its
paired sub-bank inside the same EWLR.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional


class CommandKind(enum.Enum):
    """The DRAM command opcodes the controller may issue."""

    ACT = "activate"
    RD = "read"
    WR = "write"
    PRE = "precharge"
    #: ERUCA partial precharge: close one sub-bank, keep the shared MWL up.
    PRE_PARTIAL = "partial_precharge"
    #: All-bank refresh: the whole rank is busy for tRFC.
    REF = "refresh"
    #: Per-bank refresh: one bank (or, under SARP, one sub-bank) is busy
    #: for tRFCpb while the rest of the rank keeps serving.
    REFPB = "refresh_per_bank"

    @property
    def is_column(self) -> bool:
        """Column commands occupy the data bus; row commands do not."""
        return self in (CommandKind.RD, CommandKind.WR)

    @property
    def is_precharge(self) -> bool:
        """Both full and ERUCA partial precharges close a row slot."""
        return self in (CommandKind.PRE, CommandKind.PRE_PARTIAL)

    @property
    def is_refresh(self) -> bool:
        """Refresh commands (all-bank or per-bank)."""
        return self in (CommandKind.REF, CommandKind.REFPB)


def command_set(names) -> frozenset:
    """Resolve an iterable of opcode names into a ``CommandKind`` set.

    Memory-technology backends (:mod:`repro.dram.backends`) declare
    their command vocabulary as plain name strings; this turns that
    data into the set :func:`repro.dram.validation.validate_log` checks
    command logs against.
    """
    return frozenset(CommandKind[name] for name in names)


class PrechargeCause(enum.Enum):
    """Why the controller closed a row -- drives Fig. 13b.

    ``PLANE_CONFLICT`` precharges are the ones counted by the paper's
    "fraction of precharges triggered by plane conflicts" metric.
    """

    ROW_CONFLICT = "row_conflict"
    PLANE_CONFLICT = "plane_conflict"
    POLICY = "page_policy"
    #: Closed to make a (sub-)bank refreshable: refresh requires every
    #: slot in its scope precharged first.
    REFRESH = "refresh"


@dataclass
class Command:
    """A single DRAM command bound for a specific (sub-)bank.

    ``subbank`` is 0/1 for sub-banked organisations and always 0 for full
    banks.  ``row`` is meaningful for ACT only.  ``cause`` is set for
    precharges so conflict statistics can be attributed.
    """

    kind: CommandKind
    channel: int
    rank: int
    bank: int
    subbank: int = 0
    row: int = 0
    cause: Optional[PrechargeCause] = None
    #: Stamped by the device model when issued.
    issue_time: int = field(default=-1, compare=False)

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        where = f"ch{self.channel}.bk{self.bank}.sb{self.subbank}"
        if self.kind is CommandKind.ACT:
            return f"{self.kind.name} {where} row={self.row:#x}"
        return f"{self.kind.name} {where}"
