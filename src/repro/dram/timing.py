"""DRAM timing parameters and speed-grade presets.

All times are integer picoseconds.  Using an integer time base keeps command
legality checks exact: there is never a float rounding question about whether
two commands are ``tCCD_L`` apart.

The defaults follow the paper's evaluation setup (Tab. III): DDR4 at a
1.33 GHz bus clock with 18-18-18 timings, a fixed 200 MHz DRAM core clock,
burst length 8, and the two new ERUCA bus-window parameters ``tTCW`` and
``tTWTRW`` derived from the DRAM core clock and write latency.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

PS_PER_NS = 1000

#: Fixed DRAM core (internal array) clock, per the paper: "Current DRAMs
#: operate with a core frequency of 200MHz" -- a 5 ns core cycle.
DRAM_CORE_CLOCK_HZ = 200_000_000
DRAM_CORE_PERIOD_PS = 5_000


def ns(value: float) -> int:
    """Convert nanoseconds to integer picoseconds (round to nearest)."""
    return int(round(value * PS_PER_NS))


def clock_period_ps(frequency_hz: float) -> int:
    """Period of a clock in integer picoseconds."""
    return int(round(1e12 / frequency_hz))


@dataclass(frozen=True)
class TimingParams:
    """A complete set of DRAM timing constraints (picoseconds).

    The short/long (``_S``/``_L``) pairs implement bank grouping: the long
    variant applies between accesses to the same bank group, the short one
    across groups.  Idealised organisations (no bank groups) simply use the
    short value everywhere; DDB relaxes the long value to the short one
    between *different banks* of the same group, guarded by ``tTCW`` /
    ``tTWTRW`` (see :mod:`repro.dram.resources`).
    """

    #: Bus (channel) clock period.  Commands occupy one bus clock; the data
    #: bus moves two beats per clock (DDR).
    tCK: int
    #: ACT to internal read/write (RAS-to-CAS delay), per (sub-)bank.
    tRCD: int
    #: PRE to ACT of the same (sub-)bank.
    tRP: int
    #: ACT to PRE of the same (sub-)bank (minimum row-open time).
    tRAS: int
    #: ACT to ACT of the same (sub-)bank (row cycle); tRC >= tRAS + tRP.
    tRC: int
    #: Read CAS latency (column command to first data beat).
    tCL: int
    #: Write CAS latency.
    tCWL: int
    #: CAS to CAS, different bank group (or no-bank-group organisations).
    tCCD_S: int
    #: CAS to CAS, same bank group (paper: one DRAM core clock, 5 ns).
    tCCD_L: int
    #: Write burst end to read command, different bank group.
    tWTR_S: int
    #: Write burst end to read command, same bank group.
    tWTR_L: int
    #: ACT to ACT, different banks, same rank.
    tRRD: int
    #: Write recovery: end of write burst to PRE of the same bank.
    tWR: int
    #: Read to PRE of the same bank.
    tRTP: int
    #: Burst length in beats (column transfer moves BL beats at DDR rate).
    burst_length: int = 8
    #: Four-activate window, rank-wide: at most four ACTs may issue within
    #: any ``tFAW`` span (a charge-pump/power-delivery limit).  Zero
    #: disables the window.  Like the other analog core-side latencies it
    #: is constant in nanoseconds across speed grades.
    tFAW: int = 0
    #: ERUCA two-column-command window (per bank group, DDB only): at most
    #: two column commands may issue within this window.  Zero disables it.
    tTCW: int = 0
    #: ERUCA two-write-to-read window (per bank group, DDB only): a read may
    #: not follow the first of two back-to-back writes sooner than this.
    #: Zero disables it.
    tTWTRW: int = 0
    #: All-bank refresh cycle time: a ``REF`` blacks out every bank of the
    #: rank for this long.  Zero (with ``tREFI`` zero) disables refresh
    #: modelling entirely -- the pre-refresh machine.
    tRFC: int = 0
    #: Average refresh interval: one all-bank refresh is owed per ``tREFI``
    #: elapsed.  JEDEC allows deferring up to eight owed refreshes, so the
    #: hard bound is nine ``tREFI`` between refreshes of any one bank.
    tREFI: int = 0
    #: Per-bank refresh cycle time (``REFpb``): shorter than ``tRFC``
    #: because only one bank's rows are refreshed.  Zero falls back to
    #: ``tRFC`` (per-bank refresh no cheaper than all-bank).
    tRFCpb: int = 0
    #: Write-path ACT-to-CAS delay.  Zero means writes use ``tRCD``
    #: (DRAM); PCM opens a row for writing much faster than for reading
    #: because the write pulse does the real work later (PALP's
    #: asymmetric read/write timing).
    tRCD_WR: int = 0
    #: Write pulse width: after a WR burst the (sub-)bank's cells are
    #: being programmed for this long -- no column command may address
    #: the slot and a PRE must either wait it out or *cancel* the
    #: write (see ``tWCT``).  Zero disables the pulse model (DRAM).
    tWRP: int = 0
    #: Write-cancellation threshold: the earliest point after the write
    #: burst at which an in-flight pulse may be aborted by a PRE so a
    #: pending read can proceed (the cancelled write replays after the
    #: next ACT).  Zero forbids cancellation; requires ``tWRP > 0``.
    tWCT: int = 0

    def __post_init__(self) -> None:
        if self.tCK <= 0:
            raise ValueError(f"tCK must be positive, got {self.tCK}")
        if self.tRC < self.tRAS + self.tRP:
            raise ValueError(
                f"tRC ({self.tRC}) must cover tRAS + tRP "
                f"({self.tRAS} + {self.tRP})"
            )
        if self.tCCD_L < self.tCCD_S:
            raise ValueError("tCCD_L must be >= tCCD_S")
        if self.tWTR_L < self.tWTR_S:
            raise ValueError("tWTR_L must be >= tWTR_S")
        if self.burst_length <= 0 or self.burst_length % 2:
            raise ValueError("burst_length must be a positive even beat count")
        if self.tFAW < 0:
            raise ValueError(f"tFAW must be >= 0, got {self.tFAW}")
        if self.tRFC < 0 or self.tREFI < 0 or self.tRFCpb < 0:
            raise ValueError("refresh timings must be >= 0")
        if (self.tRFC > 0) != (self.tREFI > 0):
            raise ValueError(
                "tRFC and tREFI enable refresh together: both zero "
                f"(disabled) or both positive, got tRFC={self.tRFC} "
                f"tREFI={self.tREFI}")
        if self.tRFCpb > 0 and self.tRFC == 0:
            raise ValueError("tRFCpb requires tRFC/tREFI (refresh enabled)")
        if 0 < self.tREFI <= self.tRFC:
            raise ValueError("tREFI must exceed tRFC or refresh starves "
                             "the rank")
        if self.tRCD_WR < 0 or self.tWRP < 0 or self.tWCT < 0:
            raise ValueError("PCM timings (tRCD_WR/tWRP/tWCT) must be >= 0")
        if self.tWCT > 0 and self.tWRP == 0:
            raise ValueError("tWCT (write cancellation) requires a write "
                             "pulse (tWRP > 0)")
        if 0 < self.tWRP <= self.tWCT:
            raise ValueError("tWCT must fall inside the write pulse "
                             "(tWCT < tWRP) or cancellation never pays")
        if self.tWCT > 0 and self.tWCT < self.tWR:
            raise ValueError("tWCT must be >= tWR so a cancelling PRE "
                             "still satisfies write recovery")

    @property
    def burst_time(self) -> int:
        """Data-bus occupancy of one column command (BL beats at DDR rate)."""
        return (self.burst_length // 2) * self.tCK

    @property
    def refresh_enabled(self) -> bool:
        """Whether this parameter set models refresh at all."""
        return self.tRFC > 0

    @property
    def trfc_pb(self) -> int:
        """Effective per-bank refresh cycle time (falls back to tRFC)."""
        return self.tRFCpb if self.tRFCpb > 0 else self.tRFC

    @property
    def trcd_wr(self) -> int:
        """Effective write-path RAS-to-CAS delay (falls back to tRCD)."""
        return self.tRCD_WR if self.tRCD_WR > 0 else self.tRCD

    @property
    def write_pulse_enabled(self) -> bool:
        """Whether this parameter set models PCM-style write pulses."""
        return self.tWRP > 0

    @property
    def bus_frequency_hz(self) -> float:
        """Channel command-clock frequency implied by ``tCK`` (the
        Fig. 14 sweep's x-axis)."""
        return 1e12 / self.tCK

    def replace(self, **changes: int) -> "TimingParams":
        """Return a copy with the given fields changed."""
        return dataclasses.replace(self, **changes)

    def with_ddb_windows(self) -> "TimingParams":
        """Enable the DDB two-command windows.

        ``tTCW`` is one DRAM core clock (5 ns): the dual buses together
        carry at most two in-flight column transfers per core cycle.
        ``tTWTRW`` = WL + 4 CLKs + tWTR_L, per Fig. 10c.
        """
        return self.replace(
            tTCW=DRAM_CORE_PERIOD_PS,
            tTWTRW=self.tCWL + 4 * self.tCK + self.tWTR_L,
        )

    def ddb_windows_needed(self) -> bool:
        """Whether DDB needs its windows at this bus frequency.

        Per the paper, the two-command window applies only when the DRAM
        core clock cycle is longer than twice the external burst time --
        i.e. when the channel can outrun the pair of internal buses.
        """
        return DRAM_CORE_PERIOD_PS > 2 * self.burst_time


#: DDR4 average refresh interval in ns (normal temperature range: one
#: all-bank REF owed every 7.8 us).
DDR4_TREFI_NS = 7800.0

#: Representative DDR4 ``(tRFC, tRFCpb)`` in ns per die density.  tRFC
#: grows with density (more rows per refresh burst); per-bank refresh
#: amortises better because only one bank's rows are walked.
REFRESH_DENSITY_GRADES_NS = {
    "4Gb": (260.0, 90.0),
    "8Gb": (350.0, 160.0),
    "16Gb": (550.0, 265.0),
}


def ddr4_refresh_overrides(density: str = "8Gb") -> dict:
    """``TimingParams.replace`` keywords enabling DDR4 refresh.

    ``density`` selects a row of :data:`REFRESH_DENSITY_GRADES_NS`.
    Refresh is opt-in (presets ship with it off) so that the refresh-free
    machine's schedules stay bit-identical; enable it via
    ``SystemConfig.refresh_policy`` or by applying these overrides.
    """
    try:
        trfc_ns, trfcpb_ns = REFRESH_DENSITY_GRADES_NS[density]
    except KeyError:
        raise ValueError(
            f"unknown density {density!r}; known: "
            + ", ".join(sorted(REFRESH_DENSITY_GRADES_NS))) from None
    return {"tRFC": ns(trfc_ns), "tREFI": ns(DDR4_TREFI_NS),
            "tRFCpb": ns(trfcpb_ns)}


def ddr4_timings(bus_frequency_hz: float = 1.333e9,
                 cas_cycles: int = 18) -> TimingParams:
    """DDR4 timing preset at a given bus clock.

    The paper evaluates DDR4 at 1.33 GHz (18-18-18) and scales the channel
    to 1.6/2.0/2.4 GHz for Fig. 14 while the DRAM core stays at 200 MHz.
    Core-side (analog) latencies are kept constant in nanoseconds; bus-side
    quantities (tCCD_S, burst) are kept constant in clocks.
    """
    tck = clock_period_ps(bus_frequency_hz)
    cas = cas_cycles * clock_period_ps(1.333e9)  # constant ns across grades
    return TimingParams(
        tCK=tck,
        tRCD=cas,
        tRP=cas,
        tRAS=ns(32),
        tRC=ns(32) + cas,
        tCL=cas,
        tCWL=cas - 4 * tck if cas - 4 * tck > 0 else cas,
        tCCD_S=4 * tck,
        tCCD_L=DRAM_CORE_PERIOD_PS,
        tWTR_S=ns(2.5),
        tWTR_L=ns(7.5),
        tRRD=4 * tck,
        tWR=ns(15),
        tRTP=ns(7.5),
        burst_length=8,
        tFAW=ns(25),
    )


#: Tab. I of the paper: specifications of DRAM generations.
@dataclass(frozen=True)
class GenerationSpec:
    """One column of the paper's Tab. I."""

    name: str
    bank_count: str
    channel_clock_mhz: str
    core_clock_mhz: str
    internal_prefetch: str
    #: Representative four-activate window in ns ("-" before the limit was
    #: standardised; tFAW first appears in the DDR2 specification).
    tfaw_ns: str = "-"
    #: Representative refresh cycle / interval in ns as "tRFC / tREFI".
    #: tRFC grows with density across generations while tREFI holds at
    #: 7.8 us in the normal temperature range.
    refresh_ns: str = "-"


GENERATIONS = (
    GenerationSpec("DDR", "4", "133-200", "133-200", "2n", "-",
                   "70-120 / 7800"),
    GenerationSpec("DDR2", "4-8", "266-400", "133-200", "4n", "37.5-50",
                   "105-327.5 / 7800"),
    GenerationSpec("DDR3", "8", "533-800", "133-200", "8n", "30-45",
                   "90-350 / 7800"),
    GenerationSpec("DDR4", "16", "1066-1600", "133-200", "8n", "21-35",
                   "260-550 / 7800"),
)

#: Channel frequencies swept in Fig. 14 (Hz).
FIG14_BUS_FREQUENCIES_HZ = (1.333e9, 1.6e9, 2.0e9, 2.4e9)
