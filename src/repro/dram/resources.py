"""Channel-level shared resources: command bus, data bus, CAS trackers.

Three bus policies cover every organisation in the paper's evaluation
(Tab. III, "DRAM timing parameters"):

``BANK_GROUPS``
    Standard DDR4: ``tCCD_L`` / ``tWTR_L`` between accesses to the same
    bank group, the short variants across groups.

``NO_GROUPS``
    The idealised organisation ("Ideal" column): the short variants apply
    everywhere -- enough internal bus bandwidth to never conflict.

``DDB``
    ERUCA's dual data bus: the long variants shrink to per-*bank* scope
    (each sub-bank has a dedicated data path, the pair of chip-global
    buses serves the group), but at most two column commands may occupy
    the dual buses per DRAM core clock -- the ``tTCW`` window -- and a
    read after two back-to-back writes must wait ``tTWTRW`` (Fig. 10).
    Both windows only bind when the core clock is slower than two channel
    bursts, i.e. at high channel frequencies (Fig. 14).
"""

from __future__ import annotations

import enum
from typing import List, Optional

from repro.dram.bank import NEVER
from repro.dram.timing import TimingParams


class BusPolicy(enum.Enum):
    """Which CAS-window scoping rules a channel uses (module docstring,
    Tab. III's Baseline / Ideal / DDB timing columns)."""

    BANK_GROUPS = "bank_groups"
    NO_GROUPS = "no_groups"
    DDB = "ddb"


#: Idle bubble inserted on the data bus when it changes direction.
TURNAROUND_CLOCKS = 2

#: Floor tags for the explain API (:meth:`ChannelResources.act_floors`
#: and friends).  :mod:`repro.sim.accounting` maps them onto its
#: :class:`~repro.sim.accounting.StallBucket` vocabulary.
FLOOR_BUS = "bus"
FLOOR_CCD_WTR_LONG = "ccd_wtr_long"
FLOOR_DDB_WINDOW = "ddb_window"
FLOOR_TRRD = "trrd"
FLOOR_TFAW = "tfaw"
FLOOR_BANK = "bank_busy"
FLOOR_REFRESH = "refresh"


class ChannelResources:
    """Timing trackers shared by all banks of one channel."""

    def __init__(self, timing: TimingParams, policy: BusPolicy,
                 bank_groups: int, banks: int) -> None:
        self.timing = timing
        self.policy = policy
        self.bank_groups = bank_groups
        self.banks = banks
        self.cmd_bus_free = 0
        # CAS-to-CAS separation trackers.
        self._last_cas_any = NEVER
        self._last_cas_bg: List[int] = [NEVER] * bank_groups
        self._last_cas_bank: List[int] = [NEVER] * banks
        # Data-bus occupancy and direction.
        self._last_data_end = NEVER
        self._last_data_write: Optional[bool] = None
        # Write-to-read turnaround trackers (write data end times).
        self._wr_end_any = NEVER
        self._wr_end_bg: List[int] = [NEVER] * bank_groups
        self._wr_end_bank: List[int] = [NEVER] * banks
        # tTCW: the two most recent column commands per bank group.
        self._cas_window: List[List[int]] = [
            [NEVER, NEVER] for _ in range(bank_groups)]
        # tTWTRW: the two most recent write commands per bank group.
        self._wr_window: List[List[int]] = [
            [NEVER, NEVER] for _ in range(bank_groups)]
        # ACT-to-ACT (tRRD) tracker, rank-wide.
        self._last_act = NEVER
        # tFAW: the four most recent ACT times, rank-wide (oldest first).
        # A fifth ACT may not issue before the oldest of the last four
        # plus the window.
        self._act_window: List[int] = [NEVER, NEVER, NEVER, NEVER]
        self._tfaw_active = timing.tFAW > 0
        # Refresh state.  ``ref_until`` holds the in-flight refresh
        # windows as per-[bank][sub-bank] blackout end times; it is None
        # when refresh is off so every hot path skips it with a single
        # check.  ``ref_due``/``ref_period`` track the deadline schedule:
        # the active policy arms them via :meth:`init_refresh_schedule`
        # and retires one owed refresh per :meth:`retire_refresh`.
        self.refresh_active = timing.refresh_enabled
        self.ref_until: Optional[List[List[int]]] = (
            [[NEVER, NEVER] for _ in range(banks)]
            if self.refresh_active else None)
        self.ref_due = 0
        self.ref_period = 0
        ddb = policy is BusPolicy.DDB
        self._windows_active = (ddb and timing.tTCW > 0
                                and timing.ddb_windows_needed())

    # -- queries ---------------------------------------------------------

    @property
    def windows_active(self) -> bool:
        """Whether the DDB two-command windows bind at this frequency."""
        return self._windows_active

    def earliest_act(self) -> int:
        """Channel-side ACT floor: command bus, rank-wide ``tRRD``, and
        the rolling four-activate ``tFAW`` window."""
        t = self.timing
        best = max(self.cmd_bus_free, self._last_act + t.tRRD)
        if self._tfaw_active:
            v = self._act_window[0] + t.tFAW
            if v > best:
                best = v
        return best

    def earliest_precharge(self) -> int:
        """Channel-side PRE floor: the command bus only."""
        return self.cmd_bus_free

    def refresh_floor(self, bank: int, subbank: int) -> int:
        """End of the refresh blackout covering (bank, sub-bank).

        ``NEVER`` when refresh is off or no refresh is in flight there;
        the device folds this into every per-slot ``earliest_*`` query.
        """
        ru = self.ref_until
        if ru is None:
            return NEVER
        return ru[bank][subbank]

    def earliest_column(self, is_write: bool, bank_group: int,
                        bank: int) -> int:
        """Earliest legal issue time for a column command to (bg, bank).

        Hot path (one call per cached column candidate per peek), so the
        floors are folded with running comparisons instead of building a
        throwaway list.
        """
        t = self.timing
        best = self.cmd_bus_free
        v = self._last_cas_any + t.tCCD_S
        if v > best:
            best = v
        policy = self.policy
        if policy is BusPolicy.BANK_GROUPS:
            v = self._last_cas_bg[bank_group] + t.tCCD_L
            if v > best:
                best = v
        elif policy is BusPolicy.DDB:
            v = self._last_cas_bank[bank] + t.tCCD_L
            if v > best:
                best = v
            if self._windows_active:
                v = self._cas_window[bank_group][0] + t.tTCW
                if v > best:
                    best = v
        # Write-to-read turnaround (command-level).
        if not is_write:
            v = self._wr_end_any + t.tWTR_S
            if v > best:
                best = v
            if policy is BusPolicy.BANK_GROUPS:
                v = self._wr_end_bg[bank_group] + t.tWTR_L
                if v > best:
                    best = v
            elif policy is BusPolicy.DDB:
                v = self._wr_end_bank[bank] + t.tWTR_L
                if v > best:
                    best = v
                if self._windows_active:
                    v = self._wr_window[bank_group][0] + t.tTWTRW
                    if v > best:
                        best = v
        # External data-bus occupancy: the new burst must start after the
        # previous one ends, plus a turnaround bubble on direction change.
        last_write = self._last_data_write
        if last_write is not None and last_write != is_write:
            v = (self._last_data_end + TURNAROUND_CLOCKS * t.tCK
                 - (t.tCWL if is_write else t.tCL))
        else:
            v = self._last_data_end - (t.tCWL if is_write else t.tCL)
        if v > best:
            best = v
        return best

    # -- explain API (cycle accounting) ----------------------------------
    #
    # Each ``*_floors`` method decomposes the matching ``earliest_*``
    # query into tagged (tag, time) constraints such that
    # ``max(time for _, time in floors) == earliest_*(...)`` exactly --
    # property-tested in tests/sim/test_accounting.py.  They run only
    # when a run is observed, so they may build lists the hot path
    # avoids.

    def act_floors(self) -> list:
        """Tagged decomposition of :meth:`earliest_act`."""
        floors = [
            (FLOOR_BUS, self.cmd_bus_free),
            (FLOOR_TRRD, self._last_act + self.timing.tRRD),
        ]
        if self._tfaw_active:
            floors.append(
                (FLOOR_TFAW, self._act_window[0] + self.timing.tFAW))
        return floors

    def precharge_floors(self) -> list:
        """Tagged decomposition of :meth:`earliest_precharge`."""
        return [(FLOOR_BUS, self.cmd_bus_free)]

    def column_floors(self, is_write: bool, bank_group: int,
                      bank: int) -> list:
        """Tagged decomposition of :meth:`earliest_column`.

        The long CAS windows (``tCCD_L``/``tWTR_L`` -- what DDB
        relaxes) and the DDB guard windows (``tTCW``/``tTWTRW``) get
        their own tags; the command bus, short CAS spacing, and
        data-bus occupancy/turnaround all file under the generic bus
        tag.
        """
        t = self.timing
        floors = [
            (FLOOR_BUS, self.cmd_bus_free),
            (FLOOR_BUS, self._last_cas_any + t.tCCD_S),
        ]
        policy = self.policy
        if policy is BusPolicy.BANK_GROUPS:
            floors.append((FLOOR_CCD_WTR_LONG,
                           self._last_cas_bg[bank_group] + t.tCCD_L))
        elif policy is BusPolicy.DDB:
            floors.append((FLOOR_CCD_WTR_LONG,
                           self._last_cas_bank[bank] + t.tCCD_L))
            if self._windows_active:
                floors.append((FLOOR_DDB_WINDOW,
                               self._cas_window[bank_group][0] + t.tTCW))
        if not is_write:
            floors.append((FLOOR_BUS, self._wr_end_any + t.tWTR_S))
            if policy is BusPolicy.BANK_GROUPS:
                floors.append((FLOOR_CCD_WTR_LONG,
                               self._wr_end_bg[bank_group] + t.tWTR_L))
            elif policy is BusPolicy.DDB:
                floors.append((FLOOR_CCD_WTR_LONG,
                               self._wr_end_bank[bank] + t.tWTR_L))
                if self._windows_active:
                    floors.append(
                        (FLOOR_DDB_WINDOW,
                         self._wr_window[bank_group][0] + t.tTWTRW))
        last_write = self._last_data_write
        if last_write is not None and last_write != is_write:
            v = (self._last_data_end + TURNAROUND_CLOCKS * t.tCK
                 - (t.tCWL if is_write else t.tCL))
        else:
            v = self._last_data_end - (t.tCWL if is_write else t.tCL)
        floors.append((FLOOR_BUS, v))
        return floors

    # -- recorders -------------------------------------------------------

    def record_act(self, time: int) -> None:
        """Commit an ACT: advance the ``tRRD`` anchor, roll the ``tFAW``
        window, and occupy the command bus."""
        self._last_act = time
        w = self._act_window
        w[0], w[1], w[2], w[3] = w[1], w[2], w[3], time
        self.cmd_bus_free = max(self.cmd_bus_free, time + self.timing.tCK)

    def record_precharge(self, time: int) -> None:
        """Commit a PRE: it only occupies the command bus for a clock."""
        self.cmd_bus_free = max(self.cmd_bus_free, time + self.timing.tCK)

    # -- refresh ---------------------------------------------------------

    def init_refresh_schedule(self, period: int) -> None:
        """Arm the deadline tracker: the first refresh is due one period
        in.  ``period`` is the cadence the active policy retires owed
        refreshes at -- tREFI for all-bank REF, tREFI divided by the
        scope count for per-bank/per-sub-bank rotations."""
        self.ref_period = period
        self.ref_due = period

    def retire_refresh(self) -> None:
        """One owed refresh retired: push the deadline out one period."""
        self.ref_due += self.ref_period

    def record_refresh(self, time: int, duration: int, bank: int = -1,
                       subbank: int = -1) -> int:
        """Commit a refresh: black out its scope and occupy the command
        bus for a clock.

        ``bank < 0`` is an all-bank REF (the whole rank); ``subbank < 0``
        with a bank covers both of that bank's sub-banks (DARP-style
        REFpb); both set covers a single sub-bank (SARP).  Returns the
        blackout end time.
        """
        end = time + duration
        ru = self.ref_until
        if bank < 0:
            for slots in ru:
                slots[0] = slots[1] = end
        elif subbank < 0:
            slots = ru[bank]
            slots[0] = slots[1] = end
        else:
            ru[bank][subbank] = end
        self.cmd_bus_free = max(self.cmd_bus_free, time + self.timing.tCK)
        return end

    def record_column(self, time: int, is_write: bool, bank_group: int,
                      bank: int) -> int:
        """Record a column command; returns the data-burst end time."""
        t = self.timing
        latency = t.tCWL if is_write else t.tCL
        data_end = time + latency + t.burst_time
        self._last_cas_any = max(self._last_cas_any, time)
        self._last_cas_bg[bank_group] = max(
            self._last_cas_bg[bank_group], time)
        self._last_cas_bank[bank] = max(self._last_cas_bank[bank], time)
        self._last_data_end = max(self._last_data_end, data_end)
        self._last_data_write = is_write
        window = self._cas_window[bank_group]
        window[0], window[1] = window[1], time
        if is_write:
            self._wr_end_any = max(self._wr_end_any, data_end)
            self._wr_end_bg[bank_group] = max(
                self._wr_end_bg[bank_group], data_end)
            self._wr_end_bank[bank] = max(self._wr_end_bank[bank], data_end)
            wr_window = self._wr_window[bank_group]
            wr_window[0], wr_window[1] = wr_window[1], time
        self.cmd_bus_free = max(self.cmd_bus_free, time + t.tCK)
        return data_end
