"""Timed bank state machines.

A :class:`Bank` generalises every organisation the paper evaluates into a
collection of *row slots* -- independently activatable/prechargeable units:

==========================  =========================================
organisation                slots per bank
==========================  =========================================
baseline DDR4 / ideal32     1 (the whole bank)
VSB / Half-DRAM / paired    2 (left/right sub-bank)
MASA-n (SALP)               n (sub-array groups)
MASA-n + ERUCA              2 x n (sub-bank x sub-array group)
==========================  =========================================

Sub-banked organisations additionally enforce the plane-latch sharing rules
of :mod:`repro.core.subbank`; MASA organisations pay the extra ``tSA``
latency when consecutive column accesses hit different sub-array groups
that share global bitlines (Section III-A / Fig. 15 discussion).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.controller.mapping import RowLayout
from repro.core.subbank import ActivationVerdict
from repro.dram.timing import TimingParams

#: "Never happened" timestamp: far enough in the past that any constraint
#: anchored to it is trivially satisfied.
NEVER = -(1 << 60)

SlotKey = Tuple[int, int]  # (subbank, subarray_group)


@dataclass
class RowSlot:
    """One independently controllable row resource and its timestamps."""

    active_row: Optional[int] = None
    #: Time of the last ACT to this slot.
    act_time: int = NEVER
    #: Earliest time a column command may issue (ACT + tRCD).
    ready_col: int = NEVER
    #: Earliest time a *write* column command may issue (ACT + tRCD_WR;
    #: equals ``ready_col`` on technologies with symmetric tRCD).
    ready_col_wr: int = NEVER
    #: Earliest time a PRE may issue (tRAS / tRTP / write recovery).
    pre_allowed: int = NEVER
    #: Earliest time an ACT may issue (PRE + tRP, and tRC from last ACT).
    act_allowed: int = 0
    #: Plane and MWL tag of the active row (cached at activation so the
    #: scheduler's hot classify() path never recomputes them).
    active_plane: int = -1
    active_mwl: int = -1
    #: Last time this slot was activated or column-accessed (for the
    #: adaptive open-page policy's idle-close decision).
    last_use: int = NEVER
    #: End of the in-flight PCM write pulse (``tWRP`` after the write
    #: burst); ``NEVER`` when no pulse is programming this slot.
    wr_pulse_end: int = NEVER
    #: Earliest time the in-flight pulse may be cancelled by a PRE
    #: (``tWCT`` after the write burst).
    wr_cancel_ready: int = NEVER
    #: Column-readiness gate left behind by a cancelled write: the
    #: replayed programming pulse finishes this late after the next ACT.
    replay_until: int = NEVER


@dataclass
class BankGeometry:
    """Shape of one bank: how many sub-banks and sub-array groups."""

    subbanks: int = 1
    subarray_groups: int = 1
    row_bits: int = 16
    #: Extra sub-array interleave latency (ps) charged when consecutive
    #: column accesses within one sub-bank hit different MASA groups.
    tSA: int = 0

    def __post_init__(self) -> None:
        if self.subbanks not in (1, 2):
            raise ValueError("subbanks must be 1 or 2")
        if (self.subarray_groups < 1
                or self.subarray_groups & (self.subarray_groups - 1)):
            raise ValueError("subarray_groups must be a power of two")

    @property
    def group_shift(self) -> int:
        """Sub-array groups are contiguous row regions (row MSBs)."""
        bits = (self.subarray_groups - 1).bit_length()
        return self.row_bits - bits

    def group_of(self, row: int) -> int:
        """The MASA sub-array group this row belongs to (0 if none)."""
        if self.subarray_groups == 1:
            return 0
        return row >> self.group_shift


class Bank:
    """One physical bank: row slots + plane-latch rules + timing."""

    def __init__(self, geometry: BankGeometry, timing: TimingParams,
                 row_layout: Optional[RowLayout] = None,
                 ewlr: bool = False, rap: bool = False) -> None:
        if geometry.subbanks == 1 and (ewlr or rap):
            raise ValueError("EWLR/RAP require a sub-banked bank")
        self.geometry = geometry
        self.timing = timing
        self.row_layout = row_layout
        self.ewlr = ewlr
        self.rap = rap
        self.slots: Dict[SlotKey, RowSlot] = {
            (sb, g): RowSlot()
            for sb in range(geometry.subbanks)
            for g in range(geometry.subarray_groups)
        }
        #: Slot and time of the last column access, for the MASA tSA
        #: penalty (shared global bitlines serialise sub-array groups).
        self._last_col_slot: Optional[SlotKey] = None
        self._last_col_time: int = NEVER
        # PCM write-pulse model (init-bound so the DRAM hot path pays a
        # single attribute test).
        self._pcm = timing.write_pulse_enabled
        self._trcd_wr = timing.trcd_wr
        self._cancel_ok = timing.tWCT > 0

    # -- addressing -----------------------------------------------------

    def slot_key(self, subbank: int, row: int) -> SlotKey:
        """The (sub-bank, sub-array group) slot serving this row."""
        return (subbank, self.geometry.group_of(row))

    def slot(self, subbank: int, row: int) -> RowSlot:
        """The :class:`RowSlot` serving (subbank, row)."""
        return self.slots[self.slot_key(subbank, row)]

    def _plane_of(self, row: int, subbank: int) -> int:
        return self.row_layout.plane_id(row, subbank, self.rap)

    # -- activation classification (Fig. 5 flow) -------------------------

    def classify(self, subbank: int, row: int,
                 plane: Optional[int] = None, mwl: Optional[int] = None,
                 key: Optional[SlotKey] = None
                 ) -> Tuple[ActivationVerdict, Optional[SlotKey]]:
        """What must happen for (subbank, row) to serve a column command.

        Returns the verdict plus, for conflicts, the slot that must be
        precharged first (the victim).  ``plane``/``mwl``/``key`` may be
        passed pre-computed (the scheduler caches them per transaction).
        """
        if key is None:
            key = self.slot_key(subbank, row)
        own = self.slots[key]
        if own.active_row == row:
            return ActivationVerdict.ROW_HIT, None
        if own.active_row is not None:
            return ActivationVerdict.OWN_ROW_CONFLICT, key
        if self.geometry.subbanks == 1 or self.row_layout is None:
            return ActivationVerdict.ACT_OK, None
        # Plane-latch interaction with every active row of the paired
        # sub-bank (with MASA there may be several).
        if plane is None:
            plane = self._plane_of(row, subbank)
        if mwl is None and self.ewlr:
            mwl = self.row_layout.mwl_tag(row)
        other_sb = 1 - subbank
        ewlr_hit = False
        for g in range(self.geometry.subarray_groups):
            other = self.slots[(other_sb, g)]
            if other.active_row is None:
                continue
            if other.active_plane != plane:
                continue
            if self.ewlr:
                if other.active_mwl == mwl:
                    ewlr_hit = True
                    continue
            elif other.active_row == row:
                continue  # naive VSB may share an identical row address
            return ActivationVerdict.PLANE_CONFLICT, (other_sb, g)
        if ewlr_hit:
            return ActivationVerdict.EWLR_HIT, None
        return ActivationVerdict.ACT_OK, None

    # -- timed state transitions -----------------------------------------

    def earliest_act(self, subbank: int, row: int) -> int:
        """Earliest ACT time for this slot (``tRP`` from its precharge
        and ``tRC`` from its previous ACT)."""
        return self.slot(subbank, row).act_allowed

    def earliest_column(self, subbank: int, row: int,
                        is_write: bool = False) -> int:
        """Earliest column command time, including the MASA tSA penalty.

        Consecutive column accesses to *different* sub-array groups within
        one sub-bank share global bitlines, so they are serialised tSA
        apart (Kim et al. [2]) -- a bandwidth cost, which is what limits
        MASA under high memory intensity (Fig. 15 discussion).

        Writes read their own readiness horizon: on PCM the write path
        opens after ``tRCD_WR`` (asymmetric RAS-to-CAS), while DRAM keeps
        the two horizons identical.
        """
        key = self.slot_key(subbank, row)
        slot = self.slots[key]
        ready = slot.ready_col_wr if is_write else slot.ready_col
        if self._pcm and ready < slot.replay_until:
            # A cancelled write is re-programmed on re-activation: the
            # replay pulse walls off the partition's columns until
            # ``replay_until``, across any intervening row swaps.
            ready = slot.replay_until
        if (self.geometry.tSA and self._last_col_slot is not None
                and self._last_col_slot != key
                and self._last_col_slot[0] == key[0]):
            ready = max(ready + self.geometry.tSA,
                        self._last_col_time + self.geometry.tSA)
        return ready

    def earliest_precharge(self, key: SlotKey, cancel: bool = False) -> int:
        """Earliest PRE time for this slot (``tRAS``, ``tRTP``, and
        write recovery ``tWR`` after the last write's data burst).

        With a PCM write pulse in flight a plain PRE waits out the full
        pulse; ``cancel=True`` asks for the *write-cancellation* floor
        instead (``tWCT`` after the burst), legal only when the backend
        supports cancellation.
        """
        slot = self.slots[key]
        floor = slot.pre_allowed
        pulse = slot.wr_pulse_end
        if pulse > floor:
            if cancel and self._cancel_ok:
                if slot.wr_cancel_ready > floor:
                    floor = slot.wr_cancel_ready
            else:
                floor = pulse
        return floor

    def do_activate(self, subbank: int, row: int, time: int) -> None:
        """Open ``row``: set the slot's ``tRCD``/``tRAS``/``tRC``
        horizons and cache its plane/MWL tag for classify()."""
        verdict, _ = self.classify(subbank, row)
        if verdict not in (ActivationVerdict.ACT_OK,
                           ActivationVerdict.EWLR_HIT):
            raise ValueError(f"illegal ACT at {time}: {verdict}")
        slot = self.slot(subbank, row)
        if time < slot.act_allowed:
            raise ValueError(
                f"ACT at {time} violates act_allowed={slot.act_allowed}")
        t = self.timing
        slot.active_row = row
        slot.act_time = time
        slot.ready_col = time + t.tRCD
        slot.ready_col_wr = time + self._trcd_wr
        slot.pre_allowed = time + t.tRAS
        slot.act_allowed = time + t.tRC
        slot.last_use = time
        if self.row_layout is not None and self.geometry.subbanks == 2:
            slot.active_plane = self._plane_of(row, subbank)
            slot.active_mwl = self.row_layout.mwl_tag(row)

    def do_column(self, subbank: int, row: int, time: int,
                  is_write: bool) -> None:
        """Apply a RD/WR: push the slot's precharge horizon (``tRTP``,
        or ``tWR`` past the write burst) and the MASA ``tSA`` tracker."""
        key = self.slot_key(subbank, row)
        slot = self.slots[key]
        if slot.active_row != row:
            raise ValueError("column command to a row that is not open")
        if time < self.earliest_column(subbank, row, is_write):
            raise ValueError(f"column command at {time} too early")
        t = self.timing
        if is_write:
            data_end = time + t.tCWL + t.burst_time
            slot.pre_allowed = max(slot.pre_allowed, data_end + t.tWR)
            if self._pcm:
                # The programming pulse occupies the slot past the
                # burst: columns wait it out; a PRE either waits too or
                # cancels it once tWCT has elapsed.
                slot.wr_pulse_end = data_end + t.tWRP
                slot.wr_cancel_ready = data_end + t.tWCT
                if slot.wr_pulse_end > slot.ready_col:
                    slot.ready_col = slot.wr_pulse_end
                if slot.wr_pulse_end > slot.ready_col_wr:
                    slot.ready_col_wr = slot.wr_pulse_end
        else:
            slot.pre_allowed = max(slot.pre_allowed, time + t.tRTP)
        self._last_col_slot = key
        self._last_col_time = time
        slot.last_use = time

    def do_precharge(self, key: SlotKey, time: int) -> bool:
        """Close the slot's row; the next ACT waits ``tRP`` from here.

        A PRE landing inside an in-flight PCM write pulse *is* a write
        cancellation (PALP): legal only once ``tWCT`` has elapsed since
        the burst, it aborts the pulse and leaves a ``replay_until``
        gate for the next activation.  Returns True when this happened.
        """
        slot = self.slots[key]
        if slot.active_row is None:
            raise ValueError("precharge of an idle slot")
        cancelled = False
        if self._pcm and time < slot.wr_pulse_end:
            if not self._cancel_ok:
                raise ValueError(
                    f"PRE at {time} inside a write pulse ending at "
                    f"{slot.wr_pulse_end} (no cancellation: tWCT=0)")
            if time < slot.wr_cancel_ready:
                raise ValueError(
                    f"write cancellation at {time} before "
                    f"wr_cancel_ready={slot.wr_cancel_ready}")
            cancelled = True
            slot.replay_until = time + self.timing.tWRP
        if time < slot.pre_allowed:
            raise ValueError(
                f"PRE at {time} violates pre_allowed={slot.pre_allowed}")
        slot.active_row = None
        slot.act_allowed = max(slot.act_allowed, time + self.timing.tRP)
        slot.wr_pulse_end = NEVER
        slot.wr_cancel_ready = NEVER
        if self._last_col_slot == key:
            self._last_col_slot = None
        return cancelled

    def partial_precharge_possible(self, key: SlotKey) -> bool:
        """Whether PRE of this slot can keep its MWL raised (EWLR pair).

        True when some active row of the *other* sub-bank shares the
        victim row's plane and MWL tag, so the MWL must stay up and only
        the sub-bank's local logic is released (paper Section VI-A).
        """
        if not self.ewlr or self.geometry.subbanks == 1:
            return False
        victim = self.slots[key]
        if victim.active_row is None:
            return False
        other_sb = 1 - key[0]
        for g in range(self.geometry.subarray_groups):
            other = self.slots[(other_sb, g)]
            if other.active_row is None:
                continue
            if (other.active_plane == victim.active_plane
                    and other.active_mwl == victim.active_mwl):
                return True
        return False

    def open_rows(self) -> Dict[SlotKey, int]:
        """All currently open rows, keyed by slot."""
        return {k: s.active_row for k, s in self.slots.items()
                if s.active_row is not None}
