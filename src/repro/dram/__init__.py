"""The timed DRAM device model one memory controller drives.

:mod:`repro.dram.timing` holds the Tab. I / Tab. III parameter presets
(including ERUCA's ``tTCW`` / ``tTWTRW`` bus windows);
:mod:`repro.dram.bank` the per-bank/sub-bank/MASA-group FSMs (with
partial precharge, Section VI-A); :mod:`repro.dram.resources` the
channel-shared trackers (command bus, data bus, CAS windows, ``tRRD``)
for the bank-group / ideal / DDB bus policies;
:mod:`repro.dram.device` the :class:`~repro.dram.device.Channel` facade
tying them together; :mod:`repro.dram.power` the event-counting energy
meter (Fig. 16b); and :mod:`repro.dram.validation` a post-hoc command-
log legality checker.
"""
