"""System configurations for every organisation in the paper's evaluation.

Each :class:`SystemConfig` fully determines a memory system: bank/bank-group
counts, sub-banking geometry, ERUCA mechanisms, bus policy, timings, and
address mapping.  The named constructors produce exactly the configurations
in Figs. 12-16:

=====================  ==============================================
constructor            paper label
=====================  ==============================================
``ddr4_baseline``      DDR4 (16 banks, 4 bank groups)
``bg32``               BG32 (32 banks, 8 groups, grouped timing)
``ideal32``            Ideal32 (32 banks, no bank-group penalty)
``vsb``                VSB(naive / EWLR / RAP / EWLR+RAP)(+DDB)
``paired_bank``        Paired-bank(EWLR+RAP)(+DDB)
``masa``               MASA4 / MASA8 (SALP)
``half_dram``          Half-DRAM
``masa_eruca``         MASA8 + ERUCA (with or without DDB)
``pcm_palp``           PCM-PALP (technology backend, not a paper point)
``gddr5``              GDDR5 (technology backend, not a paper point)
=====================  ==============================================

All organisations keep capacity constant (4 KiB rank-level rows; the
baseline's half-bank select bit is its row MSB, see
:func:`repro.controller.mapping.skylake_mapping`).
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
import warnings
from dataclasses import dataclass, field, replace
from typing import Optional

from repro.controller.mapping import AddressMapping, skylake_mapping
from repro.controller.queue import QueueConfig
from repro.core.mechanisms import EruConfig
from repro.dram.backends import get_backend
from repro.dram.bank import BankGeometry
from repro.dram.device import Channel
from repro.dram.power import EnergyParams
from repro.dram.resources import BusPolicy
from repro.dram.timing import TimingParams, ns


class Organization(enum.Enum):
    DDR4_16 = "ddr4_16"
    BG32 = "bg32"
    IDEAL32 = "ideal32"
    VSB = "vsb"
    PAIRED_BANK = "paired_bank"
    MASA = "masa"
    HALF_DRAM = "half_dram"
    MASA_ERUCA = "masa_eruca"


#: Sub-array interleave latency for MASA (the tSA of Kim et al. [2]).
DEFAULT_TSA_PS = ns(4)


@dataclass(frozen=True)
class SystemConfig:
    """One complete memory-system configuration."""

    name: str
    organization: Organization
    bank_groups: int = 4
    banks_per_group: int = 4
    channels: int = 2
    eru: Optional[EruConfig] = None
    masa_groups: int = 1
    bus_frequency_hz: float = 1.333e9
    tSA: int = DEFAULT_TSA_PS
    queue: QueueConfig = field(default_factory=QueueConfig)
    energy: EnergyParams = field(default_factory=EnergyParams)
    #: Adaptive open-page idle-close threshold (ps); None keeps rows
    #: open until a conflict forces the precharge (pure open page).
    idle_close_ps: Optional[int] = None
    #: Record every issued command for post-hoc timing validation
    #: (:mod:`repro.dram.validation`).
    record_commands: bool = False
    #: Scheduler selection path: True/False forces the incremental or
    #: reference implementation; None keeps the module default
    #: (:data:`repro.controller.scheduler.INCREMENTAL_DEFAULT`).  The
    #: two are bit-identical; the override exists so differential
    #: harnesses can run both without mutating the global.
    incremental: Optional[bool] = None
    #: Four-activate window override in nanoseconds: None keeps the
    #: preset's value, 0 disables the window (the pre-tFAW model).
    tfaw_ns: Optional[float] = None
    #: All-bank refresh cycle time (``tRFC``) override in nanoseconds.
    #: None keeps the preset's value (refresh off -- the presets ship
    #: without it so historical digests are preserved); 0 forces it
    #: off; a positive value enables refresh with ``tREFI`` = 7.8 us
    #: and ``tRFCpb`` scaled from the 8Gb density grade.  Use
    #: ``refresh_density`` for the exact JEDEC grades.
    refresh_ns: Optional[float] = None
    #: DDR4 die density selecting a (tRFC, tRFCpb) row of
    #: :data:`repro.dram.timing.REFRESH_DENSITY_GRADES_NS`
    #: ("4Gb" / "8Gb" / "16Gb").  Overrides ``refresh_ns``.
    refresh_density: Optional[str] = None
    #: Refresh scheduling policy (only meaningful with refresh
    #: enabled): ``"baseline"`` on-deadline all-bank REF, ``"darp"``
    #: deferred out-of-order per-bank refresh behind pending demand,
    #: ``"sarp"`` sub-bank refresh overlapped with the partner
    #: sub-bank's accesses (per-bank on flat-bank organisations).
    refresh_policy: str = "baseline"
    #: Execution backend for one simulation: ``"off"`` runs the classic
    #: global event loop, ``"serial"`` the channel-sharded sweep driver,
    #: ``"threads"`` the sharded per-round driver on persistent worker
    #: threads (:mod:`repro.sim.shards`).  None keeps the module
    #: default (:data:`repro.sim.shards.SHARDS_DEFAULT`): ``"threads"``
    #: on free-threaded builds (``sys._is_gil_enabled()`` false),
    #: ``"serial"`` under the GIL; ``REPRO_SHARDS`` overrides.  A
    #: host-side knob only -- every backend is digest-identical.
    shards: Optional[str] = None
    #: Memory-technology backend supplying the command set, timing-rule
    #: table, refresh grades, and power model
    #: (:mod:`repro.dram.backends`): ``"dram"`` (DDR4), ``"pcm_palp"``,
    #: or ``"gddr5"``.
    backend: str = "dram"

    def __post_init__(self) -> None:
        tech = get_backend(self.backend)  # raises on unknown names
        if self.refresh_enabled and not tech.refresh_capable:
            raise ValueError(
                f"backend {self.backend!r} has no refresh (refresh_ns / "
                f"refresh_density cannot be set on {self.name!r})")
        if (self.refresh_density is not None
                and self.refresh_density not in tech.refresh_grades_ns):
            known = ", ".join(sorted(tech.refresh_grades_ns))
            raise ValueError(
                f"backend {self.backend!r} has no {self.refresh_density!r} "
                f"density grade (known: {known})")
        if (self.refresh_enabled and self.refresh_policy == "sarp"
                and not self.subbanked):
            warnings.warn(
                f"refresh_policy='sarp' on non-sub-banked {self.name!r} "
                "degrades to per-bank 'darp' (no partner sub-bank to "
                "overlap); effective_refresh_policy records the policy "
                "actually applied",
                stacklevel=2)

    # -- derived properties ----------------------------------------------

    @property
    def subbanked(self) -> bool:
        return self.organization in (Organization.VSB,
                                     Organization.PAIRED_BANK,
                                     Organization.HALF_DRAM,
                                     Organization.MASA_ERUCA)

    @property
    def row_bits(self) -> int:
        """Row-address width keeping capacity constant (34-bit space).

        The non-row fields (offset, column, channel) take 13 bits; the
        remaining 21 split between bank-group/bank/sub-bank IDs and the
        row.  The baseline's 17th row bit becomes the sub-bank ID in
        VSB-style organisations; the paired-bank's sub-bank ID instead
        comes from a *bank* bit (two banks fuse into one); the 32-bank
        organisations spend one more bank bit.
        """
        bg_bits = (self.bank_groups - 1).bit_length()
        bank_bits = (self.banks_per_group - 1).bit_length()
        subbank_bits = 1 if self.subbanked else 0
        return 21 - bg_bits - bank_bits - subbank_bits

    @property
    def bus_policy(self) -> BusPolicy:
        if self.organization is Organization.IDEAL32:
            return BusPolicy.NO_GROUPS
        if self.eru is not None and self.eru.ddb:
            return BusPolicy.DDB
        return BusPolicy.BANK_GROUPS

    @property
    def refresh_enabled(self) -> bool:
        return self.refresh_density is not None or bool(self.refresh_ns)

    @property
    def effective_refresh_policy(self) -> str:
        """The refresh policy actually applied by the scheduler.

        ``"sarp"`` needs a partner sub-bank to overlap refresh with, so
        on flat-bank organisations it degrades to per-bank ``"darp"``
        (see :class:`repro.controller.scheduler.RefreshScheduler`).
        """
        if self.refresh_policy == "sarp" and not self.subbanked:
            return "darp"
        return self.refresh_policy

    def timing(self) -> TimingParams:
        tech = get_backend(self.backend)
        t = tech.timings(self.bus_frequency_hz)
        if self.tfaw_ns is not None:
            t = t.replace(tFAW=ns(self.tfaw_ns))
        if self.refresh_density is not None:
            t = t.replace(**tech.refresh_overrides(self.refresh_density))
        elif self.refresh_ns:
            t = t.replace(**tech.adhoc_refresh_overrides(self.refresh_ns))
        if self.bus_policy is BusPolicy.DDB:
            t = t.with_ddb_windows()
        return t

    def digest_payload(self) -> dict:
        """Canonical JSON-able form of every behaviour-affecting field.

        Host-side knobs (``record_commands``, ``incremental``,
        ``shards``) and the cosmetic ``name`` are excluded: configs
        differing only in those produce bit-identical simulations.
        """
        skip = {"name", "record_commands", "incremental", "shards"}

        def conv(value):
            if isinstance(value, enum.Enum):
                return value.value
            if dataclasses.is_dataclass(value) and not isinstance(value,
                                                                  type):
                return {f.name: conv(getattr(value, f.name))
                        for f in dataclasses.fields(value)}
            return value

        return {f.name: conv(getattr(self, f.name))
                for f in dataclasses.fields(self) if f.name not in skip}

    def digest(self) -> str:
        """SHA-256 over :meth:`digest_payload` -- a stable identity for
        caching: equal digests imply equal simulated behaviour."""
        payload = json.dumps(self.digest_payload(), sort_keys=True)
        return hashlib.sha256(payload.encode()).hexdigest()

    def bank_geometry(self) -> BankGeometry:
        groups = self.masa_groups if self.organization in (
            Organization.MASA, Organization.MASA_ERUCA) else 1
        return BankGeometry(
            subbanks=2 if self.subbanked else 1,
            subarray_groups=groups,
            row_bits=self.row_bits,
            tSA=self.tSA if groups > 1 else 0,
        )

    def mapping(self) -> AddressMapping:
        layout = self.eru.row_layout() if (self.subbanked and self.eru) \
            else None
        return skylake_mapping(
            subbanked=self.subbanked,
            row_layout=layout,
            bank_groups=self.bank_groups,
            banks_per_group=self.banks_per_group,
            channels=self.channels,
            row_bits=self.row_bits,
        )

    def build_channel(self) -> Channel:
        eru = self.eru
        return Channel(
            timing=self.timing(),
            policy=self.bus_policy,
            bank_groups=self.bank_groups,
            banks_per_group=self.banks_per_group,
            bank_geometry=self.bank_geometry(),
            row_layout=eru.row_layout() if (self.subbanked and eru)
            else None,
            ewlr=bool(eru and eru.ewlr),
            rap=bool(eru and eru.rap),
            energy_params=self.energy,
            record_commands=self.record_commands,
        )

    def at_frequency(self, bus_frequency_hz: float) -> "SystemConfig":
        """The same organisation at a different channel clock (Fig. 14)."""
        grade = f"{bus_frequency_hz / 1e9:.2f}GHz"
        return replace(self, bus_frequency_hz=bus_frequency_hz,
                       name=f"{self.name}@{grade}")


# -- named configurations (the paper's evaluated points) -------------------


def ddr4_baseline() -> SystemConfig:
    """Tab. III baseline: DDR4, 16 banks in 4 bank groups."""
    return SystemConfig("DDR4", Organization.DDR4_16)


def bg32() -> SystemConfig:
    """32 banks, 8 bank groups, standard grouped timing."""
    return SystemConfig("BG32", Organization.BG32,
                        bank_groups=8, banks_per_group=4)


def ideal32() -> SystemConfig:
    """Idealised 32 banks with enough buses to avoid bank grouping."""
    return SystemConfig("Ideal32", Organization.IDEAL32,
                        bank_groups=8, banks_per_group=4)


def vsb(eru: EruConfig = None) -> SystemConfig:
    """Vertical sub-banks on x4 Combo DRAM with the given mechanisms."""
    if eru is None:
        eru = EruConfig.full()
    return SystemConfig(eru.name, Organization.VSB, eru=eru)


def paired_bank(eru: EruConfig = None) -> SystemConfig:
    """Paired-bank for non-Combo DRAM: 8 fused banks of 2 sub-banks.

    Two adjacent banks share one row decoder; the old bank-select LSB
    becomes the sub-bank ID, so bank count halves while sub-bank count
    restores the parallel resources (minus plane conflicts).
    """
    if eru is None:
        eru = EruConfig.full()
    eru = replace(eru, row_bits=17)
    return SystemConfig(f"Paired-bank({eru.name})",
                        Organization.PAIRED_BANK,
                        bank_groups=4, banks_per_group=2, eru=eru)


def masa(groups: int = 8) -> SystemConfig:
    """MASA (SALP, Kim et al. [2]) with 4 or 8 sub-array groups."""
    return SystemConfig(f"MASA{groups}", Organization.MASA,
                        masa_groups=groups)


def half_dram() -> SystemConfig:
    """Half-DRAM (Zhang et al. [4]): two half-wordline sub-banks sharing
    one row-address latch set (a single plane, no EWLR/RAP), with halved
    activation energy."""
    eru = EruConfig(planes=1, ewlr=False, rap=False, ddb=False)
    return SystemConfig("Half-DRAM", Organization.HALF_DRAM, eru=eru,
                        energy=EnergyParams(act_scale=0.5))


def masa_eruca(groups: int = 8, ddb: bool = True,
               planes: int = 4) -> SystemConfig:
    """MASA sub-array groups combined with full ERUCA (Fig. 15)."""
    eru = EruConfig.full(planes=planes, ddb=ddb)
    suffix = "" if ddb else "(no DDB)"
    return SystemConfig(f"MASA{groups}+ERUCA{suffix}",
                        Organization.MASA_ERUCA,
                        eru=eru, masa_groups=groups)


def pcm_palp(eru: EruConfig = None) -> SystemConfig:
    """Phase-change memory with PALP-style partition parallelism.

    Asymmetric array timing (slow reads, fast write *initiation*, a long
    self-timed write pulse), write cancellation on a pending-read
    conflict, and no refresh.  With ``eru`` the partitions additionally
    get ERUCA's sub-banked resource sharing.
    """
    tech = get_backend("pcm_palp")
    if eru is None:
        return SystemConfig("PCM-PALP", Organization.DDR4_16,
                            backend="pcm_palp", energy=tech.energy)
    return SystemConfig(f"PCM-PALP({eru.name})", Organization.VSB,
                        eru=eru, backend="pcm_palp", energy=tech.energy)


def gddr5() -> SystemConfig:
    """GDDR5 graphics DRAM: 2.5 GHz bus, tighter core timings, the
    shorter per-bank refresh of high-bandwidth parts (promoted from
    ``examples/gddr5_extension.py``)."""
    tech = get_backend("gddr5")
    return SystemConfig("GDDR5", Organization.DDR4_16, backend="gddr5",
                        bus_frequency_hz=tech.default_frequency_hz,
                        energy=tech.energy)


def all_presets() -> list:
    """Every preset the experiments evaluate, plus stress variants.

    The shared corpus for the equivalence tests, the accounting property
    tests, and the differential fuzzer (``tools/fuzz_schedules.py``):
    each organisation of Figs. 12-16, a high-frequency DDB point where
    the guard windows bind, two adaptive-page-policy variants (the
    policy-close path has its own candidate bookkeeping), and the
    non-DDR4 technology backends (PCM-PALP flat and sub-banked, GDDR5).
    The 17 ``dram`` presets come first, in their historical order.
    """
    return [
        ddr4_baseline(),
        bg32(),
        ideal32(),
        vsb(EruConfig.naive(4)),
        vsb(EruConfig.naive_ddb(4)),
        vsb(EruConfig.ewlr_only(4)),
        vsb(EruConfig.rap_only(4)),
        vsb(EruConfig.full(4)),
        paired_bank(),
        paired_bank(EruConfig.full(4, ddb=True)),
        half_dram(),
        masa(4),
        masa(8),
        masa_eruca(8),
        vsb(EruConfig.full(4)).at_frequency(2.4e9),
        replace(ddr4_baseline(), idle_close_ps=400_000,
                name="DDR4+close@400ns"),
        replace(vsb(EruConfig.full(4)), idle_close_ps=400_000,
                name="VSB+close@400ns"),
        pcm_palp(),
        pcm_palp(EruConfig.full(4, ddb=False)),
        gddr5(),
    ]
