"""Content-addressed on-disk result store for the experiment grid.

Every grid cell -- one :class:`~repro.sim.config.SystemConfig` evaluated
on one workload (a mix, or a lone benchmark for the weighted-speedup
denominator) -- is deterministic given its key, so its
:class:`~repro.sim.simulator.SimulationResult` can be persisted once and
reused by every figure, CLI invocation, and resumed sweep.  The store
generalises the old alone-IPC JSON table (PR 1/PR 8) to *all* cell
results:

* **Keys** are SHA-256 digests over a canonical JSON tuple of
  ``(CACHE_VERSION, SystemConfig.digest(), trace key, seed, core
  config)`` -- see :func:`store_key`.  Any behaviour-affecting knob
  lands in the config digest, so a refresh or backend override can
  never alias a stale entry.
* **Entries** are one JSON file each under
  ``<cache dir>/store/<key[:2]>/<key>.json`` holding the serialized
  result summary (everything :meth:`SimulationResult.digest` hashes,
  plus the counters the reducers read) and, for observed runs, the
  stall-attribution sidecar payload.
* **Writes** are atomic (temp file + ``os.replace``) and merge
  freshest-last: concurrent writers of the same key race to an
  identical deterministic payload, and a new unobserved write never
  drops an existing entry's accounting sidecar.
* **Counters** -- hits / misses / puts / evictions -- are kept per
  store and aggregated process-wide (``repro stats`` prints the
  aggregate); ``repro gc`` prunes stale versions and old entries.

Set ``REPRO_CACHE_DIR`` to relocate the store (tests run against a
throwaway directory); delete the directory to invalidate everything.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import re
import time
from collections import Counter
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional

from repro.controller.controller import ControllerStats
from repro.cpu.core import CoreConfig
from repro.dram.commands import PrechargeCause
from repro.dram.power import EnergyMeter, EnergyParams
from repro.sim.config import SystemConfig
from repro.sim.metrics import LatencyHistogram
from repro.sim.simulator import SimulationResult

#: Environment variable relocating the on-disk cache directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"
#: Default cache directory (relative to the working directory).
DEFAULT_CACHE_DIR = ".repro_cache"
#: Bump to invalidate every persisted entry after a modelling change.
#: v2: the tFAW four-activate window changed simulated IPCs.
#: v3: keys gained the full alone-config digest.
#: v4: the alone-IPC table became the content-addressed result store --
#: entries are full result summaries keyed by (version, config digest,
#: trace key, seed, core config); v3 ``alone_ipc.json`` files are
#: ignored entirely (never parsed as store entries).
CACHE_VERSION = 4

_HEX_KEY = re.compile(r"[0-9a-f]{64}")


def cache_directory(directory: Optional[str] = None) -> str:
    """The cache root, honouring ``REPRO_CACHE_DIR``."""
    if directory is not None:
        return directory
    return os.environ.get(CACHE_DIR_ENV, DEFAULT_CACHE_DIR)


def store_key(config: SystemConfig, *, accesses: int,
              fragmentation: float, seed: int,
              mix: Optional[str] = None,
              benchmark: Optional[str] = None,
              core_config: Optional[CoreConfig] = None) -> str:
    """Content address of one grid cell.

    Exactly one of ``mix`` / ``benchmark`` names the workload; the
    trace key (workload, accesses, fragmentation, seed) regenerates the
    stimulus bit-for-bit and :meth:`SystemConfig.digest` pins every
    behaviour-affecting system knob, so equal keys imply equal
    :class:`~repro.sim.simulator.SimulationResult` digests.
    """
    if (mix is None) == (benchmark is None):
        raise ValueError("exactly one of mix/benchmark must be given")
    cc = core_config or CoreConfig()
    payload = {
        "version": CACHE_VERSION,
        "config": config.digest(),
        "workload": {"mix": mix, "benchmark": benchmark,
                     "accesses": accesses,
                     "fragmentation": fragmentation, "seed": seed},
        "core": {f.name: getattr(cc, f.name)
                 for f in dataclasses.fields(cc)},
    }
    canon = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canon.encode()).hexdigest()


# -- result (de)serialization ------------------------------------------------


def serialize_result(result: SimulationResult) -> dict:
    """JSON-able summary carrying everything the reducers and the
    result digest read.  Perf counters (peeks, wall time, shard
    diagnostics) are host-side observations, not behaviour, and are
    deliberately dropped."""
    s = result.stats
    e = result.energy
    return {
        "config_name": result.config_name,
        "ipcs": list(result.ipcs),
        "finish_times": list(result.finish_times),
        "elapsed_ps": result.elapsed_ps,
        "transactions": result.transactions,
        "stats": {
            "commands_issued": s.commands_issued,
            "acts": s.acts,
            "ewlr_hits": s.ewlr_hits,
            "columns": s.columns,
            "precharges": s.precharges,
            "refreshes": s.refreshes,
            "write_cancels": s.write_cancels,
            "read_latencies": {str(v): n for v, n in
                               sorted(s.read_latencies.counts.items())},
        },
        "energy": {
            "params": {f.name: getattr(e.params, f.name)
                       for f in dataclasses.fields(EnergyParams)},
            "activations": e.activations,
            "ewlr_hit_activations": e.ewlr_hit_activations,
            "precharges": e.precharges,
            "partial_precharges": e.partial_precharges,
            "reads": e.reads,
            "writes": e.writes,
        },
        "precharge_causes": {cause.name: n for cause, n
                             in result.precharge_causes.items()},
        "digest": result.digest(),
    }


class StoredAccounting:
    """Restored stall-attribution sidecar.

    Quacks like :class:`~repro.sim.accounting.AccountingReport` for the
    two calls the sidecar emitters make -- ``verify()`` (a no-op: the
    live report was verified before it was persisted) and ``to_dict()``
    (returns the stored payload verbatim, so re-emitted sidecars are
    byte-identical to the original run's).
    """

    def __init__(self, payload: dict) -> None:
        self._payload = payload

    def verify(self) -> None:
        """Already verified before persisting."""

    def to_dict(self) -> dict:
        """The persisted report payload (a copy: sidecar emitters
        annotate the returned dict in place)."""
        return dict(self._payload)


def restore_result(payload: dict) -> SimulationResult:
    """Rebuild a :class:`SimulationResult` from :func:`serialize_result`.

    The restored result digests identically to the live one (asserted
    in ``tests/sim/test_store.py``); perf counters come back zero.
    """
    stats_p = payload["stats"]
    hist = LatencyHistogram()
    hist.counts = Counter({int(v): n for v, n
                           in stats_p["read_latencies"].items()})
    hist.total = sum(hist.counts.values())
    stats = ControllerStats(
        commands_issued=stats_p["commands_issued"],
        acts=stats_p["acts"],
        ewlr_hits=stats_p["ewlr_hits"],
        columns=stats_p["columns"],
        precharges=stats_p["precharges"],
        refreshes=stats_p["refreshes"],
        write_cancels=stats_p["write_cancels"],
        read_latencies=hist,
    )
    energy_p = payload["energy"]
    energy = EnergyMeter(
        params=EnergyParams(**energy_p["params"]),
        activations=energy_p["activations"],
        ewlr_hit_activations=energy_p["ewlr_hit_activations"],
        precharges=energy_p["precharges"],
        partial_precharges=energy_p["partial_precharges"],
        reads=energy_p["reads"],
        writes=energy_p["writes"],
    )
    causes = {PrechargeCause[name]: n for name, n
              in payload["precharge_causes"].items()}
    accounting = payload.get("accounting")
    return SimulationResult(
        config_name=payload["config_name"],
        ipcs=list(payload["ipcs"]),
        finish_times=list(payload["finish_times"]),
        stats=stats,
        energy=energy,
        precharge_causes=causes,
        elapsed_ps=payload["elapsed_ps"],
        transactions=payload["transactions"],
        accounting=StoredAccounting(accounting) if accounting else None,
    )


# -- counters ----------------------------------------------------------------


@dataclass
class StoreCounters:
    """Hit/miss/put/evict tallies for one store (and the process)."""

    hits: int = 0
    misses: int = 0
    puts: int = 0
    evictions: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {"hits": self.hits, "misses": self.misses,
                "puts": self.puts, "evictions": self.evictions}


#: Process-wide aggregate over every :class:`ResultStore` instance,
#: surfaced by ``repro stats`` next to the route-cache counters.
GLOBAL_COUNTERS = StoreCounters()


def store_counter_stats() -> Dict[str, int]:
    """This process's aggregate store counters (``repro stats``)."""
    return GLOBAL_COUNTERS.as_dict()


# -- the store ---------------------------------------------------------------


@dataclass
class GcReport:
    """What one :meth:`ResultStore.gc` sweep did."""

    scanned: int = 0
    removed: int = 0
    kept: int = 0
    freed_bytes: int = 0


class ResultStore:
    """Content-addressed {cell key: result summary} table on disk.

    One JSON file per entry under ``<root>/store/<key[:2]>/``; see the
    module docstring for key and merge semantics.  All methods tolerate
    concurrent writers and corrupt files (a corrupt entry reads as a
    miss and is rewritten on the next put).
    """

    def __init__(self, directory: Optional[str] = None) -> None:
        self.root = cache_directory(directory)
        self.directory = os.path.join(self.root, "store")
        self.counters = StoreCounters()

    # -- paths ---------------------------------------------------------

    @staticmethod
    def entry_id(key: str) -> str:
        """Normalise a key to a 64-hex entry id.

        Store keys already are digests; the compatibility view may pass
        arbitrary strings, which are hashed into the same namespace.
        """
        if _HEX_KEY.fullmatch(key):
            return key
        return hashlib.sha256(key.encode()).hexdigest()

    def path_for(self, key: str) -> str:
        eid = self.entry_id(key)
        return os.path.join(self.directory, eid[:2], eid + ".json")

    # -- reads ---------------------------------------------------------

    def load_entry(self, key: str) -> Optional[dict]:
        """The raw entry payload, or ``None`` on miss/corruption.

        Entries from other cache versions are ignored, not misread:
        the version is checked inside the payload as well as being part
        of the key digest, so even a hand-placed file from an older
        scheme cannot surface.
        """
        try:
            with open(self.path_for(key)) as fh:
                entry = json.load(fh)
        except (OSError, ValueError):
            return None
        if not isinstance(entry, dict) \
                or entry.get("version") != CACHE_VERSION:
            return None
        return entry

    def get(self, key: str,
            need_accounting: bool = False) -> Optional[SimulationResult]:
        """The stored result, or ``None``.

        ``need_accounting`` makes entries without a stall-attribution
        sidecar read as misses -- an observed consumer must re-run the
        cell (the re-run's put then merges the sidecar in).
        """
        entry = self.load_entry(key)
        if entry is None or "result" not in entry:
            self._miss()
            return None
        if need_accounting and not entry.get("accounting"):
            self._miss()
            return None
        payload = dict(entry["result"])
        if entry.get("accounting"):
            payload["accounting"] = entry["accounting"]
        self._hit()
        return restore_result(payload)

    def contains(self, key: str, need_accounting: bool = False) -> bool:
        """Hit test without deserialising (and without counting)."""
        entry = self.load_entry(key)
        if entry is None or "result" not in entry:
            return False
        if need_accounting and not entry.get("accounting"):
            return False
        return True

    def __len__(self) -> int:
        return sum(1 for _ in self.iter_paths())

    def iter_paths(self) -> Iterator[str]:
        """Every entry file currently on disk."""
        if not os.path.isdir(self.directory):
            return
        for shard in sorted(os.listdir(self.directory)):
            sub = os.path.join(self.directory, shard)
            if not os.path.isdir(sub):
                continue
            for name in sorted(os.listdir(sub)):
                if name.endswith(".json"):
                    yield os.path.join(sub, name)

    # -- writes --------------------------------------------------------

    def put(self, key: str, result: SimulationResult,
            key_info: Optional[dict] = None) -> None:
        """Persist one result summary (atomic, freshest-last merge).

        The new summary overlays any existing entry; an existing
        accounting sidecar survives an unobserved overwrite, and an
        observed result contributes its sidecar.  ``key_info`` is
        stored for ``repro cells`` / debugging only -- it never feeds
        the key.
        """
        accounting = None
        report = result.accounting
        if report is not None:
            report.verify()
            accounting = report.to_dict()
        entry = {
            "version": CACHE_VERSION,
            "key": key_info or {},
            "result": serialize_result(result),
            "accounting": accounting,
            "written_at": time.time(),
        }
        existing = self.load_entry(key)
        if existing is not None:
            # Freshest-last: the new payload wins, but a sidecar the
            # new run did not produce is preserved from the old entry.
            if accounting is None and existing.get("accounting"):
                entry["accounting"] = existing["accounting"]
            if not entry["key"] and existing.get("key"):
                entry["key"] = existing["key"]
        self._write(key, entry)
        self.counters.puts += 1
        GLOBAL_COUNTERS.puts += 1

    def put_scalar(self, key: str, ipc: float,
                   key_info: Optional[dict] = None) -> None:
        """Persist a bare alone-IPC value (compatibility writes).

        The entry holds a degenerate one-core summary so scalar and
        full-summary writers share one read path (``ipcs[0]``).
        """
        entry = {
            "version": CACHE_VERSION,
            "key": key_info or {},
            "result": {"config_name": "", "ipcs": [ipc]},
            "accounting": None,
            "written_at": time.time(),
        }
        self._write(key, entry)
        self.counters.puts += 1
        GLOBAL_COUNTERS.puts += 1

    def get_scalar(self, key: str) -> Optional[float]:
        """``ipcs[0]`` of the stored entry (works for scalar *and*
        full-summary entries), or ``None``."""
        entry = self.load_entry(key)
        result = entry.get("result") if entry else None
        if not result or not result.get("ipcs"):
            self._miss()
            return None
        self._hit()
        return result["ipcs"][0]

    def _write(self, key: str, entry: dict) -> None:
        path = self.path_for(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        tmp = f"{path}.tmp.{os.getpid()}"
        with open(tmp, "w") as fh:
            json.dump(entry, fh, sort_keys=True)
            fh.write("\n")
        os.replace(tmp, path)

    # -- maintenance ---------------------------------------------------

    def gc(self, max_age_days: Optional[float] = None,
           max_entries: Optional[int] = None) -> GcReport:
        """Prune the store; returns what was scanned/removed/kept.

        Always removes unreadable entries and entries from other cache
        versions.  ``max_age_days`` drops entries older than that
        (by ``written_at``, falling back to file mtime);
        ``max_entries`` keeps only the newest N survivors.
        """
        report = GcReport()
        survivors: List[tuple] = []
        now = time.time()
        for path in list(self.iter_paths()):
            report.scanned += 1
            try:
                with open(path) as fh:
                    entry = json.load(fh)
                raw_stamp = entry.get("written_at")
                stamp = (float(raw_stamp) if raw_stamp is not None
                         else os.path.getmtime(path))
                stale = entry.get("version") != CACHE_VERSION
            except (OSError, ValueError, TypeError):
                entry, stamp, stale = None, 0.0, True
            if not stale and max_age_days is not None:
                stale = now - stamp > max_age_days * 86400.0
            if stale:
                self._remove(path, report)
            else:
                survivors.append((stamp, path))
        if max_entries is not None and len(survivors) > max_entries:
            survivors.sort(reverse=True)  # newest first
            for _, path in survivors[max_entries:]:
                self._remove(path, report)
            survivors = survivors[:max_entries]
        report.kept = len(survivors)
        return report

    def _remove(self, path: str, report: GcReport) -> None:
        try:
            size = os.path.getsize(path)
            os.remove(path)
        except OSError:  # pragma: no cover - racing gc sweeps
            return
        report.removed += 1
        report.freed_bytes += size
        self.counters.evictions += 1
        GLOBAL_COUNTERS.evictions += 1

    # -- counter plumbing ---------------------------------------------

    def _hit(self) -> None:
        self.counters.hits += 1
        GLOBAL_COUNTERS.hits += 1

    def _miss(self) -> None:
        self.counters.misses += 1
        GLOBAL_COUNTERS.misses += 1


# -- alone-IPC compatibility view -------------------------------------------


class AloneIpcDiskCache:
    """The historical alone-IPC cache API as a view over the store.

    ``key()`` computes the *same* content address a spec-run alone cell
    lands under, so figure runs and compatibility users share entries:
    a full summary written by the grid satisfies a ``get`` here, and a
    scalar ``put`` satisfies the runner's hit test.  Pre-v4 state
    (the single ``alone_ipc.json`` table) is simply never read --
    that file is not a store entry, so v3 keys cannot surface as hits.
    """

    def __init__(self, directory: Optional[str] = None) -> None:
        self.store = ResultStore(directory)
        self.directory = self.store.root

    @staticmethod
    def key(config: SystemConfig, benchmark: str, fragmentation: float,
            seed: int, accesses: int, clock_hz: float) -> str:
        """Content address of one alone run (see :func:`store_key`).

        The historical signature carried only the core *clock*; the
        remaining core parameters default, matching every caller.
        """
        return store_key(config, benchmark=benchmark,
                         fragmentation=fragmentation, seed=seed,
                         accesses=accesses,
                         core_config=CoreConfig(clock_hz=clock_hz))

    def path_for(self, key: str) -> str:
        """Entry file backing one key (tests poke it directly)."""
        return self.store.path_for(key)

    def get(self, key: str) -> Optional[float]:
        return self.store.get_scalar(key)

    def put_many(self, entries: Dict[str, float]) -> None:
        for key, value in entries.items():
            self.store.put_scalar(key, value)

    def put(self, key: str, value: float) -> None:
        self.put_many({key: value})
