"""cProfile harness over one (config, mix) simulation cell.

Shared by ``repro profile`` (:mod:`repro.cli`) and the standalone
``tools/profile_sim.py`` so both entry points measure exactly the same
thing: trace generation happens *outside* the profiled region, the
event loop (:meth:`repro.sim.simulator.Simulator.run`) inside it.  The
report carries the raw :class:`pstats.Stats` for programmatic use and
can dump the standard binary pstats format for snakeviz / gprof2dot.
"""

from __future__ import annotations

import cProfile
import dataclasses
import io
import pstats
from dataclasses import dataclass
from typing import Optional

from repro.sim.config import SystemConfig

#: Sort orders ``format_table`` accepts (a subset of pstats' aliases
#: that always exists; pstats itself accepts more).
SORT_KEYS = ("cumulative", "tottime", "calls", "ncalls", "pcalls")


@dataclass
class ProfileReport:
    """One profiled simulation: perf counters + the pstats data."""

    config_name: str
    mix: str
    accesses: int
    #: DRAM commands issued during the profiled run.
    commands: int
    #: Memory transactions served.
    transactions: int
    #: Wall-clock seconds inside the profiled event loop (measured by
    #: the simulator itself, so it excludes profiler bookkeeping done
    #: outside the loop but still pays the per-call tracing tax).
    wall_time_s: float
    #: Scheduler effort: peeks, candidates built, candidates examined.
    peeks: int
    candidates_built: int
    candidates_examined: int
    #: Behaviour digest of the profiled run -- lets a profile double as
    #: an equivalence witness when comparing scheduler paths.
    digest: str
    stats: pstats.Stats

    @property
    def commands_per_second(self) -> float:
        if self.wall_time_s <= 0:
            return 0.0
        return self.commands / self.wall_time_s

    def format_table(self, limit: int = 25,
                     sort: str = "cumulative") -> str:
        """Human-readable summary + top-``limit`` pstats lines."""
        buf = io.StringIO()
        buf.write(
            f"config: {self.config_name}  mix: {self.mix}  "
            f"accesses/core: {self.accesses}\n"
            f"commands: {self.commands}  transactions: "
            f"{self.transactions}  wall: {self.wall_time_s:.3f}s  "
            f"({self.commands_per_second:,.0f} cmd/s under profiler)\n"
            f"peeks/command: {self.peeks / max(1, self.commands):.3f}  "
            f"candidates built/command: "
            f"{self.candidates_built / max(1, self.commands):.3f}  "
            f"examined/peek: "
            f"{self.candidates_examined / max(1, self.peeks):.3f}\n"
            f"digest: {self.digest}\n\n")
        self.stats.stream = buf
        self.stats.sort_stats(sort).print_stats(limit)
        return buf.getvalue()

    def dump(self, path: str) -> None:
        """Write the binary pstats file (snakeviz/pstats compatible)."""
        self.stats.dump_stats(path)


def profile_run(config: SystemConfig, mix: str,
                accesses: int = 1500, fragmentation: float = 0.1,
                seed: int = 0,
                incremental: Optional[bool] = None,
                shards: Optional[str] = None) -> ProfileReport:
    """Profile one (config, mix) cell and return the report.

    ``incremental`` overrides the scheduler path for this run only
    (None keeps the config's own setting): profiling reference vs.
    table-based selection on the same cell is the intended use, and
    the digests in the two reports must match.  ``shards`` likewise
    picks the event loop for this run only -- ``"off"`` (or ``None``)
    profiles the classic loop, ``"serial"`` / ``"threads"`` the
    sharded drivers -- so scheduler *and* loop comparisons run through
    one harness.
    """
    from repro.sim.shards import ShardedSimulator, resolve_shard_mode
    from repro.sim.simulator import MemorySystem, Simulator
    from repro.cpu.core import CoreConfig, TraceCore
    from repro.workloads.mixes import mix_traces

    if incremental is not None:
        config = dataclasses.replace(config, incremental=incremental)
    mode = resolve_shard_mode(shards) if shards is not None else "off"
    traces = mix_traces(mix, accesses, fragmentation=fragmentation,
                        seed=seed)
    system = MemorySystem(config)
    cores = [TraceCore(trace, CoreConfig(), core_id=i)
             for i, trace in enumerate(traces)]
    if mode != "off" and len(cores) > 1:
        simulator = ShardedSimulator(system, cores, backend=mode)
    else:
        simulator = Simulator(system, cores)

    profiler = cProfile.Profile()
    profiler.enable()
    try:
        result = simulator.run()
    finally:
        profiler.disable()

    stats = pstats.Stats(profiler)
    s = result.stats
    return ProfileReport(
        config_name=config.name,
        mix=mix,
        accesses=accesses,
        commands=s.commands_issued,
        transactions=result.transactions,
        wall_time_s=result.wall_time_s,
        peeks=s.peeks,
        candidates_built=s.candidates_built,
        candidates_examined=s.candidates_examined,
        digest=result.digest(),
        stats=stats,
    )
