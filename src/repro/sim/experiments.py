"""One runner per paper table/figure (shared by benches and examples).

Every runner takes an :class:`ExperimentSettings` controlling scale
(accesses per core, seeds, mix subset) so the same code serves quick CI
runs and full reproductions.  Results come back as plain dataclasses the
benches print in the paper's row/series layout.

Weighted speedup follows the paper: per-mix Snavely-Tullsen WS normalised
to the DDR4 baseline, GMEAN across mixes.  Alone-IPCs are measured on the
baseline system once per (benchmark, fragmentation, seed) and cached.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.mechanisms import EruConfig
from repro.cpu.core import CoreConfig
from repro.cpu.trace import Trace
from repro.dram.timing import FIG14_BUS_FREQUENCIES_HZ
from repro.sim import config as cfgs
from repro.sim.config import SystemConfig
from repro.sim.metrics import gmean, quartiles, weighted_speedup
from repro.sim.simulator import SimulationResult, run_traces
from repro.workloads.generator import generate_traces
from repro.workloads.mixes import MIXES, MIX_NAMES, mix_traces
from repro.workloads.profiles import profile


@dataclass(frozen=True)
class ExperimentSettings:
    """Scale knobs shared by all experiment runners."""

    accesses_per_core: int = 2500
    fragmentation: float = 0.1
    seed: int = 0
    mixes: Tuple[str, ...] = MIX_NAMES

    def quick(self) -> "ExperimentSettings":
        """A cut-down version for smoke tests."""
        return replace(self, accesses_per_core=600,
                       mixes=self.mixes[:2])


class ExperimentContext:
    """Caches traces and alone-IPCs across runners."""

    def __init__(self, settings: ExperimentSettings = ExperimentSettings(),
                 core_config: CoreConfig = CoreConfig()) -> None:
        self.settings = settings
        self.core_config = core_config
        self._trace_cache: Dict[tuple, List[Trace]] = {}
        self._alone_cache: Dict[tuple, float] = {}

    # -- workloads ---------------------------------------------------------

    def traces(self, mix: str,
               fragmentation: Optional[float] = None) -> List[Trace]:
        s = self.settings
        frag = s.fragmentation if fragmentation is None else fragmentation
        key = (mix, frag, s.seed, s.accesses_per_core)
        if key not in self._trace_cache:
            self._trace_cache[key] = mix_traces(
                mix, s.accesses_per_core, fragmentation=frag, seed=s.seed)
        return self._trace_cache[key]

    def alone_ipc(self, benchmark: str,
                  fragmentation: Optional[float] = None,
                  core_config: Optional[CoreConfig] = None) -> float:
        s = self.settings
        frag = s.fragmentation if fragmentation is None else fragmentation
        cc = core_config or self.core_config
        key = (benchmark, frag, s.seed, s.accesses_per_core, cc.clock_hz)
        if key not in self._alone_cache:
            traces = generate_traces(
                [profile(benchmark)], s.accesses_per_core,
                fragmentation=frag, seed=s.seed)
            result = run_traces(cfgs.ddr4_baseline(), traces,
                                core_config=cc)
            self._alone_cache[key] = result.ipcs[0]
        return self._alone_cache[key]

    # -- one (config, mix) evaluation ---------------------------------------

    def run(self, config: SystemConfig, mix: str,
            fragmentation: Optional[float] = None,
            core_config: Optional[CoreConfig] = None) -> SimulationResult:
        return run_traces(config, self.traces(mix, fragmentation),
                          core_config=core_config or self.core_config)

    def mix_ws(self, config: SystemConfig, mix: str,
               fragmentation: Optional[float] = None,
               core_config: Optional[CoreConfig] = None
               ) -> Tuple[float, SimulationResult]:
        result = self.run(config, mix, fragmentation, core_config)
        names, _ = MIXES[mix]
        alone = [self.alone_ipc(n, fragmentation, core_config)
                 for n in names]
        return weighted_speedup(result.ipcs, alone), result


# -- Fig. 12: normalised weighted speedup per mix ---------------------------


def fig12_configs() -> List[SystemConfig]:
    """The Fig. 12 comparison set (plus the paired-bank variants)."""
    return [
        cfgs.ddr4_baseline(),
        cfgs.vsb(EruConfig.naive(4)),
        cfgs.vsb(EruConfig.naive_ddb(4)),
        cfgs.vsb(EruConfig.full(4)),
        cfgs.bg32(),
        cfgs.ideal32(),
        cfgs.paired_bank(EruConfig.full(4, ddb=False)),
        cfgs.paired_bank(EruConfig.full(4, ddb=True)),
    ]


@dataclass
class SpeedupTable:
    """Per-mix normalised weighted speedups: {config: {mix: value}}."""

    values: Dict[str, Dict[str, float]] = field(default_factory=dict)
    baseline: str = "DDR4"

    def normalized(self) -> Dict[str, Dict[str, float]]:
        out: Dict[str, Dict[str, float]] = {}
        base = self.values[self.baseline]
        for config, row in self.values.items():
            out[config] = {mix: v / base[mix] for mix, v in row.items()}
        return out

    def gmeans(self) -> Dict[str, float]:
        return {config: gmean(row.values())
                for config, row in self.normalized().items()}


def fig12(context: ExperimentContext,
          configs: Optional[Sequence[SystemConfig]] = None) -> SpeedupTable:
    table = SpeedupTable()
    for config in configs or fig12_configs():
        row = {}
        for mix in context.settings.mixes:
            ws, _ = context.mix_ws(config, mix)
            row[mix] = ws
        table.values[config.name] = row
    return table


# -- Fig. 13: plane-count sensitivity + conflict precharges -----------------


FIG13_SCHEMES: Tuple[Tuple[str, Callable[[int], EruConfig]], ...] = (
    ("VSB(naive)+DDB", EruConfig.naive_ddb),
    ("VSB(EWLR)+DDB", EruConfig.ewlr_only),
    ("VSB(RAP)+DDB", EruConfig.rap_only),
    ("VSB(EWLR+RAP)+DDB", EruConfig.full),
)
FIG13_PLANES = (2, 4, 8, 16)


@dataclass
class PlaneSweepPoint:
    scheme: str
    planes: int
    fragmentation: float
    normalized_ws: float
    plane_precharge_fraction: float
    ewlr_hit_rate: float


def fig13(context: ExperimentContext,
          fragmentations: Sequence[float] = (0.1, 0.5),
          planes: Sequence[int] = FIG13_PLANES,
          schemes=FIG13_SCHEMES) -> List[PlaneSweepPoint]:
    points: List[PlaneSweepPoint] = []
    mixes = context.settings.mixes
    for frag in fragmentations:
        base_ws = {mix: context.mix_ws(cfgs.ddr4_baseline(), mix, frag)[0]
                   for mix in mixes}
        for scheme, make in schemes:
            for n in planes:
                config = cfgs.vsb(make(n))
                normalized, pre_frac, hits = [], [], []
                for mix in mixes:
                    ws, result = context.mix_ws(config, mix, frag)
                    normalized.append(ws / base_ws[mix])
                    pre_frac.append(
                        result.plane_conflict_precharge_fraction)
                    hits.append(result.ewlr_hit_rate)
                points.append(PlaneSweepPoint(
                    scheme=scheme, planes=n, fragmentation=frag,
                    normalized_ws=gmean(normalized),
                    plane_precharge_fraction=(
                        sum(pre_frac) / len(pre_frac)),
                    ewlr_hit_rate=sum(hits) / len(hits)))
    return points


# -- Fig. 14: channel-frequency sensitivity of DDB ---------------------------


@dataclass
class FrequencyPoint:
    config: str
    bus_frequency_hz: float
    normalized_ws: float


def fig14_configs() -> List[SystemConfig]:
    return [
        cfgs.vsb(EruConfig.full(4, ddb=False)),   # VSB(EWLR+RAP)+BG
        cfgs.vsb(EruConfig.full(4, ddb=True)),    # VSB(EWLR+RAP)+DDB
        cfgs.bg32(),
        cfgs.ideal32(),
    ]


def fig14(context: ExperimentContext,
          frequencies: Sequence[float] = FIG14_BUS_FREQUENCIES_HZ
          ) -> List[FrequencyPoint]:
    """DDB speedup as the channel clock scales (CPU clock scales along,
    per the paper, to keep memory intensity constant)."""
    points: List[FrequencyPoint] = []
    base_freq = frequencies[0]
    mixes = context.settings.mixes
    for freq in frequencies:
        factor = freq / base_freq
        core = context.core_config.scaled(factor)
        base_ws = {
            mix: context.mix_ws(
                cfgs.ddr4_baseline().at_frequency(freq), mix,
                core_config=core)[0]
            for mix in mixes}
        for config in fig14_configs():
            scaled = config.at_frequency(freq)
            normalized = []
            for mix in mixes:
                ws, _ = context.mix_ws(scaled, mix, core_config=core)
                normalized.append(ws / base_ws[mix])
            points.append(FrequencyPoint(
                config=config.name, bus_frequency_hz=freq,
                normalized_ws=gmean(normalized)))
    return points


# -- Fig. 15: comparison to prior sub-banking work ---------------------------


def fig15_configs() -> List[SystemConfig]:
    return [
        cfgs.half_dram(),
        cfgs.vsb(EruConfig.full(4, ddb=False)),
        cfgs.vsb(EruConfig.full(4, ddb=True)),
        cfgs.masa(4),
        cfgs.masa(8),
        cfgs.masa_eruca(8, ddb=False),
        cfgs.masa_eruca(8, ddb=True),
        cfgs.ideal32(),
    ]


def fig15(context: ExperimentContext) -> Dict[str, float]:
    """GMEAN normalised weighted speedup of each prior-work config."""
    mixes = context.settings.mixes
    base_ws = {mix: context.mix_ws(cfgs.ddr4_baseline(), mix)[0]
               for mix in mixes}
    out: Dict[str, float] = {}
    for config in fig15_configs():
        normalized = [context.mix_ws(config, mix)[0] / base_ws[mix]
                      for mix in mixes]
        out[config.name] = gmean(normalized)
    return out


# -- Fig. 16: read queueing latency and energy -------------------------------


@dataclass
class LatencyEnergyRow:
    config: str
    latency_stats_ns: Dict[str, float]
    background_energy: float
    activation_energy: float
    total_energy: float

    def relative_to(self, other: "LatencyEnergyRow") -> Dict[str, float]:
        return {
            "background": self.background_energy / other.background_energy,
            "activation": self.activation_energy / other.activation_energy,
            "total": self.total_energy / other.total_energy,
        }


def fig16_configs() -> List[SystemConfig]:
    return [
        cfgs.ddr4_baseline(),
        cfgs.vsb(EruConfig.full(4, ddb=True)),
        cfgs.ideal32(),
    ]


def fig16(context: ExperimentContext) -> List[LatencyEnergyRow]:
    rows: List[LatencyEnergyRow] = []
    for config in fig16_configs():
        latencies: List[int] = []
        background = activation = total = 0.0
        for mix in context.settings.mixes:
            result = context.run(config, mix)
            latencies.extend(result.stats.read_latencies)
            background += result.energy.background_energy_nj(
                result.elapsed_ps)
            activation += result.energy.activation_energy_nj()
            total += result.energy.total_energy_nj(result.elapsed_ps)
        stats = {k: v / 1000.0 for k, v in quartiles(latencies).items()}
        rows.append(LatencyEnergyRow(
            config=config.name, latency_stats_ns=stats,
            background_energy=background, activation_energy=activation,
            total_energy=total))
    return rows
