"""One runner per paper table/figure (shared by benches and examples).

Every runner takes an :class:`ExperimentSettings` controlling scale
(accesses per core, seeds, mix subset) so the same code serves quick CI
runs and full reproductions.  Results come back as plain dataclasses the
benches print in the paper's row/series layout.

Weighted speedup follows the paper: per-mix Snavely-Tullsen WS normalised
to the DDR4 baseline, GMEAN across mixes.  Alone-IPCs are measured on the
baseline system once per (benchmark, fragmentation, seed) and cached.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.mechanisms import EruConfig
from repro.cpu.core import CoreConfig
from repro.cpu.trace import Trace
from repro.dram.timing import FIG14_BUS_FREQUENCIES_HZ
from repro.sim import config as cfgs
from repro.sim.config import SystemConfig
from repro.sim.metrics import (
    LatencyHistogram,
    gmean,
    quartiles,
    weighted_speedup,
)
from repro.sim.parallel import AloneIpcDiskCache, SimJob, run_grid
from repro.sim.simulator import SimulationResult, run_traces
from repro.workloads.generator import generate_traces
from repro.workloads.mixes import MIXES, MIX_NAMES, mix_traces
from repro.workloads.profiles import profile


@dataclass(frozen=True)
class ExperimentSettings:
    """Scale knobs shared by all experiment runners."""

    accesses_per_core: int = 2500
    fragmentation: float = 0.1
    seed: int = 0
    mixes: Tuple[str, ...] = MIX_NAMES

    def quick(self) -> "ExperimentSettings":
        """A cut-down version for smoke tests."""
        return replace(self, accesses_per_core=600,
                       mixes=self.mixes[:2])


class ExperimentContext:
    """Caches traces, alone-IPCs, and simulation results across runners.

    ``jobs`` > 1 lets :meth:`prefetch` fan independent grid cells out
    over worker processes (see :mod:`repro.sim.parallel`); every runner
    prefetches its full grid up front, then reads results from the
    cache, so serial and parallel execution produce identical tables.

    ``disk_cache`` (on by default) persists alone-IPC runs across
    invocations; pass ``disk_cache=False`` for a hermetic context.

    ``observe`` attaches cycle accounting (:mod:`repro.sim.accounting`)
    to every mix run, so each cached result carries a stall-attribution
    report that :func:`emit_stats_sidecars` can export next to the
    figure tables.  Alone-IPC runs are never observed -- only their
    scalar IPC is kept.  Observation never changes any table value.
    """

    def __init__(self, settings: ExperimentSettings = ExperimentSettings(),
                 core_config: CoreConfig = CoreConfig(),
                 jobs: int = 1, disk_cache: bool = True,
                 observe: bool = False,
                 alone_config: Optional[SystemConfig] = None) -> None:
        self.settings = settings
        self.core_config = core_config
        self.jobs = jobs
        self.observe = observe
        #: The configuration alone-IPC denominators run on (weighted
        #: speedup normalises against it).  Part of the disk-cache key,
        #: so a refresh-enabled or non-DRAM alone baseline never
        #: collides with the default's entries.
        self.alone_config = alone_config or cfgs.ddr4_baseline()
        self.disk_cache: Optional[AloneIpcDiskCache] = (
            AloneIpcDiskCache() if disk_cache else None)
        self._trace_cache: Dict[tuple, List[Trace]] = {}
        self._alone_cache: Dict[tuple, float] = {}
        #: Finished cells keyed by (config, mix, frag, core_config) --
        #: all frozen dataclasses, so equal configs hit across figures.
        self._result_cache: Dict[tuple, SimulationResult] = {}

    # -- workloads ---------------------------------------------------------

    def traces(self, mix: str,
               fragmentation: Optional[float] = None) -> List[Trace]:
        s = self.settings
        frag = s.fragmentation if fragmentation is None else fragmentation
        key = (mix, frag, s.seed, s.accesses_per_core)
        if key not in self._trace_cache:
            self._trace_cache[key] = mix_traces(
                mix, s.accesses_per_core, fragmentation=frag, seed=s.seed)
        return self._trace_cache[key]

    def _alone_key(self, benchmark: str, frag: float,
                   cc: CoreConfig) -> tuple:
        s = self.settings
        return (benchmark, frag, s.seed, s.accesses_per_core, cc.clock_hz)

    def _alone_disk_key(self, key: tuple) -> str:
        benchmark, frag, seed, accesses, clock_hz = key
        return AloneIpcDiskCache.key(self.alone_config, benchmark, frag,
                                     seed, accesses, clock_hz)

    def alone_ipc(self, benchmark: str,
                  fragmentation: Optional[float] = None,
                  core_config: Optional[CoreConfig] = None) -> float:
        s = self.settings
        frag = s.fragmentation if fragmentation is None else fragmentation
        cc = core_config or self.core_config
        key = self._alone_key(benchmark, frag, cc)
        if key not in self._alone_cache:
            value = None
            if self.disk_cache is not None:
                value = self.disk_cache.get(self._alone_disk_key(key))
            if value is None:
                traces = generate_traces(
                    [profile(benchmark)], s.accesses_per_core,
                    fragmentation=frag, seed=s.seed)
                result = run_traces(self.alone_config, traces,
                                    core_config=cc)
                value = result.ipcs[0]
                if self.disk_cache is not None:
                    self.disk_cache.put(self._alone_disk_key(key), value)
            self._alone_cache[key] = value
        return self._alone_cache[key]

    # -- one (config, mix) evaluation ---------------------------------------

    def run(self, config: SystemConfig, mix: str,
            fragmentation: Optional[float] = None,
            core_config: Optional[CoreConfig] = None) -> SimulationResult:
        s = self.settings
        frag = s.fragmentation if fragmentation is None else fragmentation
        cc = core_config or self.core_config
        key = (config, mix, frag, cc)
        result = self._result_cache.get(key)
        if result is None:
            result = run_traces(config, self.traces(mix, frag),
                                core_config=cc,
                                observe=self.observe or None)
            self._result_cache[key] = result
        return result

    def mix_ws(self, config: SystemConfig, mix: str,
               fragmentation: Optional[float] = None,
               core_config: Optional[CoreConfig] = None
               ) -> Tuple[float, SimulationResult]:
        result = self.run(config, mix, fragmentation, core_config)
        names, _ = MIXES[mix]
        alone = [self.alone_ipc(n, fragmentation, core_config)
                 for n in names]
        return weighted_speedup(result.ipcs, alone), result

    # -- grid prefetch ------------------------------------------------------

    def prefetch(self, cells: Sequence[tuple], alone: bool = True) -> None:
        """Warm the caches for a list of grid cells, ``jobs``-wide.

        ``cells`` holds (config, mix, fragmentation, core_config)
        tuples (the trailing pair may be ``None`` for the context
        defaults).  With ``alone`` set, the member benchmarks' alone-IPC
        runs are prefetched too.  Serial contexts return immediately:
        the lazy per-cell path is just as fast in-process and reuses
        cached traces.
        """
        if self.jobs <= 1:
            return
        s = self.settings
        jobs: List[SimJob] = []
        slots: List[tuple] = []
        queued = set()
        for cell in cells:
            config, mix = cell[0], cell[1]
            frag = cell[2] if len(cell) > 2 and cell[2] is not None \
                else s.fragmentation
            cc = cell[3] if len(cell) > 3 and cell[3] is not None \
                else self.core_config
            if alone:
                for benchmark in MIXES[mix][0]:
                    akey = self._alone_key(benchmark, frag, cc)
                    if akey in self._alone_cache or akey in queued:
                        continue
                    if self.disk_cache is not None:
                        value = self.disk_cache.get(
                            self._alone_disk_key(akey))
                        if value is not None:
                            self._alone_cache[akey] = value
                            continue
                    queued.add(akey)
                    jobs.append(SimJob(
                        config=self.alone_config,
                        accesses=s.accesses_per_core, fragmentation=frag,
                        seed=s.seed, core_config=cc,
                        benchmark=benchmark))
                    slots.append(("alone", akey))
            rkey = (config, mix, frag, cc)
            if rkey in self._result_cache or rkey in queued:
                continue
            queued.add(rkey)
            jobs.append(SimJob(
                config=config, accesses=s.accesses_per_core,
                fragmentation=frag, seed=s.seed, core_config=cc,
                mix=mix, observe=self.observe))
            slots.append(("result", rkey))
        if not jobs:
            return
        # Group cells sharing a workload next to each other: chunked
        # dispatch then lands them on one worker, whose per-process
        # trace memo regenerates the traces once per group.
        order = sorted(range(len(jobs)), key=lambda i: (
            jobs[i].benchmark or "", jobs[i].mix or "",
            jobs[i].fragmentation, i))
        jobs = [jobs[i] for i in order]
        slots = [slots[i] for i in order]
        results = run_grid(jobs, self.jobs)
        new_alone: Dict[str, float] = {}
        for (kind, key), result in zip(slots, results):
            if kind == "alone":
                self._alone_cache[key] = result.ipcs[0]
                new_alone[self._alone_disk_key(key)] = result.ipcs[0]
            else:
                self._result_cache[key] = result
        if self.disk_cache is not None:
            self.disk_cache.put_many(new_alone)


# -- Fig. 12: normalised weighted speedup per mix ---------------------------


def fig12_configs() -> List[SystemConfig]:
    """The Fig. 12 comparison set (plus the paired-bank variants)."""
    return [
        cfgs.ddr4_baseline(),
        cfgs.vsb(EruConfig.naive(4)),
        cfgs.vsb(EruConfig.naive_ddb(4)),
        cfgs.vsb(EruConfig.full(4)),
        cfgs.bg32(),
        cfgs.ideal32(),
        cfgs.paired_bank(EruConfig.full(4, ddb=False)),
        cfgs.paired_bank(EruConfig.full(4, ddb=True)),
    ]


@dataclass
class SpeedupTable:
    """Per-mix normalised weighted speedups: {config: {mix: value}}."""

    values: Dict[str, Dict[str, float]] = field(default_factory=dict)
    baseline: str = "DDR4"

    def normalized(self) -> Dict[str, Dict[str, float]]:
        out: Dict[str, Dict[str, float]] = {}
        base = self.values[self.baseline]
        for config, row in self.values.items():
            out[config] = {mix: v / base[mix] for mix, v in row.items()}
        return out

    def gmeans(self) -> Dict[str, float]:
        return {config: gmean(row.values())
                for config, row in self.normalized().items()}


def fig12(context: ExperimentContext,
          configs: Optional[Sequence[SystemConfig]] = None) -> SpeedupTable:
    configs = list(configs or fig12_configs())
    context.prefetch([(config, mix) for config in configs
                      for mix in context.settings.mixes])
    table = SpeedupTable()
    for config in configs:
        row = {}
        for mix in context.settings.mixes:
            ws, _ = context.mix_ws(config, mix)
            row[mix] = ws
        table.values[config.name] = row
    return table


# -- Fig. 13: plane-count sensitivity + conflict precharges -----------------


FIG13_SCHEMES: Tuple[Tuple[str, Callable[[int], EruConfig]], ...] = (
    ("VSB(naive)+DDB", EruConfig.naive_ddb),
    ("VSB(EWLR)+DDB", EruConfig.ewlr_only),
    ("VSB(RAP)+DDB", EruConfig.rap_only),
    ("VSB(EWLR+RAP)+DDB", EruConfig.full),
)
FIG13_PLANES = (2, 4, 8, 16)


@dataclass
class PlaneSweepPoint:
    scheme: str
    planes: int
    fragmentation: float
    normalized_ws: float
    plane_precharge_fraction: float
    ewlr_hit_rate: float


def fig13(context: ExperimentContext,
          fragmentations: Sequence[float] = (0.1, 0.5),
          planes: Sequence[int] = FIG13_PLANES,
          schemes=FIG13_SCHEMES) -> List[PlaneSweepPoint]:
    points: List[PlaneSweepPoint] = []
    mixes = context.settings.mixes
    sweep_configs = [cfgs.ddr4_baseline()] + [
        cfgs.vsb(make(n)) for _, make in schemes for n in planes]
    context.prefetch([(config, mix, frag)
                      for frag in fragmentations
                      for config in sweep_configs
                      for mix in mixes])
    for frag in fragmentations:
        base_ws = {mix: context.mix_ws(cfgs.ddr4_baseline(), mix, frag)[0]
                   for mix in mixes}
        for scheme, make in schemes:
            for n in planes:
                config = cfgs.vsb(make(n))
                normalized, pre_frac, hits = [], [], []
                for mix in mixes:
                    ws, result = context.mix_ws(config, mix, frag)
                    normalized.append(ws / base_ws[mix])
                    pre_frac.append(
                        result.plane_conflict_precharge_fraction)
                    hits.append(result.ewlr_hit_rate)
                points.append(PlaneSweepPoint(
                    scheme=scheme, planes=n, fragmentation=frag,
                    normalized_ws=gmean(normalized),
                    plane_precharge_fraction=(
                        sum(pre_frac) / len(pre_frac)),
                    ewlr_hit_rate=sum(hits) / len(hits)))
    return points


# -- Fig. 14: channel-frequency sensitivity of DDB ---------------------------


@dataclass
class FrequencyPoint:
    config: str
    bus_frequency_hz: float
    normalized_ws: float


def fig14_configs() -> List[SystemConfig]:
    return [
        cfgs.vsb(EruConfig.full(4, ddb=False)),   # VSB(EWLR+RAP)+BG
        cfgs.vsb(EruConfig.full(4, ddb=True)),    # VSB(EWLR+RAP)+DDB
        cfgs.bg32(),
        cfgs.ideal32(),
    ]


def fig14(context: ExperimentContext,
          frequencies: Sequence[float] = FIG14_BUS_FREQUENCIES_HZ
          ) -> List[FrequencyPoint]:
    """DDB speedup as the channel clock scales (CPU clock scales along,
    per the paper, to keep memory intensity constant)."""
    points: List[FrequencyPoint] = []
    base_freq = frequencies[0]
    mixes = context.settings.mixes
    cells = []
    for freq in frequencies:
        factor = freq / base_freq
        core = context.core_config.scaled(factor)
        for config in ([cfgs.ddr4_baseline()] + fig14_configs()):
            scaled = config.at_frequency(freq)
            cells.extend((scaled, mix, None, core) for mix in mixes)
    context.prefetch(cells)
    for freq in frequencies:
        factor = freq / base_freq
        core = context.core_config.scaled(factor)
        base_ws = {
            mix: context.mix_ws(
                cfgs.ddr4_baseline().at_frequency(freq), mix,
                core_config=core)[0]
            for mix in mixes}
        for config in fig14_configs():
            scaled = config.at_frequency(freq)
            normalized = []
            for mix in mixes:
                ws, _ = context.mix_ws(scaled, mix, core_config=core)
                normalized.append(ws / base_ws[mix])
            points.append(FrequencyPoint(
                config=config.name, bus_frequency_hz=freq,
                normalized_ws=gmean(normalized)))
    return points


# -- Fig. 15: comparison to prior sub-banking work ---------------------------


def fig15_configs() -> List[SystemConfig]:
    return [
        cfgs.half_dram(),
        cfgs.vsb(EruConfig.full(4, ddb=False)),
        cfgs.vsb(EruConfig.full(4, ddb=True)),
        cfgs.masa(4),
        cfgs.masa(8),
        cfgs.masa_eruca(8, ddb=False),
        cfgs.masa_eruca(8, ddb=True),
        cfgs.ideal32(),
    ]


def fig15(context: ExperimentContext) -> Dict[str, float]:
    """GMEAN normalised weighted speedup of each prior-work config."""
    mixes = context.settings.mixes
    context.prefetch([(config, mix)
                      for config in [cfgs.ddr4_baseline()]
                      + fig15_configs()
                      for mix in mixes])
    base_ws = {mix: context.mix_ws(cfgs.ddr4_baseline(), mix)[0]
               for mix in mixes}
    out: Dict[str, float] = {}
    for config in fig15_configs():
        normalized = [context.mix_ws(config, mix)[0] / base_ws[mix]
                      for mix in mixes]
        out[config.name] = gmean(normalized)
    return out


# -- Fig. 16: read queueing latency and energy -------------------------------


@dataclass
class LatencyEnergyRow:
    config: str
    latency_stats_ns: Dict[str, float]
    background_energy: float
    activation_energy: float
    total_energy: float

    def relative_to(self, other: "LatencyEnergyRow") -> Dict[str, float]:
        return {
            "background": self.background_energy / other.background_energy,
            "activation": self.activation_energy / other.activation_energy,
            "total": self.total_energy / other.total_energy,
        }


def fig16_configs() -> List[SystemConfig]:
    return [
        cfgs.ddr4_baseline(),
        cfgs.vsb(EruConfig.full(4, ddb=True)),
        cfgs.ideal32(),
    ]


def fig16(context: ExperimentContext) -> List[LatencyEnergyRow]:
    # Fig. 16 never computes weighted speedup, so no alone runs needed.
    context.prefetch([(config, mix) for config in fig16_configs()
                      for mix in context.settings.mixes], alone=False)
    rows: List[LatencyEnergyRow] = []
    for config in fig16_configs():
        # Merging histograms is O(unique latencies), never O(samples).
        latencies = LatencyHistogram()
        background = activation = total = 0.0
        for mix in context.settings.mixes:
            result = context.run(config, mix)
            latencies.merge(result.stats.read_latencies)
            background += result.energy.background_energy_nj(
                result.elapsed_ps)
            activation += result.energy.activation_energy_nj()
            total += result.energy.total_energy_nj(result.elapsed_ps)
        stats = {k: v / 1000.0 for k, v in quartiles(latencies).items()}
        rows.append(LatencyEnergyRow(
            config=config.name, latency_stats_ns=stats,
            background_energy=background, activation_energy=activation,
            total_energy=total))
    return rows


# -- refresh sweep: policy x density grade (docs/REFRESH.md) -----------------


#: DDR4 density grades the refresh sweep walks (tRFC grows with
#: density, so the refresh tax rises left to right).
REFRESH_SWEEP_DENSITIES: Tuple[str, ...] = ("4Gb", "8Gb", "16Gb")


@dataclass
class RefreshPoint:
    """One cell of the refresh sweep: policy x density grade."""

    policy: str
    density: str
    #: GMEAN weighted speedup normalised to the same platform with
    #: refresh off (1.0 = the policy fully hides the refresh tax).
    normalized_ws: float
    #: REF/REFpb commands issued, summed over mixes and channels.
    refreshes: int


def refresh_platform() -> SystemConfig:
    """The sweep's platform: the headline VSB(EWLR+RAP,4P)+DDB config
    (its sub-banks are what the ``sarp`` policy refreshes under open
    neighbours)."""
    return cfgs.vsb(EruConfig.full(4))


def refresh_configs(densities: Sequence[str] = REFRESH_SWEEP_DENSITIES
                    ) -> List[SystemConfig]:
    from repro.controller.scheduler import REFRESH_POLICIES
    base = refresh_platform()
    return [
        replace(base, refresh_density=density, refresh_policy=policy,
                name=f"{base.name}+ref-{policy}-{density}")
        for density in densities
        for policy in REFRESH_POLICIES
    ]


def fig_refresh(context: ExperimentContext,
                densities: Sequence[str] = REFRESH_SWEEP_DENSITIES
                ) -> List[RefreshPoint]:
    """Weighted speedup per refresh policy and density grade, normalised
    to the refresh-off platform (the figure in ``docs/REFRESH.md``)."""
    mixes = context.settings.mixes
    base = refresh_platform()
    configs = refresh_configs(densities)
    context.prefetch([(config, mix) for config in [base] + configs
                      for mix in mixes])
    base_ws = {mix: context.mix_ws(base, mix)[0] for mix in mixes}
    points: List[RefreshPoint] = []
    for config in configs:
        normalized, refreshes = [], 0
        for mix in mixes:
            ws, result = context.mix_ws(config, mix)
            normalized.append(ws / base_ws[mix])
            refreshes += result.stats.refreshes
        points.append(RefreshPoint(
            policy=config.refresh_policy,
            density=config.refresh_density,
            normalized_ws=gmean(normalized),
            refreshes=refreshes))
    return points


# -- stall-attribution sidecars ----------------------------------------------


def slug(name: str) -> str:
    """Filesystem-safe slug of a config name (``VSB(EWLR+RAP,4P)+DDB``
    becomes ``vsb-ewlr-rap-4p-ddb``)."""
    out = []
    for ch in name.lower():
        out.append(ch if ch.isalnum() else "-")
    collapsed = "-".join(p for p in "".join(out).split("-") if p)
    return collapsed or "config"


def emit_stats_sidecars(context: ExperimentContext, directory: str,
                        prefix: str = "") -> List[str]:
    """Write one JSON stall-attribution sidecar per observed mix run.

    Walks every result the context has cached so far (i.e. everything
    the figure runners executed) and, for each one that carries an
    accounting report, writes ``<prefix><config-slug>__<mix>.json`` with
    the report's :meth:`~repro.sim.accounting.AccountingReport.to_dict`
    schema (documented in ``docs/OBSERVABILITY.md``) plus a ``system``
    block naming the technology backend and the *effective* refresh
    policy -- ``sarp`` on a non-sub-banked organisation degrades to
    ``darp``, and the sidecar records the policy actually applied.
    Returns the paths written, sorted.  Runs without accounting
    (``observe=False``) are skipped silently, so the helper is safe to
    call unconditionally.
    """
    import json
    import os

    os.makedirs(directory, exist_ok=True)
    paths: List[str] = []
    for (config, mix, frag, _cc), result in sorted(
            context._result_cache.items(),
            key=lambda kv: (kv[0][0].name, kv[0][1], kv[0][2])):
        report = result.accounting
        if report is None:
            continue
        report.verify()
        payload = report.to_dict()
        payload["system"] = {
            "backend": config.backend,
            "refresh_policy": config.refresh_policy,
            "effective_refresh_policy": config.effective_refresh_policy,
        }
        name = f"{prefix}{slug(config.name)}__{mix}"
        if frag != context.settings.fragmentation:
            name += f"__frag{frag:g}"
        path = os.path.join(directory, name + ".json")
        with open(path, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
        paths.append(path)
    return sorted(paths)
