"""One runner per paper table/figure (shared by benches and examples).

Each figure is now a *declarative spec plus a pure reducer*: the grid
(configs x mixes x fragmentations x seeds) is described by an
:class:`~repro.sim.specs.ExperimentSpec` from :mod:`repro.sim.specs`,
executed through the content-addressed result store by
:mod:`repro.sim.runner`, and reduced to the paper's tables by the
``reduce_figN`` functions below -- pure functions over a
:class:`~repro.sim.runner.ResultSet`.  The historical entry points
(``fig12(context)`` and friends) remain as thin shims over that
pipeline, producing bit-identical numbers to the pre-refactor path
(pinned in ``tests/data/figure_digests.json``).

Weighted speedup follows the paper: per-mix Snavely-Tullsen WS normalised
to the DDR4 baseline, GMEAN across mixes.  Alone-IPCs are measured on the
baseline system once per (benchmark, fragmentation, seed) and served
from the store on every later run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.mechanisms import EruConfig
from repro.cpu.core import CoreConfig
from repro.cpu.trace import Trace
from repro.dram.timing import FIG14_BUS_FREQUENCIES_HZ
from repro.sim import config as cfgs
from repro.sim.config import SystemConfig
from repro.sim.metrics import (
    LatencyHistogram,
    gmean,
    quartiles,
    weighted_speedup,
)
from repro.sim.runner import ResultSet, RunReport, execute_cells
from repro.sim.simulator import SimulationResult, run_traces
from repro.sim.specs import (  # noqa: F401  (re-exports)
    FIG12_CONFIG_SPECS,
    FIG13_PLANES,
    FIG13_SCHEMES,
    FIG14_CONFIG_SPECS,
    FIG15_CONFIG_SPECS,
    FIG16_CONFIG_SPECS,
    REFRESH_SWEEP_DENSITIES,
    CellKey,
    ConfigSpec,
    ExperimentSettings,
    ExperimentSpec,
    fig12_spec,
    fig13_spec,
    fig14_spec,
    fig15_spec,
    fig16_spec,
    figref_spec,
    refresh_config_specs,
    refresh_platform_spec,
)
from repro.sim.store import ResultStore
from repro.workloads.generator import generate_traces
from repro.workloads.mixes import MIXES, mix_traces
from repro.workloads.profiles import profile


class ExperimentContext:
    """Caches traces and cell results across runners, store-backed.

    The context is the execution engine behind the figure shims: it
    holds the in-process layer (traces, finished cells) above the
    persistent :class:`~repro.sim.store.ResultStore`, and
    :meth:`execute` runs a whole spec through
    :func:`repro.sim.runner.execute_cells` -- memory first, store
    second, simulation (``jobs``-wide) only for what is left.  Serial
    and parallel execution produce identical tables.

    ``disk_cache`` (on by default) persists every cell result across
    invocations; pass ``disk_cache=False`` for a hermetic context.

    ``observe`` attaches cycle accounting (:mod:`repro.sim.accounting`)
    to every mix run, so each cached result carries a stall-attribution
    report that :func:`emit_stats_sidecars` can export next to the
    figure tables.  Alone-IPC runs are never observed -- only their
    scalar IPC is kept.  Observation never changes any table value.
    """

    def __init__(self, settings: ExperimentSettings = ExperimentSettings(),
                 core_config: CoreConfig = CoreConfig(),
                 jobs: int = 1, disk_cache: bool = True,
                 observe: bool = False,
                 alone_config: Optional[SystemConfig] = None) -> None:
        self.settings = settings
        self.core_config = core_config
        self.jobs = jobs
        self.observe = observe
        #: The configuration alone-IPC denominators run on (weighted
        #: speedup normalises against it).  Part of every alone cell's
        #: content address, so a refresh-enabled or non-DRAM alone
        #: baseline never collides with the default's entries.
        self.alone_config = alone_config or cfgs.ddr4_baseline()
        #: Persistent result store (``None`` for hermetic contexts).
        self.store: Optional[ResultStore] = (
            ResultStore() if disk_cache else None)
        #: Counters of the most recent :meth:`execute` pass.
        self.last_report: Optional[RunReport] = None
        self._trace_cache: Dict[tuple, List[Trace]] = {}
        self._alone_cache: Dict[tuple, float] = {}
        #: Finished cells keyed by :class:`CellKey` -- the memory layer
        #: :func:`~repro.sim.runner.execute_cells` diffs first.
        self._cell_cache: Dict[CellKey, SimulationResult] = {}
        #: Finished cells keyed by (config, mix, frag, core_config) --
        #: all frozen dataclasses, so equal configs hit across figures
        #: (kept for :func:`emit_stats_sidecars` and :meth:`run`).
        self._result_cache: Dict[tuple, SimulationResult] = {}

    # -- workloads ---------------------------------------------------------

    def traces(self, mix: str,
               fragmentation: Optional[float] = None) -> List[Trace]:
        s = self.settings
        frag = s.fragmentation if fragmentation is None else fragmentation
        key = (mix, frag, s.seed, s.accesses_per_core)
        if key not in self._trace_cache:
            self._trace_cache[key] = mix_traces(
                mix, s.accesses_per_core, fragmentation=frag, seed=s.seed)
        return self._trace_cache[key]

    # -- cell keys ---------------------------------------------------------

    def _alone_key(self, benchmark: str, frag: float,
                   cc: CoreConfig) -> tuple:
        s = self.settings
        return (benchmark, frag, s.seed, s.accesses_per_core, cc.clock_hz)

    def _alone_cell(self, benchmark: str, frag: float,
                    cc: CoreConfig) -> CellKey:
        s = self.settings
        return CellKey(kind="alone", config=self.alone_config,
                       workload=benchmark,
                       accesses=s.accesses_per_core, fragmentation=frag,
                       seed=s.seed, core_config=cc)

    def _mix_cell(self, config: SystemConfig, mix: str, frag: float,
                  cc: CoreConfig) -> CellKey:
        s = self.settings
        return CellKey(kind="mix", config=config, workload=mix,
                       accesses=s.accesses_per_core, fragmentation=frag,
                       seed=s.seed, core_config=cc)

    def alone_ipc(self, benchmark: str,
                  fragmentation: Optional[float] = None,
                  core_config: Optional[CoreConfig] = None) -> float:
        s = self.settings
        frag = s.fragmentation if fragmentation is None else fragmentation
        cc = core_config or self.core_config
        key = self._alone_key(benchmark, frag, cc)
        if key not in self._alone_cache:
            cell = self._alone_cell(benchmark, frag, cc)
            value = (self.store.get_scalar(cell.store_key())
                     if self.store is not None else None)
            if value is None:
                traces = generate_traces(
                    [profile(benchmark)], s.accesses_per_core,
                    fragmentation=frag, seed=s.seed)
                result = run_traces(self.alone_config, traces,
                                    core_config=cc)
                value = result.ipcs[0]
                self._cell_cache[cell] = result
                if self.store is not None:
                    self.store.put(cell.store_key(), result,
                                   key_info=cell.describe())
            self._alone_cache[key] = value
        return self._alone_cache[key]

    # -- one (config, mix) evaluation ---------------------------------------

    def run(self, config: SystemConfig, mix: str,
            fragmentation: Optional[float] = None,
            core_config: Optional[CoreConfig] = None) -> SimulationResult:
        s = self.settings
        frag = s.fragmentation if fragmentation is None else fragmentation
        cc = core_config or self.core_config
        key = (config, mix, frag, cc)
        result = self._result_cache.get(key)
        if result is None:
            cell = self._mix_cell(config, mix, frag, cc)
            if self.store is not None:
                result = self.store.get(cell.store_key(),
                                        need_accounting=self.observe)
            if result is None:
                result = run_traces(config, self.traces(mix, frag),
                                    core_config=cc,
                                    observe=self.observe or None)
                if self.store is not None:
                    self.store.put(cell.store_key(), result,
                                   key_info=cell.describe())
            self._cell_cache[cell] = result
            self._result_cache[key] = result
        return result

    def mix_ws(self, config: SystemConfig, mix: str,
               fragmentation: Optional[float] = None,
               core_config: Optional[CoreConfig] = None
               ) -> Tuple[float, SimulationResult]:
        result = self.run(config, mix, fragmentation, core_config)
        names, _ = MIXES[mix]
        alone = [self.alone_ipc(n, fragmentation, core_config)
                 for n in names]
        return weighted_speedup(result.ipcs, alone), result

    # -- spec execution -----------------------------------------------------

    def _sync_legacy_caches(self, cells: Sequence[CellKey]) -> None:
        """Mirror executed cells into the historical cache shapes that
        :meth:`mix_ws` and :func:`emit_stats_sidecars` read."""
        s = self.settings
        for cell in cells:
            result = self._cell_cache.get(cell)
            if result is None or cell.seed != s.seed \
                    or cell.accesses != s.accesses_per_core:
                continue
            if cell.kind == "mix":
                self._result_cache[(cell.config, cell.workload,
                                    cell.fragmentation,
                                    cell.core_config)] = result
            else:
                self._alone_cache[self._alone_key(
                    cell.workload, cell.fragmentation,
                    cell.core_config)] = result.ipcs[0]

    def run_cells(self, cells: Sequence[CellKey],
                  observe: Optional[bool] = None) -> RunReport:
        """Execute a cell list through memory -> store -> simulation."""
        report = execute_cells(
            cells, results=self._cell_cache, store=self.store,
            jobs=self.jobs,
            observe=self.observe if observe is None else observe)
        self._sync_legacy_caches(cells)
        self.last_report = report
        return report

    def execute(self, spec: ExperimentSpec) -> ResultSet:
        """Run a whole spec; only cells absent everywhere simulate."""
        self.run_cells(spec.expand(self.core_config),
                       observe=spec.observe)
        return ResultSet(spec, self._cell_cache, self.core_config)

    # -- grid prefetch ------------------------------------------------------

    def prefetch(self, cells: Sequence[tuple], alone: bool = True) -> None:
        """Warm the caches for a list of grid cells, ``jobs``-wide.

        ``cells`` holds (config, mix, fragmentation, core_config)
        tuples (the trailing pair may be ``None`` for the context
        defaults).  With ``alone`` set, the member benchmarks' alone-IPC
        runs are prefetched too.  Serial contexts return immediately:
        the lazy per-cell path is just as fast in-process, reuses
        cached traces, and reads the same store.
        """
        if self.jobs <= 1:
            return
        s = self.settings
        keys: List[CellKey] = []
        seen = set()

        def emit(cell: CellKey) -> None:
            if cell not in seen:
                seen.add(cell)
                keys.append(cell)

        for cell in cells:
            config, mix = cell[0], cell[1]
            frag = cell[2] if len(cell) > 2 and cell[2] is not None \
                else s.fragmentation
            cc = cell[3] if len(cell) > 3 and cell[3] is not None \
                else self.core_config
            if alone:
                for benchmark in MIXES[mix][0]:
                    emit(self._alone_cell(benchmark, frag, cc))
            emit(self._mix_cell(config, mix, frag, cc))
        self.run_cells(keys)


# -- Fig. 12: normalised weighted speedup per mix ---------------------------


def fig12_configs() -> List[SystemConfig]:
    """The Fig. 12 comparison set (plus the paired-bank variants)."""
    return [cs.to_config() for cs in FIG12_CONFIG_SPECS]


@dataclass
class SpeedupTable:
    """Per-mix normalised weighted speedups: {config: {mix: value}}."""

    values: Dict[str, Dict[str, float]] = field(default_factory=dict)
    baseline: str = "DDR4"

    def normalized(self) -> Dict[str, Dict[str, float]]:
        out: Dict[str, Dict[str, float]] = {}
        base = self.values[self.baseline]
        for config, row in self.values.items():
            out[config] = {mix: v / base[mix] for mix, v in row.items()}
        return out

    def gmeans(self) -> Dict[str, float]:
        return {config: gmean(row.values())
                for config, row in self.normalized().items()}


def reduce_fig12(rs: ResultSet,
                 configs: Sequence[SystemConfig],
                 mixes: Sequence[str]) -> SpeedupTable:
    """Pure Fig. 12 reducer: weighted speedups per (config, mix)."""
    table = SpeedupTable()
    for config in configs:
        table.values[config.name] = {mix: rs.ws(config, mix)[0]
                                     for mix in mixes}
    return table


def fig12(context: ExperimentContext,
          configs: Optional[Sequence[SystemConfig]] = None) -> SpeedupTable:
    if configs is None:
        spec = fig12_spec(context.settings, observe=context.observe)
    else:
        spec = ExperimentSpec(
            name="fig12", mixes=context.settings.mixes,
            accesses_per_core=context.settings.accesses_per_core,
            fragmentations=(context.settings.fragmentation,),
            seeds=(context.settings.seed,), observe=context.observe,
            configs=tuple(ConfigSpec(inline=c) for c in configs))
    rs = context.execute(spec)
    return reduce_fig12(rs, [cs.to_config() for cs in spec.configs],
                        context.settings.mixes)


# -- Fig. 13: plane-count sensitivity + conflict precharges -----------------


@dataclass
class PlaneSweepPoint:
    scheme: str
    planes: int
    fragmentation: float
    normalized_ws: float
    plane_precharge_fraction: float
    ewlr_hit_rate: float


def reduce_fig13(rs: ResultSet, mixes: Sequence[str],
                 fragmentations: Sequence[float],
                 planes: Sequence[int],
                 schemes) -> List[PlaneSweepPoint]:
    """Pure Fig. 13 reducer over the (scheme, planes, frag) sweep."""
    points: List[PlaneSweepPoint] = []
    for frag in fragmentations:
        base_ws = {mix: rs.ws(cfgs.ddr4_baseline(), mix, frag)[0]
                   for mix in mixes}
        for scheme, make in schemes:
            for n in planes:
                config = cfgs.vsb(make(n))
                normalized, pre_frac, hits = [], [], []
                for mix in mixes:
                    ws, result = rs.ws(config, mix, frag)
                    normalized.append(ws / base_ws[mix])
                    pre_frac.append(
                        result.plane_conflict_precharge_fraction)
                    hits.append(result.ewlr_hit_rate)
                points.append(PlaneSweepPoint(
                    scheme=scheme, planes=n, fragmentation=frag,
                    normalized_ws=gmean(normalized),
                    plane_precharge_fraction=(
                        sum(pre_frac) / len(pre_frac)),
                    ewlr_hit_rate=sum(hits) / len(hits)))
    return points


def fig13(context: ExperimentContext,
          fragmentations: Sequence[float] = (0.1, 0.5),
          planes: Sequence[int] = FIG13_PLANES,
          schemes=FIG13_SCHEMES) -> List[PlaneSweepPoint]:
    spec = fig13_spec(context.settings, fragmentations, planes,
                      schemes, observe=context.observe)
    rs = context.execute(spec)
    return reduce_fig13(rs, context.settings.mixes, fragmentations,
                        planes, schemes)


# -- Fig. 14: channel-frequency sensitivity of DDB ---------------------------


@dataclass
class FrequencyPoint:
    config: str
    bus_frequency_hz: float
    normalized_ws: float


def fig14_configs() -> List[SystemConfig]:
    return [cs.to_config() for cs in FIG14_CONFIG_SPECS]


def reduce_fig14(rs: ResultSet, mixes: Sequence[str],
                 frequencies: Sequence[float],
                 core_config: CoreConfig) -> List[FrequencyPoint]:
    """Pure Fig. 14 reducer: normalised WS per (config, frequency)."""
    points: List[FrequencyPoint] = []
    base_freq = frequencies[0]
    for freq in frequencies:
        factor = freq / base_freq
        core = core_config.scaled(factor)
        base_ws = {
            mix: rs.ws(cfgs.ddr4_baseline().at_frequency(freq), mix,
                       core_config=core)[0]
            for mix in mixes}
        for config in fig14_configs():
            scaled = config.at_frequency(freq)
            normalized = [
                rs.ws(scaled, mix, core_config=core)[0] / base_ws[mix]
                for mix in mixes]
            points.append(FrequencyPoint(
                config=config.name, bus_frequency_hz=freq,
                normalized_ws=gmean(normalized)))
    return points


def fig14(context: ExperimentContext,
          frequencies: Sequence[float] = FIG14_BUS_FREQUENCIES_HZ
          ) -> List[FrequencyPoint]:
    """DDB speedup as the channel clock scales (CPU clock scales along,
    per the paper, to keep memory intensity constant)."""
    spec = fig14_spec(context.settings, frequencies,
                      observe=context.observe)
    rs = context.execute(spec)
    return reduce_fig14(rs, context.settings.mixes, frequencies,
                        context.core_config)


# -- Fig. 15: comparison to prior sub-banking work ---------------------------


def fig15_configs() -> List[SystemConfig]:
    return [cs.to_config() for cs in FIG15_CONFIG_SPECS]


def reduce_fig15(rs: ResultSet,
                 mixes: Sequence[str]) -> Dict[str, float]:
    """Pure Fig. 15 reducer: GMEAN normalised WS per prior-work config."""
    base_ws = {mix: rs.ws(cfgs.ddr4_baseline(), mix)[0]
               for mix in mixes}
    out: Dict[str, float] = {}
    for config in fig15_configs():
        normalized = [rs.ws(config, mix)[0] / base_ws[mix]
                      for mix in mixes]
        out[config.name] = gmean(normalized)
    return out


def fig15(context: ExperimentContext) -> Dict[str, float]:
    """GMEAN normalised weighted speedup of each prior-work config."""
    spec = fig15_spec(context.settings, observe=context.observe)
    rs = context.execute(spec)
    return reduce_fig15(rs, context.settings.mixes)


# -- Fig. 16: read queueing latency and energy -------------------------------


@dataclass
class LatencyEnergyRow:
    config: str
    latency_stats_ns: Dict[str, float]
    background_energy: float
    activation_energy: float
    total_energy: float

    def relative_to(self, other: "LatencyEnergyRow") -> Dict[str, float]:
        return {
            "background": self.background_energy / other.background_energy,
            "activation": self.activation_energy / other.activation_energy,
            "total": self.total_energy / other.total_energy,
        }


def fig16_configs() -> List[SystemConfig]:
    return [cs.to_config() for cs in FIG16_CONFIG_SPECS]


def reduce_fig16(rs: ResultSet,
                 mixes: Sequence[str]) -> List[LatencyEnergyRow]:
    """Pure Fig. 16 reducer: latency quartiles + energy per config."""
    rows: List[LatencyEnergyRow] = []
    for config in fig16_configs():
        # Merging histograms is O(unique latencies), never O(samples).
        latencies = LatencyHistogram()
        background = activation = total = 0.0
        for mix in mixes:
            result = rs.mix(config, mix)
            latencies.merge(result.stats.read_latencies)
            background += result.energy.background_energy_nj(
                result.elapsed_ps)
            activation += result.energy.activation_energy_nj()
            total += result.energy.total_energy_nj(result.elapsed_ps)
        stats = {k: v / 1000.0 for k, v in quartiles(latencies).items()}
        rows.append(LatencyEnergyRow(
            config=config.name, latency_stats_ns=stats,
            background_energy=background, activation_energy=activation,
            total_energy=total))
    return rows


def fig16(context: ExperimentContext) -> List[LatencyEnergyRow]:
    # Fig. 16 never computes weighted speedup, so no alone cells.
    spec = fig16_spec(context.settings, observe=context.observe)
    rs = context.execute(spec)
    return reduce_fig16(rs, context.settings.mixes)


# -- refresh sweep: policy x density grade (docs/REFRESH.md) -----------------


@dataclass
class RefreshPoint:
    """One cell of the refresh sweep: policy x density grade."""

    policy: str
    density: str
    #: GMEAN weighted speedup normalised to the same platform with
    #: refresh off (1.0 = the policy fully hides the refresh tax).
    normalized_ws: float
    #: REF/REFpb commands issued, summed over mixes and channels.
    refreshes: int


def refresh_platform() -> SystemConfig:
    """The sweep's platform: the headline VSB(EWLR+RAP,4P)+DDB config
    (its sub-banks are what the ``sarp`` policy refreshes under open
    neighbours)."""
    return refresh_platform_spec().to_config()


def refresh_configs(densities: Sequence[str] = REFRESH_SWEEP_DENSITIES
                    ) -> List[SystemConfig]:
    return [cs.to_config() for cs in refresh_config_specs(densities)]


def reduce_figref(rs: ResultSet, mixes: Sequence[str],
                  densities: Sequence[str]) -> List[RefreshPoint]:
    """Pure refresh-sweep reducer, normalised to the refresh-off
    platform."""
    base = refresh_platform()
    base_ws = {mix: rs.ws(base, mix)[0] for mix in mixes}
    points: List[RefreshPoint] = []
    for config in refresh_configs(densities):
        normalized, refreshes = [], 0
        for mix in mixes:
            ws, result = rs.ws(config, mix)
            normalized.append(ws / base_ws[mix])
            refreshes += result.stats.refreshes
        points.append(RefreshPoint(
            policy=config.refresh_policy,
            density=config.refresh_density,
            normalized_ws=gmean(normalized),
            refreshes=refreshes))
    return points


def fig_refresh(context: ExperimentContext,
                densities: Sequence[str] = REFRESH_SWEEP_DENSITIES
                ) -> List[RefreshPoint]:
    """Weighted speedup per refresh policy and density grade, normalised
    to the refresh-off platform (the figure in ``docs/REFRESH.md``)."""
    spec = figref_spec(context.settings, densities,
                       observe=context.observe)
    rs = context.execute(spec)
    return reduce_figref(rs, context.settings.mixes, densities)


#: Pure reducer per named figure spec, for callers that execute specs
#: directly through :func:`repro.sim.runner.run_spec`:
#: ``FIGURE_REDUCERS[spec.name](rs, mixes)`` with the spec's default
#: axes.
FIGURE_REDUCERS: Dict[str, Callable[[ResultSet, Sequence[str]], object]] = {
    "fig12": lambda rs, mixes: reduce_fig12(
        rs, [cs.to_config() for cs in rs.spec.configs], mixes),
    "fig13": lambda rs, mixes: reduce_fig13(
        rs, mixes, rs.spec.fragmentations, FIG13_PLANES, FIG13_SCHEMES),
    "fig14": lambda rs, mixes: reduce_fig14(
        rs, mixes, FIG14_BUS_FREQUENCIES_HZ, CoreConfig()),
    "fig15": reduce_fig15,
    "fig16": reduce_fig16,
    "figref": lambda rs, mixes: reduce_figref(
        rs, mixes, REFRESH_SWEEP_DENSITIES),
}


#: Named figure runners: shim per spec in
#: :data:`repro.sim.specs.NAMED_SPECS` (benches and the CLI resolve
#: figures by name through this).
FIGURES: Dict[str, Callable] = {
    "fig12": fig12,
    "fig13": fig13,
    "fig14": fig14,
    "fig15": fig15,
    "fig16": fig16,
    "figref": fig_refresh,
}


def run_figure(name: str, context: ExperimentContext, **axes):
    """Run one named figure spec through ``context`` and reduce it.

    The thin entry point the benches wrap: resolves ``name`` in
    :data:`FIGURES`, executes the figure's declarative spec against the
    store (only absent cells simulate), and returns the reduced table.
    """
    return FIGURES[name](context, **axes)


# -- stall-attribution sidecars ----------------------------------------------


def slug(name: str) -> str:
    """Filesystem-safe slug of a config name (``VSB(EWLR+RAP,4P)+DDB``
    becomes ``vsb-ewlr-rap-4p-ddb``)."""
    out = []
    for ch in name.lower():
        out.append(ch if ch.isalnum() else "-")
    collapsed = "-".join(p for p in "".join(out).split("-") if p)
    return collapsed or "config"


def emit_stats_sidecars(context: ExperimentContext, directory: str,
                        prefix: str = "") -> List[str]:
    """Write one JSON stall-attribution sidecar per observed mix run.

    Walks every result the context has cached so far (i.e. everything
    the figure runners executed) and, for each one that carries an
    accounting report, writes ``<prefix><config-slug>__<mix>.json`` with
    the report's :meth:`~repro.sim.accounting.AccountingReport.to_dict`
    schema (documented in ``docs/OBSERVABILITY.md``) plus a ``system``
    block naming the technology backend and the *effective* refresh
    policy -- ``sarp`` on a non-sub-banked organisation degrades to
    ``darp``, and the sidecar records the policy actually applied.
    Results restored from the store carry their persisted report, so
    re-emitted sidecars are identical to the original run's.  Returns
    the paths written, sorted.  Runs without accounting
    (``observe=False``) are skipped silently, so the helper is safe to
    call unconditionally.
    """
    import json
    import os

    os.makedirs(directory, exist_ok=True)
    paths: List[str] = []
    for (config, mix, frag, _cc), result in sorted(
            context._result_cache.items(),
            key=lambda kv: (kv[0][0].name, kv[0][1], kv[0][2])):
        report = result.accounting
        if report is None:
            continue
        report.verify()
        payload = report.to_dict()
        payload["system"] = {
            "backend": config.backend,
            "refresh_policy": config.refresh_policy,
            "effective_refresh_policy": config.effective_refresh_policy,
        }
        name = f"{prefix}{slug(config.name)}__{mix}"
        if frag != context.settings.fragmentation:
            name += f"__frag{frag:g}"
        path = os.path.join(directory, name + ".json")
        with open(path, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
        paths.append(path)
    return sorted(paths)
