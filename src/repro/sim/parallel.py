"""Parallel grid execution over independent simulation cells.

The experiment runners evaluate a *grid* of (configuration, workload)
cells whose runs are mutually independent: traces are regenerated
deterministically from (mix/benchmark, accesses, fragmentation, seed),
so a cell can execute in any process and return the exact same
:class:`~repro.sim.simulator.SimulationResult`.  :func:`run_grid` fans a
list of :class:`SimJob` cells out over a ``ProcessPoolExecutor`` and
returns results in submission order, which keeps every downstream
aggregation (GMEAN tables, sweeps) bit-identical to a serial run.

Result persistence lives in :mod:`repro.sim.store` (the
content-addressed store that subsumed the old alone-IPC table); the
cache constants and :class:`~repro.sim.store.AloneIpcDiskCache`
compatibility view are re-exported here for historical importers.
"""

from __future__ import annotations

import atexit
import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from itertools import islice
from typing import Dict, List, Optional, Sequence

from repro.cpu.core import CoreConfig
from repro.sim.config import SystemConfig
from repro.sim.simulator import SimulationResult, run_traces
from repro.sim.store import (  # noqa: F401  (re-exports)
    CACHE_DIR_ENV,
    CACHE_VERSION,
    DEFAULT_CACHE_DIR,
    AloneIpcDiskCache,
)

#: Environment variable overriding :data:`DEFAULT_GRID_MIN_COST`: set it
#: to ``0`` to force the pool path, or very high to force serial.
GRID_MIN_COST_ENV = "REPRO_GRID_MIN_COST"
#: Minimum estimated grid cost (accesses x cores, summed over jobs)
#: below which :func:`run_grid` stays serial: small grids lose more to
#: pool startup than they gain from overlap (the "parallel-overhead
#: cliff" -- a 3-job figure run used to fork a pool per call and come
#: out slower than serial).
DEFAULT_GRID_MIN_COST = 50_000


@dataclass(frozen=True)
class SimJob:
    """One grid cell: a configuration evaluated on one workload.

    Exactly one of ``mix`` / ``benchmark`` is set: a mix runs one core
    per member benchmark, a bare benchmark runs alone (the denominator
    of weighted speedup).  The job carries everything needed to
    regenerate the traces in a worker process, so only small frozen
    dataclasses cross the process boundary.
    """

    config: SystemConfig
    accesses: int
    fragmentation: float
    seed: int
    core_config: CoreConfig
    mix: Optional[str] = None
    benchmark: Optional[str] = None
    #: Attach cycle accounting to this cell (see
    #: :mod:`repro.sim.accounting`).  The report rides back with the
    #: result -- plain dataclasses, so it pickles across the pool.
    observe: bool = False


#: Per-process trace memo: a worker that draws several cells of the
#: same (mix, accesses, frag, seed) regenerates the traces only once.
#: Bounded by oldest-half eviction (insertion order approximates age)
#: so recent entries survive an overflow instead of a full wipe.
_trace_memo: Dict[tuple, object] = {}
TRACE_MEMO_CAPACITY = 64
_trace_memo_evictions = 0


def trace_memo_stats() -> Dict[str, int]:
    """Current size and eviction count of this process's trace memo.

    Surfaced by ``repro stats`` next to the route-cache counters; an
    eviction is one oldest-half sweep, not one dropped entry.
    """
    return {"size": len(_trace_memo),
            "evictions": _trace_memo_evictions}


def _job_traces(job: SimJob):
    global _trace_memo_evictions
    key = (job.mix, job.benchmark, job.accesses, job.fragmentation,
           job.seed)
    traces = _trace_memo.get(key)
    if traces is None:
        if job.benchmark is not None:
            from repro.workloads.generator import generate_traces
            from repro.workloads.profiles import profile
            traces = generate_traces(
                [profile(job.benchmark)], job.accesses,
                fragmentation=job.fragmentation, seed=job.seed)
        else:
            from repro.workloads.mixes import mix_traces
            traces = mix_traces(job.mix, job.accesses,
                                fragmentation=job.fragmentation,
                                seed=job.seed)
        if len(_trace_memo) >= TRACE_MEMO_CAPACITY:  # bound memory
            for old in list(islice(_trace_memo, len(_trace_memo) // 2)):
                del _trace_memo[old]
            _trace_memo_evictions += 1
        _trace_memo[key] = traces
    return traces


def _run_job(job: SimJob) -> SimulationResult:
    """Worker entry point: regenerate the traces and simulate."""
    return run_traces(job.config, _job_traces(job),
                      core_config=job.core_config,
                      observe=job.observe or None)


def default_workers() -> int:
    """Worker count when the caller asks for "all cores"."""
    return max(1, os.cpu_count() or 1)


def _job_cost(job: SimJob) -> int:
    """Rough work estimate for one cell: accesses x simulated cores."""
    if job.benchmark is not None:
        return job.accesses
    from repro.workloads.mixes import MIXES
    entry = MIXES.get(job.mix)
    return job.accesses * (len(entry[0]) if entry else 4)


def grid_min_cost() -> int:
    """Serial-fallback threshold, honouring ``REPRO_GRID_MIN_COST``."""
    raw = os.environ.get(GRID_MIN_COST_ENV)
    if raw is not None:
        try:
            return int(raw)
        except ValueError:
            pass
    return DEFAULT_GRID_MIN_COST


#: Warm executor reused across run_grid calls, keyed by the module
#: state the fork snapshots: consecutive figure runners used to pay a
#: full pool fork each, which is where the parallel-overhead cliff came
#: from on small grids.
_warm_pool: Optional[ProcessPoolExecutor] = None
_warm_pool_key: Optional[tuple] = None


def _pool_fingerprint(workers: int) -> tuple:
    # fork snapshots module globals, so a pool is only reusable while
    # the defaults its workers inherited still match the parent's.
    from repro.controller.scheduler import INCREMENTAL_DEFAULT
    from repro.sim.shards import SHARDS_DEFAULT
    return (workers, INCREMENTAL_DEFAULT, SHARDS_DEFAULT,
            os.environ.get(CACHE_DIR_ENV))


def _warm_executor(workers: int) -> ProcessPoolExecutor:
    global _warm_pool, _warm_pool_key
    key = _pool_fingerprint(workers)
    if _warm_pool is not None and _warm_pool_key != key:
        _warm_pool.shutdown(wait=False)
        _warm_pool = None
    if _warm_pool is None:
        # fork shares the loaded modules with the workers; spawn (the
        # only option on some platforms) re-imports them, which is
        # still correct because jobs are self-contained.
        methods = multiprocessing.get_all_start_methods()
        ctx = multiprocessing.get_context(
            "fork" if "fork" in methods else None)
        _warm_pool = ProcessPoolExecutor(max_workers=workers,
                                         mp_context=ctx)
        _warm_pool_key = key
    return _warm_pool


@atexit.register
def _shutdown_warm_pool() -> None:
    global _warm_pool
    if _warm_pool is not None:
        _warm_pool.shutdown(wait=False)
        _warm_pool = None


def run_grid(jobs: Sequence[SimJob], workers: int = 1,
             on_result=None) -> List[SimulationResult]:
    """Run every job, across ``workers`` processes, in submission order.

    ``workers <= 1`` (or a single job) runs serially in-process -- same
    results, no pool overhead -- so callers can pass their ``--jobs``
    value straight through.  Grids whose estimated cost (accesses x
    cores, summed) falls below :func:`grid_min_cost` also run serially:
    pool startup costs more than the overlap recovers.  Callers that
    diff against the result store submit only their missing cells, so
    the gate prices exactly the work that will actually run.  Larger
    grids go to a warm :class:`ProcessPoolExecutor` that survives
    across calls.

    ``on_result(index, result)`` streams completions in submission
    order as they arrive (the spec runner uses it to persist each cell
    to the store and report progress the moment it lands, so a killed
    run keeps everything already finished).
    """
    jobs = list(jobs)
    results: List[SimulationResult] = []
    if (workers <= 1 or len(jobs) <= 1
            or sum(_job_cost(job) for job in jobs) < grid_min_cost()):
        for index, job in enumerate(jobs):
            result = _run_job(job)
            if on_result is not None:
                on_result(index, result)
            results.append(result)
        return results
    # The warm pool is keyed by the requested worker count (not the
    # possibly smaller per-call pool size) so differently sized grids
    # share one executor.
    pool = _warm_executor(workers)
    # Mild chunking amortises IPC without hurting load balance.  Sized
    # from the workers a grid can actually occupy: a short job list on
    # a wide pool must not collapse to one chunk per worker short of
    # covering the list.
    chunk = max(1, len(jobs) // (min(workers, len(jobs)) * 4))
    for index, result in enumerate(
            pool.map(_run_job, jobs, chunksize=chunk)):
        if on_result is not None:
            on_result(index, result)
        results.append(result)
    return results
