"""Parallel grid execution and the persistent alone-IPC cache.

The experiment runners evaluate a *grid* of (configuration, workload)
cells whose runs are mutually independent: traces are regenerated
deterministically from (mix/benchmark, accesses, fragmentation, seed),
so a cell can execute in any process and return the exact same
:class:`~repro.sim.simulator.SimulationResult`.  :func:`run_grid` fans a
list of :class:`SimJob` cells out over a ``ProcessPoolExecutor`` and
returns results in submission order, which keeps every downstream
aggregation (GMEAN tables, sweeps) bit-identical to a serial run.

:class:`AloneIpcDiskCache` persists the most redundant part of the grid
-- the per-benchmark alone-IPC runs used by weighted speedup -- across
*invocations*: the baseline alone-run for (benchmark, fragmentation,
seed, accesses, core clock) never changes, so figs 12--15 share one
on-disk JSON table instead of resimulating it per figure and per CLI
call.  Set ``REPRO_CACHE_DIR`` to relocate it (e.g. to a pytest
``tmp_path``); delete the directory to invalidate.
"""

from __future__ import annotations

import atexit
import json
import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from itertools import islice
from typing import Dict, List, Optional, Sequence

from repro.cpu.core import CoreConfig
from repro.sim.config import SystemConfig
from repro.sim.simulator import SimulationResult, run_traces

#: Environment variable relocating the on-disk cache directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"
#: Default cache directory (relative to the working directory).
DEFAULT_CACHE_DIR = ".repro_cache"
#: Bump to invalidate every persisted entry after a modelling change.
#: v2: the tFAW four-activate window changed simulated IPCs.
#: v3: keys gained the full alone-config digest -- the old 5-tuple key
#: ignored refresh (and every other SystemConfig override), so a
#: ``--refresh`` run could silently reuse a refresh-free alone-IPC.
CACHE_VERSION = 3

#: Environment variable overriding :data:`DEFAULT_GRID_MIN_COST`: set it
#: to ``0`` to force the pool path, or very high to force serial.
GRID_MIN_COST_ENV = "REPRO_GRID_MIN_COST"
#: Minimum estimated grid cost (accesses x cores, summed over jobs)
#: below which :func:`run_grid` stays serial: small grids lose more to
#: pool startup than they gain from overlap (the "parallel-overhead
#: cliff" -- a 3-job figure run used to fork a pool per call and come
#: out slower than serial).
DEFAULT_GRID_MIN_COST = 50_000


@dataclass(frozen=True)
class SimJob:
    """One grid cell: a configuration evaluated on one workload.

    Exactly one of ``mix`` / ``benchmark`` is set: a mix runs one core
    per member benchmark, a bare benchmark runs alone (the denominator
    of weighted speedup).  The job carries everything needed to
    regenerate the traces in a worker process, so only small frozen
    dataclasses cross the process boundary.
    """

    config: SystemConfig
    accesses: int
    fragmentation: float
    seed: int
    core_config: CoreConfig
    mix: Optional[str] = None
    benchmark: Optional[str] = None
    #: Attach cycle accounting to this cell (see
    #: :mod:`repro.sim.accounting`).  The report rides back with the
    #: result -- plain dataclasses, so it pickles across the pool.
    observe: bool = False


#: Per-process trace memo: a worker that draws several cells of the
#: same (mix, accesses, frag, seed) regenerates the traces only once.
#: Bounded by oldest-half eviction (insertion order approximates age)
#: so recent entries survive an overflow instead of a full wipe.
_trace_memo: Dict[tuple, object] = {}
TRACE_MEMO_CAPACITY = 64
_trace_memo_evictions = 0


def trace_memo_stats() -> Dict[str, int]:
    """Current size and eviction count of this process's trace memo.

    Surfaced by ``repro stats`` next to the route-cache counters; an
    eviction is one oldest-half sweep, not one dropped entry.
    """
    return {"size": len(_trace_memo),
            "evictions": _trace_memo_evictions}


def _job_traces(job: SimJob):
    global _trace_memo_evictions
    key = (job.mix, job.benchmark, job.accesses, job.fragmentation,
           job.seed)
    traces = _trace_memo.get(key)
    if traces is None:
        if job.benchmark is not None:
            from repro.workloads.generator import generate_traces
            from repro.workloads.profiles import profile
            traces = generate_traces(
                [profile(job.benchmark)], job.accesses,
                fragmentation=job.fragmentation, seed=job.seed)
        else:
            from repro.workloads.mixes import mix_traces
            traces = mix_traces(job.mix, job.accesses,
                                fragmentation=job.fragmentation,
                                seed=job.seed)
        if len(_trace_memo) >= TRACE_MEMO_CAPACITY:  # bound memory
            for old in list(islice(_trace_memo, len(_trace_memo) // 2)):
                del _trace_memo[old]
            _trace_memo_evictions += 1
        _trace_memo[key] = traces
    return traces


def _run_job(job: SimJob) -> SimulationResult:
    """Worker entry point: regenerate the traces and simulate."""
    return run_traces(job.config, _job_traces(job),
                      core_config=job.core_config,
                      observe=job.observe or None)


def default_workers() -> int:
    """Worker count when the caller asks for "all cores"."""
    return max(1, os.cpu_count() or 1)


def _job_cost(job: SimJob) -> int:
    """Rough work estimate for one cell: accesses x simulated cores."""
    if job.benchmark is not None:
        return job.accesses
    from repro.workloads.mixes import MIXES
    entry = MIXES.get(job.mix)
    return job.accesses * (len(entry[0]) if entry else 4)


def grid_min_cost() -> int:
    """Serial-fallback threshold, honouring ``REPRO_GRID_MIN_COST``."""
    raw = os.environ.get(GRID_MIN_COST_ENV)
    if raw is not None:
        try:
            return int(raw)
        except ValueError:
            pass
    return DEFAULT_GRID_MIN_COST


#: Warm executor reused across run_grid calls, keyed by the module
#: state the fork snapshots: consecutive figure runners used to pay a
#: full pool fork each, which is where the parallel-overhead cliff came
#: from on small grids.
_warm_pool: Optional[ProcessPoolExecutor] = None
_warm_pool_key: Optional[tuple] = None


def _pool_fingerprint(workers: int) -> tuple:
    # fork snapshots module globals, so a pool is only reusable while
    # the defaults its workers inherited still match the parent's.
    from repro.controller.scheduler import INCREMENTAL_DEFAULT
    from repro.sim.shards import SHARDS_DEFAULT
    return (workers, INCREMENTAL_DEFAULT, SHARDS_DEFAULT,
            os.environ.get(CACHE_DIR_ENV))


def _warm_executor(workers: int) -> ProcessPoolExecutor:
    global _warm_pool, _warm_pool_key
    key = _pool_fingerprint(workers)
    if _warm_pool is not None and _warm_pool_key != key:
        _warm_pool.shutdown(wait=False)
        _warm_pool = None
    if _warm_pool is None:
        # fork shares the loaded modules with the workers; spawn (the
        # only option on some platforms) re-imports them, which is
        # still correct because jobs are self-contained.
        methods = multiprocessing.get_all_start_methods()
        ctx = multiprocessing.get_context(
            "fork" if "fork" in methods else None)
        _warm_pool = ProcessPoolExecutor(max_workers=workers,
                                         mp_context=ctx)
        _warm_pool_key = key
    return _warm_pool


@atexit.register
def _shutdown_warm_pool() -> None:
    global _warm_pool
    if _warm_pool is not None:
        _warm_pool.shutdown(wait=False)
        _warm_pool = None


def run_grid(jobs: Sequence[SimJob], workers: int = 1
             ) -> List[SimulationResult]:
    """Run every job, across ``workers`` processes, in submission order.

    ``workers <= 1`` (or a single job) runs serially in-process -- same
    results, no pool overhead -- so callers can pass their ``--jobs``
    value straight through.  Grids whose estimated cost (accesses x
    cores, summed) falls below :func:`grid_min_cost` also run serially:
    pool startup costs more than the overlap recovers.  Larger grids go
    to a warm :class:`ProcessPoolExecutor` that survives across calls.
    """
    jobs = list(jobs)
    if (workers <= 1 or len(jobs) <= 1
            or sum(_job_cost(job) for job in jobs) < grid_min_cost()):
        return [_run_job(job) for job in jobs]
    # The warm pool is keyed by the requested worker count (not the
    # possibly smaller per-call pool size) so differently sized grids
    # share one executor.
    pool = _warm_executor(workers)
    # Mild chunking amortises IPC without hurting load balance.  Sized
    # from the workers a grid can actually occupy: a short job list on
    # a wide pool must not collapse to one chunk per worker short of
    # covering the list.
    chunk = max(1, len(jobs) // (min(workers, len(jobs)) * 4))
    return list(pool.map(_run_job, jobs, chunksize=chunk))


class AloneIpcDiskCache:
    """Persistent {alone-run key: IPC} table shared by all runners.

    The table is a single JSON file.  Writes are merge-on-write (the
    file is re-read and updated before the atomic replace), so
    concurrent invocations lose no entries -- at worst they both
    recompute the same value, which is deterministic anyway.
    """

    def __init__(self, directory: Optional[str] = None) -> None:
        if directory is None:
            directory = os.environ.get(CACHE_DIR_ENV, DEFAULT_CACHE_DIR)
        self.directory = directory
        self.path = os.path.join(directory, "alone_ipc.json")
        self._data: Optional[Dict[str, float]] = None

    @staticmethod
    def key(config: SystemConfig, benchmark: str, fragmentation: float,
            seed: int, accesses: int, clock_hz: float) -> str:
        """Cache key for one alone run.

        Includes the alone config's full digest
        (:meth:`SystemConfig.digest`), not just the clock: any override
        that changes simulated behaviour -- refresh density/policy,
        tFAW, queue depths, energy -- must land in a different entry.
        """
        return (f"v{CACHE_VERSION}|{config.digest()}|{benchmark}"
                f"|{fragmentation!r}|{seed}|{accesses}|{clock_hz!r}")

    def _read_file(self) -> Dict[str, float]:
        try:
            with open(self.path) as fh:
                data = json.load(fh)
        except (OSError, ValueError):
            return {}
        return data if isinstance(data, dict) else {}

    def _load(self) -> Dict[str, float]:
        if self._data is None:
            self._data = self._read_file()
        return self._data

    def get(self, key: str) -> Optional[float]:
        return self._load().get(key)

    def put_many(self, entries: Dict[str, float]) -> None:
        if not entries:
            return
        # Freshest-last: overlay the re-read file *over* the in-memory
        # snapshot (which may predate a concurrent writer's replace),
        # then the new entries over both.  The old order let a stale
        # snapshot shadow values another process had just persisted.
        merged = dict(self._load())
        merged.update(self._read_file())  # pick up concurrent writers
        merged.update(entries)
        self._data = merged
        os.makedirs(self.directory, exist_ok=True)
        tmp = f"{self.path}.tmp.{os.getpid()}"
        with open(tmp, "w") as fh:
            json.dump(merged, fh, sort_keys=True)
        os.replace(tmp, self.path)

    def put(self, key: str, value: float) -> None:
        self.put_many({key: value})
