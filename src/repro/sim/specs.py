"""Declarative experiment specs: factors x levels -> grid cells.

An :class:`ExperimentSpec` is a frozen, digest-able description of one
experiment grid -- which configurations (as :class:`ConfigSpec`
factors, not materialized objects), which mixes, at what scale, over
which fragmentations / seeds / reps.  :meth:`ExperimentSpec.expand`
turns it into a deterministic list of :class:`CellKey` cells, each of
which maps 1:1 onto a content address in the result store
(:mod:`repro.sim.store`): the spec is the *what*, the runner
(:mod:`repro.sim.runner`) is the *how*, and the figure reducers in
:mod:`repro.sim.experiments` are pure functions over the cell results.

Specs round-trip through JSON (``repro run my_spec.json``) and their
digest is canonical-JSON based, so it is stable under dict ordering:
two specs with the same factors digest identically no matter how the
JSON was written.  The named builders at the bottom reproduce every
paper figure's grid declaratively; ``repro run fig12`` resolves through
:data:`NAMED_SPECS`.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.mechanisms import EruConfig
from repro.cpu.core import CoreConfig
from repro.dram.timing import FIG14_BUS_FREQUENCIES_HZ
from repro.sim import config as cfgs
from repro.sim.config import SystemConfig
from repro.sim.store import store_key
from repro.workloads.mixes import MIX_NAMES, MIXES


@dataclass(frozen=True)
class ExperimentSettings:
    """Scale knobs shared by all experiment runners."""

    accesses_per_core: int = 2500
    fragmentation: float = 0.1
    seed: int = 0
    mixes: Tuple[str, ...] = MIX_NAMES

    def quick(self) -> "ExperimentSettings":
        """A cut-down version for smoke tests."""
        return replace(self, accesses_per_core=600,
                       mixes=self.mixes[:2])


#: Preset factories a :class:`ConfigSpec` may name.  Mechanism-taking
#: factories receive the spec's :class:`MechanismSpec` as an
#: :class:`EruConfig` first positional argument.
PRESETS: Dict[str, Callable[..., SystemConfig]] = {
    "ddr4_baseline": cfgs.ddr4_baseline,
    "bg32": cfgs.bg32,
    "ideal32": cfgs.ideal32,
    "vsb": cfgs.vsb,
    "paired_bank": cfgs.paired_bank,
    "masa": cfgs.masa,
    "half_dram": cfgs.half_dram,
    "masa_eruca": cfgs.masa_eruca,
    "pcm_palp": cfgs.pcm_palp,
    "gddr5": cfgs.gddr5,
}


@dataclass(frozen=True)
class MechanismSpec:
    """JSON-able mirror of :class:`~repro.core.mechanisms.EruConfig`."""

    planes: int = 4
    ewlr: bool = True
    rap: bool = True
    ddb: bool = True
    ewlr_bits: int = 3
    row_bits: int = 16

    @classmethod
    def from_eru(cls, eru: EruConfig) -> "MechanismSpec":
        return cls(planes=eru.planes, ewlr=eru.ewlr, rap=eru.rap,
                   ddb=eru.ddb, ewlr_bits=eru.ewlr_bits,
                   row_bits=eru.row_bits)

    def to_eru(self) -> EruConfig:
        return EruConfig(planes=self.planes, ewlr=self.ewlr,
                         rap=self.rap, ddb=self.ddb,
                         ewlr_bits=self.ewlr_bits,
                         row_bits=self.row_bits)

    def to_dict(self) -> dict:
        return {f.name: getattr(self, f.name)
                for f in dataclasses.fields(self)}


@dataclass(frozen=True)
class ConfigSpec:
    """One configuration factor: preset + mechanism + overrides.

    Materializes (:meth:`to_config`) into exactly the
    :class:`SystemConfig` the historical ``figN_configs()`` helpers
    built, so spec-driven grids land on the same digests.  ``inline``
    is an escape hatch for callers that already hold a
    :class:`SystemConfig` (e.g. ``fig12(context, configs=[...])``) --
    inline specs still expand and digest, but cannot serialize to JSON.
    """

    preset: str = "ddr4_baseline"
    mechanism: Optional[MechanismSpec] = None
    #: Extra positional arguments after the mechanism (JSON scalars
    #: only), e.g. ``("masa", args=(4,))`` for ``masa(4)``.
    args: Tuple = ()
    #: Keyword arguments as (name, value) pairs, e.g.
    #: ``(("ddb", False),)`` for ``masa_eruca(8, ddb=False)``.
    kwargs: Tuple[Tuple[str, object], ...] = ()
    #: Re-derive the config at this bus frequency
    #: (:meth:`SystemConfig.at_frequency`).
    frequency_hz: Optional[float] = None
    refresh_density: Optional[str] = None
    refresh_policy: Optional[str] = None
    #: Final display name override (applied last).
    rename: Optional[str] = None
    #: CPU-clock scale factor for this configuration's cells (Fig. 14
    #: scales the cores along with the channel).
    core_scale: float = 1.0
    inline: Optional[SystemConfig] = None

    def to_config(self) -> SystemConfig:
        """Materialize the described :class:`SystemConfig`."""
        if self.inline is not None:
            config = self.inline
        else:
            factory = PRESETS.get(self.preset)
            if factory is None:
                raise ValueError(f"unknown preset {self.preset!r}; "
                                 f"one of {sorted(PRESETS)}")
            pos: List[object] = []
            if self.mechanism is not None:
                pos.append(self.mechanism.to_eru())
            pos.extend(self.args)
            config = factory(*pos, **dict(self.kwargs))
        if self.frequency_hz is not None:
            config = config.at_frequency(self.frequency_hz)
        overrides: Dict[str, object] = {}
        if self.refresh_density is not None:
            overrides["refresh_density"] = self.refresh_density
        if self.refresh_policy is not None:
            overrides["refresh_policy"] = self.refresh_policy
        if self.rename is not None:
            overrides["name"] = self.rename
        if overrides:
            config = replace(config, **overrides)
        return config

    def payload(self) -> dict:
        """Digest payload (inline configs contribute their digest)."""
        out = {
            "preset": self.preset,
            "mechanism": (self.mechanism.to_dict()
                          if self.mechanism else None),
            "args": list(self.args),
            "kwargs": [[k, v] for k, v in self.kwargs],
            "frequency_hz": self.frequency_hz,
            "refresh_density": self.refresh_density,
            "refresh_policy": self.refresh_policy,
            "rename": self.rename,
            "core_scale": self.core_scale,
        }
        if self.inline is not None:
            out["inline"] = self.inline.digest()
        return out

    def to_dict(self) -> dict:
        if self.inline is not None:
            raise ValueError(
                "inline ConfigSpecs cannot serialize to JSON; name a "
                "preset instead")
        return self.payload()

    @classmethod
    def from_dict(cls, data: dict) -> "ConfigSpec":
        mech = data.get("mechanism")
        return cls(
            preset=data.get("preset", "ddr4_baseline"),
            mechanism=MechanismSpec(**mech) if mech else None,
            args=tuple(data.get("args") or ()),
            kwargs=tuple((k, v) for k, v in (data.get("kwargs") or ())),
            frequency_hz=data.get("frequency_hz"),
            refresh_density=data.get("refresh_density"),
            refresh_policy=data.get("refresh_policy"),
            rename=data.get("rename"),
            core_scale=data.get("core_scale", 1.0),
        )


@dataclass(frozen=True)
class CellKey:
    """One grid cell: a materialized config on one workload.

    ``kind`` is ``"mix"`` (a multi-programmed run of the named mix) or
    ``"alone"`` (a single-benchmark run on the alone baseline -- the
    weighted-speedup denominator).  The key is hashable, and
    :meth:`store_key` is its content address in the result store.
    """

    kind: str
    config: SystemConfig
    workload: str
    accesses: int
    fragmentation: float
    seed: int
    core_config: CoreConfig

    def store_key(self) -> str:
        return store_key(
            self.config, accesses=self.accesses,
            fragmentation=self.fragmentation, seed=self.seed,
            mix=self.workload if self.kind == "mix" else None,
            benchmark=self.workload if self.kind == "alone" else None,
            core_config=self.core_config)

    def describe(self) -> dict:
        """Human-readable summary for ``repro cells`` and store
        ``key`` sidecars."""
        return {
            "kind": self.kind,
            "config": self.config.name,
            "config_digest": self.config.digest(),
            "workload": self.workload,
            "accesses": self.accesses,
            "fragmentation": self.fragmentation,
            "seed": self.seed,
            "clock_hz": self.core_config.clock_hz,
        }


@dataclass(frozen=True)
class ExperimentSpec:
    """A full experiment grid: configs x mixes x frags x seeds x reps."""

    name: str
    configs: Tuple[ConfigSpec, ...]
    mixes: Tuple[str, ...]
    accesses_per_core: int = 2500
    fragmentations: Tuple[float, ...] = (0.1,)
    seeds: Tuple[int, ...] = (0,)
    #: Replications: rep ``r`` of seed ``s`` runs at seed ``s + r``.
    reps: int = 1
    #: Also expand the member benchmarks' alone runs (the
    #: weighted-speedup denominators) on the ``alone`` baseline.
    include_alone: bool = True
    #: Attach cycle accounting to every mix cell.
    observe: bool = False
    alone: ConfigSpec = ConfigSpec("ddr4_baseline")

    # -- factor helpers ------------------------------------------------

    def expanded_seeds(self) -> Tuple[int, ...]:
        """Seeds after replication, deduplicated in first-seen order."""
        seen: List[int] = []
        for seed in self.seeds:
            for rep in range(max(1, self.reps)):
                if seed + rep not in seen:
                    seen.append(seed + rep)
        return tuple(seen)

    def settings(self) -> ExperimentSettings:
        """The equivalent single-(frag, seed) settings (first levels)."""
        return ExperimentSettings(
            accesses_per_core=self.accesses_per_core,
            fragmentation=self.fragmentations[0],
            seed=self.expanded_seeds()[0], mixes=self.mixes)

    # -- expansion -----------------------------------------------------

    def expand(self, core_config: CoreConfig = CoreConfig()
               ) -> List[CellKey]:
        """The grid as a deterministic cell list.

        Iteration order is seed-major, then fragmentation, then config,
        then mix, with each mix's not-yet-seen alone cells emitted just
        before it -- the order the historical runners evaluated in.
        The list is duplicate-free: repeated (config, mix) factor
        combinations collapse onto one cell.
        """
        alone_config = self.alone.to_config()
        cells: List[CellKey] = []
        seen = set()

        def emit(cell: CellKey) -> None:
            if cell not in seen:
                seen.add(cell)
                cells.append(cell)

        for seed in self.expanded_seeds():
            for frag in self.fragmentations:
                for cs in self.configs:
                    config = cs.to_config()
                    core = (core_config if cs.core_scale == 1.0
                            else core_config.scaled(cs.core_scale))
                    for mix in self.mixes:
                        if self.include_alone:
                            for benchmark in MIXES[mix][0]:
                                emit(CellKey(
                                    kind="alone", config=alone_config,
                                    workload=benchmark,
                                    accesses=self.accesses_per_core,
                                    fragmentation=frag, seed=seed,
                                    core_config=core))
                        emit(CellKey(
                            kind="mix", config=config, workload=mix,
                            accesses=self.accesses_per_core,
                            fragmentation=frag, seed=seed,
                            core_config=core))
        return cells

    # -- digest + JSON round-trip --------------------------------------

    def payload(self) -> dict:
        return {
            "name": self.name,
            "configs": [cs.payload() for cs in self.configs],
            "mixes": list(self.mixes),
            "accesses_per_core": self.accesses_per_core,
            "fragmentations": list(self.fragmentations),
            "seeds": list(self.seeds),
            "reps": self.reps,
            "include_alone": self.include_alone,
            "observe": self.observe,
            "alone": self.alone.payload(),
        }

    def digest(self) -> str:
        """Canonical-JSON SHA-256: stable across dict/key ordering."""
        canon = json.dumps(self.payload(), sort_keys=True,
                           separators=(",", ":"))
        return hashlib.sha256(canon.encode()).hexdigest()

    def to_dict(self) -> dict:
        out = self.payload()
        out["configs"] = [cs.to_dict() for cs in self.configs]
        out["alone"] = self.alone.to_dict()
        return out

    def to_json(self, **kwargs) -> str:
        kwargs.setdefault("indent", 2)
        kwargs.setdefault("sort_keys", True)
        return json.dumps(self.to_dict(), **kwargs)

    @classmethod
    def from_dict(cls, data: dict) -> "ExperimentSpec":
        alone = data.get("alone")
        return cls(
            name=data.get("name", "spec"),
            configs=tuple(ConfigSpec.from_dict(c)
                          for c in data["configs"]),
            mixes=tuple(data["mixes"]),
            accesses_per_core=data.get("accesses_per_core", 2500),
            fragmentations=tuple(data.get("fragmentations") or (0.1,)),
            seeds=tuple(data.get("seeds") or (0,)),
            reps=data.get("reps", 1),
            include_alone=data.get("include_alone", True),
            observe=data.get("observe", False),
            alone=(ConfigSpec.from_dict(alone) if alone
                   else ConfigSpec("ddr4_baseline")),
        )

    @classmethod
    def from_json(cls, text: str) -> "ExperimentSpec":
        return cls.from_dict(json.loads(text))


def load_spec(path: str) -> ExperimentSpec:
    """Read an :class:`ExperimentSpec` from a JSON file."""
    with open(path) as fh:
        return ExperimentSpec.from_json(fh.read())


# -- named figure specs ------------------------------------------------------


def _mech(eru: EruConfig) -> MechanismSpec:
    return MechanismSpec.from_eru(eru)


def _vsb(eru: EruConfig) -> ConfigSpec:
    return ConfigSpec("vsb", mechanism=_mech(eru))


def _base_fields(settings: ExperimentSettings, observe: bool) -> dict:
    return dict(mixes=settings.mixes,
                accesses_per_core=settings.accesses_per_core,
                fragmentations=(settings.fragmentation,),
                seeds=(settings.seed,), observe=observe)


#: Fig. 13 scheme axis: label -> mechanism factory over plane count.
FIG13_SCHEMES: Tuple[Tuple[str, Callable[[int], EruConfig]], ...] = (
    ("VSB(naive)+DDB", EruConfig.naive_ddb),
    ("VSB(EWLR)+DDB", EruConfig.ewlr_only),
    ("VSB(RAP)+DDB", EruConfig.rap_only),
    ("VSB(EWLR+RAP)+DDB", EruConfig.full),
)
FIG13_PLANES = (2, 4, 8, 16)

#: DDR4 density grades the refresh sweep walks (tRFC grows with
#: density, so the refresh tax rises left to right).
REFRESH_SWEEP_DENSITIES: Tuple[str, ...] = ("4Gb", "8Gb", "16Gb")


#: Fig. 12 comparison set (plus the paired-bank variants), baseline
#: first (it is also the normalisation denominator).
FIG12_CONFIG_SPECS: Tuple[ConfigSpec, ...] = (
    ConfigSpec("ddr4_baseline"),
    _vsb(EruConfig.naive(4)),
    _vsb(EruConfig.naive_ddb(4)),
    _vsb(EruConfig.full(4)),
    ConfigSpec("bg32"),
    ConfigSpec("ideal32"),
    ConfigSpec("paired_bank",
               mechanism=_mech(EruConfig.full(4, ddb=False))),
    ConfigSpec("paired_bank",
               mechanism=_mech(EruConfig.full(4, ddb=True))),
)

#: Fig. 14 platforms (without the baseline), before frequency scaling.
FIG14_CONFIG_SPECS: Tuple[ConfigSpec, ...] = (
    _vsb(EruConfig.full(4, ddb=False)),   # VSB(EWLR+RAP)+BG
    _vsb(EruConfig.full(4, ddb=True)),    # VSB(EWLR+RAP)+DDB
    ConfigSpec("bg32"),
    ConfigSpec("ideal32"),
)

#: Fig. 15 prior-work comparison set (without the baseline).
FIG15_CONFIG_SPECS: Tuple[ConfigSpec, ...] = (
    ConfigSpec("half_dram"),
    _vsb(EruConfig.full(4, ddb=False)),
    _vsb(EruConfig.full(4, ddb=True)),
    ConfigSpec("masa", args=(4,)),
    ConfigSpec("masa", args=(8,)),
    ConfigSpec("masa_eruca", args=(8,), kwargs=(("ddb", False),)),
    ConfigSpec("masa_eruca", args=(8,), kwargs=(("ddb", True),)),
    ConfigSpec("ideal32"),
)

#: Fig. 16 latency/energy rows.
FIG16_CONFIG_SPECS: Tuple[ConfigSpec, ...] = (
    ConfigSpec("ddr4_baseline"),
    _vsb(EruConfig.full(4, ddb=True)),
    ConfigSpec("ideal32"),
)


def fig12_spec(settings: ExperimentSettings,
               observe: bool = False) -> ExperimentSpec:
    """The Fig. 12 comparison set (plus the paired-bank variants)."""
    return ExperimentSpec(name="fig12", configs=FIG12_CONFIG_SPECS,
                          **_base_fields(settings, observe))


def fig13_spec(settings: ExperimentSettings,
               fragmentations: Sequence[float] = (0.1, 0.5),
               planes: Sequence[int] = FIG13_PLANES,
               schemes=FIG13_SCHEMES,
               observe: bool = False) -> ExperimentSpec:
    """Plane-count sensitivity sweep: schemes x planes x frag."""
    fields = _base_fields(settings, observe)
    fields["fragmentations"] = tuple(fragmentations)
    return ExperimentSpec(
        name="fig13",
        configs=(ConfigSpec("ddr4_baseline"),)
        + tuple(_vsb(make(n)) for _, make in schemes for n in planes),
        **fields)


def fig14_spec(settings: ExperimentSettings,
               frequencies: Sequence[float] = FIG14_BUS_FREQUENCIES_HZ,
               observe: bool = False) -> ExperimentSpec:
    """Channel-frequency sweep; CPU clocks scale with the channel."""
    base_freq = frequencies[0]
    specs: List[ConfigSpec] = []
    for freq in frequencies:
        scale = freq / base_freq
        for cs in (ConfigSpec("ddr4_baseline"),) + FIG14_CONFIG_SPECS:
            specs.append(replace(cs, frequency_hz=freq,
                                 core_scale=scale))
    return ExperimentSpec(name="fig14", configs=tuple(specs),
                          **_base_fields(settings, observe))


def fig15_spec(settings: ExperimentSettings,
               observe: bool = False) -> ExperimentSpec:
    """Prior sub-banking work comparison set."""
    return ExperimentSpec(
        name="fig15",
        configs=(ConfigSpec("ddr4_baseline"),) + FIG15_CONFIG_SPECS,
        **_base_fields(settings, observe))


def fig16_spec(settings: ExperimentSettings,
               observe: bool = False) -> ExperimentSpec:
    """Latency/energy rows (no weighted speedup, so no alone cells)."""
    fields = _base_fields(settings, observe)
    return ExperimentSpec(name="fig16", configs=FIG16_CONFIG_SPECS,
                          include_alone=False, **fields)


def refresh_platform_spec() -> ConfigSpec:
    """The refresh sweep's platform: VSB(EWLR+RAP,4P)+DDB."""
    return _vsb(EruConfig.full(4))


def refresh_config_specs(
        densities: Sequence[str] = REFRESH_SWEEP_DENSITIES
        ) -> Tuple[ConfigSpec, ...]:
    """The sweep factors: the platform per (density, policy) pair."""
    from repro.controller.scheduler import REFRESH_POLICIES
    base = refresh_platform_spec()
    base_name = base.to_config().name
    return tuple(
        replace(base, refresh_density=density, refresh_policy=policy,
                rename=f"{base_name}+ref-{policy}-{density}")
        for density in densities
        for policy in REFRESH_POLICIES)


def figref_spec(settings: ExperimentSettings,
                densities: Sequence[str] = REFRESH_SWEEP_DENSITIES,
                observe: bool = False) -> ExperimentSpec:
    """Refresh policy x density sweep over the VSB platform."""
    return ExperimentSpec(
        name="figref",
        configs=(refresh_platform_spec(),)
        + refresh_config_specs(densities),
        **_base_fields(settings, observe))


#: ``repro run <name>`` / ``repro cells <name>`` resolve through this:
#: each builder takes (settings, observe=...) and returns the figure's
#: full grid spec.
NAMED_SPECS: Dict[str, Callable[..., ExperimentSpec]] = {
    "fig12": fig12_spec,
    "fig13": fig13_spec,
    "fig14": fig14_spec,
    "fig15": fig15_spec,
    "fig16": fig16_spec,
    "figref": figref_spec,
}


def resolve_spec(name_or_path: str,
                 settings: Optional[ExperimentSettings] = None,
                 observe: bool = False) -> ExperimentSpec:
    """A spec from a registry name or a JSON file path."""
    builder = NAMED_SPECS.get(name_or_path)
    if builder is not None:
        return builder(settings or ExperimentSettings(), observe=observe)
    return load_spec(name_or_path)
