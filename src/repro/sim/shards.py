"""Per-channel event shards with horizon-bounded run-ahead.

The classic loop in :mod:`repro.sim.simulator` interleaves *all*
channels' commands in one global time order, re-scanning every channel's
peek per command even though the timing model makes channels fully
independent: a command on channel ``c`` reads and writes only ``c``'s
banks, buses and queues.  Channels couple exclusively through the cores
-- a core hands its next access to whichever channel its address maps
to, and a read completion on one channel may unblock a core whose next
access routes to another.

This module exploits that structure.  Each :class:`ChannelShard` owns
one controller plus everything channel-local the classic loop kept
globally: the peek cache, the wake-on-room parked list, a local arrival
heap of the cores currently bound to it, and a local clock.  A shard
retires commands *autonomously* up to its **interaction horizon** -- the
earliest simulated time at which anything outside the shard could still
hand it work -- and the main loop degenerates to a cheap barrier that
computes horizons and forwards cross-channel arrivals between rounds.

Correctness argument (property-tested in ``tests/sim/test_shards.py``,
digest-proven against the classic loop on every preset and under the
differential fuzzer):

1. **Local clocks are exact.**  The classic loop peeks a channel with
   the *global* ``now``, but it processes events in global time order,
   so ``now`` never exceeds any pending candidate's effective issue
   time (the candidate would have been committed first).  Every
   candidate time is of the form ``max(u, now)`` with ``u`` built from
   channel-local state, hence ``max(u, now_global) == max(u,
   now_local)`` whenever ``now_local`` is the channel's own last event
   time: peeking with the shard-local clock yields bit-identical
   candidates.  The same argument covers admission stamps
   (``max(now, ready)``): a fresh arrival always has ``ready >= now``,
   and a parked core's wake stamp is the *retiring command's* time --
   an event on the parking channel itself.

2. **Horizons are conservative, via per-core routing lookahead.**
   Since channels couple only through cores, shard ``c``'s horizon is
   the minimum over cores of a lower bound on that core's next
   *external* arrival at ``c``.  Within one round a shard processes no
   events outside its own heap, parked list and queues (exports are
   delivered only at the barrier), so every command channel ``d``
   commits during the round issues at or after ``d``'s earliest
   pending event ``S_d`` -- the per-round invariant both bounds below
   lean on.  The trace fixes every future address
   -- and therefore each core's whole future channel sequence -- so
   only timing is dynamic, and two invariants bound it from below.
   First, consecutive accesses are at least one issue slot apart:
   ``ready[i+1] >= pop[i] + max(1, floor((1 + gap[i+1]) * instr_ps))``
   (the access instruction itself occupies a slot; queueing and
   blocking only delay further), prefix-summed per core into ``P`` so
   that the arrival at trace index ``m`` is at least the current ready
   time plus ``P[m+1] - P[cur+1]`` *whatever shards serve the indices
   in between*.  Second, a blocked core resumes no earlier than the
   read burst that unblocks it: its pinning read is already queued on
   a known channel ``d``, the round's commands on ``d`` issue at or
   after ``S_d``, and a read's data lands ``tCL + burst`` after its
   CAS -- so the unblock time is at least ``min(S_d + tCL_d +
   burst_d)`` over channels holding one of the core's outstanding
   reads.  A core *parked* on a full queue gets the same lift: its
   first access cannot pop before the column commit that wakes it, so
   its base rises from its ready time to at least its home channel's
   ``S_d``.  The contribution of core ``k`` to channel ``c`` is then
   that base plus the ``P``-distance to ``k``'s first index routed to
   ``c`` -- where for a core currently *bound to* ``c`` the first
   external return is the first ``c``-index after its next channel
   switch (everything before it is handled in-shard, in ready order).
   One exception pierces that in-shard assumption: a bound core can
   *block mid-round* behind a read a foreign channel still holds, and
   its unblock is then delivered by that foreign shard -- an external
   arrival back at the home channel before any channel switch.  So a
   ready core with outstanding reads on foreign channels also clamps
   its home channel's horizon to ``min(S_d + tCL_d + burst_d)`` over
   those channels (never below ``ready + 1``): the unblocking data
   burst cannot land earlier.  The clamp is *skipped* when no block
   is possible before the core's next channel switch: every access
   in the pre-switch window routes home, so unless the oldest
   in-flight read can pin the ROB at the window's last entry (or a
   ``depends`` entry pins on a pre-window read -- conservatively
   treated as blockable), any block in the window resolves in-shard
   (:meth:`ShardedSimulator._can_block_before_switch`).
   ``H_c`` is the minimum over cores; the shard processes local
   arrivals and commands with time *strictly below* ``H_c``, which
   keeps same-instant tie-breaks (arrival-before-command, core-id
   order) out of reach.  Progress is guaranteed: every contribution
   to the shard owning the globally earliest event ``m`` exceeds
   ``m`` by at least one step -- a heap-resident core's ready time is
   itself a pending event (so at least ``m``, and external distances
   are positive), while parked and blocked cores are lifted to at
   least some channel's ``S_d >= m`` -- so that shard always runs.

3. **Completions never stale a tracked core.**  A core that is ready
   (heap or parked) computed its ready time without the still-pending
   reads (otherwise it would have been ``BLOCKED``), so a completion
   delivered mid-round cannot change it; only ``BLOCKED`` cores gain a
   new arrival from a completion.  Shard-local heap entries are
   therefore always fresh -- the classic loop's lazy stale-drop becomes
   a defensive assertion here.

Backends: ``serial`` runs the shards one after another inside a single
thread -- the win is purely algorithmic (no per-command global peek
scan, smaller per-shard heaps, long uninterrupted command runs) --
while ``threads`` executes each round's shards on a thread pool.  The
threads backend is digest-identical (shards touch disjoint channel
state; the rare shared object, a core receiving a completion from a
foreign channel, is guarded by a per-core lock) but only yields
wall-clock speedups on free-threaded builds; under the GIL it is a
correctness demonstrator for the horizon protocol.
"""

from __future__ import annotations

import heapq
import os
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import List, Optional, Tuple

from repro.controller.controller import ChannelController
from repro.controller.transaction import Transaction, TransactionKind
from repro.cpu.core import BLOCKED, TraceCore
from repro.sim.simulator import (
    CommandBudgetExceeded,
    DeadlockError,
    MemorySystem,
    SimulationResult,
    collect_result,
)

#: Recognised execution backends for one simulation: ``off`` keeps the
#: classic global event loop, ``serial`` runs the shards one after
#: another in-thread, ``threads`` runs each round's shards on a pool.
SHARD_MODES = ("off", "serial", "threads")

#: Default backend when :attr:`SystemConfig.shards` is ``None``;
#: overridable via the ``REPRO_SHARDS`` environment variable (the CLI
#: ``--shards`` flag sets it per invocation).
SHARDS_DEFAULT = os.environ.get("REPRO_SHARDS", "serial")


def resolve_shard_mode(mode: Optional[str]) -> str:
    """Validate ``mode``, falling back to :data:`SHARDS_DEFAULT`."""
    if mode is None:
        mode = SHARDS_DEFAULT
    if mode not in SHARD_MODES:
        raise ValueError(f"unknown shard mode {mode!r}; "
                         f"expected one of {SHARD_MODES}")
    return mode


class _NullLock:
    """No-op lock for the serial backend (no cross-thread sharing)."""

    __slots__ = ()

    def acquire(self) -> None:
        pass

    def release(self) -> None:
        pass


_NULL_LOCK = _NullLock()


class ChannelShard:
    """One channel's slice of the simulation: controller + core traffic.

    Owns the channel-local state the classic loop kept in global
    structures -- the cached scheduler proposal, the wake-on-room
    parked list, the arrival heap of cores whose next access routes
    here -- plus a local clock (the channel's last event time, exact by
    argument 1 in the module docstring).
    """

    __slots__ = ("index", "sim", "controller", "now", "heap", "parked",
                 "parked_ids", "peek_cache", "dirty", "exports",
                 "debug", "round_max_issue", "parks")

    def __init__(self, index: int, controller: ChannelController,
                 sim: "ShardedSimulator") -> None:
        self.index = index
        self.sim = sim
        self.controller = controller
        #: Local clock: the channel's last event (arrival or commit).
        self.now = 0
        #: Min-heap of (ready time, core id) arrivals bound for this
        #: channel.  Entries are always fresh (module docstring, 3).
        self.heap: List[Tuple[int, int]] = []
        #: Wake-on-room wait list, (ready, core id), original keys.
        self.parked: List[Tuple[int, int]] = []
        self.parked_ids: set = set()
        self.peek_cache = None
        self.dirty = True
        #: Cross-channel arrivals produced this round:
        #: (ready, core id, target shard index).
        self.exports: List[Tuple[int, int, int]] = []
        self.debug = False
        #: Largest issue time committed this round (debug hooks only).
        self.round_max_issue = -1
        #: Wake-on-room parkings taken (perf counter, not in digests).
        self.parks = 0
        # Wake-on-room: the controller tells us the instant a column
        # command retires a transaction (the only event freeing queue
        # room), replacing the classic loop's check on commit's return.
        controller.on_retire = self._on_retire

    # -- internals ---------------------------------------------------------

    def _on_retire(self, txn: Transaction) -> None:
        """A retired transaction freed queue room: wake parked cores.

        Entries re-enter the local heap under their original
        (ready, core id) keys; admission then stamps them with
        ``max(now, ready)`` where ``now`` is this very commit's time --
        exactly the classic loop's wake protocol.
        """
        if self.parked:
            heap = self.heap
            for item in self.parked:
                heapq.heappush(heap, item)
                self.parked_ids.discard(item[1])
            self.parked.clear()

    def refresh_peek(self):
        """The channel's pending proposal, recomputed only when dirty."""
        if self.dirty:
            self.peek_cache = self.controller.peek(self.now)
            self.dirty = False
        return self.peek_cache

    def _track(self, ready: int, cid: int) -> None:
        """Register a core's next arrival: local heap or export.

        Called with the core's lock held (threads backend).  Routing
        uses :meth:`TraceCore.next_request_address` -- the address is
        known even before the core is ready to issue.
        """
        sim = self.sim
        address = sim.cores[cid].next_request_address()
        target = sim.system.controller_for(address)[2]
        sim.tracked[cid] = True
        if target == self.index:
            heapq.heappush(self.heap, (ready, cid))
        else:
            self.exports.append((ready, cid, target))

    def _commit(self, candidate) -> None:
        """Issue ``candidate``; deliver completions; track unblocks."""
        completed = self.controller.commit(candidate)
        t = candidate.issue_time
        if t > self.now:
            self.now = t
        if self.debug and t > self.round_max_issue:
            self.round_max_issue = t
        self.dirty = True
        if completed:
            sim = self.sim
            cores, locks, tracked = sim.cores, sim.locks, sim.tracked
            for txn in completed:
                if txn.is_read and txn.core >= 0:
                    cid = txn.core
                    lock = locks[cid]
                    lock.acquire()
                    try:
                        core = cores[cid]
                        core.complete_read(txn.instruction,
                                           txn.completion_time)
                        sim.inflight[cid][self.index] -= 1
                        # Only a BLOCKED core gains an arrival from a
                        # completion (a tracked core's ready time is
                        # provably unchanged -- module docstring, 3).
                        if not tracked[cid]:
                            ready = core.next_request_time()
                            if ready < BLOCKED:
                                self._track(ready, cid)
                    finally:
                        lock.release()

    def run(self, horizon: int, budget: int) -> int:
        """Process local events below ``horizon``; returns commands.

        Replays the classic loop's per-iteration protocol verbatim, but
        over channel-local structures only: admit every local arrival
        whose ready time is at or before the pending command (and below
        the horizon), re-peek after each admission, then commit the
        pending command if it, too, is below the horizon.  At most
        ``budget`` commands are committed (the caller's global
        ``max_commands`` budget, split across shards).
        """
        committed = 0
        heap = self.heap
        controller = self.controller
        sim = self.sim
        cores, locks, tracked = sim.cores, sim.locks, sim.tracked
        system = sim.system
        heappop, heappush = heapq.heappop, heapq.heappush
        while True:
            if self.dirty:
                self.peek_cache = controller.peek(self.now)
                self.dirty = False
            cand = self.peek_cache
            cmd_time = cand.issue_time if cand is not None else BLOCKED
            enqueued = False
            while heap:
                ready, cid = heap[0]
                if ready >= horizon or ready > cmd_time:
                    break
                heappop(heap)
                core = cores[cid]
                lock = locks[cid]
                lock.acquire()
                try:
                    actual = core.next_request_time()
                    if actual != ready:
                        # Defensive only: shard-local entries cannot go
                        # stale (module docstring, 3).  Re-route so an
                        # unforeseen divergence degrades loudly in the
                        # digest tests instead of crashing here.
                        if actual < BLOCKED:
                            self._track(actual, cid)
                        else:
                            tracked[cid] = False
                        continue
                    entry = core.peek_entry()
                    coords = system.controller_for(entry.address)[1]
                    if not controller.has_room(not entry.is_write):
                        # Park under our wait list; _on_retire re-arms.
                        if cid not in self.parked_ids:
                            self.parked_ids.add(cid)
                            self.parked.append((ready, cid))
                            self.parks += 1
                        else:  # pragma: no cover - defensive
                            tracked[cid] = False
                        continue
                    t = self.now if self.now > ready else ready
                    core.pop_request(t)
                    txn = Transaction(
                        kind=(TransactionKind.WRITE if entry.is_write
                              else TransactionKind.READ),
                        address=entry.address,
                        coords=coords,
                        core=cid,
                        instruction=core.instruction_index_of_last_request(),
                    )
                    controller.enqueue(txn, t)
                    if not entry.is_write:
                        sim.inflight[cid][self.index] += 1
                    self.now = t
                    self.dirty = True
                    nxt = core.next_request_time()
                    if nxt < BLOCKED:
                        self._track(nxt, cid)
                    else:
                        tracked[cid] = False
                finally:
                    lock.release()
                enqueued = True
                break
            if enqueued:
                continue
            if cand is None or cmd_time >= horizon or committed >= budget:
                return committed
            self._commit(cand)
            committed += 1


class ShardedSimulator:
    """Channel-sharded runner: digest-identical to the classic loop.

    ``backend`` is ``"serial"`` (shards advance one after another in
    this thread) or ``"threads"`` (each round's runnable shards execute
    on a pool, one worker per channel, with the barrier at horizon
    points).  ``debug_trace``, when a list, receives one record per
    round -- ``{"s", "horizons", "max_issue", "exports"}`` -- consumed
    by the horizon property tests; leave ``None`` in production.
    """

    def __init__(self, system: MemorySystem, cores: List[TraceCore],
                 backend: str = "serial",
                 debug_trace: Optional[list] = None) -> None:
        if backend not in ("serial", "threads"):
            raise ValueError(f"unknown shard backend {backend!r}")
        self.system = system
        self.cores = cores
        self.backend = backend
        #: Whether each core currently has an arrival entry somewhere
        #: (a shard heap, a parked list, or an export buffer).  Guards
        #: completion handling against double-tracking.
        self.tracked: List[bool] = [False] * len(cores)
        #: Per-core locks (threads backend): a foreign channel's
        #: completion may touch a core concurrently with its owner
        #: shard's admission.  The serial backend pays two no-op calls.
        if backend == "threads":
            self.locks: List = [threading.Lock() for _ in cores]
        else:
            self.locks = [_NULL_LOCK] * len(cores)
        self.shards = [ChannelShard(i, c, self)
                       for i, c in enumerate(system.controllers)]
        self.debug_trace = debug_trace
        if debug_trace is not None:
            for shard in self.shards:
                shard.debug = True
        #: Barrier rounds executed (perf counter, not digest-visible).
        self.rounds = 0
        #: Outstanding (enqueued, not yet completed) reads per core per
        #: channel: the unblock bound in :meth:`_horizons` needs to
        #: know which channels could be pinning a blocked core's ROB.
        n = len(system.controllers)
        self.inflight: List[List[int]] = [[0] * n for _ in cores]
        #: Minimum CAS-to-data latency per channel: a read's data burst
        #: ends ``tCL + burst`` after its column command.
        self._min_read_latency = [
            c.channel.timing.tCL + c.channel.timing.burst_time
            for c in system.controllers]
        # Per-core routing lookahead tables (module docstring, 2).  The
        # trace fixes every future address, so each core's channel
        # sequence and minimum inter-access spacing are known up front.
        # Everything a round needs collapses into two flat tables per
        # (core, channel), indexed by the core's current trace index:
        #   _ext[k][c][i]  minimum ready-time distance from index i to
        #                  core k's first *external* arrival at channel
        #                  c -- for the core's own channel that is its
        #                  first return after the next channel switch
        #                  (everything before it is handled in-shard);
        #   _blk[k][c][i]  the same distance counting index i itself
        #                  (a blocked core's very next access is
        #                  already external everywhere).
        # BLOCKED marks "never arrives at c again".
        self._len: List[int] = []
        self._chan: List[List[int]] = []
        self._ext: List[List[List[int]]] = []
        self._blk: List[List[List[int]]] = []
        # Mid-round-block necessity tables (see _can_block_before_switch):
        #   _switch[k][i]   first index > i routed to a different channel;
        #   _iidx[k][i]     instruction index assigned to entry i;
        #   _next_dep[k][i] first index >= i with a ``depends`` entry.
        self._switch: List[List[int]] = []
        self._iidx: List[List[int]] = []
        self._next_dep: List[List[int]] = []
        self._rob: List[int] = [core.config.rob_size for core in cores]
        for core in cores:
            entries = core.trace.entries
            length = len(entries)
            chan = [system.controller_for(e.address)[2] for e in entries]
            instr = core.config.instruction_time_ps
            prefix = [0] * (length + 1)
            for i, e in enumerate(entries):
                step = int((1 + e.gap) * instr)
                prefix[i + 1] = prefix[i] + (step if step > 1 else 1)
            # diff[i]: first index > i routed differently than index i.
            diff = [length] * length
            for i in range(length - 2, -1, -1):
                diff[i] = i + 1 if chan[i + 1] != chan[i] else diff[i + 1]
            ext = []
            blk = []
            for c in range(n):
                # next_at[i]: first index >= i routed to channel c.
                next_at = [length] * (length + 1)
                for i in range(length - 1, -1, -1):
                    next_at[i] = i if chan[i] == c else next_at[i + 1]
                blk_c = [BLOCKED] * length
                ext_c = [BLOCKED] * length
                for i in range(length):
                    m = next_at[i]
                    if m < length:
                        blk_c[i] = prefix[m + 1] - prefix[i + 1]
                    m = next_at[diff[i]] if chan[i] == c else m
                    if m < length:
                        ext_c[i] = prefix[m + 1] - prefix[i + 1]
                blk.append(blk_c)
                ext.append(ext_c)
            self._len.append(length)
            self._chan.append(chan)
            self._ext.append(ext)
            self._blk.append(blk)
            self._switch.append(diff)
            iidx = [0] * length
            acc = 0
            for i, e in enumerate(entries):
                acc += e.gap + 1
                iidx[i] = acc
            self._iidx.append(iidx)
            next_dep = [length] * (length + 1)
            for i in range(length - 1, -1, -1):
                next_dep[i] = i if entries[i].depends else next_dep[i + 1]
            self._next_dep.append(next_dep)

    def _horizons(self, s: List[int]) -> List[int]:
        """Per-shard interaction horizons for one round.

        ``s`` holds each shard's earliest pending event time.  For
        every live core, lower-bound its next *external* arrival at
        each channel (module docstring, 2) and take the per-channel
        minimum.  A shard may process local events strictly below its
        horizon.
        """
        n = len(self.shards)
        horizons = [BLOCKED] * n
        latency = self._min_read_latency
        shards = self.shards
        lengths, chans = self._len, self._chan
        exts, blks, inflights = self._ext, self._blk, self.inflight
        for k, core in enumerate(self.cores):
            cur = core.trace_index
            if cur >= lengths[k]:
                continue
            ready = core.next_request_time()
            if ready < BLOCKED:
                base = ready
                home_idx = chans[k][cur]
                home = shards[home_idx]
                if home.parked_ids and k in home.parked_ids:
                    # Parked on a full queue: the core's first access
                    # cannot pop before the column commit that wakes it,
                    # and every command its home channel issues this
                    # round is at or after that channel's earliest
                    # pending event.
                    if s[home_idx] > base:
                        base = s[home_idx]
                # A ready core can *block mid-round*: after its home
                # shard admits an access, the ROB may fill behind a
                # read a foreign channel still holds.  The unblock is
                # then delivered by that foreign shard -- an external
                # arrival back at the home channel that the ext table
                # (which only looks past the next channel switch)
                # does not see.  It cannot land before the foreign
                # read's data burst, i.e. before that channel's
                # earliest pending event plus its CAS-to-data
                # latency; nor before the core's next access could
                # exist at all (one issue step past ``ready``).  The
                # clamp is skipped when no block is possible before
                # the next channel switch (_can_block_before_switch).
                unblock = BLOCKED
                for d, count in enumerate(inflights[k]):
                    if count > 0 and d != home_idx:
                        v = s[d] + latency[d]
                        if v < unblock:
                            unblock = v
                if unblock < BLOCKED and \
                        self._can_block_before_switch(k, core, cur):
                    if unblock <= ready:
                        unblock = ready + 1
                    if unblock < horizons[home_idx]:
                        horizons[home_idx] = unblock
                tables = exts[k]
            else:
                # Blocked: the core resumes no earlier than the data
                # burst of a read it still has outstanding, and its
                # very next access is external everywhere.
                base = BLOCKED
                for d, count in enumerate(inflights[k]):
                    if count > 0:
                        v = s[d] + latency[d]
                        if v < base:
                            base = v
                if base >= BLOCKED:  # pragma: no cover - defensive
                    base = min(s)
                tables = blks[k]
            for c in range(n):
                distance = tables[c][cur]
                if distance < BLOCKED:
                    contribution = base + distance
                    if contribution < horizons[c]:
                        horizons[c] = contribution
        return horizons

    def _can_block_before_switch(self, k: int, core: TraceCore,
                                 cur: int) -> bool:
        """Can core ``k`` block mid-round before its next channel switch?

        Every entry in ``[cur, switch)`` routes to the home channel, so
        a block in that window is the only way a *foreign* completion
        can unblock an arrival the home shard has not yet seen.  Entry
        ``cur`` itself is already ready, leaving ``[cur + 1, switch)``:

        * the ROB barrier at entry ``j`` blocks only on an incomplete
          read with instruction index ``<= iidx[j] - rob_size``; if the
          oldest such read is younger than that bound at ``j = switch -
          1`` it is younger at every earlier ``j``, and reads issued
          during the window are home-channel (their completions are
          delivered in-shard, in time order);
        * a ``depends`` entry pins on the most recent prior read, which
          may predate the window and live on a foreign channel --
          conservatively treated as blockable.

        When neither holds, the home shard needs no mid-round clamp.
        """
        sw = self._switch[k][cur]
        if sw <= cur + 1:
            return False
        if self._next_dep[k][cur + 1] < sw:
            return True
        oldest = core.oldest_incomplete_read()
        if oldest is None:  # pragma: no cover - foreign counts imply one
            return False
        return oldest <= self._iidx[k][sw - 1] - self._rob[k]

    # -- main loop -----------------------------------------------------------

    def run(self, max_commands: int = 1 << 31) -> SimulationResult:
        wall_start = time.perf_counter()
        shards = self.shards
        system = self.system
        tracked = self.tracked
        n = len(shards)
        for core in self.cores:
            ready = core.next_request_time()
            if ready < BLOCKED:
                address = core.next_request_address()
                target = system.controller_for(address)[2]
                tracked[core.core_id] = True
                shards[target].heap.append((ready, core.core_id))
        for shard in shards:
            heapq.heapify(shard.heap)
        total = 0
        pool = (ThreadPoolExecutor(max_workers=n)
                if self.backend == "threads" and n > 1 else None)
        try:
            while True:
                # -- barrier: earliest pending event per shard ------------
                s: List[int] = []
                for shard in shards:
                    cand = shard.refresh_peek()
                    t = cand.issue_time if cand is not None else BLOCKED
                    heap = shard.heap
                    if heap and heap[0][0] < t:
                        t = heap[0][0]
                    s.append(t)
                if min(s) >= BLOCKED:
                    if all(core.done for core in self.cores):
                        break
                    if any(shard.parked_ids for shard in shards):
                        raise DeadlockError(
                            "cores parked on a full queue but no channel "
                            "has a command pending -- lost a wake-on-room "
                            "signal?")
                    raise DeadlockError(
                        "no events but cores unfinished -- lost a "
                        "completion?")
                # -- horizons from per-core routing lookahead -------------
                horizons = ([BLOCKED] if n == 1 else self._horizons(s))
                # A pending refresh deadline additionally bounds
                # run-ahead.  Refresh state is channel-local, so a
                # shard would schedule its refreshes correctly however
                # far it ran -- the clamp is defence in depth: it keeps
                # any future cross-channel refresh coupling (e.g. a
                # shared-rank power budget) failing safe instead of
                # silently diverging, at one barrier per deadline.
                # Clamping strictly above the shard's earliest pending
                # event preserves the progress guarantee.
                for i in range(n):
                    bound = shards[i].controller.refresh_horizon()
                    if bound is not None and s[i] < bound < horizons[i]:
                        horizons[i] = bound
                # -- run every shard with work below its horizon ----------
                self.rounds += 1
                remaining = max_commands - total
                round_commits = 0
                ran_any = False
                if pool is not None:
                    futures = [
                        (pool.submit(shards[i].run, horizons[i], remaining)
                         if s[i] < horizons[i] else None)
                        for i in range(n)]
                    for future in futures:
                        if future is not None:
                            ran_any = True
                            round_commits += future.result()
                else:
                    for i in range(n):
                        if s[i] < horizons[i] and remaining > round_commits:
                            ran_any = True
                            round_commits += shards[i].run(
                                horizons[i], remaining - round_commits)
                total += round_commits
                if not ran_any:  # pragma: no cover - defensive
                    raise DeadlockError(
                        "no shard could advance below its horizon -- "
                        "the lookahead lost the progress guarantee?")
                # -- forward cross-channel arrivals -----------------------
                if self.debug_trace is not None:
                    self.debug_trace.append({
                        "s": list(s),
                        "horizons": list(horizons),
                        "max_issue": [sh.round_max_issue for sh in shards],
                        "exports": [list(sh.exports) for sh in shards],
                    })
                    for shard in shards:
                        shard.round_max_issue = -1
                for shard in shards:
                    if shard.exports:
                        for ready, cid, target in shard.exports:
                            heapq.heappush(shards[target].heap,
                                           (ready, cid))
                        shard.exports.clear()
                if total >= max_commands:
                    raise CommandBudgetExceeded(
                        f"stopped after {max_commands} commands "
                        f"(raise max_commands to simulate further)")
        finally:
            if pool is not None:
                pool.shutdown(wait=False)
        result = collect_result(system, self.cores)
        result.wall_time_s = time.perf_counter() - wall_start
        return result
