"""Per-channel event shards with horizon-bounded run-ahead.

The classic loop in :mod:`repro.sim.simulator` interleaves *all*
channels' commands in one global time order, re-scanning every channel's
peek per command even though the timing model makes channels fully
independent: a command on channel ``c`` reads and writes only ``c``'s
banks, buses and queues.  Channels couple exclusively through the cores
-- a core hands its next access to whichever channel its address maps
to, and a read completion on one channel may unblock a core whose next
access routes to another.

This module exploits that structure.  Each :class:`ChannelShard` owns
one controller plus everything channel-local the classic loop kept
globally: the mutation-keyed peek cache
(:meth:`~repro.controller.controller.ChannelController.cached_peek`),
the wake-on-room parked list, a local arrival heap of the cores
currently bound to it, and a local clock.  A shard retires commands
*autonomously* up to its **interaction horizon** -- the earliest
simulated time at which anything outside the shard could still hand it
work -- and the coordinator degenerates to a cheap sweep that assembles
horizons from cached per-core contributions and lets cross-channel
arrivals flow directly between shard heaps.

Correctness argument (property-tested in ``tests/sim/test_shards.py``,
digest-proven against the classic loop on every preset and under the
differential fuzzer):

1. **Local clocks are exact.**  The classic loop peeks a channel with
   the *global* ``now``, but it processes events in global time order,
   so ``now`` never exceeds any pending candidate's effective issue
   time (the candidate would have been committed first).  Every
   candidate time is of the form ``max(u, now)`` with ``u`` built from
   channel-local state, hence ``max(u, now_global) == max(u,
   now_local)`` whenever ``now_local`` is the channel's own last event
   time: peeking with the shard-local clock yields bit-identical
   candidates.  The same argument covers admission stamps
   (``max(now, ready)``): a fresh arrival always has ``ready >= now``,
   and a parked core's wake stamp is the *retiring command's* time --
   an event on the parking channel itself.

2. **Horizons are conservative, via per-core routing lookahead.**
   Since channels couple only through cores, shard ``c``'s horizon is
   the minimum over cores of a lower bound on that core's next
   *external* arrival at ``c``.  The bound is assembled from the
   vector ``S`` of each shard's earliest pending event time, and it
   remains valid from the moment of assembly on because ``S`` is
   maintained exactly: a shard's entry is refreshed after every run it
   takes, and a cross-channel arrival materialised into a target heap
   lowers the target's entry on the spot.  Every command channel ``d``
   commits after an assembly therefore issues at or after the ``S_d``
   that assembly read -- the invariant both bounds below lean on.  The
   trace fixes every future address -- and therefore each core's whole
   future channel sequence -- so only timing is dynamic, and two
   invariants bound it from below.  First, consecutive accesses are at
   least one issue slot apart: ``ready[i+1] >= pop[i] + max(1,
   floor((1 + gap[i+1]) * instr_ps))`` (the access instruction itself
   occupies a slot; queueing and blocking only delay further),
   prefix-summed per core into ``P`` so that the arrival at trace
   index ``m`` is at least the current ready time plus ``P[m+1] -
   P[cur+1]`` *whatever shards serve the indices in between*.  Second,
   a blocked core resumes no earlier than the read burst that unblocks
   it: its pinning read is already queued on a known channel ``d``,
   later commands on ``d`` issue at or after ``S_d``, and a read's
   data lands ``tCL + burst`` after its CAS -- so the unblock time is
   at least ``min(S_d + tCL_d + burst_d)`` over channels holding one
   of the core's outstanding reads.  A core *parked* on a full queue
   gets the same lift: its first access cannot pop before the column
   commit that wakes it, so its base rises from its ready time to at
   least its home channel's ``S_d``.  The contribution of core ``k``
   to channel ``c`` is then that base plus the ``P``-distance to
   ``k``'s first index routed to ``c`` -- where for a core currently
   *bound to* ``c`` the first external return is the first ``c``-index
   after its next channel switch (everything before it is handled
   in-shard, in ready order).  One exception pierces that in-shard
   assumption: a bound core can *block mid-round* behind a read a
   foreign channel still holds, and its unblock is then delivered by
   that foreign shard -- an external arrival back at the home channel
   before any channel switch.  So a ready core with outstanding reads
   on foreign channels also clamps its home channel's horizon to
   ``min(S_d + tCL_d + burst_d)`` over those channels (never below
   ``ready + 1``): the unblocking data burst cannot land earlier.  The
   clamp is *skipped* when no block is possible before the core's next
   channel switch: every access in the pre-switch window routes home,
   so unless the oldest in-flight read can pin the ROB at the window's
   last entry (or a ``depends`` entry pins on a pre-window read --
   conservatively treated as blockable), any block in the window
   resolves in-shard (:meth:`ShardedSimulator._can_block_before_switch`).
   ``H_c`` is the minimum over cores; the shard processes local
   arrivals and commands with time *strictly below* ``H_c``, which
   keeps same-instant tie-breaks (arrival-before-command, core-id
   order) out of reach.  An arrival that *is* materialised in a
   shard's heap is no longer bounded by the horizon at all -- it is an
   exact local event, processed in (time, core-id) order like any
   other -- which is what lets the serial driver deliver exports
   directly instead of holding them for a barrier.  Progress is
   guaranteed: every contribution to the shard owning the globally
   earliest event ``m`` exceeds ``m`` by at least one step -- a
   heap-resident core's ready time is itself a pending event (so at
   least ``m``, and external distances are positive), while parked and
   blocked cores are lifted to at least some channel's ``S_d >= m`` --
   so that shard always runs.

3. **Completions never stale a tracked core.**  A core that is ready
   (heap or parked) computed its ready time without the still-pending
   reads (otherwise it would have been ``BLOCKED``), so a completion
   delivered mid-round cannot change it; only ``BLOCKED`` cores gain a
   new arrival from a completion.  Shard-local heap entries are
   therefore always fresh -- the classic loop's lazy stale-drop becomes
   a defensive assertion here.

**Incremental horizon maintenance.**  Everything a core contributes to
the horizon vector is a pure function of its own state (trace index,
ready time, in-flight read set, ROB pin) plus the live ``S`` vector.
:class:`~repro.cpu.core.TraceCore` bumps a version counter at exactly
the two points that state can change (``pop_request`` /
``complete_read``), so the coordinator caches one *contribution
record* per core -- the static per-channel bounds for a ready core,
the distance tables and channel sets for the ``S``-dependent parked /
blocked / mid-round-clamp terms -- and rebuilds it only when the
version moved (:meth:`ShardedSimulator._assemble_horizons`).  The
original full recomputation survives verbatim as an oracle
(:meth:`ShardedSimulator._horizons_full`), asserted equal on every
assembly when ``REPRO_SHARDS_CHECK=1`` (one fuzzer lane in CI runs
with it on; ``horizons_recomputed`` / ``horizons_reused`` count the
cache's work).  The per-core routing lookahead tables themselves are
memoised across simulator instances, keyed by trace content hash and
config digest (:func:`lookahead_memo_stats`).

Backends: ``serial`` is a sweep driver -- shards are visited in
increasing order of their earliest pending event, horizons are
re-assembled from the cached contributions as ``S`` advances
*within* the sweep, and exports land directly in the target heap --
so one sweep does the run-ahead that previously took several barrier
rounds.  ``threads`` keeps the strict per-round barrier (shards run
concurrently, so horizons must all derive from round-start ``S`` and
exports are buffered to the barrier) on *persistent* worker threads
parked on a condition variable, one per channel, instead of per-round
pool submissions.  It is digest-identical (shards touch disjoint
channel state; the rare shared object, a core receiving a completion
from a foreign channel, is guarded by a per-core lock) but only
yields wall-clock speedups on free-threaded builds -- which is why
the default backend is picked by ``sys._is_gil_enabled()``: ``threads``
when the GIL is off, ``serial`` otherwise.
"""

from __future__ import annotations

import heapq
import os
import sys
import threading
import time
from array import array
from typing import Dict, List, Optional, Tuple

from repro.controller.controller import ChannelController
from repro.controller.transaction import Transaction, TransactionKind
from repro.cpu.core import BLOCKED, TraceCore
from repro.sim.simulator import (
    CommandBudgetExceeded,
    DeadlockError,
    MemorySystem,
    SimulationResult,
    collect_result,
)

#: Recognised execution backends for one simulation: ``off`` keeps the
#: classic global event loop, ``serial`` runs the sweep driver
#: in-thread, ``threads`` runs each round's shards on persistent
#: worker threads.
SHARD_MODES = ("off", "serial", "threads")


def _free_threaded() -> bool:
    """True on a CPython build currently running without the GIL.

    ``sys._is_gil_enabled`` exists from CPython 3.13 on; older builds
    (always GIL-ful) simply lack the probe.
    """
    probe = getattr(sys, "_is_gil_enabled", None)
    return probe is not None and not probe()


def _default_shard_mode() -> str:
    """Backend to use when nothing picked one explicitly.

    The ``threads`` backend only beats ``serial`` when shards truly run
    in parallel, so it is the default exactly on free-threaded builds.
    """
    return "threads" if _free_threaded() else "serial"


#: Default backend when :attr:`SystemConfig.shards` is ``None``;
#: overridable via the ``REPRO_SHARDS`` environment variable (the CLI
#: ``--shards`` flag sets it per invocation).  Without an override it
#: is picked per build: ``threads`` on free-threaded CPython,
#: ``serial`` under the GIL.
SHARDS_DEFAULT = os.environ.get("REPRO_SHARDS") or _default_shard_mode()


def resolve_shard_mode(mode: Optional[str]) -> str:
    """Validate ``mode``, falling back to :data:`SHARDS_DEFAULT`."""
    if mode is None:
        mode = SHARDS_DEFAULT
    if mode not in SHARD_MODES:
        raise ValueError(f"unknown shard mode {mode!r}; "
                         f"expected one of {SHARD_MODES}")
    return mode


#: Memoised per-core routing lookahead tables, shared across simulator
#: instances: the tables are a pure function of (trace content, system
#: config, instruction pacing, channel count) and are only ever read
#: after construction.  Experiment grids re-simulate the same traces
#: under many mechanisms, so the O(trace x channels) build is paid once
#: per (trace, config) instead of once per run.
_LOOKAHEAD_MEMO: Dict[tuple, tuple] = {}
#: Entry bound; on overflow the oldest-inserted half is evicted (dict
#: order is insertion order), mirroring the route-cache policy.
_LOOKAHEAD_CAPACITY = 256
_LOOKAHEAD_COUNTERS = {"hits": 0, "misses": 0, "evictions": 0}


def lookahead_memo_stats() -> dict:
    """Size / hit / miss / eviction counters of the lookahead memo.

    Surfaced by ``repro stats`` next to the route-cache and trace-memo
    lines; purely diagnostic.
    """
    return {"size": len(_LOOKAHEAD_MEMO), **_LOOKAHEAD_COUNTERS}


def _lookahead_tables(trace, instr_ps: float,
                      system: MemorySystem) -> tuple:
    """The routing lookahead tables for one (trace, system) pair.

    Returns ``(length, chan, ext, blk, switch, iidx, next_dep)`` --
    see :class:`ShardedSimulator` for what each table means -- from
    the memo when the identical pair was built before.
    """
    n = len(system.controllers)
    key = (trace.cache_key(), system.config.digest(), repr(instr_ps), n)
    tables = _LOOKAHEAD_MEMO.get(key)
    if tables is not None:
        _LOOKAHEAD_COUNTERS["hits"] += 1
        return tables
    _LOOKAHEAD_COUNTERS["misses"] += 1
    entries = trace.entries
    length = len(entries)
    chan = [system.controller_for(e.address)[2] for e in entries]
    prefix = [0] * (length + 1)
    for i, e in enumerate(entries):
        step = int((1 + e.gap) * instr_ps)
        prefix[i + 1] = prefix[i] + (step if step > 1 else 1)
    # diff[i]: first index > i routed differently than index i.
    diff = [length] * length
    for i in range(length - 2, -1, -1):
        diff[i] = i + 1 if chan[i + 1] != chan[i] else diff[i + 1]
    ext = []
    blk = []
    for c in range(n):
        # next_at[i]: first index >= i routed to channel c.
        next_at = [length] * (length + 1)
        for i in range(length - 1, -1, -1):
            next_at[i] = i if chan[i] == c else next_at[i + 1]
        blk_c = [BLOCKED] * length
        ext_c = [BLOCKED] * length
        for i in range(length):
            m = next_at[i]
            if m < length:
                blk_c[i] = prefix[m + 1] - prefix[i + 1]
            m = next_at[diff[i]] if chan[i] == c else m
            if m < length:
                ext_c[i] = prefix[m + 1] - prefix[i + 1]
        blk.append(array("q", blk_c))
        ext.append(array("q", ext_c))
    iidx = [0] * length
    acc = 0
    for i, e in enumerate(entries):
        acc += e.gap + 1
        iidx[i] = acc
    next_dep = [length] * (length + 1)
    for i in range(length - 1, -1, -1):
        next_dep[i] = i if entries[i].depends else next_dep[i + 1]
    # Stored as typed ``array('q')`` (BLOCKED = 2**62 fits int64), not
    # lists: the memo keeps these alive for the whole process, and a
    # resident list-of-boxed-ints version measurably slowed *every*
    # phase of the bench -- tens of MB of pointer-chased heap that the
    # cyclic GC re-scans and the CPU cache keeps missing.  Typed arrays
    # are 3.5x smaller and invisible to both.
    tables = (length, array("q", chan), ext, blk, array("q", diff),
              array("q", iidx), array("q", next_dep))
    memo = _LOOKAHEAD_MEMO
    if len(memo) >= _LOOKAHEAD_CAPACITY:
        from itertools import islice
        for stale in list(islice(memo, len(memo) // 2)):
            del memo[stale]
        _LOOKAHEAD_COUNTERS["evictions"] += 1
    memo[key] = tables
    return tables


class _NullLock:
    """No-op lock for the serial backend (no cross-thread sharing)."""

    __slots__ = ()

    def acquire(self) -> None:
        pass

    def release(self) -> None:
        pass


_NULL_LOCK = _NullLock()


class ChannelShard:
    """One channel's slice of the simulation: controller + core traffic.

    Owns the channel-local state the classic loop kept in global
    structures -- the wake-on-room parked list, the arrival heap of
    cores whose next access routes here -- plus a local clock (the
    channel's last event time, exact by argument 1 in the module
    docstring).  Scheduler proposals come from the controller's
    mutation-keyed :meth:`~repro.controller.controller
    .ChannelController.cached_peek`, so a shard untouched across a
    round boundary never re-runs the scheduler.
    """

    __slots__ = ("index", "sim", "controller", "now", "heap", "parked",
                 "parked_ids", "exports", "debug", "round_max_issue",
                 "parks")

    def __init__(self, index: int, controller: ChannelController,
                 sim: "ShardedSimulator") -> None:
        self.index = index
        self.sim = sim
        self.controller = controller
        #: Local clock: the channel's last event (arrival or commit).
        self.now = 0
        #: Min-heap of (ready time, core id) arrivals bound for this
        #: channel.  Entries are always fresh (module docstring, 3).
        self.heap: List[Tuple[int, int]] = []
        #: Wake-on-room wait list, (ready, core id), original keys.
        self.parked: List[Tuple[int, int]] = []
        self.parked_ids: set = set()
        #: Cross-channel arrivals produced this round.  The threads
        #: backend buffers them here for barrier delivery; the serial
        #: sweep delivers directly and only mirrors them here for the
        #: debug trace.
        self.exports: List[Tuple[int, int, int]] = []
        self.debug = False
        #: Largest issue time committed this round (debug hooks only).
        self.round_max_issue = -1
        #: Wake-on-room parkings taken (perf counter, not in digests).
        self.parks = 0
        # Wake-on-room: the controller tells us the instant a column
        # command retires a transaction (the only event freeing queue
        # room), replacing the classic loop's check on commit's return.
        controller.on_retire = self._on_retire

    # -- internals ---------------------------------------------------------

    def _on_retire(self, txn: Transaction) -> None:
        """A retired transaction freed queue room: wake parked cores.

        Entries re-enter the local heap under their original
        (ready, core id) keys; admission then stamps them with
        ``max(now, ready)`` where ``now`` is this very commit's time --
        exactly the classic loop's wake protocol.
        """
        if self.parked:
            heap = self.heap
            for item in self.parked:
                heapq.heappush(heap, item)
                self.parked_ids.discard(item[1])
            self.parked.clear()

    def refresh_peek(self):
        """The channel's pending proposal (mutation-keyed cache)."""
        return self.controller.cached_peek(self.now)

    def _track(self, ready: int, cid: int) -> None:
        """Register a core's next arrival: local heap, direct delivery
        to the target shard's heap (serial sweep), or the export buffer
        (threads barrier).

        Called with the core's lock held (threads backend).  Routing
        uses :meth:`TraceCore.next_request_address` -- the address is
        known even before the core is ready to issue.
        """
        sim = self.sim
        address = sim.cores[cid].next_request_address()
        target = sim.system.controller_for(address)[2]
        sim.tracked[cid] = True
        if target == self.index:
            heapq.heappush(self.heap, (ready, cid))
        elif sim.direct_export:
            # Safe mid-sweep: a materialised arrival is an exact local
            # event of the target (module docstring, 2); lowering the
            # target's earliest-pending entry keeps ``S`` exact.  The
            # flag tells the sweep driver ``S`` may have *dropped*, so
            # horizons assembled before this delivery must be redone
            # before anyone relies on them again.
            heapq.heappush(sim.shards[target].heap, (ready, cid))
            sim.exported = True
            s = sim.s
            if ready < s[target]:
                s[target] = ready
            if self.debug:
                self.exports.append((ready, cid, target))
        else:
            self.exports.append((ready, cid, target))

    def _commit(self, candidate) -> None:
        """Issue ``candidate``; deliver completions; track unblocks."""
        completed = self.controller.commit(candidate)
        t = candidate.issue_time
        if t > self.now:
            self.now = t
        if self.debug and t > self.round_max_issue:
            self.round_max_issue = t
        if completed:
            sim = self.sim
            cores, locks, tracked = sim.cores, sim.locks, sim.tracked
            for txn in completed:
                if txn.is_read and txn.core >= 0:
                    cid = txn.core
                    lock = locks[cid]
                    lock.acquire()
                    try:
                        core = cores[cid]
                        core.complete_read(txn.instruction,
                                           txn.completion_time)
                        sim.inflight[cid][self.index] -= 1
                        # Only a BLOCKED core gains an arrival from a
                        # completion (a tracked core's ready time is
                        # provably unchanged -- module docstring, 3).
                        if not tracked[cid]:
                            ready = core.next_request_time()
                            if ready < BLOCKED:
                                self._track(ready, cid)
                    finally:
                        lock.release()

    def run(self, horizon: int, budget: int) -> int:
        """Process local events below ``horizon``; returns commands.

        Replays the classic loop's per-iteration protocol verbatim, but
        over channel-local structures only: admit every local arrival
        whose ready time is at or before the pending command (and below
        the horizon), re-peek after each admission, then commit the
        pending command if it, too, is below the horizon.  At most
        ``budget`` commands are committed (the caller's global
        ``max_commands`` budget, split across shards).
        """
        committed = 0
        heap = self.heap
        controller = self.controller
        scheduler = controller.scheduler
        sim = self.sim
        cores, locks, tracked = sim.cores, sim.locks, sim.tracked
        system = sim.system
        heappop = heapq.heappop
        while True:
            # Inlined ChannelController.cached_peek -- this is the
            # innermost loop of the whole sharded simulator, and the
            # method-call version showed up in profiles.  Semantics
            # (and the scheduler ``best()`` call count the bench pins)
            # are identical.
            mutations = scheduler.mutations
            if (mutations == controller._peek_mutations
                    and self.now == controller._peek_now):
                cand = controller._peek_value
                controller.peek_reuses += 1
            else:
                cand = scheduler.best(self.now)
                controller._peek_mutations = mutations
                controller._peek_now = self.now
                controller._peek_value = cand
            cmd_time = cand.issue_time if cand is not None else BLOCKED
            enqueued = False
            while heap:
                ready, cid = heap[0]
                if ready >= horizon or ready > cmd_time:
                    break
                heappop(heap)
                core = cores[cid]
                lock = locks[cid]
                lock.acquire()
                try:
                    actual = core.next_request_time()
                    if actual != ready:
                        # Defensive only: shard-local entries cannot go
                        # stale (module docstring, 3).  Re-route so an
                        # unforeseen divergence degrades loudly in the
                        # digest tests instead of crashing here.
                        if actual < BLOCKED:
                            self._track(actual, cid)
                        else:
                            tracked[cid] = False
                        continue
                    entry = core.peek_entry()
                    coords = system.controller_for(entry.address)[1]
                    if not controller.has_room(not entry.is_write):
                        # Park under our wait list; _on_retire re-arms.
                        if cid not in self.parked_ids:
                            self.parked_ids.add(cid)
                            self.parked.append((ready, cid))
                            self.parks += 1
                        else:  # pragma: no cover - defensive
                            tracked[cid] = False
                        continue
                    t = self.now if self.now > ready else ready
                    core.pop_request(t)
                    txn = Transaction(
                        kind=(TransactionKind.WRITE if entry.is_write
                              else TransactionKind.READ),
                        address=entry.address,
                        coords=coords,
                        core=cid,
                        instruction=core.instruction_index_of_last_request(),
                    )
                    controller.enqueue(txn, t)
                    if not entry.is_write:
                        sim.inflight[cid][self.index] += 1
                    self.now = t
                    nxt = core.next_request_time()
                    if nxt < BLOCKED:
                        self._track(nxt, cid)
                    else:
                        tracked[cid] = False
                finally:
                    lock.release()
                enqueued = True
                break
            if enqueued:
                continue
            if cand is None or cmd_time >= horizon or committed >= budget:
                return committed
            self._commit(cand)
            committed += 1


class ShardedSimulator:
    """Channel-sharded runner: digest-identical to the classic loop.

    ``backend`` is ``"serial"`` (the sweep driver: shards are visited
    in increasing earliest-event order with horizons re-assembled as
    ``S`` advances, exports delivered directly) or ``"threads"`` (each
    round's runnable shards execute on persistent worker threads, one
    per channel, with the barrier at horizon points).

    ``check_horizons`` arms the full-recompute horizon oracle: every
    incremental assembly is compared against
    :meth:`_horizons_full` and any divergence raises.  ``None``
    defers to the ``REPRO_SHARDS_CHECK`` environment variable (a CI
    fuzzer lane runs with it set).

    ``debug_trace``, when a list, receives one record per shard visit
    -- ``{"shard", "s", "horizons", "max_issue", "exports"}`` --
    consumed by the horizon property tests; leave ``None`` in
    production.
    """

    def __init__(self, system: MemorySystem, cores: List[TraceCore],
                 backend: str = "serial",
                 debug_trace: Optional[list] = None,
                 check_horizons: Optional[bool] = None) -> None:
        if backend not in ("serial", "threads"):
            raise ValueError(f"unknown shard backend {backend!r}")
        self.system = system
        self.cores = cores
        self.backend = backend
        if check_horizons is None:
            check_horizons = bool(os.environ.get("REPRO_SHARDS_CHECK"))
        #: Compare every incremental horizon assembly against the
        #: full-recompute oracle (raises on divergence).
        self.check_horizons = check_horizons
        #: Whether each core currently has an arrival entry somewhere
        #: (a shard heap, a parked list, or an export buffer).  Guards
        #: completion handling against double-tracking.
        self.tracked: List[bool] = [False] * len(cores)
        #: Per-core locks (threads backend): a foreign channel's
        #: completion may touch a core concurrently with its owner
        #: shard's admission.  The serial backend pays two no-op calls.
        if backend == "threads":
            self.locks: List = [threading.Lock() for _ in cores]
        else:
            self.locks = [_NULL_LOCK] * len(cores)
        self.shards = [ChannelShard(i, c, self)
                       for i, c in enumerate(system.controllers)]
        n = len(self.shards)
        self._n = n
        #: Exports go straight into the target heap (serial sweep) vs
        #: buffered per shard until the barrier (concurrent threads
        #: must not push into each other's heaps mid-round).
        self.direct_export = backend != "threads" or n < 2
        self.debug_trace = debug_trace
        if debug_trace is not None:
            for shard in self.shards:
                shard.debug = True
        #: Live earliest-pending-event vector ``S``, one entry per
        #: shard, maintained exactly across the run (refreshed after a
        #: shard runs, lowered on direct export delivery).
        self.s: List[int] = []
        #: Set by :meth:`ChannelShard._track` when a direct export was
        #: delivered (an entry of ``S`` may have dropped); the sweep
        #: driver re-assembles horizons before trusting them again.
        self.exported = False
        #: Coordinator sweeps/rounds executed (perf counter).
        self.rounds = 0
        #: Horizon-contribution cache work (perf counters): records
        #: rebuilt because the core's version moved vs. reused as-is.
        self.horizons_recomputed = 0
        self.horizons_reused = 0
        #: Wall-clock split of the coordinator's work: horizon
        #: assembly + clamping vs. time inside :meth:`ChannelShard.run`
        #: (the bench reports the per-phase breakdown).
        self.horizon_time_s = 0.0
        self.retire_time_s = 0.0
        #: Per-core contribution records keyed by
        #: :attr:`TraceCore.version` (see :meth:`_assemble_horizons`).
        #: Held as flat preallocated arrays mutated in place: a rebuild
        #: allocates nothing, so the cache never feeds the cyclic GC's
        #: allocation counter (surviving per-rebuild tuples used to
        #: trip a collection every ~700 rebuilds, and the pauses landed
        #: in the middle of the retire loop).
        self._core_versions: List[int] = [-1] * len(cores)
        self._c_tag: List[int] = [0] * len(cores)
        self._c_ready: List[int] = [0] * len(cores)
        self._c_home: List[int] = [0] * len(cores)
        self._c_can_block: List[bool] = [False] * len(cores)
        self._c_bound: List[List[int]] = [[BLOCKED] * n for _ in cores]
        self._c_clamp: List[List[bool]] = [[False] * n for _ in cores]
        #: Outstanding (enqueued, not yet completed) reads per core per
        #: channel: the unblock bound in :meth:`_assemble_horizons`
        #: needs to know which channels could be pinning a blocked
        #: core's ROB.
        self.inflight: List[List[int]] = [[0] * n for _ in cores]
        #: Minimum CAS-to-data latency per channel: a read's data burst
        #: ends ``tCL + burst`` after its column command.
        self._min_read_latency = [
            c.channel.timing.tCL + c.channel.timing.burst_time
            for c in system.controllers]
        # Per-core routing lookahead tables (module docstring, 2).  The
        # trace fixes every future address, so each core's channel
        # sequence and minimum inter-access spacing are known up front.
        # Everything a round needs collapses into two flat tables per
        # (core, channel), indexed by the core's current trace index:
        #   _ext[k][c][i]  minimum ready-time distance from index i to
        #                  core k's first *external* arrival at channel
        #                  c -- for the core's own channel that is its
        #                  first return after the next channel switch
        #                  (everything before it is handled in-shard);
        #   _blk[k][c][i]  the same distance counting index i itself
        #                  (a blocked core's very next access is
        #                  already external everywhere).
        # BLOCKED marks "never arrives at c again".  Builds are
        # memoised per (trace, config) -- see :func:`_lookahead_tables`.
        self._len: List[int] = []
        self._chan: List[array] = []
        self._ext: List[List[array]] = []
        self._blk: List[List[array]] = []
        # Mid-round-block necessity tables (see _can_block_before_switch):
        #   _switch[k][i]   first index > i routed to a different channel;
        #   _iidx[k][i]     instruction index assigned to entry i;
        #   _next_dep[k][i] first index >= i with a ``depends`` entry.
        self._switch: List[array] = []
        self._iidx: List[array] = []
        self._next_dep: List[array] = []
        self._rob: List[int] = [core.config.rob_size for core in cores]
        for core in cores:
            length, chan, ext, blk, switch, iidx, next_dep = \
                _lookahead_tables(core.trace,
                                  core.config.instruction_time_ps,
                                  system)
            self._len.append(length)
            self._chan.append(chan)
            self._ext.append(ext)
            self._blk.append(blk)
            self._switch.append(switch)
            self._iidx.append(iidx)
            self._next_dep.append(next_dep)

    # -- horizons ------------------------------------------------------------

    def _contribution(self, k: int, core: TraceCore) -> None:
        """(Re)fill core ``k``'s cached horizon-contribution record.

        The record pre-evaluates everything about the core's
        contribution that does not depend on the live ``S`` vector,
        in flat per-core arrays mutated in place (a rebuild allocates
        nothing):

        * ``_c_tag[k] == 0`` -- trace exhausted, contributes nothing;
        * ``_c_tag[k] == 1`` -- a ready core: ``_c_bound[k][c]`` holds
          the per-channel absolute bound ``ready + ext-distance`` used
          while the core is not parked (the parked lift re-derives the
          raw distance as ``bound - ready``), ``_c_clamp[k][c]`` marks
          the foreign channels holding one of its reads, and
          ``_c_can_block[k]`` whether the mid-round clamp applies at
          all;
        * ``_c_tag[k] == 2`` -- a blocked core: ``_c_clamp[k][c]``
          marks the channels holding its outstanding reads,
          ``_c_bound[k][c]`` the blk-table distances.

        Valid exactly while :attr:`TraceCore.version` is unchanged
        (parked-ness is the one input that moves without a version
        bump; it is read fresh at assembly).
        """
        cur = core.trace_index
        if cur >= self._len[k]:
            self._c_tag[k] = 0
            return
        n = self._n
        bound = self._c_bound[k]
        clamp = self._c_clamp[k]
        inflight = self.inflight[k]
        ready = core.next_request_time()
        if ready < BLOCKED:
            home = self._chan[k][cur]
            ext = self._ext[k]
            any_clamp = False
            for c in range(n):
                d = ext[c][cur]
                bound[c] = ready + d if d < BLOCKED else BLOCKED
                holds = inflight[c] > 0 and c != home
                clamp[c] = holds
                any_clamp = any_clamp or holds
            self._c_tag[k] = 1
            self._c_ready[k] = ready
            self._c_home[k] = home
            self._c_can_block[k] = any_clamp and \
                self._can_block_before_switch(k, core, cur)
            return
        blk = self._blk[k]
        for c in range(n):
            bound[c] = blk[c][cur]
            clamp[c] = inflight[c] > 0
        self._c_tag[k] = 2

    def _assemble_horizons(self, s: List[int]) -> List[int]:
        """Per-shard interaction horizons from cached contributions.

        Semantically identical to the full recomputation
        (:meth:`_horizons_full`, kept as the oracle and asserted equal
        on every call under ``check_horizons``), but each core's
        ``S``-independent terms are only re-derived when that core's
        version moved -- i.e. when it retired a request or completed a
        read, which is also the only way it switches channels or
        between the ready/blocked regimes.

        Dispatches to a straight-line two-channel combine
        (:meth:`_assemble_horizons_2`) when the system has exactly two
        shards -- every config in the fig12 grid -- where the generic
        per-channel loops are pure interpreter overhead.
        """
        horizons = (self._assemble_horizons_2(s) if self._n == 2
                    else self._assemble_horizons_n(s))
        if self.check_horizons:
            oracle = self._horizons_full(s)
            if horizons != oracle:
                raise AssertionError(
                    "incremental horizons diverged from the oracle: "
                    f"incremental={horizons} oracle={oracle} s={s} "
                    f"indices={[c.trace_index for c in self.cores]}")
        return horizons

    def _assemble_horizons_2(self, s: List[int]) -> List[int]:
        """Two-shard combine: scalar horizons, no per-channel loops."""
        s0, s1 = s
        latency = self._min_read_latency
        lat0, lat1 = latency[0], latency[1]
        shards = self.shards
        parked0 = shards[0].parked_ids
        parked1 = shards[1].parked_ids
        versions = self._core_versions
        tags = self._c_tag
        bounds = self._c_bound
        clamps = self._c_clamp
        readys = self._c_ready
        homes = self._c_home
        can_blocks = self._c_can_block
        h0 = h1 = BLOCKED
        recomputed = reused = 0
        for k, core in enumerate(self.cores):
            if versions[k] != core.version:
                self._contribution(k, core)
                versions[k] = core.version
                recomputed += 1
            else:
                reused += 1
            tag = tags[k]
            if tag == 0:
                continue
            bound = bounds[k]
            clamp = clamps[k]
            b0 = bound[0]
            b1 = bound[1]
            if tag == 1:
                ready = readys[k]
                home = homes[k]
                if can_blocks[k]:
                    unblock = BLOCKED
                    if clamp[0]:
                        unblock = s0 + lat0
                    if clamp[1]:
                        v = s1 + lat1
                        if v < unblock:
                            unblock = v
                    if unblock < BLOCKED:
                        if unblock <= ready:
                            unblock = ready + 1
                        if home:
                            if unblock < h1:
                                h1 = unblock
                        elif unblock < h0:
                            h0 = unblock
                sh = s1 if home else s0
                if sh > ready and k in (parked1 if home else parked0):
                    lift = sh - ready
                    if b0 < BLOCKED:
                        v = b0 + lift
                        if v < h0:
                            h0 = v
                    if b1 < BLOCKED:
                        v = b1 + lift
                        if v < h1:
                            h1 = v
                else:
                    if b0 < h0:
                        h0 = b0
                    if b1 < h1:
                        h1 = b1
            else:
                base = BLOCKED
                if clamp[0]:
                    base = s0 + lat0
                if clamp[1]:
                    v = s1 + lat1
                    if v < base:
                        base = v
                if base >= BLOCKED:  # pragma: no cover - defensive
                    base = s0 if s0 < s1 else s1
                if b0 < BLOCKED:
                    v = base + b0
                    if v < h0:
                        h0 = v
                if b1 < BLOCKED:
                    v = base + b1
                    if v < h1:
                        h1 = v
        self.horizons_recomputed += recomputed
        self.horizons_reused += reused
        return [h0, h1]

    def _assemble_horizons_n(self, s: List[int]) -> List[int]:
        """Generic combine for any shard count (see dispatch above)."""
        n = self._n
        horizons = [BLOCKED] * n
        latency = self._min_read_latency
        shards = self.shards
        versions = self._core_versions
        tags = self._c_tag
        bounds = self._c_bound
        clamps = self._c_clamp
        readys = self._c_ready
        homes = self._c_home
        can_blocks = self._c_can_block
        parked_sets = [shard.parked_ids for shard in shards]
        rng = range(n)
        recomputed = reused = 0
        for k, core in enumerate(self.cores):
            if versions[k] != core.version:
                self._contribution(k, core)
                versions[k] = core.version
                recomputed += 1
            else:
                reused += 1
            tag = tags[k]
            if tag == 0:
                continue
            bound = bounds[k]
            clamp = clamps[k]
            if tag == 1:
                ready = readys[k]
                home = homes[k]
                if can_blocks[k]:
                    unblock = BLOCKED
                    for d in rng:
                        if clamp[d]:
                            v = s[d] + latency[d]
                            if v < unblock:
                                unblock = v
                    if unblock < BLOCKED:
                        if unblock <= ready:
                            unblock = ready + 1
                        if unblock < horizons[home]:
                            horizons[home] = unblock
                if s[home] > ready and k in parked_sets[home]:
                    lift = s[home] - ready
                    for c in rng:
                        v = bound[c]
                        if v < BLOCKED:
                            v += lift
                            if v < horizons[c]:
                                horizons[c] = v
                else:
                    for c in rng:
                        v = bound[c]
                        if v < horizons[c]:
                            horizons[c] = v
            else:
                base = BLOCKED
                for d in rng:
                    if clamp[d]:
                        v = s[d] + latency[d]
                        if v < base:
                            base = v
                if base >= BLOCKED:  # pragma: no cover - defensive
                    base = min(s)
                for c in rng:
                    dist = bound[c]
                    if dist < BLOCKED:
                        v = base + dist
                        if v < horizons[c]:
                            horizons[c] = v
        self.horizons_recomputed += recomputed
        self.horizons_reused += reused
        return horizons

    def _horizons_full(self, s: List[int]) -> List[int]:
        """Full per-round horizon recomputation (the oracle).

        ``s`` holds each shard's earliest pending event time.  For
        every live core, lower-bound its next *external* arrival at
        each channel (module docstring, 2) and take the per-channel
        minimum.  A shard may process local events strictly below its
        horizon.  This is the original, cache-free computation;
        :meth:`_assemble_horizons` must match it exactly and is
        checked against it under ``REPRO_SHARDS_CHECK=1``.
        """
        n = len(self.shards)
        horizons = [BLOCKED] * n
        latency = self._min_read_latency
        shards = self.shards
        lengths, chans = self._len, self._chan
        exts, blks, inflights = self._ext, self._blk, self.inflight
        for k, core in enumerate(self.cores):
            cur = core.trace_index
            if cur >= lengths[k]:
                continue
            ready = core.next_request_time()
            if ready < BLOCKED:
                base = ready
                home_idx = chans[k][cur]
                home = shards[home_idx]
                if home.parked_ids and k in home.parked_ids:
                    # Parked on a full queue: the core's first access
                    # cannot pop before the column commit that wakes it,
                    # and every command its home channel issues this
                    # round is at or after that channel's earliest
                    # pending event.
                    if s[home_idx] > base:
                        base = s[home_idx]
                # A ready core can *block mid-round*: after its home
                # shard admits an access, the ROB may fill behind a
                # read a foreign channel still holds.  The unblock is
                # then delivered by that foreign shard -- an external
                # arrival back at the home channel that the ext table
                # (which only looks past the next channel switch)
                # does not see.  It cannot land before the foreign
                # read's data burst, i.e. before that channel's
                # earliest pending event plus its CAS-to-data
                # latency; nor before the core's next access could
                # exist at all (one issue step past ``ready``).  The
                # clamp is skipped when no block is possible before
                # the next channel switch (_can_block_before_switch).
                unblock = BLOCKED
                for d, count in enumerate(inflights[k]):
                    if count > 0 and d != home_idx:
                        v = s[d] + latency[d]
                        if v < unblock:
                            unblock = v
                if unblock < BLOCKED and \
                        self._can_block_before_switch(k, core, cur):
                    if unblock <= ready:
                        unblock = ready + 1
                    if unblock < horizons[home_idx]:
                        horizons[home_idx] = unblock
                tables = exts[k]
            else:
                # Blocked: the core resumes no earlier than the data
                # burst of a read it still has outstanding, and its
                # very next access is external everywhere.
                base = BLOCKED
                for d, count in enumerate(inflights[k]):
                    if count > 0:
                        v = s[d] + latency[d]
                        if v < base:
                            base = v
                if base >= BLOCKED:  # pragma: no cover - defensive
                    base = min(s)
                tables = blks[k]
            for c in range(n):
                distance = tables[c][cur]
                if distance < BLOCKED:
                    contribution = base + distance
                    if contribution < horizons[c]:
                        horizons[c] = contribution
        return horizons

    def _can_block_before_switch(self, k: int, core: TraceCore,
                                 cur: int) -> bool:
        """Can core ``k`` block mid-round before its next channel switch?

        Every entry in ``[cur, switch)`` routes to the home channel, so
        a block in that window is the only way a *foreign* completion
        can unblock an arrival the home shard has not yet seen.  Entry
        ``cur`` itself is already ready, leaving ``[cur + 1, switch)``:

        * the ROB barrier at entry ``j`` blocks only on an incomplete
          read with instruction index ``<= iidx[j] - rob_size``; if the
          oldest such read is younger than that bound at ``j = switch -
          1`` it is younger at every earlier ``j``, and reads issued
          during the window are home-channel (their completions are
          delivered in-shard, in time order);
        * a ``depends`` entry pins on the most recent prior read, which
          may predate the window and live on a foreign channel --
          conservatively treated as blockable.

        When neither holds, the home shard needs no mid-round clamp.
        """
        sw = self._switch[k][cur]
        if sw <= cur + 1:
            return False
        if self._next_dep[k][cur + 1] < sw:
            return True
        oldest = core.oldest_incomplete_read()
        if oldest is None:  # pragma: no cover - foreign counts imply one
            return False
        return oldest <= self._iidx[k][sw - 1] - self._rob[k]

    # -- main loop -----------------------------------------------------------

    def _refresh_s(self, i: int) -> None:
        """Re-derive shard ``i``'s earliest pending event after it ran."""
        shard = self.shards[i]
        controller = shard.controller
        # Inlined ChannelController.cached_peek (one call per shard
        # visit): :meth:`ChannelShard.run` always returns right after
        # a peek, so this is a guaranteed cache hit unless the shard
        # never ran.
        if (controller._peek_mutations == controller.scheduler.mutations
                and controller._peek_now == shard.now):
            cand = controller._peek_value
            controller.peek_reuses += 1
        else:
            cand = controller.cached_peek(shard.now)
        t = cand.issue_time if cand is not None else BLOCKED
        heap = shard.heap
        if heap and heap[0][0] < t:
            t = heap[0][0]
        self.s[i] = t

    def _check_done(self) -> bool:
        """Termination / deadlock split once no shard has an event."""
        if all(core.done for core in self.cores):
            return True
        if any(shard.parked_ids for shard in self.shards):
            raise DeadlockError(
                "cores parked on a full queue but no channel "
                "has a command pending -- lost a wake-on-room "
                "signal?")
        raise DeadlockError(
            "no events but cores unfinished -- lost a "
            "completion?")

    def run(self, max_commands: int = 1 << 31) -> SimulationResult:
        wall_start = time.perf_counter()
        shards = self.shards
        system = self.system
        tracked = self.tracked
        for core in self.cores:
            ready = core.next_request_time()
            if ready < BLOCKED:
                address = core.next_request_address()
                target = system.controller_for(address)[2]
                tracked[core.core_id] = True
                shards[target].heap.append((ready, core.core_id))
        for shard in shards:
            heapq.heapify(shard.heap)
        del self.s[:]
        self.s.extend(0 for _ in shards)
        for i in range(len(shards)):
            self._refresh_s(i)
        if self.backend == "threads" and len(shards) > 1:
            self._run_threads(max_commands)
        else:
            self._run_serial(max_commands)
        result = collect_result(system, self.cores)
        result.wall_time_s = time.perf_counter() - wall_start
        result.rounds = self.rounds
        result.horizons_recomputed = self.horizons_recomputed
        result.horizons_reused = self.horizons_reused
        result.horizon_time_s = self.horizon_time_s
        result.retire_time_s = self.retire_time_s
        return result

    def _run_serial(self, max_commands: int) -> None:
        """The sweep driver (module docstring: run-ahead coalescing).

        Each sweep visits the shards in increasing order of their
        earliest pending event.  Horizons are (re-)assembled from the
        cached contributions whenever ``S`` moved since the previous
        assembly -- so a shard visited late in the sweep already sees
        the run-ahead earlier visits unlocked, coalescing what the
        per-round barrier driver did across several rounds -- and
        exports are delivered directly into the target heap the moment
        they are produced (sound by module docstring, 2).
        """
        shards = self.shards
        n = len(shards)
        s = self.s
        debug = self.debug_trace is not None
        perf = time.perf_counter
        # Refresh-free channels (the whole fig12 grid) never produce a
        # refresh-deadline clamp; skip the per-visit call up front.
        refresh_on = [shard.controller.scheduler.refresh is not None
                      for shard in shards]
        total = 0
        while True:
            if min(s) >= BLOCKED:
                if self._check_done():
                    return
            self.rounds += 1
            if n == 2:
                order = (0, 1) if s[0] <= s[1] else (1, 0)
            elif n == 1:
                order = (0,)
            else:
                order = sorted(range(n), key=s.__getitem__)
            horizons: Optional[List[int]] = None
            ran_any = False
            for i in order:
                if s[i] >= BLOCKED:
                    continue
                if horizons is None:
                    t0 = perf()
                    horizons = ([BLOCKED] if n == 1
                                else self._assemble_horizons(s))
                    self.horizon_time_s += perf() - t0
                h = horizons[i]
                # A pending refresh deadline additionally bounds
                # run-ahead.  Refresh state is channel-local, so a
                # shard would schedule its refreshes correctly however
                # far it ran -- the clamp is defence in depth: it keeps
                # any future cross-channel refresh coupling (e.g. a
                # shared-rank power budget) failing safe instead of
                # silently diverging, at one barrier per deadline.
                # Clamping strictly above the shard's earliest pending
                # event preserves the progress guarantee.
                if refresh_on[i]:
                    bound = shards[i].controller.refresh_horizon()
                    if bound is not None and s[i] < bound < h:
                        h = bound
                if s[i] >= h:
                    continue
                ran_any = True
                if debug:
                    s_before = list(s)
                    h_list = list(horizons)
                    h_list[i] = h
                t1 = perf()
                total += shards[i].run(h, max_commands - total)
                self.retire_time_s += perf() - t1
                self._refresh_s(i)
                if self.exported:
                    # A direct export may have *lowered* an entry of
                    # ``S``; horizons assembled before it are no longer
                    # conservative.  (A shard merely advancing its own
                    # entry only grows ``S`` -- the assembly stays a
                    # valid, if shallower, bound -- so it does not
                    # force a redo.)
                    self.exported = False
                    horizons = None
                if debug:
                    shard = shards[i]
                    self.debug_trace.append({
                        "shard": i,
                        "s": s_before,
                        "horizons": h_list,
                        "max_issue": shard.round_max_issue,
                        "exports": list(shard.exports),
                    })
                    shard.round_max_issue = -1
                    shard.exports.clear()
                if total >= max_commands:
                    raise CommandBudgetExceeded(
                        f"stopped after {max_commands} commands "
                        f"(raise max_commands to simulate further)")
            if not ran_any:  # pragma: no cover - defensive
                raise DeadlockError(
                    "no shard could advance below its horizon -- "
                    "the lookahead lost the progress guarantee?")

    def _run_threads(self, max_commands: int) -> None:
        """Per-round barrier driver on persistent worker threads.

        Shards run concurrently within a round, so every horizon must
        derive from round-start ``S`` and exports are buffered to the
        barrier -- the protocol of the original driver -- but the
        per-round pool submission is replaced by one long-lived worker
        per channel parked on a shared condition variable: the
        coordinator publishes a generation's task table and waits for
        the pending count to drain.
        """
        shards = self.shards
        n = len(shards)
        s = self.s
        debug = self.debug_trace is not None
        perf = time.perf_counter
        refresh_on = [shard.controller.scheduler.refresh is not None
                      for shard in shards]
        cond = threading.Condition()
        state = {"generation": 0, "stop": False, "pending": 0}
        tasks: List[Optional[Tuple[int, int]]] = [None] * n
        results: List = [0] * n

        def worker(i: int) -> None:
            seen = 0
            shard = shards[i]
            while True:
                with cond:
                    while state["generation"] == seen and \
                            not state["stop"]:
                        cond.wait()
                    if state["stop"]:
                        return
                    seen = state["generation"]
                    task = tasks[i]
                if task is None:
                    outcome = 0
                else:
                    try:
                        outcome = shard.run(task[0], task[1])
                    except BaseException as exc:  # pragma: no cover
                        outcome = exc
                with cond:
                    results[i] = outcome
                    state["pending"] -= 1
                    if not state["pending"]:
                        cond.notify_all()

        workers = [threading.Thread(target=worker, args=(i,),
                                    name=f"shard-{i}", daemon=True)
                   for i in range(n)]
        for w in workers:
            w.start()
        total = 0
        try:
            while True:
                # -- barrier: earliest pending event per shard --------
                t0 = perf()
                for i in range(n):
                    self._refresh_s(i)
                if min(s) >= BLOCKED:
                    if self._check_done():
                        return
                horizons = self._assemble_horizons(s)
                for i in range(n):
                    if not refresh_on[i]:
                        continue
                    bound = shards[i].controller.refresh_horizon()
                    if bound is not None and s[i] < bound < horizons[i]:
                        horizons[i] = bound
                self.rounds += 1
                remaining = max_commands - total
                runnable = 0
                for i in range(n):
                    if s[i] < horizons[i]:
                        tasks[i] = (horizons[i], remaining)
                        runnable += 1
                    else:
                        tasks[i] = None
                self.horizon_time_s += perf() - t0
                if not runnable:  # pragma: no cover - defensive
                    raise DeadlockError(
                        "no shard could advance below its horizon -- "
                        "the lookahead lost the progress guarantee?")
                # -- run every shard with work below its horizon ------
                t1 = perf()
                with cond:
                    state["generation"] += 1
                    state["pending"] = n
                    cond.notify_all()
                    while state["pending"]:
                        cond.wait()
                self.retire_time_s += perf() - t1
                for i in range(n):
                    outcome = results[i]
                    if isinstance(outcome, BaseException):
                        raise outcome  # pragma: no cover - defensive
                    total += outcome
                # -- forward cross-channel arrivals -------------------
                if debug:
                    s_list = list(s)
                    h_list = list(horizons)
                    for i, shard in enumerate(shards):
                        if tasks[i] is None:
                            continue
                        self.debug_trace.append({
                            "shard": i,
                            "s": s_list,
                            "horizons": h_list,
                            "max_issue": shard.round_max_issue,
                            "exports": list(shard.exports),
                        })
                        shard.round_max_issue = -1
                for shard in shards:
                    if shard.exports:
                        for ready, cid, target in shard.exports:
                            heapq.heappush(shards[target].heap,
                                           (ready, cid))
                        shard.exports.clear()
                if total >= max_commands:
                    raise CommandBudgetExceeded(
                        f"stopped after {max_commands} commands "
                        f"(raise max_commands to simulate further)")
        finally:
            with cond:
                state["stop"] = True
                cond.notify_all()
            for w in workers:
                w.join(timeout=5.0)
