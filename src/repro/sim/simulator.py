"""The event-driven simulator binding cores to channel controllers.

The loop processes, in global time order, exactly two kinds of events:

1. a core hands its next memory access to a channel controller, and
2. a controller issues the next DRAM command on its channel.

Controllers report the earliest time they could issue (a pure "peek"),
cores report when their next access is ready (``BLOCKED`` while the ROB is
full behind an outstanding read); the simulator always commits the
earliest event.  Because channels are fully independent and core arrivals
are processed before any later command, this is behaviourally equivalent
to a cycle-by-cycle simulation while skipping every idle cycle.

Core arrivals live in a min-heap keyed by (ready time, core id): a core's
ready time only changes when it hands off a request or one of its reads
completes, so the heap is patched at those two points instead of
re-sorting every core on every iteration.  Stale entries (a read
completion moved a core from ``BLOCKED`` to ready) are dropped lazily at
the top of the heap.  Controller proposals are cached per channel and
invalidated only when that channel's state changes.

Admission uses **wake-on-room parking**: a core whose target channel
queue is full leaves the arrival heap and waits in that channel's
per-channel wait list, re-armed only when the controller retires a
transaction (the sole event that frees queue room), instead of
busy-retrying its doomed ``has_room`` probe on every loop iteration.
Parking is behaviourally invisible -- the retries it skips are pure
reads, and the parked entry re-enters the heap under its original
(ready time, core id) key before the first instant admission can
succeed -- so digests match with parking on or off
(``tests/sim/test_determinism.py``).
"""

from __future__ import annotations

import hashlib
import heapq
import time
from dataclasses import dataclass
from itertools import islice
from typing import Dict, List, Optional, Tuple

from repro.controller.controller import ChannelController, ControllerStats
from repro.controller.transaction import Transaction, TransactionKind
from repro.cpu.core import BLOCKED, TraceCore
from repro.dram.commands import PrechargeCause
from repro.dram.power import EnergyMeter
from repro.sim.accounting import (
    AccountingReport,
    CommandObserver,
    ObserveOptions,
    collect_report,
)
from repro.sim.config import SystemConfig
from repro.sim.tracing import TraceSink


class MemorySystem:
    """All channels of one configuration plus its address mapping.

    ``observe`` attaches the observability layer: ``True`` or an
    :class:`~repro.sim.accounting.ObserveOptions` enables per-channel
    cycle accounting (and optionally the per-command event trace) on
    every controller.  Observation never changes scheduling -- the
    command stream is bit-identical either way.
    """

    #: Capacity bound on the address-route memo.  Traces with a huge
    #: address footprint (or an adversarial address stream) would
    #: otherwise grow the memo without limit; on overflow the
    #: oldest-inserted half is evicted (dict order is insertion order),
    #: so recently touched rows survive while the hit path stays a
    #: plain dict ``get`` with no per-hit bookkeeping.
    ROUTE_CACHE_CAPACITY = 1 << 16

    def __init__(self, config: SystemConfig,
                 observe=None) -> None:
        self.config = config
        self.mapping = config.mapping()
        if observe is True:
            observe = ObserveOptions()
        self.observe: Optional[ObserveOptions] = observe or None
        self.trace: Optional[TraceSink] = (
            self.observe.build_sink() if self.observe else None)
        self.observers: List[Optional[CommandObserver]] = []
        self.controllers: List[ChannelController] = []
        for index in range(config.channels):
            channel = config.build_channel()
            observer = (CommandObserver(index, channel, self.trace)
                        if self.observe else None)
            self.observers.append(observer)
            self.controllers.append(ChannelController(
                channel, config.queue, config.idle_close_ps,
                observer=observer, incremental=config.incremental,
                refresh_policy=config.refresh_policy))
        #: Memoised address routing: traces revisit rows constantly, and
        #: a failed enqueue (full queue) re-routes the same address, so
        #: decoded coordinates are cached per physical address (bounded
        #: by :attr:`ROUTE_CACHE_CAPACITY`).
        self._route_cache: Dict[int, Tuple[ChannelController,
                                           "object", int]] = {}
        #: How many times the route memo overflowed and evicted its
        #: oldest half.
        self.route_cache_clears = 0

    @property
    def route_cache_size(self) -> int:
        """Current number of memoised address routes."""
        return len(self._route_cache)

    def controller_for(self, address: int):
        """(controller, coords, channel index) serving this address."""
        route = self._route_cache.get(address)
        if route is None:
            coords = self.mapping.decode(address)
            route = (self.controllers[coords.channel], coords,
                     coords.channel)
            cache = self._route_cache
            if len(cache) >= self.ROUTE_CACHE_CAPACITY:
                for key in list(islice(cache, len(cache) // 2)):
                    del cache[key]
                self.route_cache_clears += 1
            cache[address] = route
        return route


@dataclass
class SimulationResult:
    """Everything the experiments need from one run."""

    config_name: str
    #: Per-core IPC at the core's own clock.
    ipcs: List[float]
    #: Per-core finish times (ps).
    finish_times: List[int]
    #: Merged controller statistics.
    stats: ControllerStats
    #: Merged energy counters.
    energy: EnergyMeter
    #: Precharge counts by cause, summed over channels (Fig. 13b).
    precharge_causes: Dict[PrechargeCause, int]
    #: Total simulated time = latest core finish (ps).
    elapsed_ps: int = 0
    #: Total memory transactions served.
    transactions: int = 0
    #: Host wall-clock seconds spent in the event loop (perf counter;
    #: like peeks/candidates_built it does not feed the digest).
    wall_time_s: float = 0.0
    #: Address-route memo diagnostics (perf counters, not in the
    #: digest): entries held at run end, and how many oldest-half
    #: evictions the memo performed (``repro stats`` surfaces both).
    route_cache_size: int = 0
    route_cache_clears: int = 0
    #: Sharded-loop coordinator diagnostics (perf counters, never in
    #: the digest; all zero under the classic loop): sweeps/rounds
    #: driven, per-core horizon contributions rebuilt vs. served from
    #: the version-keyed cache, and the coordinator's wall-clock split
    #: between horizon assembly and shard execution.
    rounds: int = 0
    horizons_recomputed: int = 0
    horizons_reused: int = 0
    horizon_time_s: float = 0.0
    retire_time_s: float = 0.0
    #: Cycle-accounting report when the run was observed (``observe=``
    #: on :class:`MemorySystem` / :func:`run_traces`); ``None``
    #: otherwise.  Observability never feeds the digest.
    accounting: Optional[AccountingReport] = None
    #: Per-command event trace when tracing was requested; ``None``
    #: otherwise.
    trace: Optional[TraceSink] = None

    @property
    def plane_conflict_precharge_fraction(self) -> float:
        """Fraction of precharges triggered by plane conflicts."""
        total = sum(self.precharge_causes.values())
        if not total:
            return 0.0
        return self.precharge_causes[PrechargeCause.PLANE_CONFLICT] / total

    @property
    def ewlr_hit_rate(self) -> float:
        if not self.stats.acts:
            return 0.0
        return self.stats.ewlr_hits / self.stats.acts

    def digest(self) -> str:
        """Stable hash of every architecturally visible outcome.

        Two runs are behaviourally identical iff their digests match:
        per-core IPCs and finish times, every command/latency counter,
        energy events, and the precharge-cause split all feed the hash.
        Perf counters (peeks, candidates built) deliberately do *not* --
        they describe scheduler effort, not scheduled behaviour.
        """
        s = self.stats
        e = self.energy
        parts = [
            self.config_name,
            ",".join(repr(v) for v in self.ipcs),
            ",".join(str(v) for v in self.finish_times),
            f"{s.commands_issued},{s.acts},{s.ewlr_hits},{s.columns},"
            f"{s.precharges}",
            ",".join(str(v) for v in sorted(s.read_latencies)),
            f"{e.activations},{e.ewlr_hit_activations},{e.precharges},"
            f"{e.partial_precharges},{e.reads},{e.writes}",
            # The refresh cause joins the serialization only once it
            # fires: refresh-off runs must keep the exact pre-refresh
            # digest strings (the other causes keep their legacy
            # always-present zeros).
            ",".join(f"{c.value}:{n}"
                     for c, n in sorted(self.precharge_causes.items(),
                                        key=lambda kv: kv[0].value)
                     if n or c is not PrechargeCause.REFRESH),
            f"{self.elapsed_ps},{self.transactions}",
        ]
        return hashlib.sha256("|".join(parts).encode()).hexdigest()


class DeadlockError(RuntimeError):
    """The simulator made no progress; indicates a modelling bug."""


class CommandBudgetExceeded(RuntimeError):
    """The run hit the caller's ``max_commands`` budget.

    Distinct from :class:`DeadlockError`: the simulator was still making
    progress, the caller just capped how long it may run.
    """


class Simulator:
    """Run a set of trace cores against one memory system.

    ``park_admission`` selects the admission strategy for cores whose
    target channel queue is full: ``True`` (the default) parks them in
    a per-channel wait list and re-arms them when that controller
    retires a transaction; ``False`` keeps the historical busy-retry
    (the failed arrival re-enters the heap and re-probes every
    iteration).  Both produce identical digests -- parking only skips
    side-effect-free ``has_room`` probes that were bound to fail.
    """

    def __init__(self, system: MemorySystem,
                 cores: List[TraceCore],
                 park_admission: bool = True) -> None:
        self.system = system
        self.cores = cores
        self.now = 0
        self.park_admission = park_admission
        #: Cached scheduler proposals per channel, invalidated on change.
        self._peeks: List = [None] * len(system.controllers)
        self._dirty = [True] * len(system.controllers)
        #: Min-heap of (ready time, core id) arrival events; cores whose
        #: next access is BLOCKED have no entry until a read completion
        #: re-inserts them, and cores parked on a full queue have no
        #: entry until room opens on their channel.
        self._arrivals: List[Tuple[int, int]] = []
        #: Wake-on-room wait lists: per channel, the (ready, core id)
        #: heap entries of cores whose admission failed on a full
        #: queue.  Re-armed wholesale when that controller retires a
        #: transaction (the only event that frees room).
        self._parked: List[List[Tuple[int, int]]] = [
            [] for _ in system.controllers]
        #: Core ids currently parked (guards against double-parking a
        #: core whose stale heap duplicate -- e.g. pushed by a read
        #: completion -- fails admission again while parked).
        self._parked_cores: set = set()

    # -- internals ---------------------------------------------------------

    def _peek_channel(self, idx: int):
        if self._dirty[idx]:
            self._peeks[idx] = self.system.controllers[idx].peek(self.now)
            self._dirty[idx] = False
        return self._peeks[idx]

    def _earliest_command(self):
        # _peek_channel, inlined: this runs once per main-loop
        # iteration and the call overhead was measurable on wide grids.
        best_idx, best = None, None
        peeks, dirty = self._peeks, self._dirty
        controllers = self.system.controllers
        now = self.now
        for idx in range(len(controllers)):
            if dirty[idx]:
                peeks[idx] = controllers[idx].peek(now)
                dirty[idx] = False
            cand = peeks[idx]
            if cand is None:
                continue
            if best is None or cand.issue_time < best.issue_time:
                best, best_idx = cand, idx
        return best_idx, best

    def _try_enqueue(self, core: TraceCore, ready: int) -> bool:
        entry = core.peek_entry()
        controller, coords, idx = self.system.controller_for(entry.address)
        if not controller.has_room(not entry.is_write):
            if self.park_admission:
                # Park under the target channel; _commit re-arms the
                # entry when this controller retires a transaction.  A
                # core can only be parked once -- duplicates (stale
                # heap entries) are dropped here and re-created from
                # the parked entry on wake.
                cid = core.core_id
                if cid not in self._parked_cores:
                    self._parked_cores.add(cid)
                    self._parked[idx].append((ready, cid))
            return False
        time = max(self.now, ready)
        core.pop_request(time)
        txn = Transaction(
            kind=(TransactionKind.WRITE if entry.is_write
                  else TransactionKind.READ),
            address=entry.address,
            coords=coords,
            core=core.core_id,
            instruction=core.instruction_index_of_last_request(),
        )
        controller.enqueue(txn, time)
        self.now = time
        self._dirty[idx] = True
        return True

    def _commit(self, idx: int, candidate) -> None:
        controller = self.system.controllers[idx]
        completed = controller.commit(candidate)
        self.now = max(self.now, candidate.issue_time)
        self._dirty[idx] = True
        if completed and self._parked[idx]:
            # A retired transaction freed queue room: wake every core
            # parked on this channel.  Entries re-enter the heap under
            # their original (ready, core id) keys, so the admission
            # order after the wake matches what busy-retry would have
            # tried on its next iteration.
            for item in self._parked[idx]:
                heapq.heappush(self._arrivals, item)
                self._parked_cores.discard(item[1])
            self._parked[idx].clear()
        for txn in completed:
            if txn.is_read and txn.core >= 0:
                core = self.cores[txn.core]
                core.complete_read(txn.instruction, txn.completion_time)
                # The completion may have unblocked the core (ROB no
                # longer pinned / dependent address now known).
                ready = core.next_request_time()
                if ready < BLOCKED:
                    heapq.heappush(self._arrivals,
                                   (ready, txn.core))

    # -- main loop -----------------------------------------------------------

    def run(self, max_commands: int = 1 << 31) -> SimulationResult:
        wall_start = time.perf_counter()
        commands = 0
        cores = self.cores
        heap = self._arrivals
        heap.clear()
        for parked in self._parked:
            parked.clear()
        self._parked_cores.clear()
        for core in cores:
            ready = core.next_request_time()
            if ready < BLOCKED:
                heap.append((ready, core.core_id))
        heapq.heapify(heap)
        heappush, heappop = heapq.heappush, heapq.heappop
        park = self.park_admission
        while True:
            cmd_idx, cmd = self._earliest_command()
            cmd_time = cmd.issue_time if cmd is not None else BLOCKED

            # All ready core requests, earliest first.  Cores whose target
            # queue is full must not head-of-line-block other cores: a
            # failed admission parks in the channel's wait list until
            # room opens (or, under busy-retry, is set aside and retried
            # next iteration).
            enqueued = False
            deferred = None
            while heap:
                ready, cid = heap[0]
                core = cores[cid]
                actual = core.next_request_time()
                if actual != ready:
                    # Stale entry (a completion re-inserted this core).
                    heappop(heap)
                    if actual < BLOCKED:
                        heappush(heap, (actual, cid))
                    continue
                if ready > cmd_time:
                    break
                heappop(heap)
                if self._try_enqueue(core, ready):
                    enqueued = True
                    nxt = core.next_request_time()
                    if nxt < BLOCKED:
                        heappush(heap, (nxt, cid))
                    break
                if park:
                    continue  # parked under its channel by _try_enqueue
                if deferred is None:
                    deferred = []
                deferred.append((ready, cid))
            if deferred:
                for item in deferred:
                    heappush(heap, item)
            if enqueued:
                continue

            if cmd is None:
                if all(core.done for core in self.cores):
                    break
                if self._parked_cores:
                    raise DeadlockError(
                        "cores parked on a full queue but no channel has "
                        "a command pending -- lost a wake-on-room signal?")
                raise DeadlockError(
                    "no events but cores unfinished -- lost a completion?")
            self._commit(cmd_idx, cmd)
            commands += 1
            if commands >= max_commands:
                raise CommandBudgetExceeded(
                    f"stopped after {max_commands} commands "
                    f"(raise max_commands to simulate further)")
        result = self._result()
        result.wall_time_s = time.perf_counter() - wall_start
        return result

    def _result(self) -> SimulationResult:
        return collect_result(self.system, self.cores)


def collect_result(system: MemorySystem,
                   cores: List[TraceCore]) -> SimulationResult:
    """Aggregate a finished run into a :class:`SimulationResult`.

    Shared by every execution backend (the classic loop above and the
    sharded runners in :mod:`repro.sim.shards`): results are a pure
    function of the post-run system and core state, so backends that
    schedule identically aggregate identically.
    """
    stats = ControllerStats()
    energy = EnergyMeter(system.config.energy)
    causes = {cause: 0 for cause in PrechargeCause}
    for controller in system.controllers:
        controller.collect_perf_counters()
        stats.merge(controller.stats)
        energy.merge(controller.channel.energy)
        for cause, n in controller.channel.precharge_causes.items():
            causes[cause] += n
    finish = [core.finish_time() for core in cores]
    elapsed = max(finish) if finish else 0
    return SimulationResult(
        config_name=system.config.name,
        ipcs=[core.ipc() for core in cores],
        finish_times=finish,
        stats=stats,
        energy=energy,
        precharge_causes=causes,
        elapsed_ps=elapsed,
        transactions=stats.columns,
        route_cache_size=system.route_cache_size,
        route_cache_clears=system.route_cache_clears,
        accounting=collect_report(system.config.name,
                                  system.observers, elapsed),
        trace=system.trace,
    )


def run_traces(config: SystemConfig, traces, core_config=None,
               observe=None, shards=None) -> SimulationResult:
    """Convenience: build a system, one core per trace, and run.

    ``observe`` (``True`` or an
    :class:`~repro.sim.accounting.ObserveOptions`) attaches cycle
    accounting / event tracing; the result then carries
    ``result.accounting`` (and ``result.trace``).

    ``shards`` picks the execution backend: ``"off"`` is the classic
    global event loop above, ``"serial"`` / ``"threads"`` the
    channel-sharded loop of :mod:`repro.sim.shards`.  ``None`` defers
    to ``config.shards``, then to the module default
    (:data:`repro.sim.shards.SHARDS_DEFAULT`).  Every backend is
    digest-identical; only host-side performance differs.
    """
    from repro.cpu.core import CoreConfig
    from repro.sim.shards import ShardedSimulator, resolve_shard_mode
    system = MemorySystem(config, observe=observe)
    cc = core_config or CoreConfig()
    cores = [TraceCore(trace, cc, core_id=i)
             for i, trace in enumerate(traces)]
    mode = resolve_shard_mode(
        shards if shards is not None else config.shards)
    if mode == "off" or len(cores) < 2:
        # A single core serializes every channel (each arrival's ready
        # time depends directly on the previous pop, wherever it
        # landed), so the sharded loop would degenerate to one event
        # per barrier round; the classic loop is the faster identical
        # engine for 1-core runs.
        return Simulator(system, cores).run()
    return ShardedSimulator(system, cores, backend=mode).run()
