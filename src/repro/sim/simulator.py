"""The event-driven simulator binding cores to channel controllers.

The loop processes, in global time order, exactly two kinds of events:

1. a core hands its next memory access to a channel controller, and
2. a controller issues the next DRAM command on its channel.

Controllers report the earliest time they could issue (a pure "peek"),
cores report when their next access is ready (``BLOCKED`` while the ROB is
full behind an outstanding read); the simulator always commits the
earliest event.  Because channels are fully independent and core arrivals
are processed before any later command, this is behaviourally equivalent
to a cycle-by-cycle simulation while skipping every idle cycle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.controller.controller import ChannelController, ControllerStats
from repro.controller.transaction import Transaction, TransactionKind
from repro.cpu.core import BLOCKED, TraceCore
from repro.dram.commands import PrechargeCause
from repro.dram.power import EnergyMeter
from repro.sim.config import SystemConfig


class MemorySystem:
    """All channels of one configuration plus its address mapping."""

    def __init__(self, config: SystemConfig) -> None:
        self.config = config
        self.mapping = config.mapping()
        self.controllers: List[ChannelController] = [
            ChannelController(config.build_channel(), config.queue,
                              config.idle_close_ps)
            for _ in range(config.channels)
        ]

    def controller_for(self, address: int):
        """(controller, coords, channel index) serving this address."""
        coords = self.mapping.decode(address)
        return self.controllers[coords.channel], coords, coords.channel


@dataclass
class SimulationResult:
    """Everything the experiments need from one run."""

    config_name: str
    #: Per-core IPC at the core's own clock.
    ipcs: List[float]
    #: Per-core finish times (ps).
    finish_times: List[int]
    #: Merged controller statistics.
    stats: ControllerStats
    #: Merged energy counters.
    energy: EnergyMeter
    #: Precharge counts by cause, summed over channels (Fig. 13b).
    precharge_causes: Dict[PrechargeCause, int]
    #: Total simulated time = latest core finish (ps).
    elapsed_ps: int = 0
    #: Total memory transactions served.
    transactions: int = 0

    @property
    def plane_conflict_precharge_fraction(self) -> float:
        """Fraction of precharges triggered by plane conflicts."""
        total = sum(self.precharge_causes.values())
        if not total:
            return 0.0
        return self.precharge_causes[PrechargeCause.PLANE_CONFLICT] / total

    @property
    def ewlr_hit_rate(self) -> float:
        if not self.stats.acts:
            return 0.0
        return self.stats.ewlr_hits / self.stats.acts


class DeadlockError(RuntimeError):
    """The simulator made no progress; indicates a modelling bug."""


class Simulator:
    """Run a set of trace cores against one memory system."""

    def __init__(self, system: MemorySystem,
                 cores: List[TraceCore]) -> None:
        self.system = system
        self.cores = cores
        self.now = 0
        #: Cached scheduler proposals per channel, invalidated on change.
        self._peeks: List = [None] * len(system.controllers)
        self._dirty = [True] * len(system.controllers)

    # -- internals ---------------------------------------------------------

    def _peek_channel(self, idx: int):
        if self._dirty[idx]:
            self._peeks[idx] = self.system.controllers[idx].peek(self.now)
            self._dirty[idx] = False
        return self._peeks[idx]

    def _earliest_command(self):
        best_idx, best = None, None
        for idx in range(len(self.system.controllers)):
            cand = self._peek_channel(idx)
            if cand is None:
                continue
            if best is None or cand.issue_time < best.issue_time:
                best, best_idx = cand, idx
        return best_idx, best

    def _try_enqueue(self, core: TraceCore, ready: int) -> bool:
        entry = core.peek_entry()
        controller, coords, idx = self.system.controller_for(entry.address)
        if not controller.has_room(not entry.is_write):
            return False
        time = max(self.now, ready)
        core.pop_request(time)
        txn = Transaction(
            kind=(TransactionKind.WRITE if entry.is_write
                  else TransactionKind.READ),
            address=entry.address,
            coords=coords,
            core=core.core_id,
            instruction=core.instruction_index_of_last_request(),
        )
        controller.enqueue(txn, time)
        self.now = time
        self._dirty[idx] = True
        return True

    def _commit(self, idx: int, candidate) -> None:
        controller = self.system.controllers[idx]
        completed = controller.commit(candidate)
        self.now = max(self.now, candidate.issue_time)
        self._dirty[idx] = True
        for txn in completed:
            if txn.is_read and txn.core >= 0:
                self.cores[txn.core].complete_read(
                    txn.instruction, txn.completion_time)

    # -- main loop -----------------------------------------------------------

    def run(self, max_commands: int = 1 << 31) -> SimulationResult:
        commands = 0
        while True:
            # All ready core requests, earliest first.  Cores whose target
            # queue is full must not head-of-line-block other cores.
            ready_cores = sorted(
                ((core.next_request_time(), core.core_id, core)
                 for core in self.cores),
                key=lambda item: item[:2])
            cmd_idx, cmd = self._earliest_command()
            cmd_time = cmd.issue_time if cmd is not None else BLOCKED

            enqueued = False
            for ready, _, core in ready_cores:
                if ready >= BLOCKED or ready > cmd_time:
                    break
                if self._try_enqueue(core, ready):
                    enqueued = True
                    break
            if enqueued:
                continue

            if cmd is None:
                if all(core.done for core in self.cores):
                    break
                raise DeadlockError(
                    "no events but cores unfinished -- lost a completion?")
            self._commit(cmd_idx, cmd)
            commands += 1
            if commands >= max_commands:
                raise DeadlockError(
                    f"exceeded {max_commands} commands; likely livelock")
        return self._result()

    def _result(self) -> SimulationResult:
        stats = ControllerStats()
        energy = EnergyMeter(self.system.config.energy)
        causes = {cause: 0 for cause in PrechargeCause}
        for controller in self.system.controllers:
            stats.merge(controller.stats)
            energy.merge(controller.channel.energy)
            for cause, n in controller.channel.precharge_causes.items():
                causes[cause] += n
        finish = [core.finish_time() for core in self.cores]
        return SimulationResult(
            config_name=self.system.config.name,
            ipcs=[core.ipc() for core in self.cores],
            finish_times=finish,
            stats=stats,
            energy=energy,
            precharge_causes=causes,
            elapsed_ps=max(finish) if finish else 0,
            transactions=stats.columns,
        )


def run_traces(config: SystemConfig, traces, core_config=None
               ) -> SimulationResult:
    """Convenience: build a system, one core per trace, and run."""
    from repro.cpu.core import CoreConfig
    system = MemorySystem(config)
    cc = core_config or CoreConfig()
    cores = [TraceCore(trace, cc, core_id=i)
             for i, trace in enumerate(traces)]
    return Simulator(system, cores).run()
