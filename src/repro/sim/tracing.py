"""Structured per-command event tracing.

Every committed DRAM command can be captured as a :class:`TraceEvent`:
*when* it issued, *where* (channel / bank / sub-bank / sub-array group),
*what* it was (ACT / RD / WR / PRE and, for precharges, the cause from
:class:`~repro.dram.commands.PrechargeCause`), and *why it waited* -- the
stall bucket :mod:`repro.sim.accounting` attributed to the gap since the
channel's previous command.

The trace is collected by a :class:`TraceSink` shared by all channels of
one run and is exported as JSON-lines or CSV (``repro trace`` on the
command line).  Tracing is strictly an observer: enabling it never
changes a single issued command (the digest-identity tests in
``tests/sim/test_accounting.py`` prove it), and when it is disabled the
simulator pays only one ``is None`` check per committed command.
"""

from __future__ import annotations

import csv
import json
from dataclasses import asdict, dataclass
from typing import IO, Iterator, List, Optional

#: Column order of the CSV export; also the canonical schema of one
#: event (documented in docs/OBSERVABILITY.md).
TRACE_FIELDS = (
    "time_ps",
    "channel",
    "bank",
    "subbank",
    "group",
    "kind",
    "cause",
    "row",
    "core",
    "stall",
    "wait_ps",
)


@dataclass(slots=True)
class TraceEvent:
    """One committed DRAM command, with its stall attribution.

    ``wait_ps`` is the stall gap this command closed: the time from the
    channel's previous command becoming *done with the command bus* to
    this command's issue.  ``stall`` names the
    :class:`~repro.sim.accounting.StallBucket` that gap was charged to
    (``issue`` when the command issued back-to-back with no gap).
    """

    #: Issue time, integer picoseconds since simulation start.
    time_ps: int
    #: Channel index within the memory system.
    channel: int
    #: Flattened bank index within the channel.
    bank: int
    #: Sub-bank (0 for full-bank organisations, 0/1 for VSB-style).
    subbank: int
    #: MASA sub-array group (0 unless the organisation has groups).
    group: int
    #: Command opcode name: ``ACT`` / ``RD`` / ``WR`` / ``PRE``.
    kind: str
    #: Precharge cause (``row_conflict`` / ``plane_conflict`` /
    #: ``page_policy``), empty for non-precharge commands.
    cause: str
    #: Row address for ACTs (-1 for commands that carry no row).
    row: int
    #: Issuing core (index into the mix), -1 for policy precharges.
    core: int
    #: Stall bucket charged for the wait preceding this command.
    stall: str
    #: Length of that wait (ps); 0 for back-to-back issue.
    wait_ps: int


class TraceSink:
    """Collects :class:`TraceEvent` records for one simulation run.

    ``limit`` bounds memory on long runs: once reached, further events
    are counted in :attr:`dropped` instead of stored, and the exporters
    note the truncation.  The default (``None``) keeps everything.
    """

    def __init__(self, limit: Optional[int] = None) -> None:
        if limit is not None and limit < 0:
            raise ValueError("trace limit must be non-negative")
        self.limit = limit
        self.events: List[TraceEvent] = []
        #: Events discarded after :attr:`limit` was reached.
        self.dropped = 0

    def record(self, event: TraceEvent) -> None:
        """Append one event (or count it as dropped past the limit)."""
        if self.limit is not None and len(self.events) >= self.limit:
            self.dropped += 1
            return
        self.events.append(event)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events)

    # -- exporters -------------------------------------------------------

    def to_dicts(self) -> List[dict]:
        """The events as plain dicts (the JSON schema)."""
        return [asdict(e) for e in self.events]

    def write_jsonl(self, fh: IO[str]) -> int:
        """Write one JSON object per line; returns the event count."""
        for event in self.events:
            fh.write(json.dumps(asdict(event), sort_keys=True))
            fh.write("\n")
        return len(self.events)

    def write_csv(self, fh: IO[str]) -> int:
        """Write a CSV with the :data:`TRACE_FIELDS` header."""
        writer = csv.writer(fh)
        writer.writerow(TRACE_FIELDS)
        for event in self.events:
            d = asdict(event)
            writer.writerow([d[f] for f in TRACE_FIELDS])
        return len(self.events)
