"""Spec execution: diff cells against the store, run only the missing.

:func:`run_spec` is the "experiment grid as a service" entry point: it
expands an :class:`~repro.sim.specs.ExperimentSpec` into cells, serves
every cell already present in the content-addressed store
(:mod:`repro.sim.store`), and submits *only the missing ones* through
the warm-pool grid executor (:func:`repro.sim.parallel.run_grid`),
persisting each new result as it lands.  Killing a sweep and
resubmitting it therefore re-runs only what is absent -- the
:class:`RunReport` counters (``store_hits`` vs ``submitted``) prove it,
and they are what the resume tests and the CI resume-smoke step assert
on.

Because the store diff happens *before* jobs reach ``run_grid``, the
grid's serial-fallback cost gate sees the post-diff cell count: a
mostly-cached large grid sums only its missing cells' cost and falls
back to serial instead of paying pool warm-up.

:class:`ResultSet` wraps the executed cells for the pure figure
reducers in :mod:`repro.sim.experiments` -- lookups by (config, mix,
fragmentation, seed, core) plus the weighted-speedup helper every
speedup figure shares.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.cpu.core import CoreConfig
from repro.sim.metrics import weighted_speedup
from repro.sim.parallel import SimJob, run_grid
from repro.sim.simulator import SimulationResult
from repro.sim.specs import CellKey, ExperimentSpec
from repro.sim.store import ResultStore
from repro.workloads.mixes import MIXES

#: Optional per-cell progress callback: ``progress(cell, status)`` with
#: status ``"memory"`` (already in the in-process cache), ``"store"``
#: (served from disk), or ``"run"`` (simulated just now).
ProgressFn = Callable[[CellKey, str], None]


@dataclass
class RunReport:
    """What one :func:`execute_cells` pass did, cell by cell."""

    cells: int = 0
    #: Served from the caller's in-process result dict.
    memory_hits: int = 0
    #: Served from the on-disk result store.
    store_hits: int = 0
    #: Simulated this pass (the only cells that cost wall time).
    submitted: int = 0

    def summary(self) -> str:
        """One stable line the CLI prints and CI greps."""
        return (f"cells={self.cells} memory_hits={self.memory_hits} "
                f"store_hits={self.store_hits} "
                f"submitted={self.submitted}")


def cell_job(cell: CellKey, observe: bool = False) -> SimJob:
    """The :class:`SimJob` that executes one cell."""
    return SimJob(
        config=cell.config, accesses=cell.accesses,
        fragmentation=cell.fragmentation, seed=cell.seed,
        core_config=cell.core_config,
        mix=cell.workload if cell.kind == "mix" else None,
        benchmark=cell.workload if cell.kind == "alone" else None,
        observe=observe and cell.kind == "mix")


def execute_cells(cells: Sequence[CellKey], *,
                  results: Dict[CellKey, SimulationResult],
                  store: Optional[ResultStore] = None,
                  jobs: int = 1, observe: bool = False,
                  progress: Optional[ProgressFn] = None) -> RunReport:
    """Fill ``results`` with every cell's result; run only the missing.

    The diff runs in three layers: the ``results`` dict itself (the
    caller's in-process cache -- entries surviving from earlier specs
    count as memory hits), then the store, then simulation via
    :func:`run_grid` (``jobs``-wide, serial when ``jobs <= 1`` or the
    *missing* cost falls below the grid's gate).  Newly simulated
    results are persisted to the store as they arrive.  With
    ``observe``, mix cells whose cached result lacks an accounting
    sidecar are treated as missing and re-run observed.
    """
    report = RunReport(cells=len(cells))
    missing: List[CellKey] = []
    for cell in cells:
        needs_report = observe and cell.kind == "mix"
        cached = results.get(cell)
        if cached is not None and not (needs_report
                                       and cached.accounting is None):
            report.memory_hits += 1
            if progress:
                progress(cell, "memory")
            continue
        if store is not None:
            stored = store.get(cell.store_key(),
                               need_accounting=needs_report)
            if stored is not None:
                results[cell] = stored
                report.store_hits += 1
                if progress:
                    progress(cell, "store")
                continue
        missing.append(cell)
    if not missing:
        return report
    # Group cells sharing a workload next to each other: chunked
    # dispatch then lands them on one worker, whose per-process trace
    # memo regenerates the traces once per group.
    order = sorted(range(len(missing)), key=lambda i: (
        missing[i].kind, missing[i].workload,
        missing[i].fragmentation, missing[i].seed, i))
    missing = [missing[i] for i in order]
    sim_jobs = [cell_job(cell, observe) for cell in missing]

    def on_result(index: int, result: SimulationResult) -> None:
        cell = missing[index]
        results[cell] = result
        if store is not None:
            store.put(cell.store_key(), result,
                      key_info=cell.describe())
        report.submitted += 1
        if progress:
            progress(cell, "run")

    run_grid(sim_jobs, jobs, on_result=on_result)
    return report


def run_spec(spec: ExperimentSpec, *, jobs: int = 1,
             store: Optional[ResultStore] = None,
             core_config: CoreConfig = CoreConfig(),
             progress: Optional[ProgressFn] = None
             ) -> Tuple["ResultSet", RunReport]:
    """Execute one spec against the store; return results + counters.

    ``store=None`` creates the default store (honouring
    ``REPRO_CACHE_DIR``); resubmitting the same spec -- or any spec
    sharing cells with it -- executes only what is absent.
    """
    if store is None:
        store = ResultStore()
    results: Dict[CellKey, SimulationResult] = {}
    report = execute_cells(
        spec.expand(core_config), results=results, store=store,
        jobs=jobs, observe=spec.observe, progress=progress)
    return ResultSet(spec, results, core_config), report


class ResultSet:
    """Executed cells of one spec, indexed for the figure reducers.

    Lookups default to the spec's first fragmentation/seed level, so
    single-level reducers (most figures) just say
    ``rs.mix(config, "mix0")``; sweep reducers pass the axis values
    explicitly.
    """

    def __init__(self, spec: ExperimentSpec,
                 results: Dict[CellKey, SimulationResult],
                 core_config: CoreConfig = CoreConfig()) -> None:
        self.spec = spec
        self.results = results
        self.core_config = core_config
        self._alone_config = spec.alone.to_config()

    def _key(self, kind, config, workload, fragmentation, seed, core):
        spec = self.spec
        return CellKey(
            kind=kind, config=config, workload=workload,
            accesses=spec.accesses_per_core,
            fragmentation=(spec.fragmentations[0]
                           if fragmentation is None else fragmentation),
            seed=spec.expanded_seeds()[0] if seed is None else seed,
            core_config=core or self.core_config)

    def mix(self, config, mix: str, fragmentation: float = None,
            seed: int = None,
            core_config: CoreConfig = None) -> SimulationResult:
        """The mix cell's result (KeyError if not in the spec)."""
        return self.results[self._key("mix", config, mix,
                                      fragmentation, seed, core_config)]

    def alone_ipc(self, benchmark: str, fragmentation: float = None,
                  seed: int = None,
                  core_config: CoreConfig = None) -> float:
        """The benchmark's alone IPC on the spec's alone baseline."""
        cell = self._key("alone", self._alone_config, benchmark,
                         fragmentation, seed, core_config)
        return self.results[cell].ipcs[0]

    def ws(self, config, mix: str, fragmentation: float = None,
           seed: int = None, core_config: CoreConfig = None
           ) -> Tuple[float, SimulationResult]:
        """Snavely-Tullsen weighted speedup of one mix cell."""
        result = self.mix(config, mix, fragmentation, seed, core_config)
        names, _ = MIXES[mix]
        alone = [self.alone_ipc(n, fragmentation, seed, core_config)
                 for n in names]
        return weighted_speedup(result.ipcs, alone), result
