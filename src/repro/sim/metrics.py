"""Performance metrics: IPC aggregation and weighted speedup.

The paper reports *weighted speedup* [Snavely & Tullsen]:

    WS = sum_i IPC_shared,i / IPC_alone,i

normalised to the DDR4 baseline.  Alone-IPCs are measured by running each
benchmark by itself on the baseline memory system; using one alone-IPC set
for every configuration keeps the normalised comparison exact (the alone
term cancels identically in the ratio of two configurations' WS) while
halving simulation cost.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Dict, Iterable, Iterator, Sequence, Union


def rate(part: float, whole: float) -> float:
    """``part / whole``, defined as 0.0 when the denominator is zero.

    The cycle-accounting roll-ups (:mod:`repro.sim.accounting`) report
    many ratios over counters that may legitimately be zero -- a bank
    that never saw a column command has no row-hit rate -- so the shared
    helper makes "no events" read as 0 everywhere instead of scattering
    guards.

    >>> rate(3, 4)
    0.75
    >>> rate(1, 0)
    0.0
    """
    if not whole:
        return 0.0
    return part / whole


def weighted_speedup(shared_ipcs: Sequence[float],
                     alone_ipcs: Sequence[float]) -> float:
    """Snavely-Tullsen weighted speedup of one mix run."""
    if len(shared_ipcs) != len(alone_ipcs):
        raise ValueError("shared and alone IPC lists differ in length")
    if not shared_ipcs:
        raise ValueError("empty IPC lists")
    for alone in alone_ipcs:
        if alone <= 0:
            raise ValueError("alone IPC must be positive")
    return sum(s / a for s, a in zip(shared_ipcs, alone_ipcs))


def normalized(values: Dict[str, float], baseline: str) -> Dict[str, float]:
    """Normalise a {config: value} dict to one baseline config."""
    if baseline not in values:
        raise KeyError(f"baseline {baseline!r} missing from values")
    base = values[baseline]
    if base <= 0:
        raise ValueError("baseline value must be positive")
    return {name: v / base for name, v in values.items()}


def gmean(values: Iterable[float]) -> float:
    """Geometric mean (the paper's GMEAN column)."""
    vals = list(values)
    if not vals:
        raise ValueError("gmean of empty sequence")
    if any(v <= 0 for v in vals):
        raise ValueError("gmean requires positive values")
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


class LatencyHistogram:
    """Bounded-memory exact latency accumulator (Fig. 16a inputs).

    Functionally a multiset of integer latencies, stored as
    ``{value: count}`` so memory is O(unique values) instead of O(
    samples): a grid cell serving millions of reads keeps a few
    thousand distinct latencies.  Everything downstream is exact --
    quantiles use the same nearest-rank definition as
    :func:`quartiles`, and iteration yields the *sorted expansion*
    (each value repeated ``count`` times), which is how the result
    digest reproduces the historical sorted-list encoding bit for bit.

    >>> h = LatencyHistogram([3, 1, 3])
    >>> list(h), len(h), h.min()
    ([1, 3, 3], 3, 1)
    >>> h.merge(LatencyHistogram([2])); h.quartiles()["median"]
    2.0
    """

    __slots__ = ("counts", "total")

    def __init__(self, values: Iterable[int] = ()) -> None:
        self.counts: Counter = Counter(values)
        self.total = sum(self.counts.values())

    def add(self, value: int) -> None:
        """Record one sample."""
        self.counts[value] += 1
        self.total += 1

    def merge(self, other: "LatencyHistogram") -> None:
        """Fold another histogram in -- O(unique values of ``other``)."""
        self.counts.update(other.counts)
        self.total += other.total

    def min(self) -> int:
        """Smallest recorded sample."""
        if not self.total:
            raise ValueError("empty histogram")
        return min(self.counts)

    def max(self) -> int:
        """Largest recorded sample."""
        if not self.total:
            raise ValueError("empty histogram")
        return max(self.counts)

    def mean(self) -> float:
        """Arithmetic mean of all samples."""
        if not self.total:
            raise ValueError("empty histogram")
        return sum(v * c for v, c in self.counts.items()) / self.total

    def quantile(self, fraction: float) -> float:
        """Nearest-rank quantile: the sample at 1-indexed rank
        ``ceil(fraction * n)``, identical to :func:`quartiles`' pick."""
        if not self.total:
            raise ValueError("empty histogram")
        rank = max(1, math.ceil(fraction * self.total))
        seen = 0
        for value in sorted(self.counts):
            seen += self.counts[value]
            if seen >= rank:
                return float(value)
        raise AssertionError("rank beyond total")  # pragma: no cover

    def quartiles(self) -> Dict[str, float]:
        """Same dict as :func:`quartiles` over the expansion, computed
        from counts without materialising the samples."""
        return {
            "mean": self.mean(),
            "q1": self.quantile(0.25),
            "median": self.quantile(0.5),
            "q3": self.quantile(0.75),
        }

    def __len__(self) -> int:
        return self.total

    def __bool__(self) -> bool:
        return self.total > 0

    def __iter__(self) -> Iterator[int]:
        """Sorted expansion: each value repeated ``count`` times."""
        for value in sorted(self.counts):
            count = self.counts[value]
            for _ in range(count):
                yield value

    def __eq__(self, other: object) -> bool:
        if isinstance(other, LatencyHistogram):
            return self.counts == other.counts
        if isinstance(other, (list, tuple)):
            return list(self) == list(other)
        return NotImplemented

    def __repr__(self) -> str:
        return (f"LatencyHistogram(samples={self.total}, "
                f"unique={len(self.counts)})")


def quartiles(samples: Union[Sequence[int], LatencyHistogram]
              ) -> Dict[str, float]:
    """Mean and quartiles of a latency sample (Fig. 16a box stats).

    Quartiles use the nearest-rank definition: the p-quantile of n
    sorted samples is element ``ceil(p * n)`` (1-indexed), so e.g.
    ``median([1, 2, 3, 4]) == 2.0`` (the lower middle element, rank 2),
    never an element above the requested fraction.

    A :class:`LatencyHistogram` is answered from its counts directly
    (no expansion); the two routes agree exactly.
    """
    if isinstance(samples, LatencyHistogram):
        if not samples:
            raise ValueError("no samples")
        return samples.quartiles()
    if not samples:
        raise ValueError("no samples")
    s = sorted(samples)
    n = len(s)

    def pick(fraction: float) -> float:
        return float(s[max(0, math.ceil(fraction * n) - 1)])

    return {
        "mean": sum(s) / n,
        "q1": pick(0.25),
        "median": pick(0.5),
        "q3": pick(0.75),
    }
