"""Performance metrics: IPC aggregation and weighted speedup.

The paper reports *weighted speedup* [Snavely & Tullsen]:

    WS = sum_i IPC_shared,i / IPC_alone,i

normalised to the DDR4 baseline.  Alone-IPCs are measured by running each
benchmark by itself on the baseline memory system; using one alone-IPC set
for every configuration keeps the normalised comparison exact (the alone
term cancels identically in the ratio of two configurations' WS) while
halving simulation cost.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Sequence


def rate(part: float, whole: float) -> float:
    """``part / whole``, defined as 0.0 when the denominator is zero.

    The cycle-accounting roll-ups (:mod:`repro.sim.accounting`) report
    many ratios over counters that may legitimately be zero -- a bank
    that never saw a column command has no row-hit rate -- so the shared
    helper makes "no events" read as 0 everywhere instead of scattering
    guards.

    >>> rate(3, 4)
    0.75
    >>> rate(1, 0)
    0.0
    """
    if not whole:
        return 0.0
    return part / whole


def weighted_speedup(shared_ipcs: Sequence[float],
                     alone_ipcs: Sequence[float]) -> float:
    """Snavely-Tullsen weighted speedup of one mix run."""
    if len(shared_ipcs) != len(alone_ipcs):
        raise ValueError("shared and alone IPC lists differ in length")
    if not shared_ipcs:
        raise ValueError("empty IPC lists")
    for alone in alone_ipcs:
        if alone <= 0:
            raise ValueError("alone IPC must be positive")
    return sum(s / a for s, a in zip(shared_ipcs, alone_ipcs))


def normalized(values: Dict[str, float], baseline: str) -> Dict[str, float]:
    """Normalise a {config: value} dict to one baseline config."""
    if baseline not in values:
        raise KeyError(f"baseline {baseline!r} missing from values")
    base = values[baseline]
    if base <= 0:
        raise ValueError("baseline value must be positive")
    return {name: v / base for name, v in values.items()}


def gmean(values: Iterable[float]) -> float:
    """Geometric mean (the paper's GMEAN column)."""
    vals = list(values)
    if not vals:
        raise ValueError("gmean of empty sequence")
    if any(v <= 0 for v in vals):
        raise ValueError("gmean requires positive values")
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


def quartiles(samples: Sequence[int]) -> Dict[str, float]:
    """Mean and quartiles of a latency sample (Fig. 16a box stats).

    Quartiles use the nearest-rank definition: the p-quantile of n
    sorted samples is element ``ceil(p * n)`` (1-indexed), so e.g.
    ``median([1, 2, 3, 4]) == 2.0`` (the lower middle element, rank 2),
    never an element above the requested fraction.
    """
    if not samples:
        raise ValueError("no samples")
    s = sorted(samples)
    n = len(s)

    def pick(fraction: float) -> float:
        return float(s[max(0, math.ceil(fraction * n) - 1)])

    return {
        "mean": sum(s) / n,
        "q1": pick(0.25),
        "median": pick(0.5),
        "q3": pick(0.75),
    }
