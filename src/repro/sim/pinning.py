"""Reduced-output payloads and digests for every figure runner.

The experiment-layer refactor (declarative specs + content-addressed
store) carries one non-negotiable invariant: **every figure's numbers
are identical to the pre-refactor path**.  This module freezes what
"the numbers" are -- for each figure/table runner it renders the
*reduced output* (the GMEAN tables, sweep points, quartile rows the
benches print) into a canonical JSON-able payload and hashes it.

``tools/pin_figure_digests.py`` ran these builders against the
pre-refactor code and pinned the digests in
``tests/data/figure_digests.json``; ``tests/sim/test_figure_digests.py``
re-runs them through the refactored spec/store/runner path (cold store,
warm store, serial and ``--jobs N``) and asserts equality digest by
digest.  The builders therefore call only the *public* figure APIs
(``fig12(context)`` and friends), whose signatures the refactor keeps
as shims.

Floats are carried verbatim: ``json.dumps`` round-trips Python floats
exactly, so digest equality means bit-identical arithmetic, not
"close enough".
"""

from __future__ import annotations

import hashlib
import json
from typing import Callable, Dict, List

from repro.sim.experiments import ExperimentContext, ExperimentSettings

#: Scale the digests were pinned at: small enough for CI, large enough
#: that every mechanism (EWLR, RAP, DDB, refresh) changes the numbers.
PINNED_ACCESSES = 350
PINNED_MIXES = ("mix0", "mix3")
PINNED_FRAGMENTATION = 0.1
PINNED_SEED = 0

#: Reduced sweep axes (full sweeps would dominate the suite's runtime
#: without covering more code paths).
PINNED_FIG13_PLANES = (2, 4)
PINNED_FIG13_FRAGS = (0.1, 0.5)
PINNED_FIG14_FREQUENCIES = (1.333e9, 2.0e9)
PINNED_FIGREF_DENSITIES = ("4Gb", "16Gb")

#: Where the pinned digests live, relative to the repo root.
PINNED_DIGESTS_PATH = "tests/data/figure_digests.json"


def pinned_settings() -> ExperimentSettings:
    """The :class:`ExperimentSettings` every pinned figure runs at."""
    return ExperimentSettings(
        accesses_per_core=PINNED_ACCESSES,
        fragmentation=PINNED_FRAGMENTATION,
        seed=PINNED_SEED,
        mixes=PINNED_MIXES,
    )


def payload_digest(payload) -> str:
    """SHA-256 over the canonical JSON rendering of one payload."""
    canon = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canon.encode()).hexdigest()


# -- per-figure payload builders --------------------------------------------


def _fig4_payload(context: ExperimentContext) -> dict:
    from repro.analysis.plane_conflict import analyze_plane_conflicts
    from repro.controller.mapping import skylake_mapping
    from repro.workloads.generator import generate_traces
    from repro.workloads.profiles import PROFILES

    s = context.settings
    names = ("mcf", "lbm", "gemsFDTD", "omnetpp")
    traces = generate_traces([PROFILES[n] for n in names],
                             s.accesses_per_core,
                             fragmentation=s.fragmentation, seed=s.seed)
    results = analyze_plane_conflicts(
        traces, skylake_mapping(subbanked=True))
    total = sum(len(t) for t in traces)
    return {
        "overlapping": results[2].overlapping,
        "total": total,
        "points": {
            str(n): {"conflict": c.conflict_fraction(total),
                     "no_conflict": c.no_conflict_fraction(total)}
            for n, c in sorted(results.items())
        },
    }


def _fig11_payload(context: ExperimentContext) -> list:
    from repro.core.area import fig11_table
    return [{"scheme": row.scheme, "planes": row.planes,
             "overhead_pct": row.overhead_pct}
            for row in fig11_table()]


def _tab1_payload(context: ExperimentContext) -> list:
    from repro.dram.timing import GENERATIONS
    return [{"name": g.name, "bank_count": g.bank_count,
             "channel_clock_mhz": g.channel_clock_mhz,
             "core_clock_mhz": g.core_clock_mhz,
             "internal_prefetch": g.internal_prefetch,
             "tfaw_ns": g.tfaw_ns}
            for g in GENERATIONS]


def _tab3_payload(context: ExperimentContext) -> dict:
    from repro.sim import config as cfgs
    from repro.workloads.mixes import MIXES

    configs = [cfgs.ddr4_baseline(), cfgs.bg32(), cfgs.ideal32(),
               cfgs.vsb(), cfgs.paired_bank(), cfgs.half_dram(),
               cfgs.masa(4), cfgs.masa(8), cfgs.masa_eruca(8)]
    t = cfgs.ddr4_baseline().timing()
    ddb_t = cfgs.vsb().timing()
    return {
        "configs": [{"name": c.name, "policy": c.bus_policy.name,
                     "digest": c.digest()} for c in configs],
        "timing": {"tCCD_S": t.tCCD_S, "tCCD_L": t.tCCD_L,
                   "tWTR_S": t.tWTR_S, "tWTR_L": t.tWTR_L,
                   "tTCW": ddb_t.tTCW, "tTWTRW": ddb_t.tTWTRW},
        "mixes": {mix: {"members": list(names), "signature": sig}
                  for mix, (names, sig) in MIXES.items()},
    }


def _fig12_payload(context: ExperimentContext) -> dict:
    from repro.sim.experiments import fig12
    table = fig12(context)
    return {"values": table.values, "normalized": table.normalized(),
            "gmeans": table.gmeans()}


def _fig13_payload(context: ExperimentContext) -> list:
    from repro.sim.experiments import fig13
    points = fig13(context, fragmentations=PINNED_FIG13_FRAGS,
                   planes=PINNED_FIG13_PLANES)
    return [{"scheme": p.scheme, "planes": p.planes,
             "fragmentation": p.fragmentation,
             "normalized_ws": p.normalized_ws,
             "plane_precharge_fraction": p.plane_precharge_fraction,
             "ewlr_hit_rate": p.ewlr_hit_rate}
            for p in points]


def _fig14_payload(context: ExperimentContext) -> list:
    from repro.sim.experiments import fig14
    points = fig14(context, frequencies=PINNED_FIG14_FREQUENCIES)
    return [{"config": p.config,
             "bus_frequency_hz": p.bus_frequency_hz,
             "normalized_ws": p.normalized_ws}
            for p in points]


def _fig15_payload(context: ExperimentContext) -> dict:
    from repro.sim.experiments import fig15
    return dict(fig15(context))


def _fig16_payload(context: ExperimentContext) -> list:
    from repro.sim.experiments import fig16
    return [{"config": r.config, "latency_stats_ns": r.latency_stats_ns,
             "background_energy": r.background_energy,
             "activation_energy": r.activation_energy,
             "total_energy": r.total_energy}
            for r in fig16(context)]


def _figref_payload(context: ExperimentContext) -> list:
    from repro.sim.experiments import fig_refresh
    points = fig_refresh(context, densities=PINNED_FIGREF_DENSITIES)
    return [{"policy": p.policy, "density": p.density,
             "normalized_ws": p.normalized_ws,
             "refreshes": p.refreshes}
            for p in points]


def _ablation_payload(context: ExperimentContext) -> dict:
    """A representative cell from each ablation sweep in
    ``benchmarks/bench_ablation.py`` (hand-built systems that bypass the
    preset path entirely -- the refactor must leave them untouched)."""
    from dataclasses import replace

    from repro.controller.controller import ChannelController
    from repro.controller.mapping import (
        AddressMapping, PlanePlacement, RowLayout)
    from repro.controller.queue import QueueConfig
    from repro.core.mechanisms import EruConfig
    from repro.cpu.core import TraceCore
    from repro.dram.bank import BankGeometry
    from repro.dram.device import Channel
    from repro.dram.resources import BusPolicy
    from repro.dram.timing import ddr4_timings
    from repro.sim.config import ddr4_baseline, vsb
    from repro.sim.simulator import MemorySystem, Simulator, run_traces

    traces = context.traces("mix0")

    def run_custom(layout, ewlr, rap, policy=BusPolicy.DDB,
                   timing=None, subbank_low=True):
        if timing is None:
            timing = ddr4_timings()
            if policy is BusPolicy.DDB:
                timing = timing.with_ddb_windows()
        base = vsb()
        system = MemorySystem(base)
        mapping_cfg = replace(base.mapping().config,
                              subbank_low=subbank_low)
        system.mapping = AddressMapping(mapping_cfg, layout)
        system.controllers = [
            ChannelController(Channel(
                timing, policy, base.bank_groups, base.banks_per_group,
                BankGeometry(subbanks=2, row_bits=layout.row_bits),
                row_layout=layout, ewlr=ewlr, rap=rap))
            for _ in range(base.channels)
        ]
        cores = [TraceCore(t, core_id=i) for i, t in enumerate(traces)]
        return Simulator(system, cores).run()

    out: Dict[str, dict] = {}
    # Plane-ID bit placement x RAP (Fig. 9's two mappings).
    for rap in (False, True):
        for placement in (PlanePlacement.LSB, PlanePlacement.MSB):
            layout = RowLayout(row_bits=16, plane_count=4,
                               plane_placement=placement, ewlr_bits=3)
            res = run_custom(layout, ewlr=True, rap=rap)
            out[f"plane rap={rap},placement={placement.value}"] = {
                "ipc": sum(res.ipcs),
                "plane_pre": res.plane_conflict_precharge_fraction,
                "ewlr_hits": res.ewlr_hit_rate,
            }
    # Sub-bank ID bit position.
    full_layout = EruConfig.full(4).row_layout()
    for low in (True, False):
        res = run_custom(full_layout, ewlr=True, rap=True,
                         subbank_low=low)
        out[f"subbank_low={low}"] = {"ipc": sum(res.ipcs)}
    # Write-drain watermarks.
    for high, lowm in ((24, 8), (31, 30)):
        cfg = replace(ddr4_baseline(),
                      queue=QueueConfig(drain_high=high, drain_low=lowm),
                      name=f"drain {high}/{lowm}")
        res = run_traces(cfg, traces)
        out[cfg.name] = {"ipc": sum(res.ipcs)}
    # Page policy.
    for label, idle in (("open page", None), ("close@400ns", 400_000)):
        cfg = replace(ddr4_baseline(), idle_close_ps=idle, name=label)
        res = run_traces(cfg, traces)
        out[f"page {label}"] = {"ipc": sum(res.ipcs)}
    # DDB two-command windows at a fast channel.
    fast = ddr4_timings(2.4e9)
    for label, timing in (("tTCW on", fast.with_ddb_windows()),
                          ("tTCW off", fast)):
        res = run_custom(full_layout, ewlr=True, rap=True, timing=timing)
        out[f"ddb {label}"] = {"ipc": sum(res.ipcs)}
    return out


#: Every pinned runner, in pin/verification order.
FIGURE_BUILDERS: Dict[str, Callable[[ExperimentContext], object]] = {
    "fig4": _fig4_payload,
    "fig11": _fig11_payload,
    "tab1": _tab1_payload,
    "tab3": _tab3_payload,
    "fig12": _fig12_payload,
    "fig13": _fig13_payload,
    "fig14": _fig14_payload,
    "fig15": _fig15_payload,
    "fig16": _fig16_payload,
    "figref": _figref_payload,
    "ablation": _ablation_payload,
}


def figure_payload(name: str, context: ExperimentContext):
    """The reduced output of one figure runner as a JSON-able payload."""
    return FIGURE_BUILDERS[name](context)


def all_figure_digests(context: ExperimentContext) -> Dict[str, str]:
    """{figure name: payload digest} over every pinned runner."""
    return {name: payload_digest(builder(context))
            for name, builder in FIGURE_BUILDERS.items()}


def load_pinned_digests(path: str = PINNED_DIGESTS_PATH) -> dict:
    """The pinned digest table written by ``tools/pin_figure_digests.py``."""
    with open(path) as fh:
        return json.load(fh)
