"""Cycle accounting: attribute every channel cycle to one stall bucket.

ERUCA's evaluation is a set of *mechanism attributions* -- speedup comes
from avoided plane conflicts (Section IV), EWLR hits, RAP de-aliasing,
and DDB relaxing the same-group ``tCCD_L``/``tWTR_L`` penalties
(Section V) -- so the simulator must be able to say *where the cycles
go*, not just who wins.  This module implements per-channel cycle
accounting with a hard invariant: **the buckets sum exactly to the
channel's wall time** (asserted by :meth:`AccountingReport.verify` and
the property tests over every configuration preset).

The accounting walks each channel's command stream.  Consecutive
commands on one channel are at least one bus clock apart (the command
bus), so the timeline decomposes exactly into

* ``issue`` -- one ``tCK`` of command-bus occupancy per command;
* the *gap* before each command, charged to a single bucket; and
* the drained tail after the last command.

Gap attribution (:class:`StallBucket`):

``queue_empty``
    The channel had no queued transaction for (a prefix of) the gap.
    Tracked from actual queue occupancy, not the winning command's
    arrival, so FR-FCFS reordering cannot misfile idle time.
``plane_conflict`` / ``ewlr_miss``
    The command was a precharge forced by an inter-sub-bank plane
    conflict (Fig. 5).  On an EWLR-enabled organisation the same event
    is filed as ``ewlr_miss``: the activation *would* have hit had the
    rows shared their MWL tag (Section IV).
``row_conflict`` / ``policy_close``
    Precharge of the transaction's own conflicting row, or a
    speculative adaptive-page-policy close.
``refresh``
    Refresh work: the gap before a ``REF``/``REFpb`` command or a
    refresh-forced close, and any demand command whose binding floor
    was an in-flight refresh blackout (``tRFC``/``tRFCpb``).
``bank_busy``
    The issued command waited on its own (sub-)bank's FSM --
    ``tRCD``/``tRAS``/``tRC``/``tRP``/``tWR``/``tRTP``, or MASA's
    ``tSA`` serialisation.
``ccd_wtr_long``
    The same-group long CAS windows -- ``tCCD_L`` / ``tWTR_L`` -- the
    exact penalties DDB exists to relax (Fig. 10).
``ddb_window``
    DDB's own guard windows ``tTCW`` / ``tTWTRW`` (Fig. 10c), binding
    only at high channel frequencies (Fig. 14).
``trrd``
    Rank-wide ACT-to-ACT spacing (``tRRD``).
``tfaw``
    The rolling four-activate window (``tFAW``): the fifth ACT waited
    for the oldest of the last four to leave the window.
``bus``
    Generic shared-resource pressure: command bus, cross-group
    ``tCCD_S``/``tWTR_S``, data-bus occupancy and turnaround bubbles.
``request_gap``
    The device was ready earlier, but the issued request only arrived
    (or only became eligible, e.g. a write-drain flip) later while other
    work was queued.

For ACT/RD/WR the gap is charged to the **binding** device floor -- the
constraint that released last, computed from the same state the
scheduler consulted (``Channel.explain_*`` mirrors ``earliest_*``
exactly; a property test keeps them from diverging).  For precharges the
gap is charged to the conflict that forced the close: that is the
quantity Fig. 13b cares about.

Everything here is a pure observer: with accounting enabled the command
stream is bit-identical to a plain run (digest-equality tests), and with
it disabled the controller pays one ``is None`` test per event.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field
from typing import IO, Dict, List, Optional, Tuple

from repro.dram.commands import CommandKind, PrechargeCause
from repro.dram import resources as res
from repro.sim.metrics import rate
from repro.sim.tracing import TraceEvent, TraceSink


class StallBucket(enum.Enum):
    """Where one channel cycle went (see the module docstring)."""

    ISSUE = "issue"
    QUEUE_EMPTY = "queue_empty"
    REQUEST_GAP = "request_gap"
    BANK_BUSY = "bank_busy"
    PLANE_CONFLICT = "plane_conflict"
    EWLR_MISS = "ewlr_miss"
    ROW_CONFLICT = "row_conflict"
    POLICY_CLOSE = "policy_close"
    REFRESH = "refresh"
    CCD_WTR_LONG = "ccd_wtr_long"
    DDB_WINDOW = "ddb_window"
    TRRD = "trrd"
    TFAW = "tfaw"
    BUS = "bus"


#: Floor-tag (from :mod:`repro.dram.resources` / ``Channel.explain_*``)
#: to bucket mapping.
_FLOOR_BUCKETS = {
    res.FLOOR_BUS: StallBucket.BUS,
    res.FLOOR_CCD_WTR_LONG: StallBucket.CCD_WTR_LONG,
    res.FLOOR_DDB_WINDOW: StallBucket.DDB_WINDOW,
    res.FLOOR_TRRD: StallBucket.TRRD,
    res.FLOOR_TFAW: StallBucket.TFAW,
    res.FLOOR_BANK: StallBucket.BANK_BUSY,
    res.FLOOR_REFRESH: StallBucket.REFRESH,
}

#: Tie-break order among floors releasing at the same time: prefer the
#: mechanism-specific explanation over the generic bus.  A refresh
#: blackout is the most specific of all -- when it ties with a bank
#: floor the bank was busy *because* of the refresh.
_FLOOR_PRIORITY = {
    StallBucket.REFRESH: 0,
    StallBucket.DDB_WINDOW: 1,
    StallBucket.CCD_WTR_LONG: 2,
    StallBucket.TFAW: 3,
    StallBucket.TRRD: 4,
    StallBucket.BANK_BUSY: 5,
    StallBucket.BUS: 6,
}


def binding_floor(floors: List[Tuple[str, int]]
                  ) -> Tuple[StallBucket, int]:
    """The constraint that released last (ties: most specific wins).

    ``floors`` is the ``Channel.explain_*`` decomposition: (tag, time)
    pairs whose max equals the command's earliest legal issue time.
    """
    best_bucket, best_time = StallBucket.BUS, None
    for tag, time in floors:
        bucket = _FLOOR_BUCKETS[tag]
        if (best_time is None or time > best_time
                or (time == best_time and _FLOOR_PRIORITY[bucket]
                    < _FLOOR_PRIORITY[best_bucket])):
            best_bucket, best_time = bucket, time
    return best_bucket, best_time if best_time is not None else 0


@dataclass
class BankStats:
    """Command counters for one (bank, sub-bank), Fig. 13b-style.

    ``row_hit_rate`` is the fraction of column commands served from an
    already-open row (1 - ACTs per column); ``ewlr_hit_rate`` the
    fraction of ACTs that were EWLR hits (the paper's 18% Vpp saving
    events, Section IV); ``ddb_window_occupancy`` the fraction of
    column commands whose binding constraint was a DDB guard window
    (``tTCW``/``tTWTRW``, Fig. 10).
    """

    acts: int = 0
    ewlr_hits: int = 0
    reads: int = 0
    writes: int = 0
    precharges: int = 0
    partial_precharges: int = 0
    plane_conflict_precharges: int = 0
    row_conflict_precharges: int = 0
    policy_precharges: int = 0
    #: Closes forced so a refresh scope could be fully precharged.
    refresh_precharges: int = 0
    #: REF/REFpb commands; all-bank REFs file under the pseudo-bank
    #: ``(-1, -1)`` row (they serve the whole rank, not one bank).
    refreshes: int = 0
    ddb_window_stalls: int = 0
    #: Stall picoseconds charged to commands serving this (sub-)bank.
    stall_ps: int = 0

    @property
    def columns(self) -> int:
        """Column commands (reads + writes) served by this (sub-)bank."""
        return self.reads + self.writes

    @property
    def row_hit_rate(self) -> float:
        if not self.columns:
            return 0.0
        return max(0.0, 1.0 - rate(self.acts, self.columns))

    @property
    def ewlr_hit_rate(self) -> float:
        return rate(self.ewlr_hits, self.acts)

    @property
    def ddb_window_occupancy(self) -> float:
        return rate(self.ddb_window_stalls, self.columns)

    def merge(self, other: "BankStats") -> None:
        """Fold another (sub-)bank's counters into this one."""
        self.acts += other.acts
        self.ewlr_hits += other.ewlr_hits
        self.reads += other.reads
        self.writes += other.writes
        self.precharges += other.precharges
        self.partial_precharges += other.partial_precharges
        self.plane_conflict_precharges += other.plane_conflict_precharges
        self.row_conflict_precharges += other.row_conflict_precharges
        self.policy_precharges += other.policy_precharges
        self.refresh_precharges += other.refresh_precharges
        self.refreshes += other.refreshes
        self.ddb_window_stalls += other.ddb_window_stalls
        self.stall_ps += other.stall_ps

    def to_dict(self) -> dict:
        return {
            "acts": self.acts,
            "ewlr_hits": self.ewlr_hits,
            "reads": self.reads,
            "writes": self.writes,
            "precharges": self.precharges,
            "partial_precharges": self.partial_precharges,
            "plane_conflict_precharges": self.plane_conflict_precharges,
            "row_conflict_precharges": self.row_conflict_precharges,
            "policy_precharges": self.policy_precharges,
            "refresh_precharges": self.refresh_precharges,
            "refreshes": self.refreshes,
            "ddb_window_stalls": self.ddb_window_stalls,
            "stall_ps": self.stall_ps,
            "row_hit_rate": self.row_hit_rate,
            "ewlr_hit_rate": self.ewlr_hit_rate,
            "ddb_window_occupancy": self.ddb_window_occupancy,
        }


class ChannelAccounting:
    """Cycle accounting for one channel (see the module docstring).

    The accounting cursor starts at 0 and advances to ``issue + tCK``
    on every command; :meth:`finish` pads the drained tail, after which
    ``sum(buckets) == horizon_ps`` exactly -- the invariant
    :meth:`verify` asserts.
    """

    def __init__(self, channel_index: int, tCK: int, ewlr: bool) -> None:
        self.channel_index = channel_index
        self.tCK = tCK
        #: Plane conflicts file under EWLR_MISS on EWLR organisations.
        self.ewlr = ewlr
        self.buckets: Dict[StallBucket, int] = {
            b: 0 for b in StallBucket}
        #: Per (bank index, sub-bank) counters.
        self.banks: Dict[Tuple[int, int], BankStats] = {}
        self.commands = 0
        self.cursor = 0
        #: Accounted wall time; set by :meth:`finish`.
        self.horizon_ps = 0
        # Queue-occupancy tracking: the channel starts empty.
        self._empty_since: Optional[int] = 0
        self._nonempty_at: Optional[int] = None

    # -- event intake ----------------------------------------------------

    def note_nonempty(self, time: int) -> None:
        """First transaction arrived into an empty channel queue."""
        if self._empty_since is not None and self._nonempty_at is None:
            self._nonempty_at = time

    def _queue_empty_prefix(self, time: int) -> int:
        """Resolve the queue-empty part of the gap ending at ``time``."""
        if self._empty_since is None:
            return self.cursor
        nonempty = self._nonempty_at if self._nonempty_at is not None \
            else time
        end = min(max(nonempty, self.cursor), time)
        self.buckets[StallBucket.QUEUE_EMPTY] += end - self.cursor
        return end

    def bank_stats(self, bank: int, subbank: int) -> BankStats:
        stats = self.banks.get((bank, subbank))
        if stats is None:
            stats = self.banks[(bank, subbank)] = BankStats()
        return stats

    def on_command(self, time: int, kind: CommandKind,
                   cause: Optional[PrechargeCause],
                   bank: int, subbank: int,
                   floors: Optional[List[Tuple[str, int]]],
                   ewlr_hit: bool, partial: bool,
                   queue_empty_after: bool
                   ) -> Tuple[StallBucket, int]:
        """Account one committed command; returns (bucket, wait_ps).

        ``floors`` is the ``Channel.explain_*`` decomposition for
        ACT/RD/WR (``None`` for precharges, whose gap is charged to
        their cause).  ``queue_empty_after`` reports whether the
        channel queue drained as a result of this command.
        """
        if time < self.cursor:
            raise ValueError(
                f"command at {time} overlaps accounted time "
                f"{self.cursor} (commands must be >= tCK apart)")
        stall_start = self._queue_empty_prefix(time)
        wait = time - stall_start
        bucket = StallBucket.ISSUE
        stats = self.bank_stats(bank, subbank)
        if wait > 0:
            if (kind is CommandKind.REF or kind is CommandKind.REFPB
                    or cause is PrechargeCause.REFRESH):
                # Refresh work: the REF/REFpb itself or a close forced
                # so the scope could refresh.
                bucket = StallBucket.REFRESH
                self.buckets[bucket] += wait
            elif cause is PrechargeCause.PLANE_CONFLICT:
                bucket = (StallBucket.EWLR_MISS if self.ewlr
                          else StallBucket.PLANE_CONFLICT)
                self.buckets[bucket] += wait
            elif cause is PrechargeCause.ROW_CONFLICT:
                bucket = StallBucket.ROW_CONFLICT
                self.buckets[bucket] += wait
            elif cause is PrechargeCause.POLICY:
                bucket = StallBucket.POLICY_CLOSE
                self.buckets[bucket] += wait
            else:
                bucket, released = binding_floor(floors or [])
                device_end = min(max(released, stall_start), time)
                self.buckets[bucket] += device_end - stall_start
                self.buckets[StallBucket.REQUEST_GAP] += time - device_end
                if device_end == stall_start:
                    bucket = StallBucket.REQUEST_GAP
            stats.stall_ps += wait
            if bucket is StallBucket.DDB_WINDOW:
                stats.ddb_window_stalls += 1
        # The command itself: one bus clock on the command bus.
        self.buckets[StallBucket.ISSUE] += self.tCK
        self.cursor = time + self.tCK
        self.commands += 1
        # Per-bank command counters.
        if kind is CommandKind.ACT:
            stats.acts += 1
            if ewlr_hit:
                stats.ewlr_hits += 1
        elif kind is CommandKind.RD:
            stats.reads += 1
        elif kind is CommandKind.WR:
            stats.writes += 1
        elif kind is CommandKind.REF or kind is CommandKind.REFPB:
            stats.refreshes += 1
        else:
            stats.precharges += 1
            if partial:
                stats.partial_precharges += 1
            if cause is PrechargeCause.PLANE_CONFLICT:
                stats.plane_conflict_precharges += 1
            elif cause is PrechargeCause.ROW_CONFLICT:
                stats.row_conflict_precharges += 1
            elif cause is PrechargeCause.POLICY:
                stats.policy_precharges += 1
            elif cause is PrechargeCause.REFRESH:
                stats.refresh_precharges += 1
        # Queue-occupancy bookkeeping for the next gap.
        if queue_empty_after:
            self._empty_since = time
            self._nonempty_at = None
        else:
            self._empty_since = None
            self._nonempty_at = None
        return bucket, wait

    def finish(self, horizon_ps: int) -> None:
        """Close the books at ``horizon_ps`` (>= the last command end).

        The drained tail is queue-empty time; if transactions were
        still queued (e.g. a capped run), the remainder is filed as
        ``request_gap`` so the invariant still holds.
        """
        horizon_ps = max(horizon_ps, self.cursor)
        end = self._queue_empty_prefix(horizon_ps)
        self.buckets[StallBucket.REQUEST_GAP] += horizon_ps - end
        self.cursor = horizon_ps
        self.horizon_ps = horizon_ps

    # -- invariants & views ----------------------------------------------

    def stall_total_ps(self) -> int:
        """Every accounted picosecond of this channel."""
        return sum(self.buckets.values())

    def verify(self) -> None:
        """Assert the bucket-sum invariant for this channel."""
        total = self.stall_total_ps()
        if total != self.horizon_ps:
            raise AssertionError(
                f"channel {self.channel_index}: buckets sum to {total} "
                f"but wall time is {self.horizon_ps}")
        issue = self.buckets[StallBucket.ISSUE]
        if issue != self.commands * self.tCK:
            raise AssertionError(
                f"channel {self.channel_index}: issue bucket {issue} != "
                f"{self.commands} commands x tCK {self.tCK}")


@dataclass
class AccountingReport:
    """The merged cycle-accounting view of one simulation run.

    Held by :attr:`SimulationResult.accounting
    <repro.sim.simulator.SimulationResult>` when the run was observed;
    deliberately excluded from the result digest (observability must
    never define behaviour).
    """

    config_name: str
    channels: List[ChannelAccounting] = field(default_factory=list)

    # -- roll-ups --------------------------------------------------------

    def totals(self) -> Dict[StallBucket, int]:
        """Bucket totals summed over channels (ps)."""
        out = {b: 0 for b in StallBucket}
        for channel in self.channels:
            for bucket, ps in channel.buckets.items():
                out[bucket] += ps
        return out

    def wall_ps(self) -> int:
        """Total accounted channel-time (sum of channel horizons)."""
        return sum(c.horizon_ps for c in self.channels)

    def commands(self) -> int:
        return sum(c.commands for c in self.channels)

    def bank_rows(self) -> List[Tuple[int, int, int, BankStats]]:
        """(channel, bank, subbank, stats) rows, sorted."""
        rows = []
        for channel in self.channels:
            for (bank, subbank), stats in channel.banks.items():
                rows.append((channel.channel_index, bank, subbank, stats))
        rows.sort(key=lambda r: r[:3])
        return rows

    def merged_bank_stats(self) -> BankStats:
        """All (sub-)bank counters folded together."""
        merged = BankStats()
        for _, _, _, stats in self.bank_rows():
            merged.merge(stats)
        return merged

    def verify(self) -> None:
        """Assert the bucket-sum invariant on every channel."""
        for channel in self.channels:
            channel.verify()

    # -- exporters -------------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-ready sidecar payload (the ``--emit-stats`` schema)."""
        return {
            "config": self.config_name,
            "wall_ps": self.wall_ps(),
            "commands": self.commands(),
            "buckets_ps": {b.value: ps for b, ps in self.totals().items()},
            "channels": [
                {
                    "channel": c.channel_index,
                    "horizon_ps": c.horizon_ps,
                    "commands": c.commands,
                    "buckets_ps": {b.value: ps
                                   for b, ps in c.buckets.items()},
                }
                for c in self.channels
            ],
            "banks": [
                {"channel": ch, "bank": bank, "subbank": subbank,
                 **stats.to_dict()}
                for ch, bank, subbank, stats in self.bank_rows()
            ],
        }

    def write_json(self, fh: IO[str]) -> None:
        json.dump(self.to_dict(), fh, indent=2, sort_keys=True)
        fh.write("\n")

    def bucket_csv_rows(self) -> List[List[object]]:
        """Rows for a flat CSV export: channel, bucket, ps."""
        rows: List[List[object]] = [["channel", "bucket", "ps"]]
        for channel in self.channels:
            for bucket in StallBucket:
                rows.append([channel.channel_index, bucket.value,
                             channel.buckets[bucket]])
        return rows

    def format_table(self, per_bank: bool = False) -> str:
        """Human-readable stall-attribution table (``repro stats``)."""
        wall = self.wall_ps()
        lines = [f"stall attribution for {self.config_name} "
                 f"({len(self.channels)} channels, "
                 f"{self.commands()} commands, wall {wall / 1e6:.2f} us "
                 f"of channel-time)"]
        lines.append(f"{'bucket':16s} {'ps':>14s} {'share':>7s}")
        totals = self.totals()
        for bucket in StallBucket:
            ps = totals[bucket]
            lines.append(f"{bucket.value:16s} {ps:14d} "
                         f"{rate(ps, wall):7.2%}")
        lines.append(f"{'total':16s} {wall:14d} {1:7.2%}")
        if per_bank:
            lines.append("")
            lines.append(f"{'ch':>2s} {'bank':>4s} {'sb':>2s} "
                         f"{'acts':>7s} {'cols':>7s} {'pres':>6s} "
                         f"{'rowhit':>7s} {'ewlr':>6s} {'part':>5s} "
                         f"{'ddbocc':>7s} {'stall_us':>9s}")
            for ch, bank, subbank, s in self.bank_rows():
                lines.append(
                    f"{ch:2d} {bank:4d} {subbank:2d} {s.acts:7d} "
                    f"{s.columns:7d} {s.precharges:6d} "
                    f"{s.row_hit_rate:7.1%} {s.ewlr_hit_rate:6.1%} "
                    f"{s.partial_precharges:5d} "
                    f"{s.ddb_window_occupancy:7.1%} "
                    f"{s.stall_ps / 1e6:9.3f}")
        return "\n".join(lines)


@dataclass(frozen=True)
class ObserveOptions:
    """What to observe during a run (``None`` observer = observe nothing).

    ``accounting`` is essentially free (a handful of integer adds per
    command); ``trace`` stores one event per command, so cap it with
    ``trace_limit`` on long runs.
    """

    accounting: bool = True
    trace: bool = False
    trace_limit: Optional[int] = None

    def build_sink(self) -> Optional[TraceSink]:
        """The shared trace sink these options call for, if any."""
        return TraceSink(self.trace_limit) if self.trace else None


class CommandObserver:
    """Per-channel observer the controller drives from its hot path.

    The controller calls :meth:`floors_for` *before* applying a command
    (the explain API reads pre-issue state) and :meth:`on_command`
    after, plus :meth:`note_nonempty` when a transaction is admitted
    into an empty queue.  All cost lives behind the controller's single
    ``observer is not None`` check, keeping the unobserved path within
    the <2% budget of ``bench_simspeed``.
    """

    def __init__(self, channel_index: int, channel,
                 sink: Optional[TraceSink] = None) -> None:
        self.channel = channel
        self.sink = sink
        self.accounting = ChannelAccounting(
            channel_index, channel.timing.tCK,
            ewlr=any(bank.ewlr for bank in channel.banks))

    def note_nonempty(self, time: int) -> None:
        self.accounting.note_nonempty(time)

    def floors_for(self, candidate) -> Optional[List[Tuple[str, int]]]:
        """Pre-issue floor decomposition of a scheduler candidate."""
        kind = candidate.kind
        if kind is CommandKind.ACT:
            return self.channel.explain_act(candidate.txn.coords)
        if kind in (CommandKind.RD, CommandKind.WR):
            return self.channel.explain_column(
                candidate.txn.coords, kind is CommandKind.WR)
        # Precharges are attributed by cause, REF/REFpb wholesale to
        # the refresh bucket -- neither needs a floor decomposition.
        return None

    def on_command(self, candidate, floors, ewlr_hit: bool,
                   partial: bool, queue_empty_after: bool) -> None:
        """Account (and optionally trace) one committed command."""
        kind = candidate.kind
        if kind is CommandKind.PRE:
            bank, slot = candidate.victim
            subbank, group = slot
            row, core = -1, -1
            if partial:
                kind = CommandKind.PRE_PARTIAL
        elif kind is CommandKind.REF or kind is CommandKind.REFPB:
            # Refresh candidates serve no transaction; the victim slot
            # encodes the scope: (-1, (-1, -1)) all-bank, (b, (-1, -1))
            # per-bank, (b, (s, -1)) per-sub-bank.
            bank, slot = candidate.victim
            subbank, group = slot[0], -1
            row, core = -1, -1
        else:
            c = candidate.txn.coords
            bank = self.channel.bank_index(c)
            subbank, group = c.subbank, self.channel.banks[
                bank].geometry.group_of(c.row)
            row = c.row if kind is CommandKind.ACT else -1
            core = candidate.txn.core
        bucket, wait = self.accounting.on_command(
            candidate.issue_time, candidate.kind, candidate.cause,
            bank, subbank, floors, ewlr_hit, partial, queue_empty_after)
        if self.sink is not None:
            self.sink.record(TraceEvent(
                time_ps=candidate.issue_time,
                channel=self.accounting.channel_index,
                bank=bank, subbank=subbank, group=group,
                kind=kind.name,
                cause=candidate.cause.value if candidate.cause else "",
                row=row, core=core,
                stall=bucket.value, wait_ps=wait))


def collect_report(config_name: str,
                   observers: List[Optional[CommandObserver]],
                   elapsed_ps: int) -> Optional[AccountingReport]:
    """Close every channel's books and assemble the run's report.

    Each channel's horizon is the later of the run's end (the last core
    finish) and the channel's own last command end, so trailing write
    drains stay fully accounted.
    """
    channels = [obs.accounting for obs in observers if obs is not None]
    if not channels:
        return None
    for accounting in channels:
        accounting.finish(elapsed_ps)
    return AccountingReport(config_name=config_name, channels=channels)
