"""Synthetic per-benchmark memory-behaviour profiles.

The paper evaluates SPEC CPU2006 applications (Tab. III) via captured
physical-address traces.  We do not have SPEC; instead each benchmark is
characterised by the quantities the ERUCA mechanisms are sensitive to:

* **MPKI** -- memory pressure (the H/M intensity classes of Tab. III);
* **stream behaviour** -- the fraction of accesses that advance one of a
  set of sequential stream cursors (spatial locality: row hits, and the
  paper's "region 2" low-order row-address locality when streams cross
  row boundaries);
* **hot-set reuse** -- non-stream accesses draw from a hot subset of the
  footprint (temporal locality, "region 1" high-order locality via huge
  pages);
* **footprint** and **write fraction**.

The numbers are calibrated against published SPEC2006 memory
characterisation (MPKI and footprints rounded from Jaleel's working-set
study and the SALP/USIMM literature); they are knobs, not measurements,
and the experiments only rely on their relative ordering.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict


@dataclass(frozen=True)
class BenchmarkProfile:
    """Tunable description of one benchmark's memory behaviour."""

    name: str
    #: Memory accesses per thousand instructions (drives the gap draw).
    mpki: float
    #: Intensity class from Tab. III ("H" or "M"; "L" unused by mixes).
    intensity: str
    #: Touched virtual footprint in MiB.
    footprint_mb: int
    #: Fraction of accesses that advance a sequential stream cursor.
    stream_fraction: float
    #: Number of concurrent stream cursors.
    stream_count: int
    #: Fraction of non-stream accesses that hit the hot subset.
    hot_fraction: float
    #: Hot subset size as a fraction of the footprint.
    hot_set: float
    #: Fraction of accesses that are writes.
    write_fraction: float
    #: Fraction of stream accesses that touch a *neighbouring DRAM row*
    #: (vertical-stencil behaviour: A[i-1][j] next to A[i][j]).  This is
    #: the source of the paper's "region 2" low-order row-address
    #: locality that EWLR targets.
    neighbor_fraction: float = 0.1
    #: Fraction of non-stream accesses that are *address-dependent* on
    #: the previous read (pointer chasing).  Dependent chains make the
    #: core latency-sensitive, which is what turns avoided conflicts
    #: into IPC.
    dependent_fraction: float = 0.1

    def __post_init__(self) -> None:
        if self.mpki <= 0:
            raise ValueError("mpki must be positive")
        if self.intensity not in ("H", "M", "L"):
            raise ValueError("intensity must be H, M or L")
        for frac in (self.stream_fraction, self.hot_fraction,
                     self.hot_set, self.write_fraction,
                     self.neighbor_fraction, self.dependent_fraction):
            if not 0.0 <= frac <= 1.0:
                raise ValueError("fractions must be in [0, 1]")

    @property
    def footprint_bytes(self) -> int:
        return self.footprint_mb << 20

    @property
    def mean_gap(self) -> float:
        """Mean non-memory instructions between accesses."""
        return max(0.0, 1000.0 / self.mpki - 1.0)


#: The ten SPEC2006 applications used by the paper's nine mixes.
PROFILES: Dict[str, BenchmarkProfile] = {
    p.name: p for p in (
        # -- high intensity ------------------------------------------------
        BenchmarkProfile("mcf", mpki=65.0, intensity="H",
                         footprint_mb=1536, stream_fraction=0.15,
                         stream_count=4, hot_fraction=0.6, hot_set=0.02,
                         write_fraction=0.26,
                         neighbor_fraction=0.02,
                         dependent_fraction=0.75),
        BenchmarkProfile("lbm", mpki=45.0, intensity="H",
                         footprint_mb=400, stream_fraction=0.90,
                         stream_count=8, hot_fraction=0.5, hot_set=0.04,
                         write_fraction=0.45,
                         neighbor_fraction=0.12,
                         dependent_fraction=0.05),
        BenchmarkProfile("gemsFDTD", mpki=30.0, intensity="H",
                         footprint_mb=800, stream_fraction=0.80,
                         stream_count=12, hot_fraction=0.5, hot_set=0.04,
                         write_fraction=0.33,
                         neighbor_fraction=0.15,
                         dependent_fraction=0.1),
        BenchmarkProfile("omnetpp", mpki=25.0, intensity="H",
                         footprint_mb=160, stream_fraction=0.45,
                         stream_count=4, hot_fraction=0.7, hot_set=0.03,
                         write_fraction=0.35,
                         neighbor_fraction=0.03,
                         dependent_fraction=0.6),
        BenchmarkProfile("soplex", mpki=28.0, intensity="H",
                         footprint_mb=256, stream_fraction=0.60,
                         stream_count=6, hot_fraction=0.6, hot_set=0.04,
                         write_fraction=0.24,
                         neighbor_fraction=0.06,
                         dependent_fraction=0.3),
        # -- medium intensity ----------------------------------------------
        BenchmarkProfile("milc", mpki=18.0, intensity="M",
                         footprint_mb=680, stream_fraction=0.50,
                         stream_count=6, hot_fraction=0.5, hot_set=0.05,
                         write_fraction=0.36,
                         neighbor_fraction=0.08,
                         dependent_fraction=0.2),
        BenchmarkProfile("bwaves", mpki=15.0, intensity="M",
                         footprint_mb=870, stream_fraction=0.85,
                         stream_count=10, hot_fraction=0.5, hot_set=0.04,
                         write_fraction=0.21,
                         neighbor_fraction=0.12,
                         dependent_fraction=0.05),
        BenchmarkProfile("leslie3d", mpki=12.0, intensity="M",
                         footprint_mb=80, stream_fraction=0.80,
                         stream_count=8, hot_fraction=0.6, hot_set=0.05,
                         write_fraction=0.30,
                         neighbor_fraction=0.12,
                         dependent_fraction=0.05),
        BenchmarkProfile("astar", mpki=8.0, intensity="M",
                         footprint_mb=170, stream_fraction=0.4,
                         stream_count=3, hot_fraction=0.7, hot_set=0.03,
                         write_fraction=0.30,
                         neighbor_fraction=0.02,
                         dependent_fraction=0.65),
        BenchmarkProfile("cactusADM", mpki=6.0, intensity="M",
                         footprint_mb=650, stream_fraction=0.70,
                         stream_count=6, hot_fraction=0.5, hot_set=0.04,
                         write_fraction=0.35,
                         neighbor_fraction=0.1,
                         dependent_fraction=0.1),
    )
}


def profile(name: str) -> BenchmarkProfile:
    try:
        return PROFILES[name]
    except KeyError:
        raise KeyError(
            f"unknown benchmark {name!r}; known: {sorted(PROFILES)}"
        ) from None
