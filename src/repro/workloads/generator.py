"""Synthetic trace generation from benchmark profiles.

Virtual access streams are synthesised per the profile (stream cursors,
hot-set reuse, random pointer chasing) and translated to physical
addresses through a fragmentation-aware :class:`VirtualMemory`, so the
physical traces exhibit exactly the locality structure the paper studies:
huge-page-backed regions preserve high-order contiguity ("region 1"),
streams crossing DRAM rows create low-order row-address locality
("region 2"), and higher fragmentation destroys both.
"""

from __future__ import annotations

import random
import zlib
from typing import List, Optional

from repro.cpu.trace import Trace, TraceEntry
from repro.workloads.fragmentation import PhysicalMemory, VirtualMemory
from repro.workloads.profiles import BenchmarkProfile

LINE = 64

#: Bytes covered by one DRAM row value under the default mapping: all
#: address bits below the row field (offset, column, channel, bank bits)
#: span 2^18 bytes.  A "neighbouring row" access (vertical stencil) is
#: therefore +/- this much in the address space.
ROW_SPAN_BYTES = 1 << 18


class StreamCursor:
    """A sequential walker over the virtual footprint.

    A cursor may be *paired* with an earlier cursor: it then walks a few
    DRAM rows away at an independent column phase, like the ``a[i]`` /
    ``b[i]`` array pairs of scientific loops.  Paired walkers are what put
    *nearby but different* rows into the two sub-banks concurrently --
    the paper's "region 2" inter-sub-bank locality that EWLR exploits and
    that extra planes cannot remove.
    """

    def __init__(self, rng: random.Random, footprint: int,
                 partner: "StreamCursor" = None) -> None:
        self._rng = rng
        self._footprint = footprint
        self.partner = partner
        self._restart()

    def _restart(self) -> None:
        if self.partner is not None:
            distance = self._rng.choice((1, 1, 1, 2, 2, 4, 8))
            row_offset = distance * ROW_SPAN_BYTES
            phase = self._rng.randrange(0, 128) * LINE
            position = self.partner.position + row_offset + phase
            self.position = position % self._footprint // LINE * LINE
        else:
            self.position = self._rng.randrange(
                0, self._footprint // LINE) * LINE

    def next(self) -> int:
        addr = self.position
        self.position += LINE
        if self.position >= self._footprint:
            self._restart()
        return addr


class TraceGenerator:
    """Generate one benchmark's trace into a shared physical memory."""

    def __init__(self, profile: BenchmarkProfile,
                 physical: PhysicalMemory,
                 seed: int = 0) -> None:
        self.profile = profile
        self.vm = VirtualMemory(physical)
        # zlib.crc32 is process-stable, unlike hash() on strings, so
        # traces are reproducible across runs for a given seed.
        name_salt = zlib.crc32(profile.name.encode()) & 0xFF
        self._rng = random.Random((seed << 8) ^ name_salt)
        self._streams: List[StreamCursor] = []
        for i in range(profile.stream_count):
            partner = None
            if self._streams and self._rng.random() < 0.5:
                partner = self._rng.choice(self._streams)
            self._streams.append(StreamCursor(
                self._rng, profile.footprint_bytes, partner))
        hot_bytes = max(LINE, int(profile.footprint_bytes
                                  * profile.hot_set))
        self._hot_base = self._rng.randrange(
            0, max(1, (profile.footprint_bytes - hot_bytes) // LINE)) * LINE
        self._hot_bytes = hot_bytes
        #: Current stream burst: streams emit short sequential runs
        #: before the generator switches streams, like the line-fill
        #: bursts a hardware prefetcher produces.
        self._burst_stream: StreamCursor = self._streams[0]
        self._burst_left = 0

    def _stream_address(self) -> int:
        p, rng = self.profile, self._rng
        if self._burst_left <= 0:
            self._burst_stream = rng.choice(self._streams)
            self._burst_left = rng.randint(4, 16)
        self._burst_left -= 1
        cursor = self._burst_stream
        if cursor.partner is not None and rng.random() < 0.5:
            # Loop bodies touch the paired array in the same iteration
            # (a[i] / b[i]): interleave the partner within the burst.
            cursor = cursor.partner
        addr = cursor.next()
        if rng.random() < p.neighbor_fraction:
            # Vertical-stencil neighbour: the same position a few DRAM
            # rows up or down ("region 2" row-address locality -- the
            # paper's 13-MSB locality covers rows within +/-8).
            distance = rng.choice((1, 1, 2, 4, 8))
            offset = distance * ROW_SPAN_BYTES
            if rng.random() < 0.5:
                offset = -offset
            neighbor = addr + offset
            if 0 <= neighbor < p.footprint_bytes:
                addr = neighbor
        return addr

    def _virtual_address(self) -> tuple:
        """(virtual address, is_stream_access)."""
        p, rng = self.profile, self._rng
        if rng.random() < p.stream_fraction:
            return self._stream_address(), True
        if rng.random() < p.hot_fraction:
            offset = rng.randrange(0, self._hot_bytes // LINE) * LINE
            return self._hot_base + offset, False
        return rng.randrange(0, p.footprint_bytes // LINE) * LINE, False

    def _gap(self) -> int:
        mean = self.profile.mean_gap
        if mean <= 0:
            return 0
        return min(int(self._rng.expovariate(1.0 / mean)), 100 * int(mean) + 100)

    def generate(self, accesses: int, name: Optional[str] = None) -> Trace:
        entries: List[TraceEntry] = []
        p = self.profile
        for _ in range(accesses):
            vaddr, is_stream = self._virtual_address()
            paddr = self.vm.translate(vaddr) & ~(LINE - 1)
            is_write = self._rng.random() < p.write_fraction
            # Non-stream reads are pointer-chase candidates: their
            # address came from a previous load with probability
            # ``dependent_fraction``.
            depends = (not is_stream and not is_write
                       and self._rng.random() < p.dependent_fraction)
            entries.append(
                TraceEntry(self._gap(), is_write, paddr, depends))
        return Trace.from_entries(
            entries, name=name or self.profile.name)


def generate_traces(profiles: List[BenchmarkProfile],
                    accesses_per_core: int,
                    fragmentation: float = 0.1,
                    total_physical_bytes: int = 1 << 34,
                    seed: int = 0) -> List[Trace]:
    """Traces for one multi-programmed mix sharing physical memory.

    All programs allocate from the same :class:`PhysicalMemory`, like
    co-running processes on one machine; the fragmentation level plays
    the role of the paper's FMFI (10% / 50%).
    """
    physical = PhysicalMemory(total_physical_bytes, fragmentation, seed)
    traces = []
    for i, prof in enumerate(profiles):
        gen = TraceGenerator(prof, physical, seed=seed * 31 + i)
        traces.append(gen.generate(accesses_per_core))
    return traces
