"""Physical-memory allocation under controlled fragmentation.

The paper captures physical addresses on a live Linux system and controls
the *free memory fragmentation index* (FMFI) with the Ingens tool,
evaluating at 10% and 50% fragmentation.  What fragmentation changes for
the memory system is *how much physical-address locality survives
translation*:

* an anonymous region backed by a **transparent huge page** keeps 21 bits
  of contiguity -- the source of the paper's "region 1" locality (only
  high-order row bits change infrequently);
* a region that falls back to scattered **4 KiB pages** destroys all
  locality above bit 12.

We model this directly: a :class:`PhysicalMemory` hands out 2 MiB-aligned
huge regions or scattered 4 KiB frames from a physical address space, and
a huge-page allocation *fails* with probability equal to the FMFI (at 50%
fragmentation, half the memory is only available in sub-huge-page
blocks).  A :class:`VirtualMemory` is a per-process page table applying
transparent-huge-page policy on demand.
"""

from __future__ import annotations

import random
from typing import Dict, Optional

PAGE_SHIFT = 12
PAGE_SIZE = 1 << PAGE_SHIFT
HUGE_SHIFT = 21
HUGE_SIZE = 1 << HUGE_SHIFT
FRAMES_PER_HUGE = HUGE_SIZE // PAGE_SIZE


class OutOfMemoryError(RuntimeError):
    """The modelled physical address space is exhausted."""


class PhysicalMemory:
    """A physical address space with an FMFI-style fragmentation knob."""

    def __init__(self, total_bytes: int = 1 << 34,
                 fragmentation: float = 0.1, seed: int = 0,
                 jump_probability: float = 0.05) -> None:
        if total_bytes % HUGE_SIZE:
            raise ValueError("total_bytes must be a multiple of 2 MiB")
        if not 0.0 <= fragmentation <= 1.0:
            raise ValueError("fragmentation must be in [0, 1]")
        self.total_bytes = total_bytes
        self.fragmentation = fragmentation
        self.jump_probability = jump_probability
        self._rng = random.Random(seed)
        self._chunk_count = total_bytes // HUGE_SIZE
        self._free = bytearray(b"\x01" * self._chunk_count)
        self._free_count = self._chunk_count
        #: Per-process allocation cursors: each process's huge pages
        #: cluster in its own band of physical memory, like the distinct
        #: free areas a buddy allocator serves long-lived processes from.
        self._cursors: Dict[int, int] = {}
        #: Partially-used chunks serving scattered 4 KiB frames:
        #: chunk index -> list of free frame offsets (shuffled).
        self._broken: Dict[int, list] = {}
        self._frames_allocated = 0

    @property
    def frames_allocated(self) -> int:
        return self._frames_allocated

    def _take_chunk_from(self, start: int) -> int:
        """Next free chunk at/after ``start`` (wrapping), like a buddy
        allocator serving a stream of requests from one free area."""
        if not self._free_count:
            raise OutOfMemoryError("physical memory exhausted")
        idx = start % self._chunk_count
        for _ in range(self._chunk_count):
            if self._free[idx]:
                self._free[idx] = 0
                self._free_count -= 1
                return idx
            idx = (idx + 1) % self._chunk_count
        raise OutOfMemoryError("physical memory exhausted")

    def allocate_huge(self, owner: int = 0) -> Optional[int]:
        """A 2 MiB-aligned physical base, or None on fragmentation miss.

        The miss probability equals the configured fragmentation level --
        the model's definition of FMFI (the fraction of free memory not
        available as >= 2 MiB blocks).

        Successful allocations are *clustered per owner*: each process's
        huge pages continue from that process's previous allocation, with
        an occasional far jump (``jump_probability``).  This mirrors how
        a buddy allocator serves co-running processes from distinct
        contiguous free areas and produces the multi-scale
        row-address-MSB locality the paper measures in Fig. 4
        ("region 1").
        """
        if self._rng.random() < self.fragmentation:
            return None
        cursor = self._cursors.get(owner)
        if cursor is None or self._rng.random() < self.jump_probability:
            cursor = self._rng.randrange(self._chunk_count)
        chunk = self._take_chunk_from(cursor)
        self._cursors[owner] = chunk + 1
        self._frames_allocated += FRAMES_PER_HUGE
        return chunk * HUGE_SIZE

    #: Broken chunks kept available simultaneously, so scattered frames
    #: come from all over physical memory rather than draining one chunk.
    BROKEN_POOL = 32

    def allocate_frame(self) -> int:
        """One scattered 4 KiB frame from a random broken chunk.

        Broken chunks sit at random positions and a pool of them serves
        frame allocations round-robin-randomly: fragmented allocations
        land anywhere in physical memory, destroying high-order address
        locality (the fragmentation effect the paper studies at FMFI
        50%).
        """
        while (len(self._broken) < self.BROKEN_POOL
               and self._free_count):
            self._break_chunk()
        if not self._broken:
            raise OutOfMemoryError("no broken chunks left")
        chunk = self._rng.choice(list(self._broken))
        frames = self._broken[chunk]
        offset = frames.pop()
        if not frames:
            del self._broken[chunk]
        self._frames_allocated += 1
        return chunk * HUGE_SIZE + offset * PAGE_SIZE

    def _break_chunk(self) -> None:
        # Broken chunks come from anywhere in memory (no owner band).
        chunk = self._take_chunk_from(self._rng.randrange(self._chunk_count))
        offsets = list(range(FRAMES_PER_HUGE))
        self._rng.shuffle(offsets)
        self._broken[chunk] = offsets


class VirtualMemory:
    """A per-process page table with transparent-huge-page policy.

    Each 2 MiB-aligned virtual region is backed on first touch: by a huge
    page when :meth:`PhysicalMemory.allocate_huge` succeeds, otherwise by
    independent scattered 4 KiB frames (allocated lazily per page).
    """

    _next_owner = 0

    def __init__(self, physical: PhysicalMemory,
                 owner: Optional[int] = None) -> None:
        self.physical = physical
        if owner is None:
            owner = VirtualMemory._next_owner
            VirtualMemory._next_owner += 1
        self.owner = owner
        #: region index -> huge physical base (int) or per-page dict.
        self._regions: Dict[int, object] = {}
        self.huge_regions = 0
        self.fragmented_regions = 0

    def translate(self, vaddr: int) -> int:
        if vaddr < 0:
            raise ValueError("negative virtual address")
        region = vaddr >> HUGE_SHIFT
        backing = self._regions.get(region)
        if backing is None:
            base = self.physical.allocate_huge(self.owner)
            if base is None:
                backing = {}
                self.fragmented_regions += 1
            else:
                backing = base
                self.huge_regions += 1
            self._regions[region] = backing
        if isinstance(backing, int):
            return backing | (vaddr & (HUGE_SIZE - 1))
        page = (vaddr >> PAGE_SHIFT) & (FRAMES_PER_HUGE - 1)
        frame = backing.get(page)
        if frame is None:
            frame = self.physical.allocate_frame()
            backing[page] = frame
        return frame | (vaddr & (PAGE_SIZE - 1))

    @property
    def huge_page_rate(self) -> float:
        total = self.huge_regions + self.fragmented_regions
        if not total:
            return 0.0
        return self.huge_regions / total
