"""The nine 4-program mixes of the paper's Tab. III."""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.cpu.trace import Trace
from repro.workloads.generator import generate_traces
from repro.workloads.profiles import BenchmarkProfile, profile

#: Tab. III: mix name -> (benchmarks, intensity signature).
MIXES: Dict[str, Tuple[Tuple[str, str, str, str], str]] = {
    "mix0": (("mcf", "lbm", "omnetpp", "gemsFDTD"), "H:H:H:H"),
    "mix1": (("mcf", "lbm", "gemsFDTD", "soplex"), "H:H:H:H"),
    "mix2": (("lbm", "omnetpp", "gemsFDTD", "soplex"), "H:H:H:H"),
    "mix3": (("omnetpp", "gemsFDTD", "soplex", "milc"), "H:H:H:M"),
    "mix4": (("gemsFDTD", "soplex", "milc", "bwaves"), "H:H:M:M"),
    "mix5": (("soplex", "milc", "bwaves", "leslie3d"), "H:M:M:M"),
    "mix6": (("milc", "bwaves", "astar", "leslie3d"), "M:M:M:M"),
    "mix7": (("milc", "bwaves", "astar", "cactusADM"), "M:M:M:M"),
    "mix8": (("bwaves", "leslie3d", "astar", "cactusADM"), "M:M:M:M"),
}

MIX_NAMES = tuple(MIXES)


def mix_profiles(mix: str) -> List[BenchmarkProfile]:
    try:
        names, _ = MIXES[mix]
    except KeyError:
        raise KeyError(f"unknown mix {mix!r}; known: {list(MIXES)}") \
            from None
    return [profile(n) for n in names]


def mix_intensity(mix: str) -> str:
    return MIXES[mix][1]


def mix_traces(mix: str, accesses_per_core: int = 4000,
               fragmentation: float = 0.1, seed: int = 0) -> List[Trace]:
    """Generate the four traces of one mix (shared physical memory)."""
    return generate_traces(mix_profiles(mix), accesses_per_core,
                           fragmentation=fragmentation, seed=seed)


def benchmark_names() -> List[str]:
    """Every distinct benchmark appearing in some mix."""
    seen: List[str] = []
    for names, _ in MIXES.values():
        for n in names:
            if n not in seen:
                seen.append(n)
    return seen
