"""ROB-limited trace-driven core model.

Matches the paper's methodology at the abstraction the memory study needs
(Tab. III: 4 GHz out-of-order x86, issue width 8, ROB 192): the core
executes its trace's non-memory instructions at the issue rate, sends
memory accesses to the controller as soon as the frontier reaches them,
and stalls only when the reorder buffer fills behind an incomplete read --
i.e. when the next instruction to fetch is more than ``rob_size``
instructions ahead of the oldest read still waiting for data.

The model is fully event-driven: :meth:`next_request_time` computes when
the next access can be handed to the controller from the frontier time and
the ROB barrier, returning ``BLOCKED`` while an unresolved read pins the
window.  Completions arrive via :meth:`complete_read`.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass
from typing import Deque, Optional

from repro.cpu.trace import Trace, TraceEntry

#: Sentinel "cannot issue until a read completes" timestamp.
BLOCKED = 1 << 62

#: Staleness sentinel for the oldest-incomplete-read memo (``None`` is
#: a valid answer, so the memo needs a distinct "unknown" marker).
_STALE = object()


@dataclass(frozen=True)
class CoreConfig:
    """Tab. III processor parameters."""

    clock_hz: float = 4e9
    issue_width: int = 8
    rob_size: int = 192

    @property
    def cycle_ps(self) -> int:
        return int(round(1e12 / self.clock_hz))

    @property
    def instruction_time_ps(self) -> float:
        """Average time to issue one non-memory instruction."""
        return self.cycle_ps / self.issue_width

    def scaled(self, factor: float) -> "CoreConfig":
        """CPU clock scaled by ``factor`` (Fig. 14 scales CPU with bus)."""
        return CoreConfig(self.clock_hz * factor, self.issue_width,
                          self.rob_size)


class TraceCore:
    """One core executing one trace against the memory system."""

    def __init__(self, trace: Trace, config: CoreConfig = CoreConfig(),
                 core_id: int = 0) -> None:
        self.trace = trace
        self.config = config
        self.core_id = core_id
        self._index = 0                     # next trace entry
        self._instructions_issued = 0       # instructions before entry
        self._frontier_ps = 0.0             # execution-front time
        #: Reads in flight: (instruction index, completion time or None).
        self._inflight: Deque[list] = deque()
        self._last_read_completion = 0
        self._finish_time: Optional[int] = None
        #: Sticky retire barrier: once the ROB forces fetch to wait for a
        #: completion, that lower bound holds for all later fetches too.
        self._retire_barrier = 0
        #: Most recent read, for address-dependent (pointer-chase)
        #: accesses: instruction index and completion time (None while
        #: the data is outstanding).
        self._dep_read_index: Optional[int] = None
        self._dep_read_completion: Optional[int] = None
        #: Memoised next_request_time(); the answer only changes when
        #: this core pops a request or one of its reads completes.
        self._ready_cache: Optional[int] = None
        #: Memoised oldest_incomplete_read(); same invalidation points.
        self._oldest_cache = _STALE
        #: Monotone state-version counter, bumped exactly where the
        #: memos above are invalidated (:meth:`pop_request` and
        #: :meth:`complete_read`).  Everything the sharded loop derives
        #: from this core -- ready time, trace index, in-flight read
        #: set, ROB pin -- is a pure function of the version, so its
        #: per-core horizon contribution is cached against it
        #: (:meth:`repro.sim.shards.ShardedSimulator._assemble_horizons`).
        self.version = 0
        self._instr_ps = config.instruction_time_ps

    # -- progress ----------------------------------------------------------

    @property
    def done(self) -> bool:
        return self._index >= len(self.trace) and not self._pending_reads()

    def _pending_reads(self) -> bool:
        return any(item[1] is None for item in self._inflight)

    def _next_entry(self) -> TraceEntry:
        return self.trace.entries[self._index]

    def _next_instruction_index(self) -> int:
        return self._instructions_issued + self._next_entry().gap + 1

    def _rob_barrier(self, target_index: int) -> int:
        """Latest completion among reads the ROB forces to retire first.

        Returns BLOCKED if any such read has not completed yet.
        """
        horizon = target_index - self.config.rob_size
        while self._inflight and self._inflight[0][0] <= horizon:
            completion = self._inflight[0][1]
            if completion is None:
                return BLOCKED
            self._retire_barrier = max(self._retire_barrier, completion)
            self._inflight.popleft()
        return self._retire_barrier

    def next_request_time(self) -> int:
        """When the next memory access is ready for the controller.

        ``BLOCKED`` while the ROB is full behind an incomplete read;
        ``BLOCKED`` also once the trace is exhausted.

        Memoised: the inputs only change through :meth:`pop_request` or
        :meth:`complete_read`, which drop the cache.
        """
        cached = self._ready_cache
        if cached is not None:
            return cached
        self._ready_cache = ready = self._compute_request_time()
        return ready

    def _compute_request_time(self) -> int:
        if self._index >= len(self.trace):
            return BLOCKED
        entry = self._next_entry()
        barrier = self._rob_barrier(self._next_instruction_index())
        if barrier == BLOCKED:
            return BLOCKED
        if entry.depends and self._dep_read_index is not None:
            # Pointer chase: the address comes from the previous read.
            if self._dep_read_completion is None:
                return BLOCKED
            barrier = max(barrier, self._dep_read_completion)
        compute = self._frontier_ps + entry.gap * self._instr_ps
        return max(int(compute), barrier)

    def peek_entry(self) -> TraceEntry:
        """The next access this core will issue (trace must not be done)."""
        return self._next_entry()

    @property
    def trace_index(self) -> int:
        """Index of the next trace entry to issue (== len when done)."""
        return self._index

    def next_request_address(self) -> Optional[int]:
        """Physical address of the next access, without popping it.

        ``None`` once the trace is exhausted.  Valid even while the core
        is blocked: trace entries carry concrete addresses (``depends``
        marks a *timing* dependency on the previous read, not an unknown
        address), so a router can classify the upcoming arrival by
        channel before the core is ready to issue it.  The sharded
        simulator (:mod:`repro.sim.shards`) uses this to compute each
        channel's interaction horizon.
        """
        if self._index >= len(self.trace):
            return None
        return self.trace.entries[self._index].address

    def pop_request(self, issue_time: int) -> TraceEntry:
        """Hand the next access to the controller at ``issue_time``."""
        ready = self.next_request_time()
        if ready == BLOCKED:
            raise ValueError("core is blocked; no request to pop")
        if issue_time < ready:
            raise ValueError(f"issue at {issue_time} before ready {ready}")
        entry = self._next_entry()
        index = self._next_instruction_index()
        if not entry.is_write:
            self._inflight.append([index, None])
            self._dep_read_index = index
            self._dep_read_completion = None
        self._instructions_issued = index
        # The access instruction itself occupies one issue slot.
        self._frontier_ps = issue_time + self._instr_ps
        self._index += 1
        self._ready_cache = None
        self._oldest_cache = _STALE
        self.version += 1
        return entry

    def instruction_index_of_last_request(self) -> int:
        """Instruction index assigned to the most recent pop_request()."""
        return self._instructions_issued

    def complete_read(self, instruction_index: int,
                      completion_time: int) -> None:
        """Mark the read issued at ``instruction_index`` complete.

        DRAM may return data out of order across banks; completions are
        matched to the exact in-flight read so the ROB barrier reflects
        each read's true latency.
        """
        for item in self._inflight:
            if item[0] == instruction_index and item[1] is None:
                item[1] = completion_time
                self._last_read_completion = max(
                    self._last_read_completion, completion_time)
                if instruction_index == self._dep_read_index:
                    self._dep_read_completion = completion_time
                self._ready_cache = None
                self._oldest_cache = _STALE
                self.version += 1
                return
        raise ValueError(
            f"no outstanding read at instruction {instruction_index}")

    # -- results -----------------------------------------------------------

    def finish_time(self) -> int:
        """Time when the last instruction retires."""
        if not self.done:
            raise ValueError("core has not finished its trace")
        if self._finish_time is None:
            tail = self.trace.tail_instructions * \
                self.config.instruction_time_ps
            self._finish_time = max(
                int(math.ceil(self._frontier_ps + tail)),
                self._last_read_completion)
        return self._finish_time

    def ipc(self) -> float:
        """Committed instructions per CPU cycle over the whole run."""
        elapsed = self.finish_time()
        if elapsed <= 0:
            return float(self.config.issue_width)
        cycles = elapsed / self.config.cycle_ps
        return self.trace.total_instructions / cycles

    @property
    def outstanding_reads(self) -> int:
        return sum(1 for item in self._inflight if item[1] is None)

    def oldest_incomplete_read(self) -> Optional[int]:
        """Instruction index of the oldest read still awaiting data.

        ``None`` when every in-flight read has a (possibly future)
        completion time.  The sharded loop uses this to prove a core
        *cannot* fill its ROB before its next channel switch: the ROB
        barrier only ever blocks on reads with ``completion is None``,
        and the oldest such read bounds every barrier check until a new
        read is issued.  Memoised like ``next_request_time``: the
        answer changes only through ``pop_request``/``complete_read``.
        """
        oldest = self._oldest_cache
        if oldest is not _STALE:
            return oldest
        oldest = None
        for index, completion in self._inflight:
            if completion is None:
                oldest = index
                break
        self._oldest_cache = oldest
        return oldest
