"""Memory-access trace format.

A trace is a sequence of :class:`TraceEntry` records: each carries the
number of non-memory instructions executed since the previous memory
access (the *gap*), the access kind, and its physical address.  This is
the USIMM trace abstraction the paper's methodology builds on -- enough to
drive a ROB-limited core model without simulating a pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List, TextIO


@dataclass(frozen=True)
class TraceEntry:
    """One memory access preceded by ``gap`` non-memory instructions.

    ``depends`` marks an address-dependent access (pointer chasing): it
    cannot issue before the *previous read's* data returns, serialising
    the chain the way a real out-of-order core must.
    """

    gap: int
    is_write: bool
    address: int
    depends: bool = False

    def __post_init__(self) -> None:
        if self.gap < 0:
            raise ValueError("gap must be non-negative")
        if self.address < 0:
            raise ValueError("address must be non-negative")


@dataclass(frozen=True)
class Trace:
    """An immutable trace plus its bookkeeping totals."""

    entries: tuple
    #: Non-memory instructions after the last access (program epilogue).
    tail_instructions: int = 0
    name: str = "trace"

    @classmethod
    def from_entries(cls, entries: Iterable[TraceEntry],
                     tail_instructions: int = 0,
                     name: str = "trace") -> "Trace":
        return cls(tuple(entries), tail_instructions, name)

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self) -> Iterator[TraceEntry]:
        return iter(self.entries)

    @property
    def total_instructions(self) -> int:
        """All instructions, counting each memory access as one."""
        return (sum(e.gap for e in self.entries) + len(self.entries)
                + self.tail_instructions)

    @property
    def memory_accesses(self) -> int:
        return len(self.entries)

    @property
    def reads(self) -> int:
        return sum(1 for e in self.entries if not e.is_write)

    @property
    def writes(self) -> int:
        return sum(1 for e in self.entries if e.is_write)

    def mpki(self) -> float:
        """Memory accesses per thousand instructions."""
        total = self.total_instructions
        if not total:
            return 0.0
        return 1000.0 * self.memory_accesses / total


def write_trace(trace: Trace, stream: TextIO) -> None:
    """Serialise as ``gap R|W hex-address`` lines (USIMM-like)."""
    stream.write(f"# trace {trace.name} tail={trace.tail_instructions}\n")
    for e in trace.entries:
        kind = "W" if e.is_write else "R"
        dep = " D" if e.depends else ""
        stream.write(f"{e.gap} {kind} {e.address:#x}{dep}\n")


def read_trace(stream: TextIO, name: str = "trace") -> Trace:
    """Parse the :func:`write_trace` format."""
    entries: List[TraceEntry] = []
    tail = 0
    for line in stream:
        line = line.strip()
        if not line:
            continue
        if line.startswith("#"):
            for token in line.split():
                if token.startswith("tail="):
                    tail = int(token[len("tail="):])
            continue
        fields = line.split()
        if len(fields) not in (3, 4):
            raise ValueError(f"bad trace line {line!r}")
        gap_s, kind, addr_s = fields[:3]
        depends = len(fields) == 4 and fields[3] == "D"
        if kind not in ("R", "W"):
            raise ValueError(f"bad access kind {kind!r}")
        entries.append(TraceEntry(int(gap_s), kind == "W",
                                  int(addr_s, 16), depends))
    return Trace.from_entries(entries, tail, name)
