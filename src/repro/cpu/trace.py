"""Memory-access trace format.

A trace is a sequence of :class:`TraceEntry` records: each carries the
number of non-memory instructions executed since the previous memory
access (the *gap*), the access kind, and its physical address.  This is
the USIMM trace abstraction the paper's methodology builds on -- enough to
drive a ROB-limited core model without simulating a pipeline.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Iterable, Iterator, List, TextIO


@dataclass(frozen=True)
class TraceEntry:
    """One memory access preceded by ``gap`` non-memory instructions.

    ``depends`` marks an address-dependent access (pointer chasing): it
    cannot issue before the *previous read's* data returns, serialising
    the chain the way a real out-of-order core must.
    """

    gap: int
    is_write: bool
    address: int
    depends: bool = False

    def __post_init__(self) -> None:
        if self.gap < 0:
            raise ValueError("gap must be non-negative")
        if self.address < 0:
            raise ValueError("address must be non-negative")


@dataclass(frozen=True)
class Trace:
    """An immutable trace plus its bookkeeping totals."""

    entries: tuple
    #: Non-memory instructions after the last access (program epilogue).
    tail_instructions: int = 0
    name: str = "trace"

    @classmethod
    def from_entries(cls, entries: Iterable[TraceEntry],
                     tail_instructions: int = 0,
                     name: str = "trace") -> "Trace":
        return cls(tuple(entries), tail_instructions, name)

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self) -> Iterator[TraceEntry]:
        return iter(self.entries)

    @property
    def total_instructions(self) -> int:
        """All instructions, counting each memory access as one."""
        return (sum(e.gap for e in self.entries) + len(self.entries)
                + self.tail_instructions)

    @property
    def memory_accesses(self) -> int:
        return len(self.entries)

    @property
    def reads(self) -> int:
        return sum(1 for e in self.entries if not e.is_write)

    @property
    def writes(self) -> int:
        return sum(1 for e in self.entries if e.is_write)

    def mpki(self) -> float:
        """Memory accesses per thousand instructions."""
        total = self.total_instructions
        if not total:
            return 0.0
        return 1000.0 * self.memory_accesses / total

    def cache_key(self) -> str:
        """Content hash over every field that drives simulation.

        The trace is immutable, so the key doubles as an invalidation
        hook for anything memoised per trace: equal keys mean equal
        entry streams (gap, kind, address, depends) and tail, and the
        sharded loop's per-core routing lookahead tables are a pure
        function of those plus the system config
        (:func:`repro.sim.shards.lookahead_memo_stats` shows the memo
        it feeds).  Computed lazily once and pinned on the instance.
        """
        key = getattr(self, "_cache_key", None)
        if key is None:
            h = hashlib.sha256()
            h.update(f"tail={self.tail_instructions};".encode())
            for e in self.entries:
                h.update(f"{e.gap},{int(e.is_write)},{e.address:x},"
                         f"{int(e.depends)};".encode())
            key = h.hexdigest()
            object.__setattr__(self, "_cache_key", key)
        return key


def write_trace(trace: Trace, stream: TextIO) -> None:
    """Serialise as ``gap R|W hex-address`` lines (USIMM-like)."""
    stream.write(f"# trace {trace.name} tail={trace.tail_instructions}\n")
    for e in trace.entries:
        kind = "W" if e.is_write else "R"
        dep = " D" if e.depends else ""
        stream.write(f"{e.gap} {kind} {e.address:#x}{dep}\n")


def read_trace(stream: TextIO, name: str = "trace") -> Trace:
    """Parse the :func:`write_trace` format."""
    entries: List[TraceEntry] = []
    tail = 0
    for line in stream:
        line = line.strip()
        if not line:
            continue
        if line.startswith("#"):
            for token in line.split():
                if token.startswith("tail="):
                    tail = int(token[len("tail="):])
            continue
        fields = line.split()
        if len(fields) not in (3, 4):
            raise ValueError(f"bad trace line {line!r}")
        gap_s, kind, addr_s = fields[:3]
        depends = len(fields) == 4 and fields[3] == "D"
        if kind not in ("R", "W"):
            raise ValueError(f"bad access kind {kind!r}")
        entries.append(TraceEntry(int(gap_s), kind == "W",
                                  int(addr_s, 16), depends))
    return Trace.from_entries(entries, tail, name)
