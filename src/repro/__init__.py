"""ERUCA reproduction: sub-bank conflict avoidance and dual-data-bus
DRAM parallelism (Lym et al., HPCA 2018), with a from-scratch DDR4
timing simulator, trace-driven cores, and synthetic SPEC-like workloads.

Typical use::

    from repro import EruConfig, run_traces, vsb, ddr4_baseline
    from repro.workloads.mixes import mix_traces

    traces = mix_traces("mix0", accesses_per_core=2000)
    base = run_traces(ddr4_baseline(), traces)
    eruca = run_traces(vsb(EruConfig.full(planes=4)), traces)
    print(sum(eruca.ipcs) / sum(base.ipcs))

The experiment runners that regenerate every paper figure live in
:mod:`repro.sim.experiments`; the area model in :mod:`repro.core.area`;
the Fig. 4 trace study in :mod:`repro.analysis.plane_conflict`.

To see *where the cycles go*, pass ``observe=True`` (or an
:class:`ObserveOptions`) to :func:`run_traces`: the result then carries
an :class:`AccountingReport` attributing every channel cycle to one
:class:`StallBucket` (``docs/OBSERVABILITY.md`` documents the buckets,
the trace schema, and the ``repro stats`` / ``repro trace`` CLI).
"""

from repro.core.mechanisms import EruConfig
from repro.sim.accounting import (
    AccountingReport,
    ObserveOptions,
    StallBucket,
)
from repro.cpu.core import CoreConfig, TraceCore
from repro.cpu.trace import Trace, TraceEntry
from repro.sim.config import (
    SystemConfig,
    bg32,
    ddr4_baseline,
    half_dram,
    ideal32,
    masa,
    masa_eruca,
    paired_bank,
    vsb,
)
from repro.sim.experiments import ExperimentContext, ExperimentSettings
from repro.sim.simulator import (
    MemorySystem,
    SimulationResult,
    Simulator,
    run_traces,
)

__version__ = "1.0.0"

__all__ = [
    "AccountingReport",
    "CoreConfig",
    "EruConfig",
    "ExperimentContext",
    "ExperimentSettings",
    "MemorySystem",
    "ObserveOptions",
    "SimulationResult",
    "Simulator",
    "StallBucket",
    "SystemConfig",
    "Trace",
    "TraceCore",
    "TraceEntry",
    "bg32",
    "ddr4_baseline",
    "half_dram",
    "ideal32",
    "masa",
    "masa_eruca",
    "paired_bank",
    "run_traces",
    "vsb",
]
