"""Fig. 4 trace analysis: plane-conflict potential vs. plane count.

The paper motivates EWLR/RAP with a trace study: for each memory
transaction, look at the other transactions to the *same bank* within a
``tRC`` time window; if some overlapping transaction targets the *other*
sub-bank with a different row in the *same plane*, the pair would suffer a
plane conflict.  Fig. 4 sweeps the plane count from 2 to 32768 (every
plane a single EWLR) and plots the fraction of overlapping transactions
with and without plane conflicts, averaged over the mcf / lbm / gemsFDTD /
omnetpp traces.

The analysis is purely on timestamped traces -- no timing simulation --
so we assign each access a nominal issue time from the trace gaps at the
configured core clock (the same fixed-rate frontier the core model uses
between stalls).
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence

from repro.controller.mapping import AddressMapping
from repro.cpu.core import CoreConfig
from repro.cpu.trace import Trace
from repro.dram.timing import ddr4_timings

#: Fig. 4's x-axis: 2 .. 32768 planes.
FIG4_PLANE_COUNTS = tuple(2 ** k for k in range(1, 16))


@dataclass(frozen=True)
class TimedAccess:
    """One transaction with its nominal issue time and decoded location."""

    time: int
    bank_key: tuple
    subbank: int
    row: int


def timestamp_trace(trace: Trace, mapping: AddressMapping,
                    core: CoreConfig = CoreConfig(),
                    effective_ipc: float = 2.0) -> List[TimedAccess]:
    """Assign nominal times from trace gaps.

    ``effective_ipc`` is the committed IPC assumed for the timestamping
    (memory-bound SPEC programs sustain ~1-3, far below the issue width);
    the paper's traces carry real captured times, which this stands in
    for.
    """
    out: List[TimedAccess] = []
    time = 0.0
    instruction_time = core.cycle_ps / effective_ipc
    for entry in trace:
        time += (entry.gap + 1) * instruction_time
        coords = mapping.decode(entry.address)
        out.append(TimedAccess(
            time=int(time),
            bank_key=coords.bank_key(
                mapping.config.banks_per_group),
            subbank=coords.subbank,
            row=coords.row,
        ))
    return out


def _plane_of(row: int, planes: int, row_bits: int) -> int:
    """Naive (MSB-region) plane of a row, as in Fig. 3."""
    bits = (planes - 1).bit_length()
    return row >> (row_bits - bits)


@dataclass
class ConflictCounts:
    """Fig. 4's per-plane-count outcome."""

    overlapping: int = 0
    plane_conflict: int = 0
    no_plane_conflict: int = 0

    def conflict_fraction(self, total_transactions: int) -> float:
        if not total_transactions:
            return 0.0
        return self.plane_conflict / total_transactions

    def no_conflict_fraction(self, total_transactions: int) -> float:
        if not total_transactions:
            return 0.0
        return self.no_plane_conflict / total_transactions


def analyze_plane_conflicts(
        traces: Sequence[Trace], mapping: AddressMapping,
        plane_counts: Iterable[int] = FIG4_PLANE_COUNTS,
        window_ps: int = None,
        core: CoreConfig = CoreConfig(),
        effective_ipc: float = 2.0) -> Dict[int, ConflictCounts]:
    """The Fig. 4 study over a set of traces.

    For every transaction, the transactions to the same bank within
    ``+/- window_ps`` (default tRC) are inspected; the transaction counts
    as *overlapping* if any of them targets the opposite sub-bank.  It
    counts as a *plane conflict* at plane count ``n`` if some overlapping
    opposite-sub-bank transaction has a different row in the same plane,
    and as *no plane conflict* otherwise.
    """
    if window_ps is None:
        window_ps = ddr4_timings().tRC
    plane_counts = sorted(set(plane_counts))
    row_bits = mapping.config.row_bits
    accesses: List[TimedAccess] = []
    for trace in traces:
        accesses.extend(
            timestamp_trace(trace, mapping, core, effective_ipc))

    by_bank: Dict[tuple, List[TimedAccess]] = defaultdict(list)
    for acc in accesses:
        by_bank[acc.bank_key].append(acc)
    for group in by_bank.values():
        group.sort(key=lambda a: a.time)

    total = len(accesses)
    results = {n: ConflictCounts() for n in plane_counts}
    for group in by_bank.values():
        times = [a.time for a in group]
        for i, acc in enumerate(group):
            lo = bisect_left(times, acc.time - window_ps)
            hi = bisect_right(times, acc.time + window_ps)
            others = [group[j] for j in range(lo, hi)
                      if j != i and group[j].subbank != acc.subbank]
            if not others:
                continue
            for n in plane_counts:
                plane = _plane_of(acc.row, n, row_bits)
                conflict = any(
                    other.row != acc.row
                    and _plane_of(other.row, n, row_bits) == plane
                    for other in others)
                counts = results[n]
                counts.overlapping += 1
                if conflict:
                    counts.plane_conflict += 1
                else:
                    counts.no_plane_conflict += 1
    for counts in results.values():
        counts.total_transactions = total  # type: ignore[attr-defined]
    return results


def overlap_fraction(results: Dict[int, ConflictCounts],
                     total_transactions: int) -> float:
    """Fraction of transactions overlapping an opposite-sub-bank access
    (the paper reports 67% on average)."""
    any_counts = next(iter(results.values()))
    if not total_transactions:
        return 0.0
    return any_counts.overlapping / total_transactions
