"""Ablation benches for design choices DESIGN.md calls out.

Not a paper figure: these quantify the modelling decisions --

* plane-ID bit placement (Fig. 9's two mappings) with and without RAP;
* sub-bank ID bit position (low, Fig. 9, vs high);
* write-drain watermarks;
* DDB two-command windows on/off at a fast channel (tTCW pessimism).
"""

from dataclasses import replace

from conftest import print_header

from repro.controller.controller import ChannelController
from repro.controller.mapping import (
    AddressMapping,
    PlanePlacement,
    RowLayout,
)
from repro.controller.queue import QueueConfig
from repro.core.mechanisms import EruConfig
from repro.cpu.core import TraceCore
from repro.dram.bank import BankGeometry
from repro.dram.device import Channel
from repro.dram.resources import BusPolicy
from repro.dram.timing import ddr4_timings
from repro.sim.config import ddr4_baseline, vsb
from repro.sim.simulator import MemorySystem, Simulator, run_traces
from repro.workloads.mixes import mix_traces


def run(config, traces):
    res = run_traces(config, traces)
    return sum(res.ipcs), res


def run_custom_vsb(traces, layout, ewlr, rap, policy=BusPolicy.DDB,
                   timing=None, subbank_low=True):
    """A VSB system built by hand, for knobs the presets do not expose."""
    if timing is None:
        timing = ddr4_timings()
        if policy is BusPolicy.DDB:
            timing = timing.with_ddb_windows()
    base = vsb()
    system = MemorySystem(base)
    mapping_cfg = replace(base.mapping().config, subbank_low=subbank_low)
    system.mapping = AddressMapping(mapping_cfg, layout)
    system.controllers = [
        ChannelController(Channel(
            timing, policy, base.bank_groups, base.banks_per_group,
            BankGeometry(subbanks=2, row_bits=layout.row_bits),
            row_layout=layout, ewlr=ewlr, rap=rap))
        for _ in range(base.channels)
    ]
    cores = [TraceCore(t, core_id=i) for i, t in enumerate(traces)]
    return Simulator(system, cores).run()


def test_ablation_plane_placement(benchmark, sweep_context):
    """EWLR-alone should collect its hits only with LSB plane bits
    (mapping 2 of Fig. 9); with RAP the MSB placement is the useful one."""
    traces = sweep_context.traces("mix0")

    def sweep():
        out = {}
        for rap in (False, True):
            for placement in (PlanePlacement.LSB, PlanePlacement.MSB):
                layout = RowLayout(row_bits=16, plane_count=4,
                                   plane_placement=placement,
                                   ewlr_bits=3)
                res = run_custom_vsb(traces, layout, ewlr=True, rap=rap)
                out[f"rap={rap},plane={placement.value}"] = res
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_header("Ablation: plane-ID bit placement (mix0)")
    for name, res in results.items():
        print(f"{name:26s} ipc={sum(res.ipcs):6.3f} "
              f"planepre={res.plane_conflict_precharge_fraction:5.3f} "
              f"ewlr_hits={res.ewlr_hit_rate:5.3f}")
    lsb = results["rap=False,plane=lsb"].ewlr_hit_rate
    msb = results["rap=False,plane=msb"].ewlr_hit_rate
    assert lsb >= msb


def test_ablation_subbank_bit_position(benchmark, sweep_context):
    """Fig. 9 puts the sub-bank ID among low (frequently-changing)
    bits; parking it high starves one sub-bank of traffic."""
    traces = sweep_context.traces("mix0")
    layout = EruConfig.full(4).row_layout()

    def sweep():
        return {
            f"subbank_low={low}": run_custom_vsb(
                traces, layout, ewlr=True, rap=True, subbank_low=low)
            for low in (True, False)
        }

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_header("Ablation: sub-bank ID bit position (mix0)")
    for name, res in results.items():
        print(f"{name:20s} ipc={sum(res.ipcs):6.3f}")
    assert all(sum(r.ipcs) > 0 for r in results.values())


def test_ablation_write_drain_watermarks(benchmark, sweep_context):
    traces = sweep_context.traces("mix0")

    def sweep():
        out = {}
        for high, low in ((24, 8), (31, 30), (9, 8)):
            config = replace(
                ddr4_baseline(),
                queue=QueueConfig(drain_high=high, drain_low=low),
                name=f"drain {high}/{low}")
            out[config.name] = run(config, traces)
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_header("Ablation: write-drain watermarks (DDR4, mix0)")
    for name, (ipc, _) in results.items():
        print(f"{name:16s} ipc={ipc:6.3f}")
    default = results["drain 24/8"][0]
    assert default > 0.8 * max(v for v, _ in results.values())


def test_ablation_page_policy(benchmark, sweep_context):
    """Pure open page vs adaptive idle-close at several thresholds."""
    traces = sweep_context.traces("mix0")

    def sweep():
        out = {}
        for label, idle in (("open page", None),
                            ("close@100ns", 100_000),
                            ("close@400ns", 400_000),
                            ("close@1600ns", 1_600_000)):
            config = replace(ddr4_baseline(), idle_close_ps=idle,
                             name=label)
            out[label] = run(config, traces)
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_header("Ablation: page policy (DDR4, mix0)")
    for name, (ipc, res) in results.items():
        from repro.dram.commands import PrechargeCause
        policy = res.precharge_causes[PrechargeCause.POLICY]
        conflict = res.precharge_causes[PrechargeCause.ROW_CONFLICT]
        print(f"{name:14s} ipc={ipc:6.3f} policy_pre={policy:5d} "
              f"conflict_pre={conflict:5d}")
    values = [v for v, _ in results.values()]
    assert max(values) / min(values) < 1.3  # policies are in one league


def test_ablation_ddb_windows(benchmark, sweep_context):
    """At 2.4 GHz the tTCW/tTWTRW windows bind; disabling them bounds
    what the DDB hardware could do without the conflict guard."""
    traces = sweep_context.traces("mix0")
    layout = EruConfig.full(4).row_layout()
    fast = ddr4_timings(2.4e9)

    def sweep():
        return {
            "tTCW on": run_custom_vsb(
                traces, layout, ewlr=True, rap=True,
                timing=fast.with_ddb_windows()),
            "tTCW off": run_custom_vsb(
                traces, layout, ewlr=True, rap=True, timing=fast),
        }

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_header("Ablation: DDB two-command windows at 2.4 GHz (mix0)")
    for name, res in results.items():
        print(f"{name:10s} ipc={sum(res.ipcs):6.3f}")
    on = sum(results["tTCW on"].ipcs)
    off = sum(results["tTCW off"].ipcs)
    # The guard costs a little but must not be catastrophic.
    assert on <= off * 1.02
    assert on >= off * 0.85
