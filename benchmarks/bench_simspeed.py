"""Simulator throughput: selection tables, candidate cache, parallelism.

Not a paper figure: this quantifies the optimisation layers on a quick
Fig. 12 grid, one phase per layer --

* **reference-serial**: the rebuild-every-candidate-every-peek
  scheduler path (the original algorithm, kept as the equivalence
  oracle), one process;
* **incremental-serial**: the per-bank candidate cache with
  floor-indexed selection tables, still one process -- isolates the
  scheduler win from parallelism;
* **sharded-serial**: the channel-sharded sweep driver
  (:mod:`repro.sim.shards`) on top of the incremental scheduler --
  isolates the horizon-bounded run-ahead win (incremental horizon
  assembly, mutation-keyed peek reuse, multi-round run-ahead);
* **sharded-threads**: the same shards on persistent worker threads,
  one per channel, under the original per-round barrier protocol
  (pays thread coordination for nothing under the GIL; built for
  free-threaded pythons, where it is the default backend);
* **parallel**: process-level fan-out with ``REPRO_BENCH_JOBS`` worker
  processes (at least 4 for this bench).

Every phase starts from a cold alone-IPC cache and must produce the
exact same speedup table *and* per-cell behaviour digests; wall times
and the scheduler's effort counters (peeks, candidates built,
candidates examined) are printed and recorded to
``BENCH_simspeed.json`` so the perf trajectory is tracked across PRs.

Runs two ways: under pytest-benchmark (the full three phases), or
standalone for the CI perf smoke --

::

    python benchmarks/bench_simspeed.py --quick

which runs the two serial phases on a smaller grid and asserts the
digest equality plus the peeks-per-command / candidates-per-command
ceilings.
"""

import hashlib
import json
import os
import sys
import time
from pathlib import Path

try:
    import repro  # noqa: F401
except ImportError:  # pragma: no cover - standalone invocation
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent
                           / "src"))

import repro.controller.scheduler as scheduler_mod
import repro.sim.shards as shards_mod
from repro.sim.experiments import (
    ExperimentContext,
    ExperimentSettings,
    fig12,
)

#: Effort ceilings asserted by the CI perf smoke.  Generous versus the
#: observed ~1.4 peeks and ~1.4 built candidates per command -- they
#: catch an accidental return to per-peek rebuilding (reference path
#: builds tens of candidates per command), not normal jitter.
MAX_PEEKS_PER_COMMAND = 2.5
MAX_CANDIDATES_BUILT_PER_COMMAND = 4.0


def _accesses(default: int = 800) -> int:
    # A lighter default than the figure benches: this grid runs thrice.
    return int(os.environ.get("REPRO_BENCH_ACCESSES", str(default)))


def _bench_mixes():
    from conftest import bench_mixes
    return bench_mixes()


def _run_grid_phase(jobs: int, incremental: bool, cache_dir: str,
                    accesses: int, mixes, shards: str = "off"):
    """One timed fig12 grid run under one scheduler/backend pair."""
    old_mode = scheduler_mod.INCREMENTAL_DEFAULT
    old_shards = shards_mod.SHARDS_DEFAULT
    old_cache = os.environ.get("REPRO_CACHE_DIR")
    scheduler_mod.INCREMENTAL_DEFAULT = incremental
    shards_mod.SHARDS_DEFAULT = shards
    os.environ["REPRO_CACHE_DIR"] = cache_dir
    try:
        context = ExperimentContext(ExperimentSettings(
            accesses_per_core=accesses, mixes=mixes),
            jobs=jobs)
        start = time.perf_counter()
        table = fig12(context)
        elapsed = time.perf_counter() - start
        counters = {"commands": 0, "peeks": 0, "candidates_built": 0,
                    "candidates_examined": 0, "transactions": 0,
                    "rounds": 0, "horizons_recomputed": 0,
                    "horizons_reused": 0, "peek_reuses": 0,
                    "horizon_time_s": 0.0, "retire_time_s": 0.0}
        digests = {}
        for (config, mix, _, _), result in \
                sorted(context._result_cache.items(),
                       key=lambda kv: (kv[0][0].name, kv[0][1])):
            counters["commands"] += result.stats.commands_issued
            counters["peeks"] += result.stats.peeks
            counters["candidates_built"] += result.stats.candidates_built
            counters["candidates_examined"] += \
                result.stats.candidates_examined
            counters["transactions"] += result.transactions
            counters["rounds"] += result.rounds
            counters["horizons_recomputed"] += result.horizons_recomputed
            counters["horizons_reused"] += result.horizons_reused
            counters["peek_reuses"] += result.stats.peek_reuses
            counters["horizon_time_s"] += result.horizon_time_s
            counters["retire_time_s"] += result.retire_time_s
            digests[f"{config.name}|{mix}"] = result.digest()
        counters["horizon_time_s"] = round(counters["horizon_time_s"], 4)
        counters["retire_time_s"] = round(counters["retire_time_s"], 4)
        # Result-store discipline: each phase ran against a cold cache
        # directory, so the store must have missed once and put once
        # per grid cell, and served nothing.
        sc = context.store.counters
        counters["store_hits"] = sc.hits
        counters["store_misses"] = sc.misses
        counters["store_puts"] = sc.puts
        counters["store_cells"] = len(context._cell_cache)
        return elapsed, table, counters, digests
    finally:
        scheduler_mod.INCREMENTAL_DEFAULT = old_mode
        shards_mod.SHARDS_DEFAULT = old_shards
        if old_cache is None:
            os.environ.pop("REPRO_CACHE_DIR", None)
        else:
            os.environ["REPRO_CACHE_DIR"] = old_cache


def _grid_digest(digests: dict) -> str:
    """One hash standing for every cell's behaviour digest."""
    blob = "\n".join(f"{k}:{v}" for k, v in sorted(digests.items()))
    return hashlib.sha256(blob.encode()).hexdigest()


def _phase_record(name: str, jobs: int, incremental: bool,
                  shards: str, elapsed: float, counters: dict,
                  digests: dict, round_walls) -> dict:
    commands = max(1, counters["commands"])
    peeks = max(1, counters["peeks"])
    return {
        "name": name,
        "jobs": jobs,
        "incremental": incremental,
        "shards": shards,
        "wall_s": round(elapsed, 4),
        "round_walls": [round(w, 4) for w in round_walls],
        **counters,
        "peeks_per_command": round(counters["peeks"] / commands, 4),
        "candidates_built_per_command": round(
            counters["candidates_built"] / commands, 4),
        "candidates_examined_per_peek": round(
            counters["candidates_examined"] / peeks, 4),
        "digest": _grid_digest(digests),
    }


def run_phases(accesses: int, mixes, jobs: int, cache_root: str,
               parallel_phase: bool = True, rounds: int = 2):
    """The bench proper: (phase records, speedup tables) for checks.

    Timing rounds are *interleaved* across the phases (reference,
    incremental, reference, incremental, ...) and each phase keeps its
    best round for ``wall_s`` plus every round's wall in
    ``round_walls``.  Back-to-back phases within a round see the same
    machine load, so the speedup ratios are computed *paired per
    round* (:func:`paired_speedup`): a slow patch of a shared box
    degrades both sides of a ratio instead of just whichever phase's
    best round happened to land in it.  Results, counters and digests
    are deterministic across rounds, so any round's table stands for
    all of them.
    """
    specs = [("reference-serial", 1, False, "off"),
             ("incremental-serial", 1, True, "off"),
             ("sharded-serial", 1, True, "serial"),
             ("sharded-threads", 1, True, "threads")]
    if parallel_phase:
        specs.append((f"parallel-x{jobs}", jobs, True, "serial"))
    best = [None] * len(specs)
    walls = [[] for _ in specs]
    for rnd in range(rounds):
        for i, (name, n_jobs, incremental, shards) in enumerate(specs):
            cache_dir = str(Path(cache_root)
                            / f"{name.replace('-', '_')}_{rnd}")
            elapsed, table, counters, digests = _run_grid_phase(
                n_jobs, incremental, cache_dir, accesses, mixes,
                shards=shards)
            walls[i].append(elapsed)
            if best[i] is None or elapsed < best[i][0]:
                best[i] = (elapsed, table, counters, digests)
    records, tables = [], []
    for i, ((name, n_jobs, incremental, shards),
            (elapsed, table, counters, digests)) in \
            enumerate(zip(specs, best)):
        records.append(_phase_record(name, n_jobs, incremental, shards,
                                     elapsed, counters, digests,
                                     walls[i]))
        tables.append(table)
    return records, tables


def _phase(records, name):
    return next(r for r in records if r["name"] == name)


def paired_speedup(records, slow: str, fast: str) -> float:
    """Median over timing rounds of the paired per-round wall ratio.

    Within one round the phases run back to back (seconds apart), so a
    shared box's slow patches -- which drift on the scale of minutes --
    hit both sides of the ratio equally and cancel.  A ratio of
    best-of-N walls has no such guarantee: the two minima may come
    from different rounds, crediting one phase with a fast patch the
    other never saw.
    """
    num = _phase(records, slow)["round_walls"]
    den = _phase(records, fast)["round_walls"]
    ratios = sorted(n / max(1e-9, d) for n, d in zip(num, den))
    mid = len(ratios) // 2
    if len(ratios) % 2:
        return ratios[mid]
    return (ratios[mid - 1] + ratios[mid]) / 2


def check_phases(records, tables) -> None:
    """The acceptance assertions every mode of this bench enforces."""
    ref, inc = records[0], records[1]
    # Identical science: not one value, not one digest may move.  This
    # covers the sharded backends: their digests (and the parallel
    # phase's) must match the reference scheduler's exactly.
    for record in records[1:]:
        assert record["digest"] == ref["digest"], (
            f"{record['name']} digests diverged from reference")
    for table in tables[1:]:
        assert table.values == tables[0].values
    # The incremental path peeks exactly as often but rebuilds far
    # less, and the selection tables examine strictly fewer candidates
    # per peek than the reference scan.
    assert inc["peeks"] == ref["peeks"]
    assert inc["candidates_built"] < ref["candidates_built"] / 2
    assert (inc["candidates_examined_per_peek"]
            < ref["candidates_examined_per_peek"])
    # Effort ceilings: catches a return to per-peek rebuilding.  The
    # sharded loop drives the same scheduler, so it is held to the same
    # ceilings -- and to the exact same peek count as the classic loop
    # (the horizon protocol adds no scheduling work).
    for record in (inc, _phase(records, "sharded-serial"),
                   _phase(records, "sharded-threads")):
        assert record["peeks"] == ref["peeks"], record["name"]
        assert record["peeks_per_command"] <= MAX_PEEKS_PER_COMMAND
        assert (record["candidates_built_per_command"]
                <= MAX_CANDIDATES_BUILT_PER_COMMAND)
    # The sharded loop's own caches must be pulling their weight:
    # round boundaries reuse peeks, horizon contributions are
    # overwhelmingly served from the version-keyed cache, and rebuilds
    # stay bounded by the events that can trigger them (a retired
    # request or a completed read -- at most ~2 per transaction, plus
    # one initial build per core per cell).  A return to per-assembly
    # recomputation trips the ceiling by ~1.5x.
    for record in (_phase(records, "sharded-serial"),
                   _phase(records, "sharded-threads")):
        assert record["peek_reuses"] > 0, record["name"]
        assert record["horizons_reused"] > record["horizons_recomputed"], \
            record["name"]
        assert (record["horizons_recomputed"]
                <= 2.2 * record["transactions"] + 1000), record["name"]
    # Store-counter ceilings: every phase runs cold, so the store must
    # behave exactly once-per-cell -- no redundant probing (a miss
    # storm), no double writes, and no phantom hits.
    for record in records:
        assert record["store_hits"] == 0, record["name"]
        assert record["store_puts"] == record["store_cells"], \
            record["name"]
        assert record["store_misses"] <= record["store_cells"], \
            record["name"]


#: The quick grid (--quick: 400 accesses, mix0/mix3) whose reference
#: digest is pinned in ``BENCH_simspeed.json`` as ``quick_digest``.
QUICK_ACCESSES = 400
QUICK_MIXES = ("mix0", "mix3")


def recorded_quick_digest() -> str:
    """The pre-refactor reference digest of the quick grid, from the
    repo-root ``BENCH_simspeed.json`` ('' if absent)."""
    path = Path(__file__).resolve().parent.parent / "BENCH_simspeed.json"
    try:
        with open(path) as fh:
            return json.load(fh).get("quick_digest", "")
    except (OSError, ValueError):
        return ""


def write_json(path: str, accesses: int, mixes, records) -> None:
    payload = {
        "benchmark": "simspeed_fig12_grid",
        "accesses_per_core": accesses,
        "mixes": list(mixes),
        "phases": records,
        "speedup_incremental_serial": round(
            paired_speedup(records, "reference-serial",
                           "incremental-serial"), 3),
        # Sharded-serial vs incremental-serial: what the channel shards
        # buy on top of the incremental scheduler, single process.
        "speedup_sharded": round(
            paired_speedup(records, "incremental-serial",
                           "sharded-serial"), 3),
    }
    parallel = [r for r in records if r["name"].startswith("parallel-")]
    if parallel:
        payload["speedup_parallel"] = round(
            paired_speedup(records, "reference-serial",
                           parallel[0]["name"]), 3)
    # Carry the pinned quick-grid digest across rewrites (full-mode
    # runs record different grid params but must not drop the pin).
    quick = recorded_quick_digest()
    if (accesses, tuple(mixes)) == (QUICK_ACCESSES, QUICK_MIXES):
        quick = records[0]["digest"]
    if quick:
        payload["quick_digest"] = quick
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")


def _print_phases(records, header: str) -> None:
    print(f"\n== {header}")
    for r in records:
        print(f"{r['name']:22s} {r['wall_s']:7.2f}s   "
              f"peeks/cmd={r['peeks_per_command']:.3f} "
              f"built/cmd={r['candidates_built_per_command']:.3f} "
              f"examined/peek={r['candidates_examined_per_peek']:.3f}")
    # Per-phase round-cost breakdown of the sharded coordinator:
    # horizon assembly + clamping vs. time inside the shards.
    for r in records:
        if r["shards"] == "off":
            continue
        split = r["horizon_time_s"] + r["retire_time_s"]
        frac = r["horizon_time_s"] / split if split else 0.0
        print(f"{r['name']:22s} horizons {r['horizon_time_s']:6.2f}s / "
              f"retire {r['retire_time_s']:6.2f}s "
              f"({frac:.1%} coordinator)  sweeps={r['rounds']} "
              f"hz reused/recomputed="
              f"{r['horizons_reused']}/{r['horizons_recomputed']} "
              f"peek_reuses={r['peek_reuses']}")
    ref = records[0]["name"]
    for r in records[1:]:
        print(f"speedup vs reference  "
              f"{paired_speedup(records, ref, r['name']):7.2f}x"
              f"   ({r['name']})")
    sharded = paired_speedup(records, "incremental-serial",
                             "sharded-serial")
    print(f"speedup sharded vs incremental {sharded:7.2f}x")


def test_simspeed_fig12_grid(benchmark, tmp_path):
    from conftest import bench_jobs, print_header
    jobs = max(bench_jobs(), 4)
    accesses, mixes = _accesses(), _bench_mixes()

    records, tables = benchmark.pedantic(
        lambda: run_phases(accesses, mixes, jobs, str(tmp_path)),
        rounds=1, iterations=1)

    print_header("Simulator speed: quick Fig. 12 grid "
                 f"({accesses} accesses, {len(mixes)} mixes)")
    _print_phases(records, "phases")
    out = Path(__file__).resolve().parent.parent / "BENCH_simspeed.json"
    write_json(str(out), accesses, mixes, records)
    print(f"wrote {out}")

    check_phases(records, tables)
    # Conservative wall-clock floor for the scheduler alone (the
    # acceptance bar: >= 1.5x on one core, no parallelism involved).
    speedup = paired_speedup(records, "reference-serial",
                             "incremental-serial")
    assert speedup >= 1.5


def main(argv=None) -> int:
    """Standalone / CI perf-smoke mode (no pytest-benchmark needed)."""
    import argparse
    import tempfile
    parser = argparse.ArgumentParser(
        description="simulator speed bench (see module docstring)")
    parser.add_argument("--quick", action="store_true",
                        help="smaller grid, serial phases only, one "
                             "round (the CI perf smoke)")
    parser.add_argument("--jobs", type=int,
                        default=int(os.environ.get("REPRO_BENCH_JOBS",
                                                   "4")))
    parser.add_argument("--json", metavar="FILE", default=None,
                        help="write the phase records to FILE "
                             "(default: BENCH_simspeed.json in the "
                             "repo root; 'none' to skip)")
    args = parser.parse_args(argv)

    if args.quick:
        accesses = _accesses(QUICK_ACCESSES)
        mixes = QUICK_MIXES
        parallel, rounds = False, 1
    else:
        accesses = _accesses()
        mixes = tuple(os.environ.get("REPRO_BENCH_MIXES",
                                     "mix0,mix3,mix6").split(","))
        parallel, rounds = True, 3

    with tempfile.TemporaryDirectory() as cache_root:
        records, tables = run_phases(accesses, mixes,
                                     max(args.jobs, 2), cache_root,
                                     parallel_phase=parallel,
                                     rounds=rounds)
    _print_phases(records, f"simspeed ({accesses} accesses, "
                           f"mixes={','.join(mixes)})")
    if args.json != "none":
        out = args.json or str(Path(__file__).resolve().parent.parent
                               / "BENCH_simspeed.json")
        write_json(out, accesses, mixes, records)
        print(f"wrote {out}")
    check_phases(records, tables)
    if args.quick and (accesses, tuple(mixes)) == (QUICK_ACCESSES,
                                                   QUICK_MIXES):
        # The scheduler's behaviour is pinned: the quick grid's
        # reference digest must match the value recorded before the
        # memory-technology backend refactor.
        expected = recorded_quick_digest()
        got = records[0]["digest"]
        assert not expected or got == expected, (
            f"quick-grid digest {got} != recorded quick_digest "
            f"{expected} (BENCH_simspeed.json): the dram backend's "
            f"behaviour moved")
        print(f"quick digest pinned: {got[:16]}... ok")
    if not args.quick:
        speedup = paired_speedup(records, "reference-serial",
                                 "incremental-serial")
        assert speedup >= 1.5, f"serial speedup {speedup:.2f}x < 1.5x"
        # On a single thread the sweep coordinator costs ~6% of the
        # phase (the horizons/retire split above) and the leaner
        # per-shard loops win roughly that back, so the honest paired
        # number on a 2-channel grid hovers at parity (0.95-1.02x on
        # an unloaded 1-core host).  The floor guards against the
        # coordinator regressing into real overhead -- the pre-cache
        # driver measured 0.86x here -- not a speedup claim; the wins
        # that motivate sharding are the digest-identical parallel
        # backends and the reuse counters asserted in check_phases.
        sharded = paired_speedup(records, "incremental-serial",
                                 "sharded-serial")
        assert sharded >= 0.9, f"sharded speedup {sharded:.2f}x < 0.9x"
    print("all checks passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
