"""Simulator throughput: incremental scheduling + parallel grid runner.

Not a paper figure: this quantifies the two optimisation layers on a
quick Fig. 12 grid --

* **reference serial**: the rebuild-every-candidate-every-peek scheduler
  path (the original algorithm, kept as the equivalence oracle), one
  process;
* **optimised**: the incremental per-bank candidate cache plus
  ``REPRO_BENCH_JOBS`` worker processes (at least 4 for this bench).

Both phases start from a cold alone-IPC cache and must produce the
exact same speedup table; the wall-clock ratio and the scheduler's
perf counters (peeks vs. candidates built) are printed and recorded.
"""

import os
import time

from conftest import bench_jobs, bench_mixes, print_header

import repro.controller.scheduler as scheduler_mod
from repro.sim.experiments import (
    ExperimentContext,
    ExperimentSettings,
    fig12,
)


def _accesses() -> int:
    # A lighter default than the figure benches: this grid runs twice.
    return int(os.environ.get("REPRO_BENCH_ACCESSES", "800"))


def _run_grid_phase(jobs: int, incremental: bool, cache_dir: str,
                    rounds: int = 2):
    """Best-of-``rounds`` timed fig12 grid under one scheduler path.

    The minimum over a couple of rounds filters scheduler noise on
    loaded CI boxes; results and counters are deterministic across
    rounds, so any round's table stands for all of them.
    """
    old_mode = scheduler_mod.INCREMENTAL_DEFAULT
    old_cache = os.environ.get("REPRO_CACHE_DIR")
    scheduler_mod.INCREMENTAL_DEFAULT = incremental
    os.environ["REPRO_CACHE_DIR"] = cache_dir
    try:
        elapsed = float("inf")
        for _ in range(rounds):
            context = ExperimentContext(ExperimentSettings(
                accesses_per_core=_accesses(), mixes=bench_mixes()),
                jobs=jobs)
            start = time.perf_counter()
            table = fig12(context)
            elapsed = min(elapsed, time.perf_counter() - start)
        peeks = candidates = 0
        for result in context._result_cache.values():
            peeks += result.stats.peeks
            candidates += result.stats.candidates_built
        return elapsed, table, peeks, candidates
    finally:
        scheduler_mod.INCREMENTAL_DEFAULT = old_mode
        if old_cache is None:
            os.environ.pop("REPRO_CACHE_DIR", None)
        else:
            os.environ["REPRO_CACHE_DIR"] = old_cache


def test_simspeed_fig12_grid(benchmark, tmp_path):
    jobs = max(bench_jobs(), 4)

    def compare():
        ref = _run_grid_phase(1, False, str(tmp_path / "ref_cache"))
        opt = _run_grid_phase(jobs, True, str(tmp_path / "opt_cache"))
        return ref, opt

    ref, opt = benchmark.pedantic(compare, rounds=1, iterations=1)
    ref_time, ref_table, ref_peeks, ref_cands = ref
    opt_time, opt_table, opt_peeks, opt_cands = opt
    speedup = ref_time / opt_time

    print_header("Simulator speed: quick Fig. 12 grid "
                 f"({_accesses()} accesses, {len(bench_mixes())} mixes)")
    print(f"reference serial      {ref_time:7.2f}s   "
          f"peeks={ref_peeks:9d} candidates_built={ref_cands:9d}")
    print(f"optimised --jobs {jobs:<2d}   {opt_time:7.2f}s   "
          f"peeks={opt_peeks:9d} candidates_built={opt_cands:9d}")
    print(f"speedup               {speedup:7.2f}x   "
          f"(candidate builds cut {ref_cands / max(1, opt_cands):.1f}x)")

    # Identical science: the optimisations must not move a single value.
    assert opt_table.values == ref_table.values
    # The incremental path peeks exactly as often but rebuilds far less.
    assert opt_peeks == ref_peeks
    assert opt_cands < ref_cands / 2
    # Conservative wall-clock floor (single-core CI boxes see most of
    # the win from the scheduler alone; multi-core machines far more).
    assert speedup >= 1.2
