"""Fig. 16: read queueing latency distribution and energy reduction.

Paper: (a) ERUCA's mean read queueing latency is ~15% below DDR4 and
within 1% of ideal; the third quartile stays slightly above ideal
because rare plane conflicts remain.  (b) Energy vs DDR4: background
~93-95% (faster execution), activation ~94% (fewer conflicts + EWLR
hits), total within 1% of ideal.
"""

from conftest import print_header

from repro.sim.experiments import run_figure


def test_fig16_latency_energy(benchmark, sweep_context):
    rows = benchmark.pedantic(run_figure,
                              args=("fig16", sweep_context),
                              rounds=1, iterations=1)

    base = rows[0]
    print_header("Fig. 16a: read queueing latency (ns)")
    print(f"{'config':26s} {'mean':>7s} {'q1':>7s} {'median':>7s} "
          f"{'q3':>7s}")
    for row in rows:
        s = row.latency_stats_ns
        print(f"{row.config:26s} {s['mean']:7.1f} {s['q1']:7.1f} "
              f"{s['median']:7.1f} {s['q3']:7.1f}")

    print_header("Fig. 16b: energy relative to DDR4")
    print(f"{'config':26s} {'background':>11s} {'activation':>11s} "
          f"{'total':>7s}")
    for row in rows:
        rel = row.relative_to(base)
        print(f"{row.config:26s} {rel['background']:10.1%} "
              f"{rel['activation']:10.1%} {rel['total']:6.1%}")
    print("\npaper: ERUCA mean latency ~ -15% vs DDR4, within ~1% of "
          "ideal; energy ~93-95% of DDR4 in every component")

    eruca = next(r for r in rows if "EWLR+RAP" in r.config)
    ideal = next(r for r in rows if r.config == "Ideal32")

    # Latency ordering: DDR4 > ERUCA >= ideal (mean).
    assert eruca.latency_stats_ns["mean"] < base.latency_stats_ns["mean"]
    assert (ideal.latency_stats_ns["mean"]
            <= eruca.latency_stats_ns["mean"] * 1.05)

    # Energy: ERUCA must not exceed the baseline in any component and
    # land near ideal.
    rel = eruca.relative_to(base)
    assert rel["total"] < 1.0
    assert rel["background"] < 1.0
    rel_ideal = ideal.relative_to(base)
    assert abs(rel["total"] - rel_ideal["total"]) < 0.08
