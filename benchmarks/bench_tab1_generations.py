"""Tab. I: specifications of DRAM generations.

Static data, but benched so the harness covers every table: the timed
kernel is building the derived DDR4 timing preset across the Fig. 14
frequency range.
"""

from conftest import print_header

from repro.dram.timing import (
    FIG14_BUS_FREQUENCIES_HZ,
    GENERATIONS,
    ddr4_timings,
)


def test_tab1_generations(benchmark):
    benchmark(lambda: [ddr4_timings(f) for f in FIG14_BUS_FREQUENCIES_HZ])

    print_header("Tab. I: Specifications of DRAM generations")
    header = f"{'':24s}" + "".join(f"{g.name:>12s}" for g in GENERATIONS)
    print(header)
    for field, label in (("bank_count", "Bank count"),
                         ("channel_clock_mhz", "Channel clock (MHz)"),
                         ("core_clock_mhz", "DRAM core clock (MHz)"),
                         ("internal_prefetch", "Internal prefetch")):
        row = f"{label:24s}" + "".join(
            f"{getattr(g, field):>12s}" for g in GENERATIONS)
        print(row)

    assert GENERATIONS[-1].name == "DDR4"
    assert len(GENERATIONS) == 4
