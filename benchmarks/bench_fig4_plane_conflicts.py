"""Fig. 4: fraction of transactions with plane conflicts per tRC window.

Paper: traces of mcf / lbm / gemsFDTD / omnetpp; 67% of transactions
overlap another access to the same bank; 51% conflict at 2 planes,
declining to 17% at 32768 planes, with the two locality regions (huge-page
high-order bits, spatial low-order bits) shaping the curve.
"""

from conftest import bench_accesses, print_header

from repro.analysis.plane_conflict import (
    FIG4_PLANE_COUNTS,
    analyze_plane_conflicts,
)
from repro.controller.mapping import skylake_mapping
from repro.workloads.generator import generate_traces
from repro.workloads.profiles import PROFILES

FIG4_BENCHMARKS = ("mcf", "lbm", "gemsFDTD", "omnetpp")

#: Paper's reported points for reference printing.
PAPER = {2: 51.0, 32768: 17.0}


def test_fig4_plane_conflicts(benchmark):
    accesses = max(2000, bench_accesses())
    profiles = [PROFILES[name] for name in FIG4_BENCHMARKS]
    traces = generate_traces(profiles, accesses, fragmentation=0.1,
                             seed=0)
    mapping = skylake_mapping(subbanked=True)

    results = benchmark.pedantic(
        analyze_plane_conflicts, args=(traces, mapping),
        rounds=1, iterations=1)

    total = sum(len(t) for t in traces)
    print_header(
        "Fig. 4: transactions with plane conflicts per tRC interval "
        f"({'+'.join(FIG4_BENCHMARKS)}, {accesses}/core)")
    overlap = results[2].overlapping / total
    print(f"overlapping transactions: {overlap * 100:.1f}%  (paper: 67%)")
    print(f"{'planes':>8s} {'PlaneConflict':>14s} "
          f"{'NoPlaneConflict':>16s} {'paper':>8s}")
    for n in FIG4_PLANE_COUNTS:
        c = results[n]
        ref = f"{PAPER[n]:.0f}%" if n in PAPER else ""
        print(f"{n:8d} {c.conflict_fraction(total) * 100:13.1f}% "
              f"{c.no_conflict_fraction(total) * 100:15.1f}% {ref:>8s}")

    # Shape assertions: monotone-ish decline, non-trivial start.
    first = results[2].conflict_fraction(total)
    last = results[32768].conflict_fraction(total)
    assert first > 0.2, "2-plane conflicts should be substantial"
    assert last < first / 2, "conflicts must decline with plane count"
