"""Shared fixtures and scale knobs for the reproduction benches.

Every bench regenerates one table/figure of the paper.  Scale is
controlled by environment variables so the same benches serve quick CI
runs and fuller reproductions:

``REPRO_BENCH_ACCESSES``
    Memory accesses per core per run (default 1500; the paper simulates
    200M instructions -- larger values sharpen every trend).
``REPRO_BENCH_MIXES``
    Comma-separated mix subset for the sweep-heavy figures (default
    ``mix0,mix3,mix6`` -- one mix per intensity class).  Fig. 12 always
    runs all nine mixes.
``REPRO_BENCH_JOBS``
    Worker processes for the experiment grids (default 1 = serial,
    0 = all cores); see :mod:`repro.sim.parallel`.

Run with ``pytest benchmarks/ --benchmark-only -s`` to see the
reproduced tables.
"""

import os

import pytest

from repro.sim.experiments import ExperimentContext, ExperimentSettings
from repro.sim.parallel import default_workers
from repro.workloads.mixes import MIX_NAMES


def bench_accesses() -> int:
    return int(os.environ.get("REPRO_BENCH_ACCESSES", "1500"))


def bench_mixes() -> tuple:
    raw = os.environ.get("REPRO_BENCH_MIXES", "mix0,mix3,mix6")
    mixes = tuple(m.strip() for m in raw.split(",") if m.strip())
    for m in mixes:
        if m not in MIX_NAMES:
            raise ValueError(f"unknown mix {m!r} in REPRO_BENCH_MIXES")
    return mixes


def bench_jobs() -> int:
    jobs = int(os.environ.get("REPRO_BENCH_JOBS", "1"))
    return default_workers() if jobs <= 0 else jobs


@pytest.fixture(scope="session")
def sweep_context():
    """Context for the sweep figures (13/14/15/16): subset of mixes."""
    return ExperimentContext(ExperimentSettings(
        accesses_per_core=bench_accesses(), mixes=bench_mixes()),
        jobs=bench_jobs())


@pytest.fixture(scope="session")
def full_context():
    """Context for Fig. 12: all nine mixes."""
    return ExperimentContext(ExperimentSettings(
        accesses_per_core=bench_accesses(), mixes=MIX_NAMES),
        jobs=bench_jobs())


def print_header(title: str) -> None:
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)
