"""Fig. 15: comparison to prior sub-banking work.

Paper (GMEAN, normalised to DDR4): Half-DRAM limited to ~+8% by its
shared row-address latches; 4P-VSB+DDB +15%; MASA4/MASA8 offer more
effective banks but pay tSA serialisation under high intensity;
combining MASA8 with ERUCA gives +26% (no DDB) / +29% (with DDB) --
clear synergy over MASA8 alone (~+20%).
"""

from conftest import print_header

from repro.sim.experiments import run_figure

PAPER = {
    "Half-DRAM": 1.08,
    "VSB(EWLR+RAP,4P)+DDB": 1.15,
    "MASA8+ERUCA": 1.29,
    "Ideal32": 1.17,
}


def test_fig15_prior_work(benchmark, sweep_context):
    out = benchmark.pedantic(run_figure,
                             args=("fig15", sweep_context),
                             rounds=1, iterations=1)

    print_header("Fig. 15: prior-work comparison "
                 "(GMEAN normalised WS over DDR4)")
    print(f"{'config':36s} {'measured':>9s} {'paper':>7s}")
    for name, value in out.items():
        ref = PAPER.get(name)
        ref_s = f"{ref:.2f}" if ref else ""
        print(f"{name:36s} {value:9.3f} {ref_s:>7s}")

    def get(fragment):
        return next(v for k, v in out.items() if k == fragment)

    half = get("Half-DRAM")
    vsb_ddb = get("VSB(EWLR+RAP,4P)+DDB")
    masa8 = get("MASA8")
    synergy = get("MASA8+ERUCA")
    synergy_noddb = get("MASA8+ERUCA(no DDB)")

    # Who wins: Half-DRAM is the weakest sub-banking scheme; ERUCA's
    # VSB beats it; MASA8+ERUCA beats MASA8 alone (the paper's synergy
    # claim), and everything beats the baseline.
    assert half < vsb_ddb, "Half-DRAM must trail full ERUCA"
    assert synergy > masa8, "ERUCA must add on top of MASA8"
    assert synergy >= synergy_noddb - 0.02, "DDB should not hurt"
    assert all(v > 1.0 for v in out.values())
