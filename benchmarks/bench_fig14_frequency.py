"""Fig. 14: DDB speedup as the channel clock scales 1.33 -> 2.4 GHz.

Paper: the bank-grouped configurations (VSB+BG, BG32) saturate as the
core-to-channel frequency gap grows (tCCD_L dominates), while VSB+DDB
tracks the idealised DRAM's growth; DDB is worth ~5% over VSB without
DDB at 2.4 GHz.  The DDB two-command windows (tTCW/tTWTRW) bind only at
the higher frequencies.
"""

from conftest import print_header

from repro.dram.timing import FIG14_BUS_FREQUENCIES_HZ
from repro.sim.experiments import run_figure


def test_fig14_frequency_scaling(benchmark, sweep_context):
    points = benchmark.pedantic(run_figure,
                                args=("fig14", sweep_context),
                                rounds=1, iterations=1)

    print_header("Fig. 14: normalised WS vs channel frequency "
                 "(DDR4 baseline at each frequency)")
    configs = []
    for p in points:
        if p.config not in configs:
            configs.append(p.config)
    freqs = sorted({p.bus_frequency_hz for p in points})
    by_key = {(p.config, p.bus_frequency_hz): p.normalized_ws
              for p in points}
    print(f"{'config':30s} " + " ".join(
        f"{f / 1e9:>5.2f}GHz" for f in freqs))
    for config in configs:
        print(f"{config:30s} " + "    ".join(
            f"{by_key[(config, f)]:5.3f}" for f in freqs))
    print("\npaper: VSB+DDB ~5% over VSB+BG at 2.4 GHz; "
          "bank-grouped configs saturate, DDB tracks ideal")

    ddb = next(c for c in configs if "DDB" in c)
    bg = next(c for c in configs if "DDB" not in c and "VSB" in c)
    lo, hi = freqs[0], freqs[-1]

    # DDB stays ahead of the bank-grouped VSB at every frequency, and
    # clearly so at the top of the sweep.  (The *growth* of that gap is
    # no longer asserted: the rank-wide tFAW window — constant in ns —
    # caps the ACT rate harder as the channel clock rises, which at this
    # scale flattens the gap instead of widening it; see EXPERIMENTS.md.)
    for f in freqs:
        assert by_key[(ddb, f)] > by_key[(bg, f)], \
            f"DDB must beat the bank-grouped VSB at {f / 1e9:.2f} GHz"
    gap_hi = by_key[(ddb, hi)] - by_key[(bg, hi)]
    assert gap_hi > 0.01, "DDB should be clearly ahead at 2.4 GHz"

    # VSB+DDB keeps scaling from the lowest to the highest frequency.
    assert by_key[(ddb, hi)] > by_key[(ddb, lo)]
