"""Fig. 11: DRAM die-area overhead comparison.

Paper points: DDB alone 0.05%; RAP 0.06% at 2 planes growing ~linearly
per plane-doubling; EWLR +0.06%; full ERUCA < 0.3% up to 4 planes;
Half-DRAM 1.46%; MASA4 3.03%; MASA8 4.76%; paired-bank saves 1.1%.
"""

from conftest import print_header

from repro.core.area import (
    HALF_DRAM_OVERHEAD_PCT,
    MASA_OVERHEAD_PCT,
    ddb_overhead_pct,
    eruca_overhead_pct,
    fig11_table,
    paired_bank_overhead_pct,
)
from repro.core.mechanisms import EruConfig

PAPER = {
    ("RAP", 2): 0.06, ("RAP", 4): 0.12,
    ("RAP", 8): 0.19, ("RAP", 16): 0.25,
    ("DDB+EWLR+RAP", 2): 0.17, ("DDB+EWLR+RAP", 4): 0.23,
    ("DDB+EWLR+RAP", 8): 0.30, ("DDB+EWLR+RAP", 16): 0.36,
}


def test_fig11_area(benchmark):
    rows = benchmark(fig11_table)

    print_header("Fig. 11: DRAM area overhead (percent of 8Gb x4 die)")
    print(f"{'scheme':28s} {'planes':>6s} {'model':>8s} {'paper':>8s}")
    for r in rows:
        ref = PAPER.get((r.scheme, r.planes))
        ref_s = f"{ref:.2f}%" if ref is not None else ""
        print(f"{r.scheme:28s} {r.planes:6d} "
              f"{r.overhead_pct:7.3f}% {ref_s:>8s}")
    print(f"{'DDB alone':28s} {'':6s} {ddb_overhead_pct():7.3f}%"
          f"{'0.05%':>9s}")

    # Paper's headline claims.
    full4 = eruca_overhead_pct(EruConfig.full(4))
    assert full4 < 0.3, "ERUCA must stay under 0.3% up to 4 planes"
    assert HALF_DRAM_OVERHEAD_PCT / full4 > 5, \
        "ERUCA must be >5x cheaper than Half-DRAM"
    assert paired_bank_overhead_pct(EruConfig.full(4)) < 0
    for (scheme, planes), ref in PAPER.items():
        mine = next(r.overhead_pct for r in rows
                    if (r.scheme, r.planes) == (scheme, planes))
        assert abs(mine - ref) < 0.05, (scheme, planes, mine, ref)
    assert MASA_OVERHEAD_PCT[8] > MASA_OVERHEAD_PCT[4]
