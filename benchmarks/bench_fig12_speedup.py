"""Fig. 12: normalised weighted speedup over DDR4, per mix + GMEAN.

Paper (GMEAN over the nine mixes, 4 planes, fragmentation 10%):
naive 4-plane VSB ~ +10%; +DDB ~ +12%; EWLR+RAP+DDB ~ +15%;
Ideal32 ~ +17% (ERUCA within 2% of ideal); paired-bank ERUCA -2%
(EWLR+RAP) / -1% (+DDB) while *saving* 1.1% die area.
"""

from conftest import print_header

from repro.sim.experiments import run_figure


def test_fig12_weighted_speedup(benchmark, full_context):
    table = benchmark.pedantic(run_figure,
                               args=("fig12", full_context),
                               rounds=1, iterations=1)

    mixes = full_context.settings.mixes
    norm = table.normalized()
    gmeans = table.gmeans()

    print_header(
        "Fig. 12: normalised weighted speedup over DDR4 "
        f"({full_context.settings.accesses_per_core}/core, "
        f"frag {full_context.settings.fragmentation:.0%})")
    print(f"{'config':36s} " + " ".join(f"{m:>6s}" for m in mixes)
          + f" {'GMEAN':>7s}")
    for config, row in norm.items():
        cells = " ".join(f"{row[m]:6.3f}" for m in mixes)
        print(f"{config:36s} {cells} {gmeans[config]:7.3f}")
    print("\npaper GMEANs: naive VSB ~1.10, naive+DDB ~1.12, "
          "VSB(EWLR+RAP)+DDB ~1.15, Ideal32 ~1.17, paired ~0.98-0.99")

    # Shape assertions (who wins).
    naive = next(v for k, v in gmeans.items()
                 if "naive" in k and "DDB" not in k)
    full = next(v for k, v in gmeans.items()
                if "EWLR+RAP" in k and "Paired" not in k)
    ideal = gmeans["Ideal32"]
    paired = [v for k, v in gmeans.items() if "Paired" in k]
    assert full > naive, "EWLR+RAP must beat naive VSB"
    assert ideal >= full - 0.02, "ideal32 should top (or tie) ERUCA"
    assert full > 1.05, "ERUCA must clearly beat the DDR4 baseline"
    assert all(0.9 < p < 1.1 for p in paired), \
        "paired-bank must stay near baseline performance"
