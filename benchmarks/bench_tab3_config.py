"""Tab. III: system configuration, timing parameters and mixes.

Prints the evaluated configuration exactly as the paper's table lays it
out and asserts the timing-parameter scoping rules (Ideal vs bank
groups vs DDB).  The timed kernel builds every named system
configuration.
"""

from conftest import print_header

from repro.cpu.core import CoreConfig
from repro.dram.resources import BusPolicy
from repro.sim.config import (
    bg32,
    ddr4_baseline,
    half_dram,
    ideal32,
    masa,
    masa_eruca,
    paired_bank,
    vsb,
)
from repro.workloads.mixes import MIXES


def all_configs():
    return [ddr4_baseline(), bg32(), ideal32(), vsb(), paired_bank(),
            half_dram(), masa(4), masa(8), masa_eruca(8)]


def test_tab3_configuration(benchmark):
    configs = benchmark(all_configs)

    core = CoreConfig()
    base = ddr4_baseline()
    t = base.timing()
    print_header("Tab. III: evaluation parameters")
    print(f"Processor: {len(MIXES['mix0'][0])}-core OoO x86, "
          f"{core.clock_hz / 1e9:.0f} GHz, issue width "
          f"{core.issue_width}, ROB {core.rob_size}")
    print(f"DRAM: DDR4 {base.bus_frequency_hz / 1e9:.2f} GHz "
          f"({t.tCL // t.tCK}-{t.tRCD // t.tCK}-{t.tRP // t.tCK}), "
          f"{base.channels} channels x 1 rank, "
          f"{base.bank_groups * base.banks_per_group} banks in "
          f"{base.bank_groups} groups, FR-FCFS")
    print("\nTiming parameter scoping (Ideal / bank groups / DDB):")
    print(f"  tCCD_S={t.tCCD_S} ps   diff banks / diff BGs / diff banks")
    print(f"  tCCD_L={t.tCCD_L} ps   same bank  / same BG  / same bank")
    print(f"  tWTR_S={t.tWTR_S} ps   diff banks / diff BGs / diff banks")
    print(f"  tWTR_L={t.tWTR_L} ps   same bank  / same BG  / same bank")
    ddb_t = vsb().timing()
    print(f"  tTCW={ddb_t.tTCW} ps / tTWTRW={ddb_t.tTWTRW} ps  "
          "(DDB only, same BG)")
    print("\nMixes:")
    for mix, (names, sig) in MIXES.items():
        print(f"  {mix}: {':'.join(names):44s} {sig}")

    # Scoping rules.
    assert ideal32().bus_policy is BusPolicy.NO_GROUPS
    assert ddr4_baseline().bus_policy is BusPolicy.BANK_GROUPS
    assert vsb().bus_policy is BusPolicy.DDB
    assert ddb_t.tTCW == 5000  # one DRAM core clock
    assert len(MIXES) == 9
    assert len(configs) == 9
