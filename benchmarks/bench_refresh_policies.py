"""Refresh sweep: speedup per refresh policy across density grades.

Not a paper figure (ERUCA simulates with refresh folded into the
baseline): this quantifies the refresh tax the timing model now charges
(docs/REFRESH.md) and what each refresh-access-parallelism policy buys
back --

* ``baseline``: all-bank REF on the tREFI deadline (the whole rank
  blacks out for tRFC);
* ``darp``: per-bank REFpb deferred behind pending demand (up to the
  JEDEC eight-interval limit);
* ``sarp``: sub-bank refresh, overlapping refresh in one sub-bank with
  demand in its neighbours.

Everything is normalised to the same platform with refresh off, so
1.000 means the policy fully hides the refresh tax.  The tax grows with
density (tRFC: 260 -> 350 -> 550 ns), which is exactly why the paper's
sub-array machinery matters at 16 Gb and beyond.
"""

from conftest import print_header

from repro.sim.experiments import (
    REFRESH_SWEEP_DENSITIES, run_figure)


def test_refresh_policy_sweep(benchmark, sweep_context):
    points = benchmark.pedantic(run_figure,
                                args=("figref", sweep_context),
                                rounds=1, iterations=1)

    print_header("Refresh sweep: normalised WS vs policy x density "
                 "(refresh-off platform = 1.000)")
    policies = []
    for p in points:
        if p.policy not in policies:
            policies.append(p.policy)
    by_key = {(p.policy, p.density): p for p in points}
    print(f"{'policy':10s} " + " ".join(
        f"{d:>8s}" for d in REFRESH_SWEEP_DENSITIES))
    for policy in policies:
        print(f"{policy:10s} " + "    ".join(
            f"{by_key[(policy, d)].normalized_ws:5.3f}"
            for d in REFRESH_SWEEP_DENSITIES))
    print("\nrefreshes issued per cell:")
    for policy in policies:
        print(f"{policy:10s} " + "    ".join(
            f"{by_key[(policy, d)].refreshes:5d}"
            for d in REFRESH_SWEEP_DENSITIES))

    # Every cell pays at most a modest tax and stays a real slowdown
    # bound: refresh can only cost cycles, never mint them wholesale.
    for p in points:
        assert 0.8 < p.normalized_ws < 1.05, p

    # The headline claim: at the densest grade (largest tRFC) sub-bank
    # refresh recovers a measurable share of the all-bank penalty.
    dense = REFRESH_SWEEP_DENSITIES[-1]
    base = by_key[("baseline", dense)].normalized_ws
    sarp = by_key[("sarp", dense)].normalized_ws
    assert sarp > base, \
        "sarp must beat on-deadline all-bank refresh at 16Gb"

    # Sub-bank overlap must beat pure deferral: darp still blacks out
    # the whole bank per REFpb, sarp only one sub-bank.  (darp vs the
    # all-bank baseline is NOT asserted: at this bench's horizon --
    # tens of us -- the baseline's first REF lands only at tREFI =
    # 7.8 us and so amortises over a short run, while the per-bank
    # cadence pays from ~tREFI/banks on; the steady-state ordering
    # needs much longer runs than CI affords.)
    darp = by_key[("darp", dense)].normalized_ws
    assert sarp > darp, \
        "sub-bank refresh must beat whole-bank deferred refresh"

    # sarp actually refreshes in sub-bank quanta: more, smaller REFs.
    assert by_key[("sarp", dense)].refreshes > \
        by_key[("baseline", dense)].refreshes
