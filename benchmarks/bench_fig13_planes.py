"""Fig. 13: plane-count sensitivity and conflict-triggered precharges.

Paper: (a) all schemes improve with plane count with diminishing
returns; EWLR+RAP is the least sensitive (~4% spread between 2 and 16
planes) and with 2 planes already comes within 4% of ideal; RAP beats
EWLR at 2 planes; at 50% fragmentation RAP-only loses effectiveness.
(b) The fraction of precharges triggered by plane conflicts tracks the
speedup trends.
"""

from conftest import print_header

from repro.sim.experiments import (
    FIG13_PLANES, FIG13_SCHEMES, run_figure)


def test_fig13_plane_sensitivity(benchmark, sweep_context):
    points = benchmark.pedantic(run_figure,
                                args=("fig13", sweep_context),
                                rounds=1, iterations=1)

    print_header(
        "Fig. 13a: plane-count sensitivity (normalised WS over DDR4) / "
        "Fig. 13b: plane-conflict precharge fraction")
    for frag in (0.1, 0.5):
        print(f"\n-- fragmentation {frag:.0%} --")
        print(f"{'scheme':22s} " + " ".join(
            f"{n:>2d}P ws/pre%" for n in FIG13_PLANES))
        for scheme, _ in FIG13_SCHEMES:
            cells = []
            for n in FIG13_PLANES:
                p = next(x for x in points
                         if (x.scheme, x.planes, x.fragmentation)
                         == (scheme, n, frag))
                cells.append(f"{p.normalized_ws:5.3f}/"
                             f"{p.plane_precharge_fraction * 100:4.1f}")
            print(f"{scheme:22s} " + " ".join(cells))

    by_key = {(p.scheme, p.planes, p.fragmentation): p for p in points}

    # (i) naive VSB suffers the most plane-conflict precharges at any
    #     plane count; EWLR+RAP the least (or tied).
    for n in FIG13_PLANES:
        naive = by_key[("VSB(naive)+DDB", n, 0.1)]
        full = by_key[("VSB(EWLR+RAP)+DDB", n, 0.1)]
        assert (full.plane_precharge_fraction
                <= naive.plane_precharge_fraction + 0.02), n

    # (ii) conflict precharges decline with plane count for every scheme.
    for scheme, _ in FIG13_SCHEMES:
        fracs = [by_key[(scheme, n, 0.1)].plane_precharge_fraction
                 for n in FIG13_PLANES]
        assert fracs[0] >= fracs[-1] - 0.02, scheme

    # (iii) EWLR+RAP is the least plane-count sensitive scheme.
    def spread(scheme, frag=0.1):
        ws = [by_key[(scheme, n, frag)].normalized_ws
              for n in FIG13_PLANES]
        return max(ws) - min(ws)

    assert spread("VSB(EWLR+RAP)+DDB") <= spread("VSB(naive)+DDB") + 0.02

    # (iv) fragmentation hurts RAP's conflict avoidance: more
    #      conflict-precharges remain at 50% than at 10%.
    rap_low = by_key[("VSB(RAP)+DDB", 4, 0.1)].plane_precharge_fraction
    rap_high = by_key[("VSB(RAP)+DDB", 4, 0.5)].plane_precharge_fraction
    assert rap_high >= rap_low - 0.02
