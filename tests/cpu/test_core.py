"""Tests for the ROB-limited trace core."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cpu.core import BLOCKED, CoreConfig, TraceCore
from repro.cpu.trace import Trace, TraceEntry

CFG = CoreConfig()  # 4 GHz, width 8, ROB 192


def trace_of(specs, tail=0):
    return Trace.from_entries(
        [TraceEntry(g, w, a) for g, w, a in specs],
        tail_instructions=tail)


class TestConfig:
    def test_cycle_ps(self):
        assert CFG.cycle_ps == 250

    def test_instruction_time(self):
        assert CFG.instruction_time_ps == pytest.approx(250 / 8)

    def test_scaled_keeps_width(self):
        fast = CFG.scaled(2.0)
        assert fast.clock_hz == pytest.approx(8e9)
        assert fast.issue_width == CFG.issue_width


class TestRequestFlow:
    def test_first_request_time_from_gap(self):
        core = TraceCore(trace_of([(80, False, 0x40)]), CFG)
        assert core.next_request_time() == int(
            80 * CFG.instruction_time_ps)

    def test_zero_gap_request_immediate(self):
        core = TraceCore(trace_of([(0, False, 0x40)]), CFG)
        assert core.next_request_time() == 0

    def test_pop_advances_frontier(self):
        core = TraceCore(trace_of([(8, False, 0x40), (8, True, 0x80)]),
                         CFG)
        t0 = core.next_request_time()
        core.pop_request(t0)
        t1 = core.next_request_time()
        # 8 gap instructions plus the first access's own issue slot.
        assert t1 == int(t0 + 9 * CFG.instruction_time_ps)

    def test_pop_too_early_rejected(self):
        core = TraceCore(trace_of([(80, False, 0x40)]), CFG)
        with pytest.raises(ValueError):
            core.pop_request(0)

    def test_pop_blocked_rejected(self):
        core = TraceCore(trace_of([]), CFG)
        with pytest.raises(ValueError):
            core.pop_request(0)

    def test_exhausted_trace_blocked(self):
        core = TraceCore(trace_of([(0, False, 0x40)]), CFG)
        core.pop_request(0)
        assert core.next_request_time() == BLOCKED


class TestRobLimit:
    def test_reads_within_window_do_not_block(self):
        # 100 reads, 1 instruction apart: indices 1..100 < ROB 192.
        core = TraceCore(trace_of([(0, False, i * 64)
                                   for i in range(100)]), CFG)
        time = 0
        for _ in range(100):
            t = core.next_request_time()
            assert t != BLOCKED
            core.pop_request(max(t, time))
            time = max(t, time)
        assert core.outstanding_reads == 100

    def test_read_beyond_window_blocks(self):
        # Two reads 300 instructions apart: the second needs the first
        # retired (300 > 192), which needs its completion.
        core = TraceCore(trace_of([(0, False, 0x40),
                                   (300, False, 0x80)]), CFG)
        core.pop_request(0)
        assert core.next_request_time() == BLOCKED
        core.complete_read(1, 5000)
        t = core.next_request_time()
        assert t != BLOCKED
        assert t >= 5000  # fetch waits for the retiring read's data

    def test_writes_never_block_rob(self):
        core = TraceCore(trace_of([(0, True, 0x40),
                                   (300, False, 0x80)]), CFG)
        core.pop_request(0)
        assert core.next_request_time() != BLOCKED

    def test_completion_matched_by_instruction(self):
        core = TraceCore(trace_of([(0, False, 0x40),
                                   (0, False, 0x80)]), CFG)
        core.pop_request(0)
        first_index = core.instruction_index_of_last_request()
        core.pop_request(core.next_request_time())
        second_index = core.instruction_index_of_last_request()
        core.complete_read(second_index, 100)  # out of order is fine
        core.complete_read(first_index, 200)
        assert core.done

    def test_complete_unknown_read_raises(self):
        core = TraceCore(trace_of([(0, False, 0x40)]), CFG)
        core.pop_request(0)
        with pytest.raises(ValueError):
            core.complete_read(999, 100)

    def test_barrier_is_sticky(self):
        """Once fetch waited for a completion, later fetches cannot
        travel back before it."""
        core = TraceCore(trace_of(
            [(0, False, 0x40), (300, False, 0x80),
             (0, False, 0xc0)]), CFG)
        core.pop_request(0)
        core.complete_read(1, 9000)
        t1 = core.next_request_time()
        assert t1 >= 9000
        core.pop_request(t1)
        assert core.next_request_time() >= 9000


class TestResults:
    def test_finish_requires_done(self):
        core = TraceCore(trace_of([(0, False, 0x40)]), CFG)
        with pytest.raises(ValueError):
            core.finish_time()

    def test_finish_time_covers_last_completion(self):
        core = TraceCore(trace_of([(0, False, 0x40)]), CFG)
        core.pop_request(0)
        core.complete_read(1, 123456)
        assert core.finish_time() == 123456

    def test_tail_instructions_extend_finish(self):
        core = TraceCore(trace_of([(0, True, 0x40)], tail=800), CFG)
        core.pop_request(0)
        assert core.done
        # 800 tail instructions plus the access's own issue slot.
        import math
        assert core.finish_time() == math.ceil(
            801 * CFG.instruction_time_ps)

    def test_ipc_bounded_by_issue_width(self):
        core = TraceCore(trace_of([(80, True, 0x40)], tail=80), CFG)
        core.pop_request(core.next_request_time())
        assert core.ipc() <= CFG.issue_width + 1e-9

    def test_slow_memory_lowers_ipc(self):
        def run(latency):
            core = TraceCore(trace_of(
                [(0, False, 0x40), (300, True, 0x80)]), CFG)
            core.pop_request(0)
            core.complete_read(1, latency)
            core.pop_request(core.next_request_time())
            return core.ipc()
        assert run(100_000) < run(1_000)


@settings(max_examples=100, deadline=None)
@given(specs=st.lists(
    st.tuples(st.integers(0, 50), st.booleans(), st.integers(0, 2**30)),
    min_size=1, max_size=40),
    latency=st.integers(1000, 200_000))
def test_core_always_terminates(specs, latency):
    """Property: serving every read with a fixed latency finishes the
    trace with monotone non-decreasing request times."""
    core = TraceCore(trace_of(specs), CFG)
    last = 0
    while not core.done:
        t = core.next_request_time()
        if t == BLOCKED and core._index >= len(specs):
            break
        assert t != BLOCKED  # fixed-latency service never deadlocks
        assert t >= 0
        t = max(t, last)
        entry = core.pop_request(t)
        last = t
        if not entry.is_write:
            core.complete_read(
                core.instruction_index_of_last_request(), t + latency)
    assert core.finish_time() >= last
