"""Tests for address-dependent (pointer-chase) accesses."""

import io

import pytest

from repro.cpu.core import BLOCKED, CoreConfig, TraceCore
from repro.cpu.trace import Trace, TraceEntry, read_trace, write_trace

CFG = CoreConfig()


def chase_trace(n, gap=0):
    """n reads, each dependent on the previous one."""
    return Trace.from_entries(
        [TraceEntry(gap, False, i * 4096, depends=(i > 0))
         for i in range(n)])


class TestDependentSemantics:
    def test_dependent_read_blocks_until_completion(self):
        core = TraceCore(chase_trace(2), CFG)
        core.pop_request(0)
        assert core.next_request_time() == BLOCKED
        core.complete_read(1, 70_000)
        assert core.next_request_time() >= 70_000

    def test_independent_read_does_not_block(self):
        t = Trace.from_entries([
            TraceEntry(0, False, 0x1000),
            TraceEntry(0, False, 0x2000, depends=False),
        ])
        core = TraceCore(t, CFG)
        core.pop_request(0)
        assert core.next_request_time() != BLOCKED

    def test_dependence_on_write_free_entry_ignored(self):
        """A dependent access with no prior read issues normally."""
        t = Trace.from_entries([
            TraceEntry(0, True, 0x1000),
            TraceEntry(0, False, 0x2000, depends=True),
        ])
        core = TraceCore(t, CFG)
        core.pop_request(0)
        assert core.next_request_time() != BLOCKED

    def test_chain_serialises_latency(self):
        def run(latency, n=10):
            core = TraceCore(chase_trace(n), CFG)
            now = 0
            while not core.done:
                t = core.next_request_time()
                assert t != BLOCKED
                now = max(now, t)
                core.pop_request(now)
                core.complete_read(
                    core.instruction_index_of_last_request(),
                    now + latency)
            return core.finish_time()
        assert run(100_000) > run(10_000) * 5

    def test_dependent_write_waits_too(self):
        t = Trace.from_entries([
            TraceEntry(0, False, 0x1000),
            TraceEntry(0, True, 0x2000, depends=True),
        ])
        core = TraceCore(t, CFG)
        core.pop_request(0)
        assert core.next_request_time() == BLOCKED
        core.complete_read(1, 5000)
        assert core.next_request_time() >= 5000


class TestTraceFormat:
    def test_depends_survives_roundtrip(self):
        t = Trace.from_entries([
            TraceEntry(3, False, 0x40, depends=True),
            TraceEntry(0, True, 0x80),
        ])
        buf = io.StringIO()
        write_trace(t, buf)
        buf.seek(0)
        back = read_trace(buf)
        assert back.entries[0].depends
        assert not back.entries[1].depends

    def test_bad_line_rejected(self):
        with pytest.raises(ValueError):
            read_trace(io.StringIO("1 R 0x40 D X\n"))


class TestGeneratorDependence:
    def test_pointer_chasers_have_dependent_reads(self):
        from repro.workloads.fragmentation import PhysicalMemory
        from repro.workloads.generator import TraceGenerator
        from repro.workloads.profiles import profile
        pm = PhysicalMemory(1 << 34, fragmentation=0.1, seed=0)
        t = TraceGenerator(profile("mcf"), pm, seed=0).generate(2000)
        dependent = sum(1 for e in t.entries if e.depends)
        assert dependent > 400  # mcf is dominated by pointer chasing

    def test_streamers_mostly_independent(self):
        from repro.workloads.fragmentation import PhysicalMemory
        from repro.workloads.generator import TraceGenerator
        from repro.workloads.profiles import profile
        pm = PhysicalMemory(1 << 34, fragmentation=0.1, seed=0)
        t = TraceGenerator(profile("lbm"), pm, seed=0).generate(2000)
        dependent = sum(1 for e in t.entries if e.depends)
        assert dependent < 100

    def test_writes_never_dependent_sources(self):
        from repro.workloads.fragmentation import PhysicalMemory
        from repro.workloads.generator import TraceGenerator
        from repro.workloads.profiles import profile
        pm = PhysicalMemory(1 << 34, fragmentation=0.1, seed=0)
        t = TraceGenerator(profile("mcf"), pm, seed=0).generate(500)
        assert all(not (e.depends and e.is_write) for e in t.entries)
