"""Tests for the trace format and (de)serialisation."""

import io

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cpu.trace import Trace, TraceEntry, read_trace, write_trace


class TestTraceEntry:
    def test_rejects_negative_gap(self):
        with pytest.raises(ValueError):
            TraceEntry(gap=-1, is_write=False, address=0)

    def test_rejects_negative_address(self):
        with pytest.raises(ValueError):
            TraceEntry(gap=0, is_write=False, address=-64)


class TestTrace:
    def make(self):
        return Trace.from_entries([
            TraceEntry(10, False, 0x1000),
            TraceEntry(5, True, 0x2000),
            TraceEntry(0, False, 0x3000),
        ], tail_instructions=7, name="t")

    def test_len_and_iter(self):
        t = self.make()
        assert len(t) == 3
        assert [e.address for e in t] == [0x1000, 0x2000, 0x3000]

    def test_total_instructions_counts_accesses_and_tail(self):
        t = self.make()
        assert t.total_instructions == 10 + 5 + 0 + 3 + 7

    def test_read_write_counts(self):
        t = self.make()
        assert t.reads == 2
        assert t.writes == 1

    def test_mpki(self):
        t = self.make()
        assert t.mpki() == pytest.approx(3000 / 25)

    def test_empty_trace_mpki_zero(self):
        assert Trace.from_entries([]).mpki() == 0.0


class TestSerialization:
    def test_roundtrip(self):
        t = Trace.from_entries([
            TraceEntry(10, False, 0x1000),
            TraceEntry(0, True, 0xdeadbec0),
        ], tail_instructions=3, name="x")
        buf = io.StringIO()
        write_trace(t, buf)
        buf.seek(0)
        back = read_trace(buf, name="x")
        assert back.entries == t.entries
        assert back.tail_instructions == 3

    def test_read_rejects_bad_kind(self):
        with pytest.raises(ValueError):
            read_trace(io.StringIO("5 X 0x10\n"))

    def test_blank_lines_ignored(self):
        t = read_trace(io.StringIO("\n3 R 0x40\n\n"))
        assert len(t) == 1

    @settings(max_examples=100)
    @given(entries=st.lists(
        st.tuples(st.integers(0, 1000), st.booleans(),
                  st.integers(0, 2**34)),
        max_size=30), tail=st.integers(0, 100))
    def test_roundtrip_property(self, entries, tail):
        t = Trace.from_entries(
            [TraceEntry(g, w, a) for g, w, a in entries],
            tail_instructions=tail)
        buf = io.StringIO()
        write_trace(t, buf)
        buf.seek(0)
        back = read_trace(buf)
        assert back.entries == t.entries
        assert back.tail_instructions == tail
