"""Tests for the command-line interface."""

import pytest

from repro.cli import CONFIG_FACTORIES, build_parser, main


class TestParser:
    def test_all_subcommands_parse(self):
        parser = build_parser()
        for cmd in ("list", "fig11"):
            args = parser.parse_args([cmd])
            assert callable(args.func)

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.config == "vsb"
        assert args.mix == "mix0"
        assert args.accesses == 1500

    def test_fig12_mixes_option(self):
        args = build_parser().parse_args(
            ["fig12", "--mixes", "mix1,mix2", "--accesses", "100"])
        assert args.mixes == "mix1,mix2"

    def test_unknown_config_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--config", "zzz"])

    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestFactories:
    def test_every_factory_builds(self):
        for name, factory in CONFIG_FACTORIES.items():
            assert factory().name


class TestExecution:
    def test_list(self, capsys):
        main(["list"])
        out = capsys.readouterr().out
        assert "vsb" in out and "mix8" in out and "fig12" in out

    def test_fig11(self, capsys):
        main(["fig11"])
        out = capsys.readouterr().out
        assert "DDB+EWLR+RAP" in out
        assert "MASA8" in out

    def test_run_small(self, capsys):
        main(["run", "--config", "ddr4", "--mix", "mix6",
              "--accesses", "120"])
        out = capsys.readouterr().out
        assert "row-hit rate" in out
        assert "IPC per core" in out

    def test_fig4_small(self, capsys):
        main(["fig4", "--accesses", "300"])
        out = capsys.readouterr().out
        assert "planes" in out

    def test_fig12_tiny(self, capsys):
        main(["fig12", "--mixes", "mix6", "--accesses", "200"])
        out = capsys.readouterr().out
        assert "GMEAN" in out
        assert "Ideal32" in out

    def test_bad_mix_exits(self):
        with pytest.raises(SystemExit):
            main(["fig12", "--mixes", "nope", "--accesses", "100"])
