"""Tests for the command-line interface."""

import pytest

from repro.cli import CONFIG_FACTORIES, build_parser, main


class TestParser:
    def test_all_subcommands_parse(self):
        parser = build_parser()
        for cmd in ("list", "fig11"):
            args = parser.parse_args([cmd])
            assert callable(args.func)

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.config == "vsb"
        assert args.mix == "mix0"
        assert args.accesses == 1500

    def test_fig12_mixes_option(self):
        args = build_parser().parse_args(
            ["fig12", "--mixes", "mix1,mix2", "--accesses", "100"])
        assert args.mixes == "mix1,mix2"

    def test_unknown_config_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--config", "zzz"])

    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestFactories:
    def test_every_factory_builds(self):
        for name, factory in CONFIG_FACTORIES.items():
            assert factory().name


class TestExecution:
    def test_list(self, capsys):
        main(["list"])
        out = capsys.readouterr().out
        assert "vsb" in out and "mix8" in out and "fig12" in out

    def test_fig11(self, capsys):
        main(["fig11"])
        out = capsys.readouterr().out
        assert "DDB+EWLR+RAP" in out
        assert "MASA8" in out

    def test_run_small(self, capsys):
        main(["run", "--config", "ddr4", "--mix", "mix6",
              "--accesses", "120"])
        out = capsys.readouterr().out
        assert "row-hit rate" in out
        assert "IPC per core" in out

    def test_fig4_small(self, capsys):
        main(["fig4", "--accesses", "300"])
        out = capsys.readouterr().out
        assert "planes" in out

    def test_fig12_tiny(self, capsys):
        main(["fig12", "--mixes", "mix6", "--accesses", "200"])
        out = capsys.readouterr().out
        assert "GMEAN" in out
        assert "Ideal32" in out

    def test_bad_mix_exits(self):
        with pytest.raises(SystemExit):
            main(["fig12", "--mixes", "nope", "--accesses", "100"])


class TestObservability:
    def test_stats_table_sums(self, capsys):
        main(["stats", "--config", "vsb", "--mix", "mix0",
              "--accesses", "200"])
        out = capsys.readouterr().out
        assert "stall attribution" in out
        assert "queue_empty" in out and "bank_busy" in out

    def test_stats_per_bank_and_exports(self, capsys, tmp_path):
        json_path = tmp_path / "stats.json"
        csv_path = tmp_path / "stats.csv"
        main(["stats", "--config", "ddr4", "--mix", "mix1",
              "--accesses", "150", "--per-bank",
              "--json", str(json_path), "--csv", str(csv_path)])
        out = capsys.readouterr().out
        assert "rowhit" in out  # the per-bank header
        import json as json_mod
        data = json_mod.loads(json_path.read_text())
        assert sum(data["buckets_ps"].values()) == data["wall_ps"]
        assert csv_path.read_text().startswith("channel,bucket,ps")

    def test_trace_jsonl_to_stdout(self, capsys):
        main(["trace", "--config", "ddr4", "--mix", "mix0",
              "--accesses", "100", "--limit", "5"])
        out = capsys.readouterr().out
        import json as json_mod
        lines = [l for l in out.splitlines() if l.startswith("{")]
        assert len(lines) == 5
        event = json_mod.loads(lines[0])
        assert {"time_ps", "kind", "stall"} <= set(event)

    def test_trace_csv_to_file(self, capsys, tmp_path):
        path = tmp_path / "trace.csv"
        main(["trace", "--config", "vsb", "--mix", "mix0",
              "--accesses", "100", "--format", "csv",
              "--output", str(path)])
        header = path.read_text().splitlines()[0]
        assert header.startswith("time_ps,channel,bank")

    def test_fig12_emit_stats_sidecars(self, capsys, tmp_path):
        main(["fig12", "--mixes", "mix6", "--accesses", "150",
              "--emit-stats", str(tmp_path)])
        out = capsys.readouterr().out
        assert "GMEAN" in out
        sidecars = sorted(tmp_path.glob("fig12__*__mix6.json"))
        assert len(sidecars) == 8  # one per Fig. 12 configuration
        import json as json_mod
        for sidecar in sidecars:
            data = json_mod.loads(sidecar.read_text())
            assert sum(data["buckets_ps"].values()) == data["wall_ps"]
