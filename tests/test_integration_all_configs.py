"""Cross-configuration integration tests.

Every organisation the paper evaluates must run arbitrary traffic to
completion: the device model raises on any timing-rule violation, so a
completed run certifies command-schedule legality.
"""

import random

import pytest

from repro.core.mechanisms import EruConfig
from repro.cpu.trace import Trace, TraceEntry
from repro.sim.config import (
    bg32,
    ddr4_baseline,
    half_dram,
    ideal32,
    masa,
    masa_eruca,
    paired_bank,
    vsb,
)
from repro.sim.simulator import run_traces

ALL_CONFIGS = [
    ddr4_baseline(),
    bg32(),
    ideal32(),
    vsb(EruConfig.naive(2)),
    vsb(EruConfig.naive(16)),
    vsb(EruConfig.naive_ddb(4)),
    vsb(EruConfig.ewlr_only(4)),
    vsb(EruConfig.rap_only(4)),
    vsb(EruConfig.full(2)),
    vsb(EruConfig.full(4)),
    paired_bank(),
    paired_bank(EruConfig.full(4, ddb=False)),
    half_dram(),
    masa(4),
    masa(8),
    masa_eruca(8),
    masa_eruca(8, ddb=False),
    vsb(EruConfig.full(4)).at_frequency(2.4e9),
    ideal32().at_frequency(2.4e9),
    ddr4_baseline().at_frequency(2.0e9),
]


def mixed_traffic(cores=2, n=250, seed=0):
    rng = random.Random(seed)
    traces = []
    for c in range(cores):
        base = rng.randrange(0, 1 << 30) & ~63
        entries = []
        for i in range(n):
            if rng.random() < 0.5:
                addr = (base + i * 64) & ((1 << 34) - 64)
            else:
                addr = rng.randrange(0, 1 << 34) & ~63
            entries.append(TraceEntry(rng.randrange(0, 40),
                                      rng.random() < 0.35, addr))
        traces.append(Trace.from_entries(entries, name=f"c{c}"))
    return traces


@pytest.mark.parametrize("config", ALL_CONFIGS,
                         ids=[c.name for c in ALL_CONFIGS])
def test_config_completes_mixed_traffic(config):
    traces = mixed_traffic()
    result = run_traces(config, traces)
    assert result.stats.columns == sum(len(t) for t in traces)
    assert all(ipc > 0 for ipc in result.ipcs)
    assert result.elapsed_ps > 0
    # Internal consistency of the counters.
    assert result.energy.reads + result.energy.writes == \
        result.stats.columns
    assert result.stats.ewlr_hits <= result.stats.acts
    assert result.energy.precharges == result.stats.precharges
    assert sum(result.precharge_causes.values()) == result.stats.precharges


@pytest.mark.parametrize("config", ALL_CONFIGS[:6],
                         ids=[c.name for c in ALL_CONFIGS[:6]])
def test_latencies_above_device_floor(config):
    t = config.timing()
    result = run_traces(config, mixed_traffic(seed=3))
    floor = t.tCL + t.burst_time
    assert min(result.stats.read_latencies) >= floor


def test_full_eruca_never_slower_than_naive_on_average():
    """Aggregate sanity across seeds: conflict avoidance should not lose."""
    naive_total, full_total = 0.0, 0.0
    for seed in range(3):
        traces = mixed_traffic(cores=4, n=200, seed=seed)
        naive_total += sum(run_traces(vsb(EruConfig.naive(4)),
                                      traces).ipcs)
        full_total += sum(run_traces(vsb(EruConfig.full(4)),
                                     traces).ipcs)
    assert full_total >= naive_total * 0.97


def test_subbanked_configs_open_two_rows_per_bank():
    traces = mixed_traffic(cores=4, n=300, seed=5)
    result = run_traces(vsb(EruConfig.full(4)), traces)
    flat = run_traces(ddr4_baseline(), traces)
    # Same traffic, same capacity: both serve all columns.
    assert result.stats.columns == flat.stats.columns
