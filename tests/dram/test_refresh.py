"""DRAM refresh: deadline tracker through policies, end to end.

Unit tests pin the :class:`ChannelResources` deadline/blackout
mechanics and the :class:`Channel` refresh issue path; the validator
tests prove the independent rule checker rejects broken refresh
schedules; the system tests hold every policy to the rule checker, the
bucket-sum invariant, and refresh-off digest identity; the hypothesis
property drives random traffic through random policies and lets the
checker's 9 x tREFI rule prove no bank ever starves.
"""

import random
from dataclasses import replace

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.controller.mapping import RowLayout
from repro.controller.scheduler import REFRESH_POLICIES
from repro.controller.transaction import DramCoordinates
from repro.cpu.core import TraceCore
from repro.cpu.trace import Trace, TraceEntry
from repro.dram.bank import NEVER, BankGeometry
from repro.dram.commands import PrechargeCause
from repro.dram.device import Channel
from repro.dram.resources import (
    FLOOR_BUS,
    FLOOR_REFRESH,
    BusPolicy,
    ChannelResources,
)
from repro.dram.timing import (
    REFRESH_DENSITY_GRADES_NS,
    TimingParams,
    ddr4_refresh_overrides,
    ddr4_timings,
)
from repro.dram.validation import (
    CommandRecord,
    TimingViolation,
    validate_log,
)
from repro.sim import config as cfgs
from repro.sim.accounting import StallBucket
from repro.sim.simulator import MemorySystem, Simulator, run_traces

T = ddr4_timings()
RT = T.replace(**ddr4_refresh_overrides("8Gb"))


def make(timing=RT):
    return ChannelResources(timing, BusPolicy.BANK_GROUPS,
                            bank_groups=4, banks=16)


def refresh_config(preset=None, policy="baseline", density="8Gb"):
    base = preset if preset is not None else cfgs.vsb()
    return replace(base, refresh_density=density, refresh_policy=policy,
                   name=f"{base.name}+ref-{policy}-{density}")


def mixed_traffic(cores=3, n=200, seed=11):
    rng = random.Random(seed)
    traces = []
    for c in range(cores):
        base = rng.randrange(0, 1 << 30) & ~63
        entries = []
        for i in range(n):
            if rng.random() < 0.5:
                addr = (base + i * 64) & ((1 << 34) - 64)
            else:
                addr = rng.randrange(0, 1 << 34) & ~63
            entries.append(TraceEntry(rng.randrange(0, 12),
                                      rng.random() < 0.3, addr))
        traces.append(Trace.from_entries(entries, name=f"c{c}"))
    return traces


class TestDeadlineTracker:
    def test_refresh_off_has_no_blackout_table(self):
        r = make(T)
        assert not r.refresh_active
        assert r.ref_until is None
        assert r.refresh_floor(0, 0) == NEVER

    def test_schedule_arms_one_period_in(self):
        r = make()
        r.init_refresh_schedule(RT.tREFI)
        assert r.ref_due == RT.tREFI
        r.retire_refresh()
        assert r.ref_due == 2 * RT.tREFI

    def test_all_bank_refresh_blacks_out_every_slot(self):
        r = make()
        end = r.record_refresh(1000, RT.tRFC)
        assert end == 1000 + RT.tRFC
        for bank in range(16):
            for sb in (0, 1):
                assert r.refresh_floor(bank, sb) == end

    def test_per_bank_refresh_blacks_out_one_bank(self):
        r = make()
        end = r.record_refresh(0, RT.trfc_pb, bank=3)
        assert r.refresh_floor(3, 0) == end
        assert r.refresh_floor(3, 1) == end
        assert r.refresh_floor(2, 0) == NEVER

    def test_sub_bank_refresh_blacks_out_one_sub_bank(self):
        r = make()
        end = r.record_refresh(0, RT.trfc_pb // 2, bank=5, subbank=1)
        assert r.refresh_floor(5, 1) == end
        assert r.refresh_floor(5, 0) == NEVER

    def test_refresh_occupies_the_command_bus(self):
        r = make()
        r.record_refresh(500, RT.tRFC)
        assert r.cmd_bus_free == 500 + RT.tCK


def vsb_channel(timing=RT):
    layout = RowLayout(row_bits=16, plane_count=4, ewlr_bits=3)
    return Channel(timing, BusPolicy.DDB, bank_groups=4,
                   banks_per_group=4,
                   bank_geometry=BankGeometry(subbanks=2, row_bits=16),
                   row_layout=layout, ewlr=True, rap=True,
                   record_commands=True)


def coords(bg=0, bank=0, subbank=0, row=0):
    return DramCoordinates(channel=0, rank=0, bank_group=bg, bank=bank,
                           subbank=subbank, row=row, column=0)


class TestChannelRefresh:
    def test_blackout_folds_into_every_earliest_query(self):
        ch = vsb_channel()
        end = ch.issue_refresh(0)  # all-bank
        c = coords()
        assert ch.earliest_act(c) >= end
        floors = dict(ch.explain_act(c))
        assert floors[FLOOR_REFRESH] == end

    def test_refresh_refused_with_open_rows_in_scope(self):
        ch = vsb_channel()
        c = coords(bank=1, row=7)
        ch.issue_act(c, ch.earliest_act(c))
        with pytest.raises(ValueError, match="open rows"):
            ch.issue_refresh(10_000, ch.bank_index(c))
        # A disjoint scope still refreshes fine.
        ch.issue_refresh(ch.earliest_refresh(0), 0)

    def test_scope_durations_shrink_with_scope(self):
        ch = vsb_channel()
        assert ch.refresh_duration() == RT.tRFC
        assert ch.refresh_duration(2) == RT.trfc_pb
        assert ch.refresh_duration(2, 1) == (RT.trfc_pb + 1) // 2
        assert ch.refresh_duration(2, 1) < ch.refresh_duration(2) \
            < ch.refresh_duration()

    def test_explain_refresh_matches_earliest(self):
        ch = vsb_channel()
        ch.issue_refresh(0, 0)  # bank 0 in flight
        floors = ch.explain_refresh()  # rank-wide scope overlaps it
        assert max(t for _, t in floors) == ch.earliest_refresh()
        assert FLOOR_BUS in dict(floors)

    def test_refresh_lands_in_the_command_log(self):
        ch = vsb_channel()
        ch.issue_refresh(0)
        ch.issue_refresh(ch.earliest_refresh(3, 1), 3, 1)
        kinds = [rec.kind for rec in ch.command_log]
        assert kinds == ["REF", "REFPB"]
        assert ch.command_log[0].bank == -1       # rank-wide wildcard
        assert ch.command_log[1].slot[0] == 1     # sub-bank scope


class TestValidatorRefreshRules:
    def ref(self, time, bank=-1, subbank=-1):
        return CommandRecord("REF" if bank < 0 else "REFPB", time, bank,
                             -1 if bank < 0 else bank // 4,
                             (subbank, -1))

    def test_refresh_requires_refresh_enabled_timings(self):
        with pytest.raises(TimingViolation, match="disabled"):
            validate_log([self.ref(0)], T, BusPolicy.BANK_GROUPS)

    def test_demand_inside_blackout_rejected(self):
        log = [self.ref(0),
               CommandRecord("ACT", RT.tRFC // 2, 0, 0, (0, 0), 5)]
        with pytest.raises(TimingViolation, match="blackout"):
            validate_log(log, RT, BusPolicy.BANK_GROUPS)

    def test_demand_after_blackout_accepted(self):
        log = [self.ref(0),
               CommandRecord("ACT", RT.tRFC, 0, 0, (0, 0), 5)]
        assert validate_log(log, RT, BusPolicy.BANK_GROUPS) == 2

    def test_disjoint_bank_rides_through_per_bank_blackout(self):
        log = [self.ref(0, bank=3),
               CommandRecord("ACT", RT.tCK, 0, 0, (0, 0), 5)]
        assert validate_log(log, RT, BusPolicy.BANK_GROUPS) == 2

    def test_refresh_into_overlapping_blackout_rejected(self):
        log = [self.ref(0, bank=3), self.ref(RT.tCK, bank=3)]
        with pytest.raises(TimingViolation, match="active blackout"):
            validate_log(log, RT, BusPolicy.BANK_GROUPS)

    def test_starved_bank_trips_the_nine_trefi_rule(self):
        late = 9 * RT.tREFI + RT.tCK
        log = [CommandRecord("ACT", late, 0, 0, (0, 0), 5)]
        with pytest.raises(TimingViolation, match="9 x tREFI"):
            validate_log(log, RT, BusPolicy.BANK_GROUPS)

    def test_covering_refresh_resets_the_interval(self):
        t0 = 8 * RT.tREFI
        log = [self.ref(t0),
               CommandRecord("ACT", t0 + RT.tRFC, 0, 0, (0, 0), 5)]
        assert validate_log(log, RT, BusPolicy.BANK_GROUPS) == 2

    def test_refresh_with_open_row_in_scope_rejected(self):
        log = [CommandRecord("ACT", 0, 0, 0, (0, 0), 5),
               self.ref(RT.tRC)]
        with pytest.raises(TimingViolation, match="open row"):
            validate_log(log, RT, BusPolicy.BANK_GROUPS)


class TestSystemRefresh:
    def test_refresh_ns_zero_is_digest_identical_to_the_preset(self):
        traces = mixed_traffic(cores=2, n=120)
        for preset in (cfgs.ddr4_baseline(), cfgs.vsb(), cfgs.masa(8)):
            off = replace(preset, refresh_ns=0)
            assert run_traces(preset, traces).digest() == \
                run_traces(off, traces).digest(), preset.name

    def test_enabling_refresh_changes_behaviour(self):
        # Long enough that the all-bank baseline's first tREFI deadline
        # (7.8 us) lands inside the run.
        traces = mixed_traffic(cores=4, n=1400)
        base = run_traces(cfgs.vsb(), traces)
        ref = run_traces(refresh_config(), traces)
        assert base.digest() != ref.digest()
        assert ref.stats.refreshes > 0
        assert ref.elapsed_ps > base.elapsed_ps

    @pytest.mark.parametrize("policy", REFRESH_POLICIES)
    def test_policies_satisfy_the_rule_checker(self, policy):
        config = replace(refresh_config(policy=policy),
                         record_commands=True)
        system = MemorySystem(config)
        # 4x1400 puts the first baseline tREFI deadline inside the run;
        # the per-bank policies refresh from ~tREFI/banks on anyway.
        cores = [TraceCore(t, core_id=i)
                 for i, t in enumerate(mixed_traffic(cores=4, n=1400))]
        Simulator(system, cores).run()
        timing = config.timing()
        saw_refresh = 0
        for controller in system.controllers:
            log = controller.channel.command_log
            validate_log(log, timing, config.bus_policy)
            saw_refresh += sum(1 for rec in log
                               if rec.kind in ("REF", "REFPB"))
        assert saw_refresh > 0

    @pytest.mark.parametrize("policy", REFRESH_POLICIES)
    def test_backends_agree_with_refresh_on(self, policy):
        from repro.sim.shards import ShardedSimulator
        config = refresh_config(policy=policy, density="16Gb")
        traces = mixed_traffic(cores=3, n=150)

        def run(sharded):
            system = MemorySystem(config)
            cores = [TraceCore(t, core_id=i)
                     for i, t in enumerate(traces)]
            if sharded is None:
                return Simulator(system, cores).run().digest()
            return ShardedSimulator(system, cores,
                                    backend=sharded).run().digest()

        digests = {run(None), run("serial"), run("threads")}
        assert len(digests) == 1

    def test_bucket_sum_invariant_over_all_presets(self):
        """Every refresh-capable preset, refresh on: buckets still sum
        to wall time and the REFRESH bucket exists (it may be zero on
        short runs).  Refresh-free backends (PCM) reject the overrides
        outright -- covered in tests/dram/test_backends.py."""
        from repro.dram.backends import get_backend
        traces = mixed_traffic(cores=2, n=90)
        for preset in cfgs.all_presets():
            if not get_backend(preset.backend).refresh_capable:
                continue
            config = refresh_config(preset, policy="sarp")
            result = run_traces(config, traces, observe=True)
            result.accounting.verify()
            assert StallBucket.REFRESH in result.accounting.totals()

    def test_refresh_precharges_file_under_the_refresh_cause(self):
        # The on-deadline baseline closes whatever rows are open when
        # the REF chain fires, so its closes carry the REFRESH cause
        # (sarp mostly refreshes scopes that are already closed).
        traces = mixed_traffic(cores=4, n=1400)
        result = run_traces(refresh_config(policy="baseline"), traces)
        assert result.precharge_causes[PrechargeCause.REFRESH] > 0

    def test_refresh_off_omits_the_refresh_cause_from_digests(self):
        """The digest's precharge-cause section must keep its pre-refresh
        shape when refresh is off (zero-count REFRESH is filtered)."""
        traces = mixed_traffic(cores=2, n=80)
        result = run_traces(cfgs.vsb(), traces)
        assert PrechargeCause.REFRESH not in result.precharge_causes \
            or result.precharge_causes[PrechargeCause.REFRESH] == 0


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 1 << 30),
       policy=st.sampled_from(REFRESH_POLICIES),
       density=st.sampled_from(sorted(REFRESH_DENSITY_GRADES_NS)))
def test_no_bank_exceeds_nine_trefi_without_refresh(seed, policy,
                                                    density):
    """Random traffic, any policy/density: the independent checker's
    9 x tREFI rule proves no (sub-)bank ever starves of refresh, and
    the full rule set holds alongside it."""
    config = replace(refresh_config(policy=policy, density=density),
                     record_commands=True)
    rng = random.Random(seed)
    traces = mixed_traffic(cores=rng.randint(1, 3),
                           n=rng.randint(60, 160), seed=seed)
    system = MemorySystem(config)
    cores = [TraceCore(t, core_id=i) for i, t in enumerate(traces)]
    Simulator(system, cores).run()
    timing = config.timing()
    for controller in system.controllers:
        validate_log(controller.channel.command_log, timing,
                     config.bus_policy)
