"""Unit tests for DRAM timing parameters and presets."""

import pytest

from repro.dram.timing import (
    DRAM_CORE_PERIOD_PS,
    FIG14_BUS_FREQUENCIES_HZ,
    GENERATIONS,
    TimingParams,
    clock_period_ps,
    ddr4_timings,
    ns,
)


def test_ns_converts_to_picoseconds():
    assert ns(1) == 1000
    assert ns(2.5) == 2500
    assert ns(0.75) == 750


def test_clock_period_1333mhz():
    assert clock_period_ps(1.333e9) == 750


def test_clock_period_200mhz_is_core_period():
    assert clock_period_ps(200e6) == DRAM_CORE_PERIOD_PS


class TestDdr4Preset:
    def test_default_bus_clock(self):
        t = ddr4_timings()
        assert t.tCK == 750

    def test_cas_latency_is_18_cycles(self):
        t = ddr4_timings()
        assert t.tCL == 18 * 750

    def test_trc_covers_tras_plus_trp(self):
        t = ddr4_timings()
        assert t.tRC >= t.tRAS + t.tRP

    def test_tccd_l_is_one_core_clock(self):
        t = ddr4_timings()
        assert t.tCCD_L == DRAM_CORE_PERIOD_PS

    def test_burst_time_is_four_clocks(self):
        t = ddr4_timings()
        assert t.burst_time == 4 * t.tCK

    def test_higher_frequency_shrinks_tck_not_trcd(self):
        base = ddr4_timings(1.333e9)
        fast = ddr4_timings(2.4e9)
        assert fast.tCK < base.tCK
        assert fast.tRCD == base.tRCD  # analog latency constant in ns

    def test_windows_disabled_by_default(self):
        t = ddr4_timings()
        assert t.tTCW == 0
        assert t.tTWTRW == 0


class TestDdbWindows:
    def test_with_ddb_windows_sets_ttcw_to_core_clock(self):
        t = ddr4_timings().with_ddb_windows()
        assert t.tTCW == DRAM_CORE_PERIOD_PS

    def test_ttwtrw_formula(self):
        t = ddr4_timings().with_ddb_windows()
        assert t.tTWTRW == t.tCWL + 4 * t.tCK + t.tWTR_L

    def test_windows_not_needed_at_1333(self):
        # 2 * burst (6 ns) exceeds the 5 ns core clock: dual buses keep up.
        assert not ddr4_timings(1.333e9).ddb_windows_needed()

    def test_windows_needed_at_2400(self):
        assert ddr4_timings(2.4e9).ddb_windows_needed()

    def test_windows_needed_at_2000(self):
        assert ddr4_timings(2.0e9).ddb_windows_needed()


class TestValidation:
    def test_rejects_nonpositive_tck(self):
        with pytest.raises(ValueError):
            ddr4_timings().replace(tCK=0)

    def test_rejects_trc_below_tras_plus_trp(self):
        t = ddr4_timings()
        with pytest.raises(ValueError):
            t.replace(tRC=t.tRAS)

    def test_rejects_tccd_l_below_tccd_s(self):
        t = ddr4_timings()
        with pytest.raises(ValueError):
            t.replace(tCCD_L=t.tCCD_S - 1)

    def test_rejects_odd_burst_length(self):
        with pytest.raises(ValueError):
            ddr4_timings().replace(burst_length=7)


def test_tab1_lists_four_generations():
    names = [g.name for g in GENERATIONS]
    assert names == ["DDR", "DDR2", "DDR3", "DDR4"]


def test_tab1_ddr4_spec():
    ddr4 = GENERATIONS[-1]
    assert ddr4.bank_count == "16"
    assert ddr4.internal_prefetch == "8n"


def test_fig14_sweep_starts_at_baseline_frequency():
    assert FIG14_BUS_FREQUENCIES_HZ[0] == pytest.approx(1.333e9)
    assert len(FIG14_BUS_FREQUENCIES_HZ) == 4
