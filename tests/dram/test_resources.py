"""Tests for channel-level shared resources and the DDB bus windows."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dram.resources import (
    TURNAROUND_CLOCKS,
    BusPolicy,
    ChannelResources,
)
from repro.dram.timing import ddr4_timings

T = ddr4_timings()


def make(policy, timing=T):
    if policy is BusPolicy.DDB:
        timing = timing.with_ddb_windows()
    return ChannelResources(timing, policy, bank_groups=4, banks=16)


class TestCommandBus:
    def test_starts_free(self):
        r = make(BusPolicy.BANK_GROUPS)
        assert r.earliest_act() == 0

    def test_one_command_per_clock(self):
        r = make(BusPolicy.BANK_GROUPS)
        r.record_precharge(0)
        assert r.earliest_precharge() == T.tCK


class TestActSpacing:
    def test_trrd_between_acts(self):
        r = make(BusPolicy.BANK_GROUPS)
        r.record_act(0)
        assert r.earliest_act() == T.tRRD


class TestCasSpacingBankGroups:
    def test_same_group_uses_tccd_l(self):
        r = make(BusPolicy.BANK_GROUPS)
        r.record_column(0, is_write=False, bank_group=1, bank=4)
        assert r.earliest_column(False, bank_group=1, bank=5) >= T.tCCD_L

    def test_cross_group_uses_tccd_s(self):
        r = make(BusPolicy.BANK_GROUPS)
        r.record_column(0, is_write=False, bank_group=1, bank=4)
        t = r.earliest_column(False, bank_group=2, bank=8)
        assert t == T.tCCD_S
        assert t < T.tCCD_L


class TestCasSpacingNoGroups:
    def test_tccd_s_everywhere(self):
        r = make(BusPolicy.NO_GROUPS)
        r.record_column(0, is_write=False, bank_group=1, bank=4)
        assert r.earliest_column(False, bank_group=1, bank=5) == T.tCCD_S


class TestCasSpacingDdb:
    def test_same_group_different_bank_uses_tccd_s(self):
        """DDB's headline effect: intra-group bank interleave at tCCD_S."""
        r = make(BusPolicy.DDB)
        r.record_column(0, is_write=False, bank_group=1, bank=4)
        assert r.earliest_column(False, bank_group=1, bank=5) == T.tCCD_S

    def test_same_bank_still_tccd_l(self):
        r = make(BusPolicy.DDB)
        r.record_column(0, is_write=False, bank_group=1, bank=4)
        assert r.earliest_column(False, bank_group=1, bank=4) >= T.tCCD_L

    def test_windows_inactive_at_baseline_frequency(self):
        r = make(BusPolicy.DDB)
        assert not r.windows_active

    def test_ttcw_blocks_third_cas_at_high_frequency(self):
        fast = ddr4_timings(2.4e9)
        r = make(BusPolicy.DDB, fast)
        assert r.windows_active
        t = fast.with_ddb_windows()
        r.record_column(0, is_write=False, bank_group=0, bank=0)
        second = r.earliest_column(False, bank_group=0, bank=1)
        r.record_column(second, is_write=False, bank_group=0, bank=1)
        third = r.earliest_column(False, bank_group=0, bank=2)
        # The third command waits for the tTCW window anchored at cmd #1.
        assert third >= t.tTCW

    def test_ttcw_does_not_constrain_other_group(self):
        fast = ddr4_timings(2.4e9)
        r = make(BusPolicy.DDB, fast)
        r.record_column(0, is_write=False, bank_group=0, bank=0)
        second = r.earliest_column(False, bank_group=0, bank=1)
        r.record_column(second, is_write=False, bank_group=0, bank=1)
        other = r.earliest_column(False, bank_group=1, bank=4)
        assert other < fast.with_ddb_windows().tTCW

    def test_ttwtrw_after_two_writes(self):
        fast = ddr4_timings(2.4e9)
        r = make(BusPolicy.DDB, fast)
        t = fast.with_ddb_windows()
        r.record_column(0, is_write=True, bank_group=0, bank=0)
        w2 = r.earliest_column(True, bank_group=0, bank=1)
        r.record_column(w2, is_write=True, bank_group=0, bank=1)
        rd = r.earliest_column(False, bank_group=0, bank=2)
        assert rd >= t.tTWTRW  # anchored at the first write (time 0)


class TestWriteToRead:
    def test_wtr_long_same_group(self):
        r = make(BusPolicy.BANK_GROUPS)
        end = r.record_column(0, is_write=True, bank_group=1, bank=4)
        rd = r.earliest_column(False, bank_group=1, bank=5)
        assert rd >= end + T.tWTR_L

    def test_wtr_short_cross_group(self):
        r = make(BusPolicy.BANK_GROUPS)
        end = r.record_column(0, is_write=True, bank_group=1, bank=4)
        rd = r.earliest_column(False, bank_group=2, bank=8)
        assert rd >= end + T.tWTR_S
        assert rd < end + T.tWTR_L

    def test_ddb_wtr_long_only_same_bank(self):
        r = make(BusPolicy.DDB)
        end = r.record_column(0, is_write=True, bank_group=1, bank=4)
        same_bank = r.earliest_column(False, bank_group=1, bank=4)
        other_bank = r.earliest_column(False, bank_group=1, bank=5)
        assert same_bank >= end + T.tWTR_L
        assert other_bank < same_bank


class TestDataBus:
    def test_bursts_do_not_overlap(self):
        r = make(BusPolicy.NO_GROUPS)
        end = r.record_column(0, is_write=False, bank_group=0, bank=0)
        nxt = r.earliest_column(False, bank_group=1, bank=4)
        assert nxt + T.tCL >= end or nxt >= T.tCCD_S

    def test_read_to_write_turnaround(self):
        r = make(BusPolicy.NO_GROUPS)
        end = r.record_column(0, is_write=False, bank_group=0, bank=0)
        wr = r.earliest_column(True, bank_group=1, bank=4)
        # Write data must start after read burst end + turnaround bubble.
        assert wr + T.tCWL >= end + TURNAROUND_CLOCKS * T.tCK

    def test_same_direction_no_turnaround(self):
        r = make(BusPolicy.NO_GROUPS)
        end = r.record_column(0, is_write=False, bank_group=0, bank=0)
        rd = r.earliest_column(False, bank_group=1, bank=4)
        assert rd + T.tCL >= end - T.burst_time  # back-to-back bursts fine


@settings(max_examples=200, deadline=None)
@given(
    policy=st.sampled_from(list(BusPolicy)),
    ops=st.lists(
        st.tuples(st.booleans(), st.integers(0, 3), st.integers(0, 3)),
        min_size=1, max_size=20),
)
def test_earliest_column_is_monotone_and_legal(policy, ops):
    """Property: issuing at the reported earliest time is always accepted
    and times never move backwards."""
    timing = ddr4_timings(2.4e9)
    if policy is BusPolicy.DDB:
        timing = timing.with_ddb_windows()
    r = ChannelResources(timing, policy, bank_groups=4, banks=16)
    prev = 0
    for is_write, bg, bank_in_group in ops:
        bank = bg * 4 + bank_in_group
        t = r.earliest_column(is_write, bg, bank)
        assert t >= 0
        issue = max(t, prev)
        r.record_column(issue, is_write, bg, bank)
        after = r.earliest_column(is_write, bg, bank)
        assert after > issue  # at least tCCD separates same-target CAS
        prev = issue
