"""Cross-validation: the scheduler's output vs an independent rule set.

These are the strongest correctness tests in the suite: every command
schedule the event-driven controller produces is re-checked against a
second, from-the-definitions implementation of the timing rules.
"""

import random
from dataclasses import replace

import pytest

from repro.core.mechanisms import EruConfig
from repro.cpu.trace import Trace, TraceEntry
from repro.dram.resources import BusPolicy
from repro.dram.timing import ddr4_timings
from repro.dram.validation import (
    CommandRecord,
    TimingViolation,
    validate_log,
)
from repro.sim.config import (
    ddr4_baseline,
    half_dram,
    ideal32,
    masa,
    masa_eruca,
    vsb,
)
from repro.sim.simulator import MemorySystem, Simulator, run_traces
from repro.cpu.core import TraceCore


def traffic(cores=3, n=300, seed=0):
    rng = random.Random(seed)
    traces = []
    for c in range(cores):
        base = rng.randrange(0, 1 << 30) & ~63
        entries = []
        for i in range(n):
            addr = (base + i * 64 if rng.random() < 0.5
                    else rng.randrange(0, 1 << 34)) & ~63
            entries.append(TraceEntry(rng.randrange(0, 30),
                                      rng.random() < 0.35, addr,
                                      depends=rng.random() < 0.2))
        traces.append(Trace.from_entries(entries, name=f"c{c}"))
    return traces


def run_validated(config, traces):
    config = replace(config, record_commands=True)
    system = MemorySystem(config)
    cores = [TraceCore(t, core_id=i) for i, t in enumerate(traces)]
    Simulator(system, cores).run()
    timing = config.timing()
    total = 0
    for controller in system.controllers:
        log = controller.channel.command_log
        assert log, "recording was enabled but the log is empty"
        total += validate_log(log, timing, config.bus_policy)
    return total


CONFIGS = [
    ddr4_baseline(),
    ideal32(),
    vsb(EruConfig.naive(4)),
    vsb(EruConfig.full(4)),
    vsb(EruConfig.full(4)).at_frequency(2.4e9),
    half_dram(),
    masa(8),
    masa_eruca(8),
    replace(ddr4_baseline(), idle_close_ps=300_000),
]


@pytest.mark.parametrize("config", CONFIGS,
                         ids=[c.name for c in CONFIGS])
def test_schedules_pass_independent_validation(config):
    checked = run_validated(config, traffic(seed=11))
    assert checked > 500  # a real schedule, not a trivial one


@pytest.mark.parametrize("seed", [1, 2, 3])
def test_random_seeds_validate_on_eruca(seed):
    run_validated(vsb(EruConfig.full(4)), traffic(seed=seed))


class TestValidatorCatchesViolations:
    """The validator must actually reject broken schedules."""

    T = ddr4_timings()

    def act(self, time, bank=0, slot=(0, 0), row=1, bg=0):
        return CommandRecord("ACT", time, bank, bg, slot, row)

    def test_detects_trcd_violation(self):
        log = [self.act(0),
               CommandRecord("RD", self.T.tRCD - 1, 0, 0, (0, 0))]
        with pytest.raises(TimingViolation, match="tRCD"):
            validate_log(log, self.T, BusPolicy.BANK_GROUPS)

    def test_detects_tras_violation(self):
        log = [self.act(0),
               CommandRecord("PRE", self.T.tRAS - 1, 0, 0, (0, 0))]
        with pytest.raises(TimingViolation, match="tRAS"):
            validate_log(log, self.T, BusPolicy.BANK_GROUPS)

    def test_detects_trrd_violation(self):
        # One tCK apart (so the command-bus rule passes) but well
        # inside tRRD.
        log = [self.act(0, bank=0), self.act(self.T.tCK, bank=1)]
        with pytest.raises(TimingViolation, match="tRRD"):
            validate_log(log, self.T, BusPolicy.BANK_GROUPS)

    def test_detects_command_bus_overlap(self):
        log = [self.act(0, bank=0), self.act(self.T.tCK - 1, bank=1)]
        with pytest.raises(TimingViolation, match="command bus"):
            validate_log(log, self.T, BusPolicy.BANK_GROUPS)

    def test_detects_tfaw_violation(self):
        # Four ACTs at the tRRD cadence, then a fifth still inside the
        # 25 ns window: the per-pair spacing is legal but the rolling
        # four-activate budget is not.
        t = self.T
        log = [self.act(i * t.tRRD, bank=i) for i in range(5)]
        assert 4 * t.tRRD < t.tFAW  # the burst really is inside
        with pytest.raises(TimingViolation, match="tFAW"):
            validate_log(log, t, BusPolicy.BANK_GROUPS)

    def test_tfaw_allows_fifth_act_at_window_edge(self):
        t = self.T
        log = [self.act(i * t.tRRD, bank=i) for i in range(4)]
        log.append(self.act(t.tFAW, bank=4))  # exactly one window later
        assert validate_log(log, t, BusPolicy.BANK_GROUPS) == 5

    def test_tfaw_zero_disables_the_window(self):
        t = self.T.replace(tFAW=0)
        log = [self.act(i * t.tRRD, bank=i) for i in range(5)]
        assert validate_log(log, t, BusPolicy.BANK_GROUPS) == 5

    def test_detects_tccd_l_violation(self):
        t = self.T
        log = [self.act(0, bank=0), self.act(t.tRRD, bank=1),
               CommandRecord("RD", t.tRCD, 0, 0, (0, 0)),
               CommandRecord("RD", t.tRCD + t.tCCD_S, 1, 0, (0, 0))]
        with pytest.raises(TimingViolation, match="tCCD_L"):
            validate_log(log, t, BusPolicy.BANK_GROUPS)

    def test_ideal_allows_tccd_s_in_group(self):
        t = self.T
        log = [self.act(0, bank=0), self.act(t.tRRD, bank=1),
               CommandRecord("RD", t.tRCD, 0, 0, (0, 0)),
               CommandRecord("RD", t.tRCD + t.tCCD_S, 1, 0, (0, 0))]
        assert validate_log(log, t, BusPolicy.NO_GROUPS) == 4

    def test_detects_column_to_closed_row(self):
        log = [CommandRecord("RD", 0, 0, 0, (0, 0))]
        with pytest.raises(TimingViolation, match="closed"):
            validate_log(log, self.T, BusPolicy.BANK_GROUPS)

    def test_detects_double_activation(self):
        log = [self.act(0), self.act(self.T.tRC, row=2)]
        with pytest.raises(TimingViolation, match="open slot"):
            validate_log(log, self.T, BusPolicy.BANK_GROUPS)

    def test_detects_ttcw_violation(self):
        t = ddr4_timings(2.4e9).with_ddb_windows()
        log = [self.act(0, bank=0)]
        base = t.tRCD
        for i, bank in enumerate((0, 1, 2)):
            log.append(self.act(t.tRRD * (i + 1), bank=bank,
                                row=1))
        log = [self.act(t.tRRD * i, bank=b)
               for i, b in enumerate((0, 1, 2))]
        start = 3 * t.tRRD + t.tRCD
        for i, bank in enumerate((0, 1, 2)):
            log.append(CommandRecord(
                "RD", start + i * t.tCCD_S, bank, 0, (0, 0)))
        with pytest.raises(TimingViolation, match="tTCW"):
            validate_log(log, t, BusPolicy.DDB)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            validate_log([CommandRecord("NOP", 0, 0, 0, (0, 0))],
                         self.T, BusPolicy.BANK_GROUPS)

    def test_detects_data_bus_overlap_from_shorter_latency_write(self):
        # A write's data burst starts tCWL after the command -- sooner
        # than a preceding read's tCL -- so a WR placed at the minimum
        # command spacing lands its burst inside the read's burst.  The
        # occupancy horizon must be tracked as a running max so this is
        # caught (regression for the `last_data_end = end` rewind).
        t = self.T
        log = [self.act(0, bank=0, bg=0),
               self.act(t.tRRD, bank=4, bg=1),
               CommandRecord("RD", t.tRCD, 0, 0, (0, 0)),
               CommandRecord("WR", t.tRCD + t.tCCD_S, 4, 1, (0, 0))]
        # The write's burst would start inside the read's.
        assert (t.tRCD + t.tCCD_S + t.tCWL) < (t.tRCD + t.tCL
                                               + t.burst_time)
        with pytest.raises(TimingViolation, match="data-bus overlap"):
            validate_log(log, t, BusPolicy.BANK_GROUPS)

    def test_pre_partial_timing_rules_apply(self):
        log = [self.act(0),
               CommandRecord("PRE_PARTIAL", self.T.tRAS - 1, 0, 0,
                             (0, 0))]
        with pytest.raises(TimingViolation, match="tRAS"):
            validate_log(log, self.T, BusPolicy.BANK_GROUPS)

    def test_pre_partial_needs_open_partner_subbank(self):
        # Section VI-A: a partial precharge preserves a raised MWL for
        # the other sub-bank, so with that sub-bank fully closed the
        # record is structurally impossible.
        t = self.T
        log = [self.act(0, slot=(0, 0)),
               CommandRecord("PRE_PARTIAL", t.tRAS, 0, 0, (0, 0))]
        with pytest.raises(TimingViolation, match="other sub-bank"):
            validate_log(log, t, BusPolicy.BANK_GROUPS)

    def test_pre_partial_accepted_with_open_partner(self):
        t = self.T
        log = [self.act(0, slot=(0, 0), row=1),
               self.act(t.tRRD, slot=(1, 0), row=2),
               CommandRecord("PRE_PARTIAL", t.tRAS, 0, 0, (0, 0))]
        assert validate_log(log, t, BusPolicy.BANK_GROUPS) == 3
