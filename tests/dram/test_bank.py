"""Tests for the timed bank FSM across organisations."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.controller.mapping import RowLayout
from repro.core.subbank import ActivationVerdict
from repro.dram.bank import NEVER, Bank, BankGeometry
from repro.dram.timing import ddr4_timings

T = ddr4_timings()


def full_bank():
    return Bank(BankGeometry(subbanks=1, row_bits=17), T)


def vsb_bank(planes=4, ewlr=True, rap=True):
    layout = RowLayout(row_bits=16, plane_count=planes,
                       ewlr_bits=3 if ewlr else 0)
    return Bank(BankGeometry(subbanks=2, row_bits=16), T, layout,
                ewlr=ewlr, rap=rap)


def masa_bank(groups=8, tSA=4000):
    return Bank(BankGeometry(subbanks=1, subarray_groups=groups,
                             row_bits=17, tSA=tSA), T)


class TestGeometry:
    def test_rejects_three_subbanks(self):
        with pytest.raises(ValueError):
            BankGeometry(subbanks=3)

    def test_rejects_non_pow2_groups(self):
        with pytest.raises(ValueError):
            BankGeometry(subarray_groups=3)

    def test_group_of_uses_row_msbs(self):
        g = BankGeometry(subarray_groups=4, row_bits=16)
        assert g.group_of(0) == 0
        assert g.group_of(0b11 << 14) == 3

    def test_single_group_always_zero(self):
        g = BankGeometry(subarray_groups=1, row_bits=16)
        assert g.group_of(0xFFFF) == 0

    def test_ewlr_requires_subbanks(self):
        with pytest.raises(ValueError):
            Bank(BankGeometry(subbanks=1), T, ewlr=True)


class TestFullBankTiming:
    def test_act_then_column_after_trcd(self):
        b = full_bank()
        b.do_activate(0, 5, time=0)
        assert b.earliest_column(0, 5) == T.tRCD

    def test_column_before_trcd_rejected(self):
        b = full_bank()
        b.do_activate(0, 5, time=0)
        with pytest.raises(ValueError):
            b.do_column(0, 5, time=T.tRCD - 1, is_write=False)

    def test_precharge_respects_tras(self):
        b = full_bank()
        b.do_activate(0, 5, time=0)
        assert b.earliest_precharge((0, 0)) == T.tRAS
        with pytest.raises(ValueError):
            b.do_precharge((0, 0), time=T.tRAS - 1)

    def test_act_after_pre_waits_trp(self):
        b = full_bank()
        b.do_activate(0, 5, time=0)
        b.do_precharge((0, 0), time=T.tRAS)
        assert b.earliest_act(0, 7) == T.tRAS + T.tRP

    def test_act_to_act_respects_trc(self):
        b = full_bank()
        b.do_activate(0, 5, time=0)
        slot = b.slot(0, 5)
        assert slot.act_allowed == T.tRC

    def test_read_pushes_pre_by_trtp(self):
        b = full_bank()
        b.do_activate(0, 5, time=0)
        t_rd = T.tRCD + ((T.tRAS) // 2)
        b.do_column(0, 5, time=t_rd, is_write=False)
        assert b.earliest_precharge((0, 0)) == max(T.tRAS, t_rd + T.tRTP)

    def test_write_recovery_delays_precharge(self):
        b = full_bank()
        b.do_activate(0, 5, time=0)
        t_wr = T.tRCD
        b.do_column(0, 5, time=t_wr, is_write=True)
        expected = t_wr + T.tCWL + T.burst_time + T.tWR
        assert b.earliest_precharge((0, 0)) == max(T.tRAS, expected)

    def test_column_to_closed_row_rejected(self):
        b = full_bank()
        b.do_activate(0, 5, time=0)
        with pytest.raises(ValueError):
            b.do_column(0, 6, time=T.tRCD, is_write=False)

    def test_row_conflict_reports_own_slot(self):
        b = full_bank()
        b.do_activate(0, 5, time=0)
        verdict, victim = b.classify(0, 6)
        assert verdict is ActivationVerdict.OWN_ROW_CONFLICT
        assert victim == (0, 0)

    def test_precharge_idle_rejected(self):
        b = full_bank()
        with pytest.raises(ValueError):
            b.do_precharge((0, 0), time=0)


class TestVsbBank:
    def test_two_open_rows(self):
        b = vsb_bank()
        b.do_activate(0, 0x0001, time=0)
        b.do_activate(1, 0x4002, time=T.tRRD)
        assert len(b.open_rows()) == 2

    def test_plane_conflict_names_victim(self):
        b = vsb_bank(ewlr=False, rap=False)
        row_a = 0b01 << 14
        b.do_activate(0, row_a, time=0)
        verdict, victim = b.classify(1, row_a | 1)
        assert verdict is ActivationVerdict.PLANE_CONFLICT
        assert victim == (0, 0)

    def test_ewlr_hit_detected_and_timed(self):
        b = vsb_bank(ewlr=True, rap=False)
        base = 0b01 << 14
        b.do_activate(0, base, time=0)
        near = base | (1 << 11)  # same MWL tag, different LWL_SEL
        verdict, _ = b.classify(1, near)
        assert verdict is ActivationVerdict.EWLR_HIT
        b.do_activate(1, near, time=100)
        assert b.slot(1, near).ready_col == 100 + T.tRCD

    def test_partial_precharge_possible_inside_ewlr(self):
        b = vsb_bank(ewlr=True, rap=False)
        base = 0b01 << 14
        b.do_activate(0, base, time=0)
        b.do_activate(1, base | (1 << 11), time=10)
        assert b.partial_precharge_possible((0, 0))
        assert b.partial_precharge_possible((1, 0))

    def test_partial_precharge_not_possible_apart(self):
        b = vsb_bank(ewlr=True, rap=False)
        b.do_activate(0, 0b01 << 14, time=0)
        b.do_activate(1, 0b10 << 14, time=10)
        assert not b.partial_precharge_possible((0, 0))

    def test_subbank_timing_independent(self):
        b = vsb_bank()
        b.do_activate(0, 0x0001, time=0)
        # Sub-bank 1 is untouched: it may activate immediately.
        assert b.earliest_act(1, 0x8000) == 0


class TestMasaBank:
    def test_multiple_groups_hold_rows(self):
        b = masa_bank(groups=4)
        quarter = 1 << 15  # row_bits=17, 4 groups
        b.do_activate(0, 0, time=0)
        b.do_activate(0, quarter, time=T.tRRD)
        assert len(b.open_rows()) == 2

    def test_same_group_conflict(self):
        b = masa_bank(groups=4)
        b.do_activate(0, 0, time=0)
        verdict, victim = b.classify(0, 1)
        assert verdict is ActivationVerdict.OWN_ROW_CONFLICT
        assert victim == (0, 0)

    def test_tsa_penalty_on_group_switch(self):
        b = masa_bank(groups=4, tSA=4000)
        quarter = 1 << 15
        b.do_activate(0, 0, time=0)
        b.do_activate(0, quarter, time=T.tRRD)
        b.do_column(0, 0, time=T.tRCD, is_write=False)
        # Next column to the *other* group pays tSA on top of its tRCD.
        base_ready = b.slots[(0, 1)].ready_col
        assert b.earliest_column(0, quarter) == base_ready + 4000

    def test_no_tsa_penalty_same_group(self):
        b = masa_bank(groups=4, tSA=4000)
        b.do_activate(0, 0, time=0)
        b.do_column(0, 0, time=T.tRCD, is_write=False)
        assert b.earliest_column(0, 0) == b.slots[(0, 0)].ready_col

    def test_precharge_clears_tsa_anchor(self):
        b = masa_bank(groups=4, tSA=4000)
        b.do_activate(0, 0, time=0)
        b.do_column(0, 0, time=T.tRCD, is_write=False)
        b.do_precharge((0, 0), time=max(T.tRAS, T.tRCD + T.tRTP))
        quarter = 1 << 15
        b.do_activate(0, quarter, time=T.tRC)
        assert b.earliest_column(0, quarter) == b.slots[(0, 1)].ready_col


class TestMasaEruca:
    """MASA groups combined with VSB sub-banks (Fig. 15's MASA8+ERUCA)."""

    def make(self):
        layout = RowLayout(row_bits=16, plane_count=4, ewlr_bits=3)
        geo = BankGeometry(subbanks=2, subarray_groups=8, row_bits=16,
                           tSA=4000)
        return Bank(geo, T, layout, ewlr=True, rap=True)

    def test_slot_count(self):
        assert len(self.make().slots) == 16

    def test_plane_check_scans_all_other_subbank_groups(self):
        b = self.make()
        # Open a row in sub-bank 1 whose RAP-inverted plane is 1.
        row_r = 0b10 << 14
        b.do_activate(1, row_r, time=0)
        # Sub-bank 0 row in plane 1 with a different MWL: plane conflict.
        row_l = (0b01 << 14) | 1
        verdict, victim = b.classify(0, row_l)
        assert verdict is ActivationVerdict.PLANE_CONFLICT
        assert victim[0] == 1

    def test_tsa_only_within_subbank(self):
        b = self.make()
        b.do_activate(0, 0, time=0)
        b.do_activate(1, 0x8000, time=T.tRRD)
        b.do_column(0, 0, time=T.tRCD, is_write=False)
        # Column to the other *sub-bank* pays no tSA (dedicated GBLs).
        assert (b.earliest_column(1, 0x8000)
                == b.slot(1, 0x8000).ready_col)


@settings(max_examples=150, deadline=None)
@given(
    rows=st.lists(st.integers(0, (1 << 17) - 1), min_size=1, max_size=12),
)
def test_full_bank_never_exceeds_one_open_row(rows):
    """Property: a full bank serialises rows through PRE, one open max."""
    b = full_bank()
    time = 0
    for row in rows:
        verdict, victim = b.classify(0, row)
        if verdict is ActivationVerdict.OWN_ROW_CONFLICT:
            time = max(time, b.earliest_precharge(victim))
            b.do_precharge(victim, time)
        if verdict is not ActivationVerdict.ROW_HIT:
            time = max(time + 1, b.earliest_act(0, row))
            b.do_activate(0, row, time)
        assert len(b.open_rows()) == 1
        assert b.slot(0, row).active_row == row


@settings(max_examples=150, deadline=None)
@given(
    planes=st.sampled_from([2, 4, 8]),
    ewlr=st.booleans(),
    rap=st.booleans(),
    ops=st.lists(
        st.tuples(st.integers(0, 1), st.integers(0, 0xFFFF)),
        min_size=1, max_size=16),
)
def test_vsb_bank_invariants(planes, ewlr, rap, ops):
    """Property: following classify() verdicts never raises, and at no
    point do the two sub-banks hold plane-conflicting rows."""
    layout = RowLayout(row_bits=16, plane_count=planes,
                       ewlr_bits=3 if ewlr else 0)
    b = Bank(BankGeometry(subbanks=2, row_bits=16), T, layout,
             ewlr=ewlr, rap=rap)
    time = 0
    for subbank, row in ops:
        verdict, victim = b.classify(subbank, row)
        while verdict in (ActivationVerdict.OWN_ROW_CONFLICT,
                          ActivationVerdict.PLANE_CONFLICT):
            time = max(time + 1, b.earliest_precharge(victim))
            b.do_precharge(victim, time)
            verdict, victim = b.classify(subbank, row)
        if verdict is not ActivationVerdict.ROW_HIT:
            time = max(time + 1, b.earliest_act(subbank, row))
            b.do_activate(subbank, row, time)
        open_rows = b.open_rows()
        assert b.slot(subbank, row).active_row == row
        if len(open_rows) == 2:
            (r0, r1) = (open_rows[(0, 0)], open_rows[(1, 0)])
            p0 = layout.plane_id(r0, 0, rap)
            p1 = layout.plane_id(r1, 1, rap)
            if p0 == p1:
                if ewlr:
                    assert layout.mwl_tag(r0) == layout.mwl_tag(r1)
                else:
                    assert r0 == r1
