"""Tests for the DRAM command vocabulary."""

from repro.dram.commands import Command, CommandKind, PrechargeCause


class TestCommandKind:
    def test_column_commands(self):
        assert CommandKind.RD.is_column
        assert CommandKind.WR.is_column
        assert not CommandKind.ACT.is_column
        assert not CommandKind.PRE.is_column

    def test_precharge_kinds(self):
        assert CommandKind.PRE.is_precharge
        assert CommandKind.PRE_PARTIAL.is_precharge
        assert not CommandKind.ACT.is_precharge


class TestCommand:
    def test_defaults(self):
        c = Command(CommandKind.ACT, channel=0, rank=0, bank=3, row=0x12)
        assert c.subbank == 0
        assert c.cause is None
        assert c.issue_time == -1

    def test_str_mentions_location(self):
        c = Command(CommandKind.ACT, channel=1, rank=0, bank=5,
                    subbank=1, row=0xAB)
        s = str(c)
        assert "ACT" in s and "bk5" in s and "0xab" in s

    def test_str_for_column(self):
        c = Command(CommandKind.RD, channel=0, rank=0, bank=2)
        assert "RD" in str(c)

    def test_cause_attached_to_precharge(self):
        c = Command(CommandKind.PRE, channel=0, rank=0, bank=0,
                    cause=PrechargeCause.PLANE_CONFLICT)
        assert c.cause is PrechargeCause.PLANE_CONFLICT

    def test_issue_time_not_compared(self):
        a = Command(CommandKind.PRE, channel=0, rank=0, bank=0)
        b = Command(CommandKind.PRE, channel=0, rank=0, bank=0)
        b.issue_time = 999
        assert a == b


def test_cause_values_cover_fig13b():
    # ROW_CONFLICT / PLANE_CONFLICT / POLICY are the Fig. 13b split;
    # REFRESH tags closes forced by a refresh deadline (docs/REFRESH.md).
    names = {c.name for c in PrechargeCause}
    assert names == {"ROW_CONFLICT", "PLANE_CONFLICT", "POLICY", "REFRESH"}
