"""Tests for the pluggable memory-technology backends.

The heart of the refactor's acceptance: the ``dram`` backend's rule
table must resolve *byte-identically* to the hand-written DDR4 model it
replaced (golden digests captured before the refactor, on every preset
and every execution backend), and the new technologies must survive the
same round-trips (frequency scaling, digest stability, the four
execution loops) as DDR4.
"""

import json
import warnings
from dataclasses import replace
from pathlib import Path

import pytest

from repro.core.mechanisms import EruConfig
from repro.dram.backends import (
    MemoryTechBackend,
    backend_names,
    get_backend,
)
from repro.dram.timing import ddr4_timings
from repro.sim import config as cfgs
from repro.sim.simulator import run_traces
from repro.workloads.mixes import mix_traces

GOLDEN_PATH = Path(__file__).parent.parent / "data" / \
    "pre_backend_digests.json"


def _load_golden():
    with open(GOLDEN_PATH) as fh:
        return json.load(fh)


def _golden_configs():
    """The exact config list the pre-refactor capture ran, in order."""
    dram = [c for c in cfgs.all_presets() if c.backend == "dram"]
    variants = []
    for base in (cfgs.ddr4_baseline(), cfgs.vsb(EruConfig.full(4))):
        for density, policy in (("8Gb", "baseline"), ("16Gb", "darp"),
                                ("16Gb", "sarp")):
            with warnings.catch_warnings():
                warnings.simplefilter("ignore")
                variants.append(replace(
                    base, refresh_density=density, refresh_policy=policy,
                    name=f"{base.name}+{density}/{policy}"))
    return dram + [variants[i] for i in (0, 3, 1, 4, 2, 5)]


class TestRegistry:
    def test_ships_three_backends(self):
        assert set(backend_names()) >= {"dram", "pcm_palp", "gddr5"}

    def test_unknown_backend_raises_with_known_list(self):
        with pytest.raises(ValueError, match="dram"):
            get_backend("sram")

    def test_backends_are_frozen_data(self):
        tech = get_backend("dram")
        assert isinstance(tech, MemoryTechBackend)
        with pytest.raises(AttributeError):
            tech.burst_length = 16


class TestDramTableMatchesHandWrittenModel:
    @pytest.mark.parametrize("freq", [1.333e9, 1.6e9, 2.0e9, 2.4e9,
                                      2.5e9, 1.45e9])
    def test_resolved_timings_identical(self, freq):
        assert get_backend("dram").timings(freq) == ddr4_timings(freq)

    def test_refresh_overrides_identical(self):
        from repro.dram.timing import ddr4_refresh_overrides
        tech = get_backend("dram")
        for density in ("4Gb", "8Gb", "16Gb"):
            assert tech.refresh_overrides(density) == \
                ddr4_refresh_overrides(density)


class TestGoldenDigests:
    """The `dram` backend is digest-identical to the pre-refactor
    machine on all 17 presets (plus refresh variants) and all four
    execution backends."""

    def test_all_presets_match_pre_refactor_digests(self):
        golden = _load_golden()
        traces = mix_traces(golden["mix"], golden["accesses"],
                            seed=golden["seed"])
        configs = _golden_configs()
        assert len(configs) == len(golden["digests"]) == 23
        for config, (name, digest) in zip(configs, golden["digests"]):
            assert run_traces(config, traces).digest() == digest, \
                f"{config.name} diverged from pre-refactor {name}"

    @pytest.mark.parametrize("shards,incremental", [
        ("off", False), ("off", True), ("serial", True),
        ("threads", True)])
    def test_execution_backends_match_golden(self, shards, incremental):
        golden = _load_golden()
        traces = mix_traces(golden["mix"], golden["accesses"],
                            seed=golden["seed"])
        # One flat and one sub-banked config per execution backend
        # keeps the matrix fast; the full 23-config sweep runs above.
        for index in (0, 7):
            config = replace(_golden_configs()[index],
                             shards=shards, incremental=incremental)
            assert run_traces(config, traces).digest() == \
                golden["digests"][index][1]


NEW_TECH_PRESETS = [c for c in cfgs.all_presets() if c.backend != "dram"]


class TestNewTechnologyRoundTrips:
    @pytest.mark.parametrize("config", NEW_TECH_PRESETS,
                             ids=[c.name for c in NEW_TECH_PRESETS])
    def test_at_frequency_round_trip(self, config):
        scaled = config.at_frequency(1.6e9)
        assert scaled.backend == config.backend
        assert scaled.timing().tCK == 625
        # Back at the native frequency the timings are reproduced.
        back = scaled.at_frequency(config.bus_frequency_hz)
        assert back.timing() == config.timing()

    @pytest.mark.parametrize("config", NEW_TECH_PRESETS,
                             ids=[c.name for c in NEW_TECH_PRESETS])
    def test_digest_serialization(self, config):
        digest = config.digest()
        assert digest == config.digest()  # stable
        assert digest == replace(config, name="renamed").digest()
        assert digest == replace(config, record_commands=True,
                                 shards="serial").digest()
        assert digest != config.at_frequency(1.6e9).digest()
        assert digest != cfgs.ddr4_baseline().digest()

    @pytest.mark.parametrize("config", NEW_TECH_PRESETS,
                             ids=[c.name for c in NEW_TECH_PRESETS])
    def test_four_execution_loops_identical(self, config):
        traces = mix_traces("mix0", 200, seed=11)
        digests = set()
        for shards, incremental in (("off", False), ("off", True),
                                    ("serial", True), ("threads", True)):
            run = replace(config, shards=shards, incremental=incremental)
            digests.add(run_traces(run, traces).digest())
        assert len(digests) == 1


class TestBackendSemantics:
    def test_pcm_has_no_refresh(self):
        tech = get_backend("pcm_palp")
        assert not tech.refresh_capable
        with pytest.raises(ValueError, match="refresh"):
            tech.refresh_overrides("8Gb")
        with pytest.raises(ValueError, match="refresh"):
            replace(cfgs.pcm_palp(), refresh_density="8Gb")
        with pytest.raises(ValueError, match="refresh"):
            replace(cfgs.pcm_palp(), refresh_ns=350.0)

    def test_pcm_asymmetric_trcd(self):
        t = cfgs.pcm_palp().timing()
        assert t.tRCD == 48_000
        assert t.trcd_wr == 12_000
        assert t.write_pulse_enabled and t.tWRP == 150_000
        assert t.tWCT == 7_500 >= t.tWR

    def test_gddr5_refresh_grade(self):
        tech = get_backend("gddr5")
        assert tech.refresh_capable
        assert tech.refresh_overrides("8Gb") == {
            "tRFC": 110_000, "tREFI": 1_900_000, "tRFCpb": 60_000}
        with pytest.raises(ValueError, match="16Gb"):
            replace(cfgs.gddr5(), refresh_density="16Gb")

    def test_gddr5_native_timings(self):
        t = cfgs.gddr5().timing()
        assert t.tCK == 400
        assert t.tCL == 15_000
        assert t.tCCD_S == 1_600

    def test_dram_presets_have_no_pcm_state(self):
        t = cfgs.ddr4_baseline().timing()
        assert t.tRCD_WR == 0 and t.trcd_wr == t.tRCD
        assert not t.write_pulse_enabled
