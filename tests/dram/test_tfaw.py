"""The rolling four-activate window (tFAW), tracker through scheduler.

Unit tests pin the :class:`ChannelResources` window mechanics; the
system-level tests prove the scheduler respects the window under
traffic (via the independent rule checker) and that a zero ``tFAW``
reproduces the pre-tFAW activate model bit-for-bit.
"""

import random
from dataclasses import replace

from repro.cpu.trace import Trace, TraceEntry
from repro.dram.resources import (
    FLOOR_BUS,
    FLOOR_TFAW,
    FLOOR_TRRD,
    BusPolicy,
    ChannelResources,
)
from repro.dram.timing import ddr4_timings
from repro.dram.validation import validate_log
from repro.sim import config as cfgs
from repro.sim.simulator import MemorySystem, Simulator, run_traces
from repro.cpu.core import TraceCore

T = ddr4_timings()


def make(timing=T):
    return ChannelResources(timing, BusPolicy.BANK_GROUPS,
                            bank_groups=4, banks=16)


def act_heavy_traffic(cores=4, n=250, seed=7):
    """All-random addresses: nearly every access opens a new row."""
    rng = random.Random(seed)
    traces = []
    for c in range(cores):
        entries = [TraceEntry(rng.randrange(0, 8),
                              rng.random() < 0.3,
                              rng.randrange(0, 1 << 34) & ~63)
                   for _ in range(n)]
        traces.append(Trace.from_entries(entries, name=f"c{c}"))
    return traces


class TestWindowTracker:
    def test_four_acts_are_unconstrained_by_tfaw(self):
        r = make()
        for i in range(4):
            assert r.earliest_act() == i * T.tRRD
            r.record_act(i * T.tRRD)

    def test_fifth_act_waits_for_the_window(self):
        r = make()
        for i in range(4):
            r.record_act(i * T.tRRD)
        # tRRD alone would allow 4 * tRRD; the window pushes further.
        assert 4 * T.tRRD < T.tFAW
        assert r.earliest_act() == T.tFAW

    def test_window_rolls_forward(self):
        r = make()
        for i in range(4):
            r.record_act(i * T.tRRD)
        r.record_act(T.tFAW)  # the fifth, at the earliest legal time
        # The sixth waits on the *second* ACT leaving the window.
        assert r.earliest_act() == T.tRRD + T.tFAW

    def test_zero_tfaw_disables_the_floor(self):
        r = make(T.replace(tFAW=0))
        for i in range(8):
            assert r.earliest_act() == i * T.tRRD
            r.record_act(i * T.tRRD)

    def test_act_floors_carry_the_tfaw_tag(self):
        r = make()
        for i in range(4):
            r.record_act(i * T.tRRD)
        floors = dict(r.act_floors())
        assert set(floors) == {FLOOR_BUS, FLOOR_TRRD, FLOOR_TFAW}
        assert floors[FLOOR_TFAW] == T.tFAW
        assert max(t for _, t in r.act_floors()) == r.earliest_act()

    def test_no_tfaw_tag_when_disabled(self):
        r = make(T.replace(tFAW=0))
        r.record_act(0)
        assert FLOOR_TFAW not in dict(r.act_floors())

    def test_floors_match_earliest_under_random_acts(self):
        rng = random.Random(3)
        r = make()
        now = 0
        for _ in range(200):
            earliest = r.earliest_act()
            assert max(t for _, t in r.act_floors()) == earliest
            now = max(now, earliest) + rng.randrange(0, 3 * T.tRRD)
            r.record_act(now)


class TestSchedulerRespectsTfaw:
    def test_validator_accepts_scheduled_acts_under_tight_tfaw(self):
        """Even a punishing 60 ns window never produces a violation."""
        config = replace(cfgs.ddr4_baseline(), tfaw_ns=60,
                         record_commands=True)
        system = MemorySystem(config)
        cores = [TraceCore(t, core_id=i)
                 for i, t in enumerate(act_heavy_traffic())]
        Simulator(system, cores).run()
        timing = config.timing()
        for controller in system.controllers:
            log = controller.channel.command_log
            assert sum(1 for rec in log if rec.kind == "ACT") > 100
            validate_log(log, timing, config.bus_policy)

    def test_tfaw_binds_on_act_heavy_traffic(self):
        """The window must actually change behaviour, not just exist."""
        traces = act_heavy_traffic()
        with_faw = run_traces(cfgs.ddr4_baseline(), traces)
        without = run_traces(replace(cfgs.ddr4_baseline(), tfaw_ns=0),
                             traces)
        assert with_faw.digest() != without.digest()
        assert with_faw.elapsed_ps > without.elapsed_ps

    def test_zero_tfaw_reproduces_the_legacy_act_model(self, monkeypatch):
        """tfaw_ns=0 is digest-identical to the pre-tFAW formulas."""
        config = replace(cfgs.vsb(), tfaw_ns=0)
        traces = act_heavy_traffic(cores=2, n=150)
        current = run_traces(config, traces).digest()

        def legacy_earliest_act(self):
            return max(self.cmd_bus_free,
                       self._last_act + self.timing.tRRD)

        def legacy_act_floors(self):
            return [(FLOOR_BUS, self.cmd_bus_free),
                    (FLOOR_TRRD, self._last_act + self.timing.tRRD)]

        monkeypatch.setattr(ChannelResources, "earliest_act",
                            legacy_earliest_act)
        monkeypatch.setattr(ChannelResources, "act_floors",
                            legacy_act_floors)
        legacy = run_traces(config, traces).digest()
        assert current == legacy
