"""Tests for the Channel device model and energy accounting."""

import pytest

from repro.controller.mapping import RowLayout
from repro.controller.transaction import DramCoordinates
from repro.core.subbank import ActivationVerdict
from repro.dram.bank import BankGeometry
from repro.dram.commands import PrechargeCause
from repro.dram.device import Channel
from repro.dram.power import EnergyMeter, EnergyParams
from repro.dram.resources import BusPolicy
from repro.dram.timing import ddr4_timings

T = ddr4_timings()


def flat_channel():
    return Channel(T, BusPolicy.BANK_GROUPS, bank_groups=4,
                   banks_per_group=4,
                   bank_geometry=BankGeometry(subbanks=1, row_bits=17))


def vsb_channel(ewlr=True, rap=True, planes=4, ddb=True):
    layout = RowLayout(row_bits=16, plane_count=planes,
                       ewlr_bits=3 if ewlr else 0)
    return Channel(T, BusPolicy.DDB if ddb else BusPolicy.BANK_GROUPS,
                   bank_groups=4, banks_per_group=4,
                   bank_geometry=BankGeometry(subbanks=2, row_bits=16),
                   row_layout=layout, ewlr=ewlr, rap=rap)


def coords(bg=0, bank=0, subbank=0, row=0, column=0):
    return DramCoordinates(channel=0, rank=0, bank_group=bg, bank=bank,
                           subbank=subbank, row=row, column=column)


class TestBankIndexing:
    def test_bank_index_flattens_groups(self):
        ch = flat_channel()
        assert ch.bank_index(coords(bg=2, bank=3)) == 11
        assert len(ch.banks) == 16

    def test_distinct_banks_are_distinct_objects(self):
        ch = flat_channel()
        assert ch.bank(coords(bg=0, bank=0)) is not ch.bank(
            coords(bg=0, bank=1))


class TestReadFlow:
    def test_act_then_read_completes(self):
        ch = flat_channel()
        c = coords(row=7)
        t_act = ch.earliest_act(c)
        ch.issue_act(c, t_act)
        t_rd = ch.earliest_column(c, is_write=False)
        assert t_rd >= t_act + T.tRCD
        data_end = ch.issue_column(c, t_rd, is_write=False)
        assert data_end == t_rd + T.tCL + T.burst_time

    def test_open_row_visible(self):
        ch = flat_channel()
        c = coords(row=7)
        ch.issue_act(c, 0)
        assert ch.open_row(c) == 7

    def test_energy_counters(self):
        ch = flat_channel()
        c = coords(row=7)
        ch.issue_act(c, 0)
        ch.issue_column(c, T.tRCD, is_write=False)
        assert ch.energy.activations == 1
        assert ch.energy.reads == 1

    def test_precharge_cause_tracked(self):
        ch = flat_channel()
        c = coords(row=7)
        ch.issue_act(c, 0)
        ch.issue_precharge(ch.bank_index(c), (0, 0), T.tRAS,
                           PrechargeCause.ROW_CONFLICT)
        assert ch.precharge_causes[PrechargeCause.ROW_CONFLICT] == 1
        assert ch.energy.precharges == 1


class TestEwlrOnChannel:
    def test_ewlr_hit_counted(self):
        ch = vsb_channel(ewlr=True, rap=False)
        base = 0b01 << 14
        ch.issue_act(coords(subbank=0, row=base), 0)
        near = base | (1 << 11)
        hit = ch.issue_act(coords(subbank=1, row=near), T.tRRD)
        assert hit
        assert ch.energy.ewlr_hit_activations == 1

    def test_partial_precharge_flag(self):
        ch = vsb_channel(ewlr=True, rap=False)
        base = 0b01 << 14
        ch.issue_act(coords(subbank=0, row=base), 0)
        ch.issue_act(coords(subbank=1, row=base | (1 << 11)), T.tRRD)
        partial = ch.issue_precharge(0, (0, 0), T.tRAS + T.tRRD,
                                     PrechargeCause.PLANE_CONFLICT)
        assert partial
        assert ch.energy.partial_precharges == 1


class TestSubbankParallelismOnChannel:
    def test_two_subbanks_both_open(self):
        ch = vsb_channel()
        ch.issue_act(coords(subbank=0, row=0x0010), 0)
        ch.issue_act(coords(subbank=1, row=0x8020), T.tRRD)
        assert ch.open_row(coords(subbank=0, row=0x0010)) == 0x0010
        assert ch.open_row(coords(subbank=1, row=0x8020)) == 0x8020

    def test_classify_exposed(self):
        ch = vsb_channel(ewlr=False, rap=False)
        row = 0b01 << 14
        ch.issue_act(coords(subbank=0, row=row), 0)
        verdict, victim = ch.classify(coords(subbank=1, row=row | 1))
        assert verdict is ActivationVerdict.PLANE_CONFLICT
        assert victim == (0, 0)


class TestEnergyMeter:
    def test_ewlr_hit_saves_energy(self):
        p = EnergyParams()
        full = EnergyMeter(p)
        full.record_act(ewlr_hit=False)
        hit = EnergyMeter(p)
        hit.record_act(ewlr_hit=True)
        assert hit.activation_energy_nj() < full.activation_energy_nj()
        saved = full.activation_energy_nj() - hit.activation_energy_nj()
        assert saved == pytest.approx(p.ewlr_hit_saving_nj)

    def test_ewlr_saving_is_18_percent_of_vpp(self):
        p = EnergyParams()
        assert p.ewlr_hit_saving_nj == pytest.approx(
            p.act_nj * p.vpp_fraction * 0.18)

    def test_background_scales_with_time(self):
        m = EnergyMeter(EnergyParams(background_w=1.0))
        one_us = 1_000_000
        assert m.background_energy_nj(one_us) == pytest.approx(1000.0)

    def test_total_combines_components(self):
        m = EnergyMeter()
        m.record_act()
        m.record_read()
        m.record_precharge()
        t = 1_000_000
        assert m.total_energy_nj(t) == pytest.approx(
            m.activation_energy_nj() + m.access_energy_nj()
            + m.background_energy_nj(t))

    def test_half_dram_activation_scale(self):
        half = EnergyMeter(EnergyParams(act_scale=0.5))
        full = EnergyMeter(EnergyParams())
        half.record_act()
        full.record_act()
        assert half.activation_energy_nj() < full.activation_energy_nj()

    def test_merge_accumulates(self):
        a = EnergyMeter()
        b = EnergyMeter()
        a.record_act()
        b.record_act(ewlr_hit=True)
        b.record_write()
        a.merge(b)
        assert a.activations == 2
        assert a.ewlr_hit_activations == 1
        assert a.writes == 1
