"""Tests for the PCM-PALP write-pulse model (bank FSM + validator).

The PALP mechanics under test: asymmetric read/write tRCD, the
self-timed programming pulse that walls off a partition after a write,
write cancellation by a PRE once ``tWCT`` has elapsed, and the replay
gate that keeps columns out until the cancelled write has been
re-programmed -- across intervening row swaps (the hole the
differential fuzzer found).
"""

import pytest

from repro.dram.bank import NEVER, Bank, BankGeometry
from repro.dram.backends import get_backend
from repro.dram.timing import TimingParams, clock_period_ps, ns
from repro.dram.validation import (
    CommandRecord,
    TimingViolation,
    validate_log,
)
from repro.dram.resources import BusPolicy

PCM = get_backend("pcm_palp").timings()


def pcm_bank():
    return Bank(BankGeometry(subbanks=1, row_bits=17), PCM)


def _write(bank, row, time):
    bank.do_column(0, row, time, is_write=True)
    return time + PCM.tCWL + PCM.burst_time  # the burst's data end


class TestAsymmetricTrcd:
    def test_write_path_opens_before_read_path(self):
        b = pcm_bank()
        b.do_activate(0, 5, time=0)
        assert b.earliest_column(0, 5, is_write=True) == PCM.trcd_wr
        assert b.earliest_column(0, 5, is_write=False) == PCM.tRCD
        assert PCM.trcd_wr < PCM.tRCD

    def test_early_read_rejected_early_write_accepted(self):
        b = pcm_bank()
        b.do_activate(0, 5, time=0)
        with pytest.raises(ValueError):
            b.do_column(0, 5, PCM.trcd_wr, is_write=False)
        b.do_column(0, 5, PCM.trcd_wr, is_write=True)


class TestWritePulse:
    def test_pulse_blocks_columns_until_twrp(self):
        b = pcm_bank()
        b.do_activate(0, 5, time=0)
        end = _write(b, 5, PCM.trcd_wr)
        pulse_end = end + PCM.tWRP
        assert b.earliest_column(0, 5, is_write=False) == pulse_end
        assert b.earliest_column(0, 5, is_write=True) == pulse_end
        with pytest.raises(ValueError):
            b.do_column(0, 5, pulse_end - 1, is_write=False)
        b.do_column(0, 5, pulse_end, is_write=False)

    def test_plain_precharge_waits_out_the_pulse(self):
        b = pcm_bank()
        b.do_activate(0, 5, time=0)
        end = _write(b, 5, PCM.trcd_wr)
        key = b.slot_key(0, 5)
        assert b.earliest_precharge(key) == end + PCM.tWRP

    def test_cancel_floor_is_twct(self):
        b = pcm_bank()
        b.do_activate(0, 5, time=0)
        # Write late enough that end + tWCT lands past the tRAS floor,
        # so the cancellation floor is what binds.
        end = _write(b, 5, PCM.tRAS)
        key = b.slot_key(0, 5)
        assert end + PCM.tWCT > PCM.tRAS
        assert b.earliest_precharge(key, cancel=True) == end + PCM.tWCT

    def test_cancel_floor_respects_tras(self):
        b = pcm_bank()
        b.do_activate(0, 5, time=0)
        end = _write(b, 5, PCM.trcd_wr)
        key = b.slot_key(0, 5)
        # The early write's cancel window opens before tRAS does, so
        # the row-activation floor binds instead.
        assert end + PCM.tWCT < PCM.tRAS
        assert b.earliest_precharge(key, cancel=True) == PCM.tRAS

    def test_cancellation_sets_replay_and_counts(self):
        b = pcm_bank()
        b.do_activate(0, 5, time=0)
        end = _write(b, 5, PCM.trcd_wr)
        key = b.slot_key(0, 5)
        t_cancel = b.earliest_precharge(key, cancel=True)
        assert b.do_precharge(key, t_cancel) is True
        # Reactivate: columns gated by the replayed write's pulse.
        t_act = t_cancel + PCM.tRP
        b.do_activate(0, 5, t_act)
        assert b.earliest_column(0, 5) == t_cancel + PCM.tWRP

    def test_cancel_too_early_rejected(self):
        b = pcm_bank()
        b.do_activate(0, 5, time=0)
        end = _write(b, 5, PCM.trcd_wr)
        key = b.slot_key(0, 5)
        with pytest.raises(ValueError, match="cancel"):
            b.do_precharge(key, end + PCM.tWCT - 1)

    def test_replay_gate_survives_row_swaps(self):
        """The fuzzer's finding: closing and re-opening *another* row
        during the replay window must not drop the replay wall."""
        b = pcm_bank()
        b.do_activate(0, 5, time=0)
        _write(b, 5, PCM.trcd_wr)
        key = b.slot_key(0, 5)
        t_cancel = b.earliest_precharge(key, cancel=True)
        b.do_precharge(key, t_cancel)
        replay = t_cancel + PCM.tWRP
        # Swap to another row and back, all inside the replay window.
        t1 = t_cancel + PCM.tRP
        b.do_activate(0, 9, t1)
        t2 = max(b.earliest_precharge(b.slot_key(0, 9)), t1 + PCM.tRAS)
        assert t2 < replay
        b.do_precharge(b.slot_key(0, 9), t2)
        t3 = t2 + PCM.tRP
        b.do_activate(0, 5, t3)
        assert b.earliest_column(0, 5, is_write=True) >= replay
        with pytest.raises(ValueError):
            b.do_column(0, 5, replay - 1, is_write=True)

    def test_uncancellable_pulse_rejects_pre(self):
        t = PCM.replace(tWCT=0)
        b = Bank(BankGeometry(subbanks=1, row_bits=17), t)
        b.do_activate(0, 5, time=0)
        b.do_column(0, 5, t.trcd_wr, is_write=True)
        key = b.slot_key(0, 5)
        end = t.trcd_wr + t.tCWL + t.burst_time
        assert b.earliest_precharge(key, cancel=True) == end + t.tWRP
        with pytest.raises(ValueError, match="no cancellation"):
            b.do_precharge(key, end + t.tWRP - 1)

    def test_dram_timings_never_create_pulse_state(self):
        from repro.dram.timing import ddr4_timings
        b = Bank(BankGeometry(subbanks=1, row_bits=17), ddr4_timings())
        b.do_activate(0, 5, time=0)
        b.do_column(0, 5, ddr4_timings().tRCD, is_write=True)
        slot = b.slots[b.slot_key(0, 5)]
        assert slot.wr_pulse_end == NEVER
        assert slot.ready_col == slot.ready_col_wr


class TestTimingParamValidation:
    def test_twct_requires_pulse(self):
        with pytest.raises(ValueError, match="tWRP"):
            PCM.replace(tWRP=0)

    def test_twct_must_fall_inside_pulse(self):
        with pytest.raises(ValueError, match="inside"):
            PCM.replace(tWCT=PCM.tWRP + 1)

    def test_twct_must_cover_write_recovery(self):
        with pytest.raises(ValueError, match="tWR"):
            PCM.replace(tWCT=PCM.tWR - 1)


def _rec(kind, time, slot=(0, 0), row=5):
    return CommandRecord(kind=kind, time=time, bank=0, bank_group=0,
                         slot=slot, row=row if kind == "ACT" else -1)


class TestValidatorPcmRules:
    def _legal_prefix(self):
        # Write at tRAS so the cancel window (end + tWCT) opens past
        # every DRAM-side PRE floor (tRAS, tWR).
        t_wr = PCM.tRAS
        end = t_wr + PCM.tCWL + PCM.burst_time
        return [_rec("ACT", 0), _rec("WR", t_wr)], end

    def test_accepts_wait_out_pulse(self):
        log, end = self._legal_prefix()
        log.append(_rec("PRE", end + PCM.tWRP))
        assert validate_log(log, PCM, BusPolicy.BANK_GROUPS) == 3

    def test_accepts_legal_cancellation_with_replay(self):
        log, end = self._legal_prefix()
        cancel = end + PCM.tWCT
        log += [_rec("PRE", cancel), _rec("ACT", cancel + PCM.tRP),
                _rec("RD", cancel + PCM.tWRP)]
        assert validate_log(log, PCM, BusPolicy.BANK_GROUPS) == 5

    def test_rejects_column_inside_pulse(self):
        log, end = self._legal_prefix()
        log.append(_rec("RD", end + PCM.tWRP - 1))
        with pytest.raises(TimingViolation, match="write pulse"):
            validate_log(log, PCM, BusPolicy.BANK_GROUPS)

    def test_rejects_early_cancellation(self):
        log, end = self._legal_prefix()
        log.append(_rec("PRE", end + PCM.tWCT - PCM.tCK))
        with pytest.raises(TimingViolation, match="tWCT"):
            validate_log(log, PCM, BusPolicy.BANK_GROUPS)

    def test_rejects_column_before_replay_across_row_swap(self):
        log, end = self._legal_prefix()
        cancel = end + PCM.tWCT
        replay = cancel + PCM.tWRP
        t_act = cancel + PCM.tRP
        t_pre2 = t_act + PCM.tRAS
        log += [_rec("PRE", cancel), _rec("ACT", t_act, row=9),
                _rec("PRE", t_pre2), _rec("ACT", t_pre2 + PCM.tRP),
                _rec("WR", replay - PCM.tCK)]
        with pytest.raises(TimingViolation, match="replay"):
            validate_log(log, PCM, BusPolicy.BANK_GROUPS)

    def test_rejects_write_before_trcd_wr(self):
        log = [_rec("ACT", 0), _rec("WR", PCM.trcd_wr - PCM.tCK)]
        with pytest.raises(TimingViolation, match="tRCD_WR"):
            validate_log(log, PCM, BusPolicy.BANK_GROUPS)

    def test_rejects_pulse_pre_without_cancellation_support(self):
        t = PCM.replace(tWCT=0)
        t_wr = t.tRAS
        end = t_wr + t.tCWL + t.burst_time
        log = [_rec("ACT", 0), _rec("WR", t_wr),
               _rec("PRE", end + t.tWRP - t.tCK)]
        with pytest.raises(TimingViolation, match="no cancellation"):
            validate_log(log, t, BusPolicy.BANK_GROUPS)
