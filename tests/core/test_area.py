"""Tests for the Fig. 11 area-overhead model."""

import pytest

from repro.core.area import (
    DIE_AREA_MM2,
    HALF_DRAM_OVERHEAD_PCT,
    MASA_OVERHEAD_PCT,
    ddb_overhead_pct,
    eruca_overhead_pct,
    fig11_table,
    latch_bits,
    latch_set_area_um2,
    paired_bank_overhead_pct,
    vsb_latch_overhead_pct,
)
from repro.core.mechanisms import EruConfig


class TestComponents:
    def test_latch_bits_baseline(self):
        assert latch_bits(2, ewlr=False) == 40
        assert latch_bits(2, ewlr=True) == 48

    def test_latch_bits_shrink_with_planes(self):
        assert latch_bits(4, ewlr=False) == 39
        assert latch_bits(16, ewlr=False) == 37

    def test_latch_set_area_matches_synthesis(self):
        assert latch_set_area_um2(2, ewlr=False) == pytest.approx(203.0)
        assert latch_set_area_um2(2, ewlr=True) == pytest.approx(244.0)

    def test_latch_overhead_tiny(self):
        assert vsb_latch_overhead_pct(2, ewlr=False) < 0.01

    def test_ddb_is_half_a_permille(self):
        """Paper: DDB incurs 0.05% area overhead."""
        assert ddb_overhead_pct() == pytest.approx(0.05, abs=0.005)

    def test_ddb_dominated_by_wires(self):
        # Paper: 85% of the DDB overhead is the bus selection wires.
        from repro.core.area import (
            DDB_BUS_WIRES, DDB_WIRE_GROWTH_UM, DIE_HEIGHT_MM, _pct)
        wires = _pct(DDB_BUS_WIRES * DDB_WIRE_GROWTH_UM
                     * DIE_HEIGHT_MM * 1e3)
        assert wires / ddb_overhead_pct() > 0.8


class TestPaperPoints:
    """The calibration points quoted in Section VI-C."""

    def test_rap_2_planes(self):
        cfg = EruConfig(planes=2, ewlr=False, rap=True, ddb=False)
        assert eruca_overhead_pct(cfg) == pytest.approx(0.06, abs=0.01)

    def test_ewlr_increment_is_6_hundredths(self):
        rap = EruConfig(planes=2, ewlr=False, rap=True, ddb=False)
        both = EruConfig(planes=2, ewlr=True, rap=True, ddb=False)
        delta = eruca_overhead_pct(both) - eruca_overhead_pct(rap)
        assert delta == pytest.approx(0.06, abs=0.015)

    def test_full_eruca_4_planes_below_0_3(self):
        """Paper: up to 4 planes the area overhead is less than 0.3%."""
        assert eruca_overhead_pct(EruConfig.full(4)) < 0.3

    def test_full_eruca_16_planes(self):
        assert eruca_overhead_pct(EruConfig.full(16)) == pytest.approx(
            0.36, abs=0.03)

    def test_overhead_monotone_in_planes(self):
        values = [eruca_overhead_pct(EruConfig.full(n))
                  for n in (2, 4, 8, 16)]
        assert values == sorted(values)

    def test_eruca_five_times_cheaper_than_half_dram(self):
        """Paper: five times lower overhead than the cheapest prior
        sub-banking (Half-DRAM at 1.46%)."""
        full = eruca_overhead_pct(EruConfig.full(4))
        assert HALF_DRAM_OVERHEAD_PCT / full > 5.0

    def test_masa_overheads(self):
        assert MASA_OVERHEAD_PCT[4] == 3.03
        assert MASA_OVERHEAD_PCT[8] == 4.76

    def test_paired_bank_saves_area(self):
        assert paired_bank_overhead_pct(EruConfig.full(4)) < 0


class TestFig11Table:
    def test_four_series_and_prior_work(self):
        rows = fig11_table()
        schemes = {r.scheme for r in rows}
        assert {"RAP", "EWLR+RAP", "DDB+RAP", "DDB+EWLR+RAP",
                "Half-DRAM", "MASA4", "MASA8"} <= schemes

    def test_series_ordering(self):
        rows = {(r.scheme, r.planes): r.overhead_pct
                for r in fig11_table()}
        for planes in (2, 4, 8, 16):
            assert rows[("RAP", planes)] < rows[("EWLR+RAP", planes)]
            assert (rows[("EWLR+RAP", planes)]
                    < rows[("DDB+EWLR+RAP", planes)])

    def test_all_eruca_rows_far_below_masa(self):
        rows = fig11_table()
        eruca_max = max(r.overhead_pct for r in rows
                        if "RAP" in r.scheme and "Paired" not in r.scheme)
        assert eruca_max < MASA_OVERHEAD_PCT[4] / 5

    def test_die_area_constant(self):
        assert DIE_AREA_MM2 == pytest.approx(8.98 * 13.47, rel=0.01)
