"""Differential testing: the pure reference rules vs the timed bank.

``repro.core.subbank.SubbankPairState`` is the executable specification
of the VSB plane-latch rules; ``repro.dram.bank.Bank`` reimplements them
inside the timed FSM (with cached plane/MWL fields).  They must agree on
every verdict for every mechanism combination.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.controller.mapping import PlanePlacement, RowLayout
from repro.core.subbank import ActivationVerdict, SubbankPairState
from repro.dram.bank import Bank, BankGeometry
from repro.dram.timing import ddr4_timings

T = ddr4_timings()


def build_pair(layout, ewlr, rap):
    return SubbankPairState(layout, ewlr_enabled=ewlr, rap_enabled=rap)


def build_bank(layout, ewlr, rap):
    return Bank(BankGeometry(subbanks=2, row_bits=layout.row_bits), T,
                layout, ewlr=ewlr, rap=rap)


@settings(max_examples=400, deadline=None)
@given(
    planes=st.sampled_from([1, 2, 4, 8, 16]),
    placement=st.sampled_from(list(PlanePlacement)),
    ewlr=st.booleans(),
    rap=st.booleans(),
    ops=st.lists(st.tuples(st.integers(0, 1), st.integers(0, 0xFFFF)),
                 min_size=1, max_size=12),
)
def test_bank_and_reference_agree_on_every_verdict(
        planes, placement, ewlr, rap, ops):
    layout = RowLayout(row_bits=16, plane_count=planes,
                       plane_placement=placement,
                       ewlr_bits=3 if ewlr else 0)
    pair = build_pair(layout, ewlr, rap)
    bank = build_bank(layout, ewlr, rap)
    time = 0
    for subbank, row in ops:
        ref = pair.classify(subbank, row)
        got, victim = bank.classify(subbank, row)
        assert got is ref, (subbank, row, ref, got)
        # Apply the op to both models, resolving conflicts identically.
        while got in (ActivationVerdict.OWN_ROW_CONFLICT,
                      ActivationVerdict.PLANE_CONFLICT):
            victim_subbank = victim[0]
            pair.precharge(victim_subbank)
            time = max(time + 1, bank.earliest_precharge(victim))
            bank.do_precharge(victim, time)
            ref = pair.classify(subbank, row)
            got, victim = bank.classify(subbank, row)
            assert got is ref
        if got is not ActivationVerdict.ROW_HIT:
            pair.activate(subbank, row)
            time = max(time + 1, bank.earliest_act(subbank, row))
            bank.do_activate(subbank, row, time)
        assert pair.open_row(subbank) == row
        assert bank.slot(subbank, row).active_row == row


@settings(max_examples=300, deadline=None)
@given(
    planes=st.sampled_from([2, 4, 8]),
    ewlr=st.booleans(),
    rap=st.booleans(),
    open_row=st.integers(0, 0xFFFF),
    target=st.integers(0, 0xFFFF),
)
def test_partial_precharge_agreement(planes, ewlr, rap, open_row,
                                     target):
    layout = RowLayout(row_bits=16, plane_count=planes,
                       ewlr_bits=3 if ewlr else 0)
    pair = build_pair(layout, ewlr, rap)
    bank = build_bank(layout, ewlr, rap)
    pair.activate(0, open_row)
    bank.do_activate(0, open_row, 0)
    verdict = pair.classify(1, target)
    if verdict not in (ActivationVerdict.ACT_OK,
                       ActivationVerdict.EWLR_HIT):
        return
    pair.activate(1, target)
    bank.do_activate(1, target, T.tRRD)
    assert (pair.partial_precharge_possible(0)
            == bank.partial_precharge_possible((0, 0)))
    assert (pair.partial_precharge_possible(1)
            == bank.partial_precharge_possible((1, 0)))
