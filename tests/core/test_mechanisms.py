"""Tests for EruConfig and the RAP/EWLR helper modules."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.controller.mapping import PlanePlacement, RowLayout
from repro.core.ewlr import (
    VPP_SAVING_FRACTION,
    ewlr_range,
    is_ewlr_hit,
    rows_per_ewlr,
)
from repro.core.mechanisms import EruConfig
from repro.core.rap import (
    conflict_probability_equal_fields,
    conflict_probability_random,
    conflicts,
    permute_plane,
)


class TestEruConfig:
    def test_full_has_everything(self):
        c = EruConfig.full(4)
        assert c.ewlr and c.rap and c.ddb
        assert c.planes == 4

    def test_naive_has_nothing(self):
        c = EruConfig.naive(8)
        assert not (c.ewlr or c.rap or c.ddb)

    def test_rejects_bad_plane_count(self):
        with pytest.raises(ValueError):
            EruConfig(planes=3)

    def test_names_distinct(self):
        names = {EruConfig.naive(4).name, EruConfig.naive_ddb(4).name,
                 EruConfig.ewlr_only(4).name, EruConfig.rap_only(4).name,
                 EruConfig.full(4).name, EruConfig.full(2).name}
        assert len(names) == 6

    def test_row_layout_placement_follows_fig9(self):
        # EWLR alone: plane from row LSBs (mapping 2).
        assert (EruConfig.ewlr_only(4).row_layout().plane_placement
                is PlanePlacement.LSB)
        # EWLR+RAP: plane from row MSBs (mapping 1).
        assert (EruConfig.full(4).row_layout().plane_placement
                is PlanePlacement.MSB)
        # Naive planes are contiguous regions (Fig. 3).
        assert (EruConfig.naive(4).row_layout().plane_placement
                is PlanePlacement.MSB)

    def test_row_layout_ewlr_bits(self):
        assert EruConfig.full(4).row_layout().ewlr_bits == 3
        assert EruConfig.naive(4).row_layout().ewlr_bits == 0


class TestRapHelpers:
    def test_identity_on_left(self):
        assert permute_plane(2, 0, 4) == 2

    def test_inversion_on_right(self):
        assert permute_plane(0b01, 1, 4) == 0b10
        assert permute_plane(0, 1, 2) == 1

    def test_single_plane_unchanged(self):
        assert permute_plane(0, 1, 1) == 0

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            permute_plane(4, 0, 4)
        with pytest.raises(ValueError):
            permute_plane(0, 2, 4)
        with pytest.raises(ValueError):
            permute_plane(0, 0, 3)

    def test_equal_fields_never_conflict_with_rap(self):
        for plane in range(8):
            assert not conflicts(plane, plane, 8, rap=True)
            assert conflicts(plane, plane, 8, rap=False)

    def test_complement_fields_conflict_with_rap(self):
        assert conflicts(0b001, 0b110, 8, rap=True)

    def test_probabilities(self):
        assert conflict_probability_random(4) == 0.25
        assert conflict_probability_equal_fields(rap=True) == 0.0
        assert conflict_probability_equal_fields(rap=False) == 1.0

    @settings(max_examples=200)
    @given(plane=st.integers(0, 15), n=st.sampled_from([1, 2, 4, 8, 16]))
    def test_permutation_is_involution(self, plane, n):
        plane %= n
        once = permute_plane(plane, 1, n)
        assert permute_plane(once, 1, n) == plane

    @settings(max_examples=100)
    @given(n=st.sampled_from([2, 4, 8, 16]))
    def test_permutation_is_bijection(self, n):
        image = {permute_plane(p, 1, n) for p in range(n)}
        assert image == set(range(n))


class TestEwlrHelpers:
    LAYOUT = RowLayout(row_bits=16, plane_count=4, ewlr_bits=3)

    def test_rows_per_ewlr(self):
        assert rows_per_ewlr(self.LAYOUT) == 8

    def test_vpp_constant_is_papers(self):
        assert VPP_SAVING_FRACTION == 0.18

    def test_hit_within_range(self):
        base = 0b01 << 14
        near = base | (0b010 << 11)
        assert is_ewlr_hit(self.LAYOUT, base, 0, near, 1)

    def test_no_hit_same_subbank(self):
        base = 0b01 << 14
        assert not is_ewlr_hit(self.LAYOUT, base, 0, base | (1 << 11), 0)

    def test_no_hit_across_planes(self):
        a = 0b01 << 14
        b = 0b10 << 14
        assert not is_ewlr_hit(self.LAYOUT, a, 0, b, 1)

    def test_no_hit_different_mwl(self):
        base = 0b01 << 14
        assert not is_ewlr_hit(self.LAYOUT, base, 0, base | 1, 1)

    def test_range_equality_is_hit_criterion(self):
        base = 0b01 << 14
        near = base | (0b111 << 11)
        assert (ewlr_range(self.LAYOUT, base, 0, False)
                == ewlr_range(self.LAYOUT, near, 1, False))

    @settings(max_examples=200)
    @given(row=st.integers(0, 0xFFFF), offset=st.integers(0, 7))
    def test_every_row_hits_its_own_ewlr_siblings(self, row, offset):
        layout = self.LAYOUT
        shift = layout.row_bits - layout.plane_bits - layout.ewlr_bits
        sibling = (row & ~(0b111 << shift)) | (offset << shift)
        assert is_ewlr_hit(layout, row, 0, sibling, 1) == (True)
