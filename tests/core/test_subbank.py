"""Tests for the VSB plane-latch activation rules (paper Fig. 3 / Fig. 5)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.controller.mapping import PlanePlacement, RowLayout
from repro.core.subbank import ActivationVerdict, SubbankPairState


def make_pair(planes=4, ewlr=True, rap=True, row_bits=16):
    layout = RowLayout(row_bits=row_bits, plane_count=planes,
                       ewlr_bits=3 if ewlr else 0)
    return SubbankPairState(layout, ewlr_enabled=ewlr, rap_enabled=rap)


def row_in_plane(plane, layout, low=0):
    """Build a row whose MSB plane field is ``plane``."""
    return (plane << (layout.row_bits - layout.plane_bits)) | low


class TestIdleBank:
    def test_everything_starts_idle(self):
        pair = make_pair()
        assert pair.open_row(0) is None
        assert pair.open_row(1) is None

    def test_first_activation_is_plain_act(self):
        pair = make_pair()
        assert pair.classify(0, 0x100) is ActivationVerdict.ACT_OK

    def test_activate_then_hit(self):
        pair = make_pair()
        pair.activate(0, 0x100)
        assert pair.classify(0, 0x100) is ActivationVerdict.ROW_HIT


class TestOwnConflicts:
    def test_different_row_same_subbank_conflicts(self):
        pair = make_pair()
        pair.activate(0, 0x100)
        assert pair.classify(0, 0x200) is ActivationVerdict.OWN_ROW_CONFLICT

    def test_precharge_clears_conflict(self):
        pair = make_pair()
        pair.activate(0, 0x100)
        pair.precharge(0)
        assert pair.classify(0, 0x200) is ActivationVerdict.ACT_OK

    def test_precharge_idle_subbank_rejected(self):
        pair = make_pair()
        with pytest.raises(ValueError):
            pair.precharge(0)


class TestPlaneConflictsNaive:
    """Naive VSB: the shared latch holds one full row address (Fig. 3a)."""

    def test_same_plane_different_rows_conflict(self):
        pair = make_pair(ewlr=False, rap=False)
        layout = pair.layout
        pair.activate(0, row_in_plane(1, layout, low=0))
        target = row_in_plane(1, layout, low=1)
        assert pair.classify(1, target) is ActivationVerdict.PLANE_CONFLICT

    def test_same_plane_identical_row_allowed(self):
        pair = make_pair(ewlr=False, rap=False)
        row = row_in_plane(2, pair.layout)
        pair.activate(0, row)
        assert pair.classify(1, row) is ActivationVerdict.ACT_OK
        pair.activate(1, row)

    def test_different_planes_do_not_interact(self):
        pair = make_pair(ewlr=False, rap=False)
        layout = pair.layout
        pair.activate(0, row_in_plane(0, layout))
        assert pair.classify(
            1, row_in_plane(1, layout)) is ActivationVerdict.ACT_OK

    def test_illegal_activation_raises(self):
        pair = make_pair(ewlr=False, rap=False)
        layout = pair.layout
        pair.activate(0, row_in_plane(1, layout, low=0))
        with pytest.raises(ValueError):
            pair.activate(1, row_in_plane(1, layout, low=1))


class TestEwlr:
    """EWLR: same plane + same MWL tag -> hit (Fig. 3c)."""

    def test_ewlr_hit_when_only_lwl_sel_differs(self):
        pair = make_pair(ewlr=True, rap=False)
        layout = pair.layout
        # EWLR offset bits sit just below the plane field (MSB placement).
        shift = layout.row_bits - layout.plane_bits - layout.ewlr_bits
        base = row_in_plane(1, layout)
        pair.activate(0, base)
        near = base | (0b011 << shift)
        assert pair.classify(1, near) is ActivationVerdict.EWLR_HIT
        pair.activate(1, near)

    def test_plane_conflict_when_mwl_differs(self):
        pair = make_pair(ewlr=True, rap=False)
        layout = pair.layout
        base = row_in_plane(1, layout)
        pair.activate(0, base)
        far = base | 1  # differs in a low (MWL) bit
        assert pair.classify(1, far) is ActivationVerdict.PLANE_CONFLICT

    def test_ewlr_disabled_treats_near_rows_as_conflict(self):
        pair = make_pair(ewlr=False, rap=False)
        layout = pair.layout
        shift = layout.row_bits - layout.plane_bits - 3
        base = row_in_plane(1, layout)
        pair.activate(0, base)
        near = base | (1 << shift)
        assert pair.classify(1, near) is ActivationVerdict.PLANE_CONFLICT


class TestRap:
    def test_rap_moves_identical_rows_apart(self):
        pair = make_pair(ewlr=False, rap=True)
        layout = pair.layout
        # Without RAP this would be the naive shared-row case; with RAP the
        # right sub-bank sees an inverted plane, so both activate freely
        # with *different* rows of equal plane field.
        row_a = row_in_plane(1, layout, low=0)
        row_b = row_in_plane(1, layout, low=1)
        pair.activate(0, row_a)
        assert pair.classify(1, row_b) is ActivationVerdict.ACT_OK

    def test_rap_conflict_on_complementary_planes(self):
        pair = make_pair(planes=2, ewlr=False, rap=True)
        layout = pair.layout
        row_left = row_in_plane(0, layout, low=0)
        row_right = row_in_plane(1, layout, low=1)
        pair.activate(0, row_left)  # left occupies plane 0
        # Right sub-bank row with plane field 1 inverts to plane 0: conflict.
        verdict = pair.classify(1, row_right)
        assert verdict is ActivationVerdict.PLANE_CONFLICT


class TestPartialPrecharge:
    def test_possible_when_sharing_ewlr(self):
        pair = make_pair(ewlr=True, rap=False)
        layout = pair.layout
        shift = layout.row_bits - layout.plane_bits - layout.ewlr_bits
        base = row_in_plane(1, layout)
        pair.activate(0, base)
        pair.activate(1, base | (1 << shift))
        assert pair.partial_precharge_possible(0)
        assert pair.partial_precharge_possible(1)

    def test_not_possible_across_planes(self):
        pair = make_pair(ewlr=True, rap=False)
        layout = pair.layout
        pair.activate(0, row_in_plane(0, layout))
        pair.activate(1, row_in_plane(1, layout))
        assert not pair.partial_precharge_possible(0)

    def test_not_possible_when_other_idle(self):
        pair = make_pair(ewlr=True, rap=False)
        pair.activate(0, row_in_plane(1, pair.layout))
        assert not pair.partial_precharge_possible(0)

    def test_not_possible_without_ewlr(self):
        pair = make_pair(ewlr=False, rap=False)
        row = row_in_plane(1, pair.layout)
        pair.activate(0, row)
        pair.activate(1, row)
        assert not pair.partial_precharge_possible(0)


class TestSinglePlaneHalfDramModel:
    """Half-DRAM maps to one plane, no EWLR/RAP: latch fully shared."""

    def test_any_two_distinct_rows_conflict(self):
        pair = make_pair(planes=1, ewlr=False, rap=False)
        pair.activate(0, 0x10)
        assert pair.classify(1, 0x11) is ActivationVerdict.PLANE_CONFLICT

    def test_identical_rows_coexist(self):
        pair = make_pair(planes=1, ewlr=False, rap=False)
        pair.activate(0, 0x10)
        assert pair.classify(1, 0x10) is ActivationVerdict.ACT_OK


@settings(max_examples=300)
@given(
    planes=st.sampled_from([1, 2, 4, 8, 16]),
    ewlr=st.booleans(),
    rap=st.booleans(),
    rows=st.lists(st.integers(0, 0xFFFF), min_size=2, max_size=2),
)
def test_classify_is_consistent_with_activate(planes, ewlr, rap, rows):
    """Property: activate() succeeds iff classify() says it may."""
    pair = make_pair(planes=planes, ewlr=ewlr, rap=rap)
    pair.activate(0, rows[0])
    verdict = pair.classify(1, rows[1])
    may = verdict in (ActivationVerdict.ACT_OK, ActivationVerdict.EWLR_HIT)
    if may:
        pair.activate(1, rows[1])
        assert pair.open_row(1) == rows[1]
    else:
        with pytest.raises(ValueError):
            pair.activate(1, rows[1])


@settings(max_examples=300)
@given(
    planes=st.sampled_from([2, 4, 8]),
    row=st.integers(0, 0xFFFF),
)
def test_ewlr_hit_requires_same_plane_and_mwl(planes, row):
    """Property: a row is always EWLR-compatible with itself's EWLR range."""
    pair = make_pair(planes=planes, ewlr=True, rap=False)
    layout = pair.layout
    pair.activate(0, row)
    shift = layout.row_bits - layout.plane_bits - layout.ewlr_bits
    sibling = row ^ (0b001 << shift)
    verdict = pair.classify(1, sibling)
    assert verdict in (ActivationVerdict.EWLR_HIT, ActivationVerdict.ACT_OK)
    # Same plane is guaranteed (plane field untouched), so specifically:
    assert verdict is ActivationVerdict.EWLR_HIT
