"""Kill-and-resume semantics of the spec runner.

The resume guarantee: every finished cell is persisted the moment it
lands, so resubmitting an interrupted sweep re-runs only what is
absent.  The :class:`~repro.sim.runner.RunReport` counters are the
proof -- the same counters the CI resume-smoke step asserts on.
"""

import pytest

from repro.sim import parallel
from repro.sim.experiments import ExperimentContext
from repro.sim.runner import RunReport, execute_cells, run_spec
from repro.sim.specs import ExperimentSettings, fig16_spec
from repro.sim.store import ResultStore

SETTINGS = ExperimentSettings(accesses_per_core=250, mixes=("mix0",))


def test_killed_run_resumes_from_the_store(tmp_path):
    """Run a prefix of a grid, 'die', resubmit the whole spec: only the
    absent suffix simulates."""
    spec = fig16_spec(SETTINGS)
    cells = spec.expand()
    assert len(cells) >= 3
    store = ResultStore(str(tmp_path))
    # First life: the run is killed after two cells -- modelled by
    # executing only the first two (each put lands atomically on
    # completion, so a real SIGKILL preserves exactly the finished
    # prefix).
    partial = execute_cells(cells[:2], results={}, store=store)
    assert partial.submitted == 2
    # Second life: fresh process (fresh memory cache, fresh store
    # instance), same spec.
    _, report = run_spec(spec, store=ResultStore(str(tmp_path)))
    assert report.cells == len(cells)
    assert report.store_hits == 2
    assert report.submitted == len(cells) - 2
    assert report.memory_hits == 0
    # Third life: nothing left to do.
    _, report = run_spec(spec, store=ResultStore(str(tmp_path)))
    assert report.submitted == 0
    assert report.store_hits == len(cells)
    assert "submitted=0" in report.summary()


def test_results_stream_to_the_store_as_they_land(tmp_path):
    """Each cell is persisted before the next one runs -- the property
    that makes a mid-grid kill resumable at cell granularity."""
    spec = fig16_spec(SETTINGS)
    store = ResultStore(str(tmp_path))
    stored_when_seen = []

    def progress(cell, status):
        if status == "run":
            stored_when_seen.append(store.contains(cell.store_key()))

    run_spec(spec, store=store, progress=progress)
    assert stored_when_seen and all(stored_when_seen)


def test_progress_reports_each_cell_once(tmp_path):
    spec = fig16_spec(SETTINGS)
    seen = []
    run_spec(spec, store=ResultStore(str(tmp_path)),
             progress=lambda cell, status: seen.append((cell, status)))
    cells = spec.expand()
    assert sorted(c.store_key() for c, _ in seen) == \
        sorted(c.store_key() for c in cells)
    assert {status for _, status in seen} == {"run"}


def test_memory_hits_take_precedence_over_the_store(tmp_path):
    spec = fig16_spec(SETTINGS)
    store = ResultStore(str(tmp_path))
    results = {}
    execute_cells(spec.expand(), results=results, store=store)
    report = execute_cells(spec.expand(), results=results, store=store)
    assert report.memory_hits == report.cells
    assert report.store_hits == report.submitted == 0


def test_cost_gate_prices_only_post_diff_cells(tmp_path, monkeypatch):
    """A mostly-cached grid re-run with ``--jobs N`` must stay serial:
    the store diff happens before ``run_grid``, so the cost gate sums
    only the missing cells and never warms a pool for a trickle."""
    parallel._shutdown_warm_pool()
    # The gate default (50k) dwarfs this grid's total cost, but force
    # the point: even a fully *cold* run here stays under it.
    spec = fig16_spec(SETTINGS)
    store = ResultStore(str(tmp_path))
    run_spec(spec, store=store, jobs=8)
    assert parallel._warm_pool is None
    # Warm store + one missing cell (drop one entry): still serial.
    victim = spec.expand()[0]
    import os
    os.remove(store.path_for(victim.store_key()))
    _, report = run_spec(spec, store=store, jobs=8)
    assert report.submitted == 1
    assert parallel._warm_pool is None


def test_context_run_cells_syncs_counters(tmp_path, monkeypatch):
    """The experiment-context wrapper surfaces the same counters via
    ``last_report`` (what ``repro run <spec>`` prints)."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    spec = fig16_spec(SETTINGS)
    first = ExperimentContext(SETTINGS)
    first.execute(spec)
    assert first.last_report.submitted == len(spec.expand())
    second = ExperimentContext(SETTINGS)
    second.execute(spec)
    assert second.last_report.submitted == 0
    assert second.last_report.store_hits == len(spec.expand())


def test_run_report_summary_is_greppable():
    report = RunReport(cells=7, memory_hits=1, store_hits=2,
                       submitted=4)
    assert report.summary() == \
        "cells=7 memory_hits=1 store_hits=2 submitted=4"
