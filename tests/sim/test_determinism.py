"""Determinism guarantees: reruns, worker processes, and the disk cache.

The whole experiment pipeline is deterministic given (config, workload,
seed): identical digests across independent runs, identical results
whether a grid executes serially or across worker processes, and a
persistent alone-IPC cache that returns exactly what was computed.
"""

import json

from repro.cpu.core import CoreConfig
from repro.sim import config as cfgs
from repro.sim.experiments import ExperimentContext, ExperimentSettings
from repro.sim.parallel import AloneIpcDiskCache, SimJob, run_grid
from repro.sim.simulator import run_traces
from repro.workloads.mixes import mix_traces


def test_same_seed_same_digest():
    traces_a = mix_traces("mix0", 300, seed=7)
    traces_b = mix_traces("mix0", 300, seed=7)
    a = run_traces(cfgs.vsb(), traces_a)
    b = run_traces(cfgs.vsb(), traces_b)
    assert a.digest() == b.digest()


def test_different_seed_different_digest():
    a = run_traces(cfgs.vsb(), mix_traces("mix0", 300, seed=7))
    b = run_traces(cfgs.vsb(), mix_traces("mix0", 300, seed=8))
    assert a.digest() != b.digest()


def _grid_jobs():
    return [
        SimJob(config=config, accesses=250, fragmentation=0.1, seed=0,
               core_config=CoreConfig(), mix=mix)
        for config in (cfgs.ddr4_baseline(), cfgs.vsb())
        for mix in ("mix0", "mix3")
    ]


def test_grid_results_identical_serial_vs_parallel():
    serial = run_grid(_grid_jobs(), workers=1)
    parallel = run_grid(_grid_jobs(), workers=4)
    assert [r.digest() for r in serial] == \
        [r.digest() for r in parallel]
    # Order matters too: results must come back in submission order.
    assert [r.config_name for r in parallel] == \
        ["DDR4", "DDR4", "VSB(EWLR+RAP,4P)+DDB", "VSB(EWLR+RAP,4P)+DDB"]


def test_alone_runs_through_grid_match_inline(tmp_path, monkeypatch):
    """A benchmark alone-run gives the same IPC via any execution path."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    settings = ExperimentSettings(accesses_per_core=250, mixes=("mix0",))
    inline = ExperimentContext(settings, disk_cache=False)
    job = SimJob(config=cfgs.ddr4_baseline(), accesses=250,
                 fragmentation=0.1, seed=0, core_config=CoreConfig(),
                 benchmark="mcf")
    (gridded,) = run_grid([job], workers=1)
    assert gridded.ipcs[0] == inline.alone_ipc("mcf")


def test_disk_cache_round_trip(tmp_path):
    cache = AloneIpcDiskCache(str(tmp_path / "cache"))
    key = AloneIpcDiskCache.key(cfgs.ddr4_baseline(), "mcf", 0.1,
                                0, 250, 4e9)
    assert cache.get(key) is None
    cache.put(key, 1.234)
    # A fresh instance reads what the first one persisted.
    fresh = AloneIpcDiskCache(str(tmp_path / "cache"))
    assert fresh.get(key) == 1.234
    # Merge-on-write keeps entries from concurrent writers.
    other = AloneIpcDiskCache(str(tmp_path / "cache"))
    other.put(AloneIpcDiskCache.key(cfgs.ddr4_baseline(), "lbm",
                                    0.1, 0, 250, 4e9), 2.5)
    assert AloneIpcDiskCache(str(tmp_path / "cache")).get(key) == 1.234


def test_disk_cache_survives_corruption(tmp_path):
    cache = AloneIpcDiskCache(str(tmp_path))
    cache.put("k", 1.0)
    # Corrupt the entry in place: it must read as a miss, and a re-put
    # must repair it.
    with open(cache.path_for("k"), "w") as fh:
        fh.write("{not json")
    assert cache.get("k") is None
    cache.put("k", 1.0)
    assert AloneIpcDiskCache(str(tmp_path)).get("k") == 1.0


def test_context_alone_ipc_uses_disk_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    settings = ExperimentSettings(accesses_per_core=250, mixes=("mix0",))
    first = ExperimentContext(settings)
    value = first.alone_ipc("mcf")
    key = AloneIpcDiskCache.key(cfgs.ddr4_baseline(), "mcf", 0.1, 0,
                                250, CoreConfig().clock_hz)
    path = first.store.path_for(key)
    with open(path) as fh:
        entry = json.load(fh)
    assert entry["result"]["ipcs"][0] == value
    # A second context must serve the value from disk: poison the
    # stored entry with a sentinel and observe it coming back.
    sentinel = 42.0
    entry["result"]["ipcs"][0] = sentinel
    with open(path, "w") as fh:
        json.dump(entry, fh)
    second = ExperimentContext(settings)
    assert second.alone_ipc("mcf") == sentinel


def test_parallel_context_matches_serial_tables(tmp_path, monkeypatch):
    """fig12-style prefetch through workers equals the serial runner."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    from repro.sim.experiments import fig12
    settings = ExperimentSettings(accesses_per_core=250,
                                  mixes=("mix0", "mix3"))
    configs = [cfgs.ddr4_baseline(), cfgs.vsb()]
    serial = fig12(ExperimentContext(settings, jobs=1), configs)
    parallel = fig12(ExperimentContext(settings, jobs=4), configs)
    assert serial.values == parallel.values


def test_cache_key_includes_full_config_digest(tmp_path, monkeypatch):
    """Regression (stale alone-IPC keys): a ``--refresh`` alone run must
    never hit a refresh-free cache entry -- the key carries the full
    config digest, so any behaviour-affecting override separates."""
    from dataclasses import replace

    base = cfgs.ddr4_baseline()
    refreshed = replace(base, refresh_density="8Gb",
                        refresh_policy="darp")
    plain = AloneIpcDiskCache.key(base, "mcf", 0.1, 0, 250, 4e9)
    with_refresh = AloneIpcDiskCache.key(refreshed, "mcf", 0.1, 0,
                                         250, 4e9)
    assert plain != with_refresh
    # Host-side knobs and the cosmetic name must NOT split the key.
    renamed = replace(base, name="renamed", record_commands=True,
                      shards="serial")
    assert AloneIpcDiskCache.key(renamed, "mcf", 0.1, 0, 250,
                                 4e9) == plain

    # End to end: a refresh-enabled alone baseline recomputes instead
    # of reusing the refresh-free context's persisted entry.
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    settings = ExperimentSettings(accesses_per_core=250, mixes=("mix0",))
    ExperimentContext(settings).alone_ipc("mcf")
    second = ExperimentContext(settings, alone_config=refreshed)
    second.alone_ipc("mcf")
    assert len(second.store) == 2


def test_disk_cache_two_writers_freshest_wins(tmp_path):
    """Regression (stale overlay in put_many): a writer holding an old
    in-memory snapshot must not shadow a value another process
    persisted after that snapshot was taken."""
    stale = AloneIpcDiskCache(str(tmp_path))
    stale.put("shared", 1.0)       # snapshot now holds shared=1.0
    other = AloneIpcDiskCache(str(tmp_path))
    other.put("shared", 2.0)       # a second writer updates the file
    stale.put("unrelated", 3.0)    # must merge, not resurrect 1.0
    fresh = AloneIpcDiskCache(str(tmp_path))
    assert fresh.get("shared") == 2.0
    assert fresh.get("unrelated") == 3.0
