"""Tests for metric helpers."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.metrics import (
    LatencyHistogram,
    gmean,
    normalized,
    quartiles,
    weighted_speedup,
)


class TestWeightedSpeedup:
    def test_equal_ipcs_give_core_count(self):
        assert weighted_speedup([1.0, 2.0], [1.0, 2.0]) == pytest.approx(
            2.0)

    def test_slowdown_reflected(self):
        assert weighted_speedup([0.5], [1.0]) == pytest.approx(0.5)

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            weighted_speedup([1.0], [1.0, 2.0])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            weighted_speedup([], [])

    def test_zero_alone_rejected(self):
        with pytest.raises(ValueError):
            weighted_speedup([1.0], [0.0])


class TestNormalized:
    def test_baseline_becomes_one(self):
        out = normalized({"a": 2.0, "b": 3.0}, "a")
        assert out["a"] == 1.0
        assert out["b"] == 1.5

    def test_missing_baseline_rejected(self):
        with pytest.raises(KeyError):
            normalized({"a": 2.0}, "zzz")

    def test_zero_baseline_rejected(self):
        with pytest.raises(ValueError):
            normalized({"a": 0.0}, "a")


class TestGmean:
    def test_single_value(self):
        assert gmean([3.0]) == pytest.approx(3.0)

    def test_classic(self):
        assert gmean([1.0, 4.0]) == pytest.approx(2.0)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            gmean([])

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            gmean([1.0, 0.0])

    @settings(max_examples=100)
    @given(values=st.lists(st.floats(0.1, 10.0), min_size=1, max_size=20))
    def test_between_min_and_max(self, values):
        g = gmean(values)
        assert min(values) - 1e-9 <= g <= max(values) + 1e-9


class TestQuartiles:
    def test_basic(self):
        # Nearest-rank on n=100: rank ceil(0.25*100)=25 -> value 25, etc.
        q = quartiles(list(range(1, 101)))
        assert q["mean"] == pytest.approx(50.5)
        assert q["q1"] == pytest.approx(25)
        assert q["median"] == pytest.approx(50)
        assert q["q3"] == pytest.approx(75)

    def test_single_sample(self):
        q = quartiles([42])
        assert q["q1"] == q["median"] == q["q3"] == 42
        assert q["mean"] == 42

    def test_two_samples(self):
        # Nearest-rank: the median of an even-length sample is the
        # lower middle element, never the upper one.
        q = quartiles([1, 2])
        assert q["q1"] == 1
        assert q["median"] == 1
        assert q["q3"] == 2

    def test_four_samples(self):
        q = quartiles([1, 2, 3, 4])
        assert q["q1"] == 1
        assert q["median"] == 2
        assert q["q3"] == 3

    def test_five_samples(self):
        q = quartiles([1, 2, 3, 4, 5])
        assert q["q1"] == 2
        assert q["median"] == 3
        assert q["q3"] == 4

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            quartiles([])

    def test_unsorted_input(self):
        q = quartiles([3, 1, 2])
        assert q["median"] == 2


class TestLatencyHistogram:
    def test_iter_is_sorted_expansion(self):
        h = LatencyHistogram([5, 1, 5, 3, 1, 1])
        assert list(h) == [1, 1, 1, 3, 5, 5]
        assert len(h) == 6

    def test_equals_list_and_histogram(self):
        h = LatencyHistogram([2, 7, 2])
        assert h == [2, 2, 7]
        assert h == LatencyHistogram([7, 2, 2])
        assert h != [2, 7]

    def test_add_and_merge_accumulate(self):
        h = LatencyHistogram()
        assert not h
        h.add(4)
        h.merge(LatencyHistogram([4, 9]))
        assert list(h) == [4, 4, 9]
        assert h.min() == 4 and h.max() == 9
        assert h.mean() == pytest.approx(17 / 3)

    def test_memory_is_bounded_by_unique_values(self):
        h = LatencyHistogram([7] * 100000)
        assert len(h) == 100000
        assert len(h.counts) == 1

    def test_empty_statistics_rejected(self):
        h = LatencyHistogram()
        for op in (h.min, h.max, h.mean, h.quartiles):
            with pytest.raises(ValueError):
                op()

    @given(st.lists(st.integers(0, 500), min_size=1, max_size=200))
    @settings(max_examples=200, deadline=None)
    def test_quartiles_match_list_route_exactly(self, samples):
        # The histogram computes quantiles from counts; the list route
        # sorts and indexes.  Both must agree for every input.
        assert (quartiles(LatencyHistogram(samples))
                == quartiles(sorted(samples)))
