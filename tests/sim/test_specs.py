"""Declarative specs: digests, JSON round-trips, expansion.

A spec's digest must be a function of its *factors*, not of how the
JSON happened to be keyed or which builder produced it, and expansion
must be deterministic and duplicate-free -- the runner's resume
guarantee rests on both.
"""

import json

import pytest

from repro.core.mechanisms import EruConfig
from repro.cpu.core import CoreConfig
from repro.sim import config as cfgs
from repro.sim.specs import (
    NAMED_SPECS,
    ConfigSpec,
    ExperimentSettings,
    ExperimentSpec,
    MechanismSpec,
    fig12_spec,
    fig13_spec,
    fig14_spec,
    load_spec,
    resolve_spec,
)

SETTINGS = ExperimentSettings(accesses_per_core=300,
                              mixes=("mix0", "mix3"))


def test_digest_stable_across_dict_key_ordering():
    spec = fig12_spec(SETTINGS)
    data = spec.to_dict()
    # Re-serialise with reversed key order at every level: the same
    # factors written differently must parse to the same digest.
    shuffled = json.loads(json.dumps(data, sort_keys=True))
    reversed_text = json.dumps(
        {k: shuffled[k] for k in sorted(shuffled, reverse=True)})
    assert ExperimentSpec.from_json(reversed_text).digest() == \
        spec.digest()


def test_json_round_trip_preserves_factors_and_cells():
    spec = fig14_spec(SETTINGS, frequencies=(1.333e9, 2.0e9))
    again = ExperimentSpec.from_json(spec.to_json())
    assert again == spec
    assert again.digest() == spec.digest()
    assert again.expand() == spec.expand()


def test_load_spec_from_file(tmp_path):
    spec = fig12_spec(SETTINGS)
    path = tmp_path / "spec.json"
    path.write_text(spec.to_json())
    assert load_spec(str(path)).digest() == spec.digest()
    assert resolve_spec(str(path)).digest() == spec.digest()


def test_named_specs_resolve():
    for name in NAMED_SPECS:
        spec = resolve_spec(name, SETTINGS)
        assert spec.name == name
        assert spec.expand(), name


def test_expansion_is_deterministic_and_duplicate_free():
    spec = fig13_spec(SETTINGS, fragmentations=(0.1, 0.5),
                      planes=(2, 4))
    cells = spec.expand()
    assert cells == spec.expand()
    assert len(cells) == len(set(cells))
    # Repeated factor combinations collapse: doubling the config list
    # and the mix list adds no cells.
    fat = ExperimentSpec(name="fat", configs=spec.configs * 2,
                         mixes=spec.mixes * 2,
                         accesses_per_core=spec.accesses_per_core,
                         fragmentations=spec.fragmentations)
    assert len(fat.expand()) == len(
        ExperimentSpec(name="thin", configs=spec.configs,
                       mixes=spec.mixes,
                       accesses_per_core=spec.accesses_per_core,
                       fragmentations=spec.fragmentations).expand())


def test_alone_cells_precede_their_mix():
    cells = fig12_spec(SETTINGS).expand()
    first_mix = next(i for i, c in enumerate(cells)
                     if c.kind == "mix")
    assert all(c.kind == "alone" for c in cells[:first_mix])
    assert first_mix > 0


def test_reps_extend_seeds_without_duplicates():
    spec = ExperimentSpec(name="s", configs=(ConfigSpec(),),
                          mixes=("mix0",), seeds=(0, 1), reps=2)
    assert spec.expanded_seeds() == (0, 1, 2)


def test_config_spec_materializes_the_preset_exactly():
    assert ConfigSpec("ddr4_baseline").to_config() == \
        cfgs.ddr4_baseline()
    mech = MechanismSpec.from_eru(EruConfig.full(4))
    assert ConfigSpec("vsb", mechanism=mech).to_config() == cfgs.vsb()
    assert ConfigSpec("masa", args=(8,)).to_config() == cfgs.masa(8)
    assert ConfigSpec("masa_eruca", args=(8,),
                      kwargs=(("ddb", False),)).to_config() == \
        cfgs.masa_eruca(8, ddb=False)


def test_unknown_preset_rejected():
    with pytest.raises(ValueError):
        ConfigSpec("no_such_preset").to_config()


def test_inline_config_expands_but_does_not_serialize():
    inline = ConfigSpec(inline=cfgs.vsb())
    assert inline.to_config() == cfgs.vsb()
    spec = ExperimentSpec(name="inline", configs=(inline,),
                          mixes=("mix0",), accesses_per_core=300)
    assert spec.expand()
    assert spec.digest()  # digests via the config digest
    with pytest.raises(ValueError):
        spec.to_dict()


def test_core_scale_factors_into_the_cells():
    spec = fig14_spec(SETTINGS, frequencies=(1.333e9, 2.0e9))
    base = CoreConfig()
    clocks = {c.core_config.clock_hz for c in spec.expand(base)
              if c.kind == "mix"}
    assert clocks == {base.clock_hz,
                      base.scaled(2.0e9 / 1.333e9).clock_hz}
