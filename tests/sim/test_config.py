"""Tests for the system-configuration presets."""

import pytest

from repro.core.mechanisms import EruConfig
from repro.dram.resources import BusPolicy
from repro.sim.config import (
    Organization,
    SystemConfig,
    bg32,
    ddr4_baseline,
    half_dram,
    ideal32,
    masa,
    masa_eruca,
    paired_bank,
    vsb,
)


class TestBaseline:
    def test_tab3_geometry(self):
        c = ddr4_baseline()
        assert c.bank_groups == 4
        assert c.banks_per_group == 4
        assert c.channels == 2
        assert not c.subbanked
        assert c.bus_policy is BusPolicy.BANK_GROUPS

    def test_17_bit_rows(self):
        assert ddr4_baseline().row_bits == 17

    def test_timing_at_default_frequency(self):
        t = ddr4_baseline().timing()
        assert t.tCK == 750
        assert t.tTCW == 0


class TestScaledOrganisations:
    def test_bg32_doubles_groups(self):
        c = bg32()
        assert c.bank_groups == 8
        assert c.bus_policy is BusPolicy.BANK_GROUPS

    def test_ideal32_has_no_groups(self):
        assert ideal32().bus_policy is BusPolicy.NO_GROUPS

    def test_capacity_constant_across_organisations(self):
        configs = [ddr4_baseline(), bg32(), ideal32(), vsb(),
                   paired_bank(), half_dram(), masa(8), masa_eruca(8)]
        capacities = {c.mapping().config.capacity_bytes for c in configs}
        assert len(capacities) == 1


class TestVsb:
    def test_default_is_full_eruca(self):
        c = vsb()
        assert c.eru.ewlr and c.eru.rap and c.eru.ddb
        assert c.bus_policy is BusPolicy.DDB
        assert c.subbanked
        assert c.row_bits == 16

    def test_ddb_windows_in_timing(self):
        t = vsb().timing()
        assert t.tTCW > 0

    def test_naive_uses_bank_groups(self):
        c = vsb(EruConfig.naive(4))
        assert c.bus_policy is BusPolicy.BANK_GROUPS

    def test_geometry_has_two_subbanks(self):
        geo = vsb().bank_geometry()
        assert geo.subbanks == 2
        assert geo.subarray_groups == 1


class TestPairedBank:
    def test_halves_banks(self):
        c = paired_bank()
        assert c.banks_per_group == 2
        assert c.row_bits == 17  # sub-bank ID comes from a bank bit

    def test_eru_layout_follows_row_bits(self):
        c = paired_bank()
        assert c.eru.row_layout().row_bits == 17


class TestPriorWork:
    def test_masa_groups(self):
        c = masa(8)
        assert c.bank_geometry().subarray_groups == 8
        assert c.bank_geometry().tSA > 0
        assert not c.subbanked

    def test_half_dram_is_one_plane_naive(self):
        c = half_dram()
        assert c.eru.planes == 1
        assert not c.eru.ewlr and not c.eru.rap and not c.eru.ddb
        assert c.energy.act_scale == 0.5

    def test_masa_eruca_combines_both(self):
        c = masa_eruca(8)
        geo = c.bank_geometry()
        assert geo.subbanks == 2
        assert geo.subarray_groups == 8
        assert c.bus_policy is BusPolicy.DDB

    def test_masa_eruca_no_ddb_name(self):
        assert "no DDB" in masa_eruca(8, ddb=False).name


class TestFrequencyScaling:
    def test_at_frequency_changes_tck(self):
        c = vsb().at_frequency(2.4e9)
        assert c.timing().tCK < vsb().timing().tCK

    def test_at_frequency_renames(self):
        assert "2.40GHz" in vsb().at_frequency(2.4e9).name

    def test_ddb_windows_activate_at_high_frequency(self):
        from repro.sim.simulator import MemorySystem
        system = MemorySystem(vsb().at_frequency(2.4e9))
        assert system.controllers[0].channel.resources.windows_active

    def test_ddb_windows_inactive_at_baseline(self):
        from repro.sim.simulator import MemorySystem
        system = MemorySystem(vsb())
        assert not system.controllers[0].channel.resources.windows_active


class TestMappingLayouts:
    def test_vsb_mapping_has_subbank_bit(self):
        m = vsb().mapping()
        assert m.config.subbanks == 2

    def test_vsb_plane_layout_attached(self):
        m = vsb().mapping()
        assert m.row_layout.plane_count == 4
        assert m.row_layout.ewlr_bits == 3

    def test_baseline_mapping_flat(self):
        m = ddr4_baseline().mapping()
        assert m.config.subbanks == 1
        assert m.row_layout.plane_count == 1


class TestSarpDegradationSurfaced:
    def test_warns_and_records_on_flat_banks(self):
        import warnings
        from dataclasses import replace

        with pytest.warns(UserWarning, match="degrades"):
            config = replace(ddr4_baseline(), refresh_density="8Gb",
                             refresh_policy="sarp")
        assert config.refresh_policy == "sarp"
        assert config.effective_refresh_policy == "darp"

    def test_subbanked_sarp_is_silent_and_effective(self):
        import warnings
        from dataclasses import replace

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            config = replace(vsb(), refresh_density="8Gb",
                             refresh_policy="sarp")
        assert config.effective_refresh_policy == "sarp"

    def test_no_warning_without_refresh(self):
        import warnings
        from dataclasses import replace

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            config = replace(ddr4_baseline(), refresh_policy="sarp")
        # Recorded as degraded either way -- the scheduler would apply
        # darp if refresh were later enabled at this geometry.
        assert config.effective_refresh_policy == "darp"

    def test_sidecar_records_effective_policy(self, tmp_path):
        from dataclasses import replace

        from repro.sim.experiments import (
            ExperimentContext,
            ExperimentSettings,
            emit_stats_sidecars,
        )
        import json as _json

        settings = ExperimentSettings(accesses_per_core=200,
                                      mixes=("mix0",))
        context = ExperimentContext(settings, disk_cache=False,
                                    observe=True)
        with pytest.warns(UserWarning, match="degrades"):
            config = replace(ddr4_baseline(), refresh_density="8Gb",
                             refresh_policy="sarp")
        context.run(config, "mix0")
        (path,) = emit_stats_sidecars(context, str(tmp_path))
        with open(path) as fh:
            payload = _json.load(fh)
        assert payload["system"]["refresh_policy"] == "sarp"
        assert payload["system"]["effective_refresh_policy"] == "darp"
        assert payload["system"]["backend"] == "dram"
