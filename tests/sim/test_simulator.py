"""Integration tests: cores + controllers through the event loop."""

import pytest

from repro.core.mechanisms import EruConfig
from repro.cpu.core import CoreConfig, TraceCore
from repro.cpu.trace import Trace, TraceEntry
from repro.dram.commands import PrechargeCause
from repro.sim.config import ddr4_baseline, ideal32, vsb
from repro.sim.simulator import MemorySystem, Simulator, run_traces


def seq_trace(n, gap=20, stride=64, base=0, write_every=0, name="t"):
    entries = []
    for i in range(n):
        write = write_every > 0 and i % write_every == 0
        entries.append(TraceEntry(gap, write, base + i * stride))
    return Trace.from_entries(entries, name=name)


def rand_trace(n, seed=0, gap=15, name="r"):
    import random
    rng = random.Random(seed)
    return Trace.from_entries(
        [TraceEntry(gap, rng.random() < 0.3,
                    rng.randrange(0, 1 << 30) & ~63) for _ in range(n)],
        name=name)


class TestSingleCore:
    def test_all_reads_complete(self):
        res = run_traces(ddr4_baseline(), [seq_trace(200)])
        assert res.stats.columns == 200
        assert len(res.stats.read_latencies) == 200

    def test_reads_and_writes_complete(self):
        res = run_traces(ddr4_baseline(), [seq_trace(300, write_every=3)])
        assert res.stats.columns == 300
        assert res.energy.writes == 100
        assert res.energy.reads == 200

    def test_sequential_stream_mostly_hits(self):
        res = run_traces(ddr4_baseline(), [seq_trace(2000)])
        assert res.stats.acts < 100  # ~4 KiB rows, 64 B lines

    def test_elapsed_positive_and_ipc_bounded(self):
        res = run_traces(ddr4_baseline(), [seq_trace(100)])
        assert res.elapsed_ps > 0
        assert 0 < res.ipcs[0] <= CoreConfig().issue_width + 1

    def test_latency_at_least_device_minimum(self):
        from repro.dram.timing import ddr4_timings
        t = ddr4_timings()
        res = run_traces(ddr4_baseline(), [seq_trace(50)])
        floor = t.tCL + t.burst_time
        assert min(res.stats.read_latencies) >= floor


class TestMultiCore:
    def test_four_cores_all_finish(self):
        traces = [rand_trace(150, seed=i, name=f"c{i}") for i in range(4)]
        res = run_traces(ddr4_baseline(), traces)
        assert len(res.ipcs) == 4
        assert all(ipc > 0 for ipc in res.ipcs)
        assert res.stats.columns == 600

    def test_contention_lowers_ipc(self):
        alone = run_traces(ddr4_baseline(), [rand_trace(300)])
        shared = run_traces(
            ddr4_baseline(),
            [rand_trace(300, seed=i) for i in range(4)])
        assert shared.ipcs[0] < alone.ipcs[0] * 1.05

    def test_more_banks_help_random_traffic(self):
        traces = [rand_trace(250, seed=i) for i in range(4)]
        base = run_traces(ddr4_baseline(), traces)
        ideal = run_traces(ideal32(), traces)
        assert sum(ideal.ipcs) > sum(base.ipcs)


class TestVsbIntegration:
    def test_vsb_runs_and_uses_subbanks(self):
        traces = [rand_trace(250, seed=i) for i in range(2)]
        res = run_traces(vsb(), traces)
        assert res.stats.columns == 500

    def test_naive_vsb_reports_plane_conflicts(self):
        # Two cores ping-ponging nearby rows in opposite sub-banks.
        a = seq_trace(300, gap=10, stride=64, base=0)
        b = seq_trace(300, gap=10, stride=64, base=(1 << 18) + (1 << 12))
        res = run_traces(vsb(EruConfig.naive(4)), [a, b])
        assert res.precharge_causes[PrechargeCause.PLANE_CONFLICT] >= 0
        assert res.transactions == 600

    def test_result_fractions_well_defined(self):
        res = run_traces(vsb(EruConfig.naive(4)),
                         [rand_trace(100, seed=3)])
        assert 0.0 <= res.plane_conflict_precharge_fraction <= 1.0
        assert 0.0 <= res.ewlr_hit_rate <= 1.0

    def test_empty_core_list(self):
        res = run_traces(ddr4_baseline(), [])
        assert res.elapsed_ps == 0


class TestDeterminism:
    def test_same_input_same_result(self):
        traces = [rand_trace(200, seed=7)]
        a = run_traces(vsb(), traces)
        # Re-generate everything: transactions are stateful objects.
        traces2 = [rand_trace(200, seed=7)]
        b = run_traces(vsb(), traces2)
        assert a.ipcs == b.ipcs
        assert a.stats.commands_issued == b.stats.commands_issued
        assert a.energy.activations == b.energy.activations


class TestBackpressure:
    def test_tiny_queues_still_complete(self):
        from dataclasses import replace
        from repro.controller.queue import QueueConfig
        cfg = replace(ddr4_baseline(),
                      queue=QueueConfig(read_depth=2, write_depth=4,
                                        drain_high=3, drain_low=1))
        traces = [rand_trace(200, seed=i) for i in range(4)]
        res = run_traces(cfg, traces)
        assert res.stats.columns == 800

    def test_write_heavy_workload_drains(self):
        t = seq_trace(400, write_every=1)  # all writes
        res = run_traces(ddr4_baseline(), [t])
        assert res.energy.writes == 400


class TestSimulatorInternals:
    def test_memory_system_builds_channels(self):
        system = MemorySystem(ddr4_baseline())
        assert len(system.controllers) == 2

    def test_controller_for_routes_by_channel_bit(self):
        system = MemorySystem(ddr4_baseline())
        _, coords, idx = system.controller_for(0)
        assert idx == coords.channel

    def test_simulator_reusable_state_is_isolated(self):
        system = MemorySystem(ddr4_baseline())
        cores = [TraceCore(seq_trace(50), CoreConfig(), core_id=0)]
        res = Simulator(system, cores).run()
        assert res.stats.columns == 50
