"""Wake-on-room admission parking and the bounded route cache."""

from dataclasses import replace

import pytest

from repro.controller.queue import QueueConfig
from repro.cpu.core import CoreConfig, TraceCore
from repro.sim import config as cfgs
from repro.sim.simulator import DeadlockError, MemorySystem, Simulator
from repro.workloads.mixes import mix_traces


def _build(config, park_admission, accesses=300, mix="mix0", seed=0):
    traces = mix_traces(mix, accesses, fragmentation=0.1, seed=seed)
    cores = [TraceCore(trace, CoreConfig(), core_id=i)
             for i, trace in enumerate(traces)]
    return Simulator(MemorySystem(config), cores,
                     park_admission=park_admission)


class _ParkCountingSimulator(Simulator):
    """Counts how many admissions actually parked (test-only)."""

    parks = 0

    def _try_enqueue(self, core, ready):
        before = len(self._parked_cores)
        admitted = super()._try_enqueue(core, ready)
        if len(self._parked_cores) > before:
            self.parks += 1
        return admitted


class TestWakeOnRoomDeterminism:
    def test_digests_match_with_parking_on_and_off(self):
        # Tiny queues force constant admission failures, the regime
        # where parking and busy-retry could diverge if the re-arm
        # protocol lost or reordered a wake.
        config = replace(cfgs.ddr4_baseline(),
                         queue=QueueConfig(read_depth=2, write_depth=2,
                                           drain_high=2, drain_low=1))
        parked = _build(config, park_admission=True).run()
        retried = _build(config, park_admission=False).run()
        assert parked.digest() == retried.digest()
        assert parked.stats.commands_issued > 0

    def test_default_config_digests_match_too(self):
        config = cfgs.vsb()
        parked = _build(config, park_admission=True, accesses=200).run()
        retried = _build(config, park_admission=False,
                         accesses=200).run()
        assert parked.digest() == retried.digest()

    def test_parking_actually_engages_on_tiny_queues(self):
        config = replace(cfgs.ddr4_baseline(),
                         queue=QueueConfig(read_depth=2, write_depth=2,
                                           drain_high=2, drain_low=1))
        traces = mix_traces("mix0", 300, fragmentation=0.1, seed=0)
        cores = [TraceCore(trace, CoreConfig(), core_id=i)
                 for i, trace in enumerate(traces)]
        sim = _ParkCountingSimulator(MemorySystem(config), cores,
                                     park_admission=True)
        sim.run()
        assert sim.parks > 0
        # Every parked core was eventually woken and drained.
        assert not sim._parked_cores
        assert all(not lst for lst in sim._parked)

    def test_lost_wake_raises_parked_deadlock(self):
        config = replace(cfgs.ddr4_baseline(),
                         queue=QueueConfig(read_depth=2, write_depth=2,
                                           drain_high=2, drain_low=1))
        sim = _build(config, park_admission=True, accesses=50)

        commit = sim._commit

        def commit_without_wakes(idx, candidate):
            commit(idx, candidate)
            for lst in sim._parked:
                lst.clear()  # drop the wake signal, keep cores parked

        sim._commit = commit_without_wakes
        with pytest.raises(DeadlockError, match="parked"):
            sim.run()


class TestRouteCacheBound:
    def test_cache_never_exceeds_capacity(self, monkeypatch):
        monkeypatch.setattr(MemorySystem, "ROUTE_CACHE_CAPACITY", 8)
        system = MemorySystem(cfgs.ddr4_baseline())
        for i in range(50):
            system.controller_for(i * 64)
            assert system.route_cache_size <= 8
        assert system.route_cache_clears >= 5

    def test_cached_and_fresh_routes_agree(self, monkeypatch):
        monkeypatch.setattr(MemorySystem, "ROUTE_CACHE_CAPACITY", 4)
        system = MemorySystem(cfgs.ddr4_baseline())
        fresh = MemorySystem(cfgs.ddr4_baseline())
        addresses = [i * 4096 for i in range(16)]
        for address in addresses + addresses:  # second pass hits/misses
            _, coords, idx = system.controller_for(address)
            _, expected, expected_idx = fresh.controller_for(address)
            assert coords == expected
            assert idx == expected_idx

    def test_unbounded_footprint_would_have_grown(self):
        # Sanity: the default capacity is finite and the counter starts
        # at zero on a fresh system.
        system = MemorySystem(cfgs.ddr4_baseline())
        assert system.ROUTE_CACHE_CAPACITY == 1 << 16
        assert system.route_cache_clears == 0
        assert system.route_cache_size == 0
