"""The refactor invariant: every figure's numbers are bit-identical.

``tests/data/figure_digests.json`` was pinned by running
``tools/pin_figure_digests.py`` against the *pre-refactor* experiment
layer.  These tests recompute every figure through the declarative
spec / content-addressed store / runner path -- cold store, warm
store, and through the parallel grid -- and assert digest equality.
Digests hash the canonical JSON of the reduced outputs, and JSON
round-trips Python floats exactly, so equality means bit-identical
arithmetic, not "close enough".
"""

import json
import os

import pytest

from repro.sim.experiments import ExperimentContext
from repro.sim.pinning import (
    FIGURE_BUILDERS,
    figure_payload,
    payload_digest,
    pinned_settings,
)
from repro.sim.runner import run_spec
from repro.sim.specs import fig12_spec

_DATA = os.path.join(os.path.dirname(__file__), os.pardir, "data",
                     "figure_digests.json")


def _pins() -> dict:
    with open(_DATA) as fh:
        return json.load(fh)


def test_pin_file_covers_every_builder_at_the_right_scale():
    pins = _pins()
    assert set(pins["figures"]) == set(FIGURE_BUILDERS)
    s = pinned_settings()
    assert pins["settings"] == {
        "accesses_per_core": s.accesses_per_core,
        "fragmentation": s.fragmentation,
        "seed": s.seed,
        "mixes": list(s.mixes),
    }


def test_every_figure_matches_its_pin_cold_then_warm(tmp_path,
                                                     monkeypatch):
    """One store directory, two lives: a cold context computes every
    figure and must match the pre-refactor pins; a second context over
    the same store must reproduce them entirely from disk."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    pins = _pins()["figures"]
    cold = ExperimentContext(pinned_settings())
    for name, entry in pins.items():
        assert payload_digest(figure_payload(name, cold)) == \
            entry["digest"], f"{name} diverged from pre-refactor (cold)"
    warm = ExperimentContext(pinned_settings())
    for name, entry in pins.items():
        assert payload_digest(figure_payload(name, warm)) == \
            entry["digest"], f"{name} diverged from pre-refactor (warm)"
    # The warm pass simulated nothing: the speedup figures' grids come
    # back 100% from the store.
    _, report = run_spec(fig12_spec(pinned_settings()))
    assert report.submitted == 0
    assert report.store_hits == report.cells > 0


def test_fig12_matches_its_pin_through_the_parallel_grid(tmp_path,
                                                         monkeypatch):
    """Cold run with ``--jobs 2`` and the cost gate forced open: the
    pool path must land on the same pinned digest as serial."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    monkeypatch.setenv("REPRO_GRID_MIN_COST", "0")
    context = ExperimentContext(pinned_settings(), jobs=2)
    assert payload_digest(figure_payload("fig12", context)) == \
        _pins()["figures"]["fig12"]["digest"]
