"""The per-command event trace: schema, capping, exporters."""

import csv
import io
import json

import pytest

from repro.core.mechanisms import EruConfig
from repro.dram.commands import CommandKind
from repro.sim import config as cfgs
from repro.sim.accounting import ObserveOptions, StallBucket
from repro.sim.simulator import run_traces
from repro.sim.tracing import TRACE_FIELDS, TraceEvent, TraceSink
from repro.workloads.mixes import mix_traces


def traced_run(config, mix="mix0", accesses=250, limit=None):
    return run_traces(
        config, mix_traces(mix, accesses),
        observe=ObserveOptions(trace=True, trace_limit=limit))


def test_one_event_per_committed_command():
    result = traced_run(cfgs.vsb(EruConfig.full(4)))
    assert result.trace is not None
    assert len(result.trace) == result.stats.commands_issued
    assert result.trace.dropped == 0


def test_events_carry_the_documented_schema():
    result = traced_run(cfgs.vsb(EruConfig.full(4)))
    buckets = {b.value for b in StallBucket}
    kinds = {k.name for k in CommandKind}
    assert all(tuple(d) == TRACE_FIELDS
               for d in result.trace.to_dicts())
    for event in result.trace:
        assert event.time_ps >= 0
        assert event.kind in kinds
        assert event.stall in buckets
        assert event.wait_ps >= 0
        if event.kind == "ACT":
            assert event.row >= 0 and event.core >= 0
        if event.kind in ("RD", "WR"):
            assert event.row == -1 and event.core >= 0
        if event.kind not in ("PRE", "PRE_PARTIAL"):
            assert event.cause == ""


def test_per_channel_traces_interleave_monotonically():
    result = traced_run(cfgs.ddr4_baseline())
    last = {}
    for event in result.trace:
        if event.channel in last:
            assert event.time_ps > last[event.channel]
        last[event.channel] = event.time_ps
    assert len(last) == 2, "both channels of the preset must appear"


def test_precharge_events_name_their_cause():
    result = traced_run(cfgs.vsb(EruConfig.naive(4)), accesses=400)
    pres = [e for e in result.trace
            if e.kind in ("PRE", "PRE_PARTIAL")]
    assert pres, "a 400-access mix must precharge at least once"
    assert all(e.cause for e in pres)
    assert any(e.cause == "plane_conflict" for e in pres), \
        "naive VSB exists to demonstrate plane-conflict precharges"


def test_trace_limit_counts_dropped_events():
    full = traced_run(cfgs.ddr4_baseline(), accesses=200)
    total = len(full.trace)
    capped = traced_run(cfgs.ddr4_baseline(), accesses=200,
                        limit=total // 2)
    assert len(capped.trace) == total // 2
    assert capped.trace.dropped == total - total // 2
    assert capped.trace.to_dicts() == full.trace.to_dicts()[:total // 2]


def test_zero_limit_keeps_nothing_but_counts_everything():
    result = traced_run(cfgs.ddr4_baseline(), accesses=150, limit=0)
    assert len(result.trace) == 0
    assert result.trace.dropped == result.stats.commands_issued


def test_negative_limit_rejected():
    with pytest.raises(ValueError):
        TraceSink(limit=-1)


def test_jsonl_roundtrip():
    result = traced_run(cfgs.vsb(), accesses=150)
    payload = io.StringIO()
    count = result.trace.write_jsonl(payload)
    lines = payload.getvalue().splitlines()
    assert count == len(lines) == len(result.trace)
    parsed = [json.loads(line) for line in lines]
    assert parsed == [dict(sorted(d.items()))
                      for d in result.trace.to_dicts()]
    assert all(set(d) == set(TRACE_FIELDS) for d in parsed)


def test_csv_roundtrip():
    result = traced_run(cfgs.vsb(), accesses=150)
    payload = io.StringIO()
    count = result.trace.write_csv(payload)
    rows = list(csv.reader(io.StringIO(payload.getvalue())))
    assert tuple(rows[0]) == TRACE_FIELDS
    assert len(rows) - 1 == count
    first = dict(zip(TRACE_FIELDS, rows[1]))
    original = result.trace.to_dicts()[0]
    assert int(first["time_ps"]) == original["time_ps"]
    assert first["kind"] == original["kind"]
    assert first["stall"] == original["stall"]


def test_sink_is_shared_across_channels_in_time_order_per_record():
    sink = TraceSink()
    for i, ch in enumerate((0, 1, 0)):
        sink.record(TraceEvent(
            time_ps=i * 1000, channel=ch, bank=0, subbank=0, group=0,
            kind="ACT", cause="", row=1, core=0, stall="issue",
            wait_ps=0))
    assert [e.channel for e in sink] == [0, 1, 0]
    assert len(sink) == 3


def test_trace_wait_matches_accounting_totals():
    """Sum of traced waits == sum of non-issue, non-tail gap buckets."""
    result = traced_run(cfgs.vsb(EruConfig.full(4)), accesses=300)
    report = result.accounting
    traced_wait = sum(e.wait_ps for e in result.trace)
    totals = report.totals()
    tail_free = sum(ps for bucket, ps in totals.items()
                    if bucket is not StallBucket.ISSUE)
    # The accounting additionally files the post-last-command drained
    # tail (and any pre-first-arrival idle) outside the trace, so the
    # traced waits can only undershoot.
    assert traced_wait <= tail_free
    # But each traced wait must itself be accounted: a run's gaps
    # dominate its issue slots on a memory-bound mix.
    assert traced_wait > 0
