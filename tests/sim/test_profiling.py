"""The cProfile harness shared by ``repro profile`` and tools/."""

import pstats

from repro.cli import main
from repro.sim import config as cfgs
from repro.sim.profiling import profile_run


class TestProfileRun:
    def test_reports_counters_and_digest(self):
        report = profile_run(cfgs.ddr4_baseline(), "mix0", accesses=60)
        assert report.commands > 0
        assert report.transactions > 0
        assert report.peeks > 0
        assert len(report.digest) == 64
        assert report.commands_per_second > 0

    def test_paths_profile_to_the_same_digest(self):
        cell = dict(mix="mix0", accesses=60)
        reference = profile_run(cfgs.vsb(), incremental=False, **cell)
        incremental = profile_run(cfgs.vsb(), incremental=True, **cell)
        assert reference.digest == incremental.digest
        assert reference.commands == incremental.commands
        # The selection tables examine strictly fewer candidates.
        assert (incremental.candidates_examined
                < reference.candidates_examined)

    def test_format_table_lists_scheduler_frames(self):
        report = profile_run(cfgs.ddr4_baseline(), "mix0", accesses=60)
        text = report.format_table(limit=40, sort="cumulative")
        assert "digest:" in text
        assert "simulator" in text  # the profiled event loop shows up

    def test_dump_writes_loadable_pstats(self, tmp_path):
        report = profile_run(cfgs.ddr4_baseline(), "mix0", accesses=60)
        out = tmp_path / "profile.pstats"
        report.dump(str(out))
        assert pstats.Stats(str(out)).total_calls > 0


class TestProfileCli:
    def test_repro_profile_smoke(self, capsys):
        main(["profile", "--config", "ddr4", "--mix", "mix0",
              "--accesses", "60", "--limit", "5"])
        out = capsys.readouterr().out
        assert "digest:" in out
        assert "commands:" in out

    def test_repro_profile_reference_path(self, capsys):
        main(["profile", "--config", "ddr4", "--mix", "mix0",
              "--accesses", "60", "--path", "reference"])
        assert "digest:" in capsys.readouterr().out
