"""The content-addressed result store: round-trips, merges, gc.

The store's contract is that a restored result is *behaviourally
indistinguishable* from the live one (same digest, same reducer
inputs), that concurrent writers merge freshest-last without dropping
sidecars, and that entries from other cache versions are ignored --
never misread -- including the pre-v4 ``alone_ipc.json`` table.
"""

import json
import multiprocessing
import os

import pytest

from repro.cpu.core import CoreConfig
from repro.sim import config as cfgs
from repro.sim.accounting import ObserveOptions
from repro.sim.simulator import run_traces
from repro.sim.store import (
    CACHE_VERSION,
    AloneIpcDiskCache,
    ResultStore,
    store_key,
)
from repro.workloads.mixes import mix_traces


def _small_result(observe=False):
    traces = mix_traces("mix0", 200, fragmentation=0.1, seed=0)
    return run_traces(cfgs.vsb(), traces,
                      observe=ObserveOptions() if observe else None)


def _key(config=None, seed=0):
    return store_key(config or cfgs.vsb(), accesses=200,
                     fragmentation=0.1, seed=seed, mix="mix0",
                     core_config=CoreConfig())


def test_round_trip_is_digest_identical(tmp_path):
    store = ResultStore(str(tmp_path))
    live = _small_result()
    store.put(_key(), live)
    restored = ResultStore(str(tmp_path)).get(_key())
    assert restored is not None
    # Digest equality covers IPCs, stats, energy, and precharge causes
    # -- everything any figure reducer reads.
    assert restored.digest() == live.digest()
    assert restored.ipcs == list(live.ipcs)
    assert restored.energy.activation_energy_nj() == \
        live.energy.activation_energy_nj()
    assert restored.energy.access_energy_nj() == \
        live.energy.access_energy_nj()
    assert restored.stats.read_latencies.quartiles() == \
        live.stats.read_latencies.quartiles()


def test_store_key_demands_exactly_one_workload():
    with pytest.raises(ValueError):
        store_key(cfgs.vsb(), accesses=200, fragmentation=0.1, seed=0)
    with pytest.raises(ValueError):
        store_key(cfgs.vsb(), accesses=200, fragmentation=0.1, seed=0,
                  mix="mix0", benchmark="mcf")


def test_unobserved_overwrite_keeps_accounting_sidecar(tmp_path):
    """Freshest-last merge: a plain re-run must not drop the sidecar an
    observed run persisted earlier."""
    observed = _small_result(observe=True)
    assert observed.accounting is not None
    first = ResultStore(str(tmp_path))
    first.put(_key(), observed, key_info={"kind": "mix"})
    # A different store instance (e.g. another process's runner)
    # rewrites the same key without accounting.
    second = ResultStore(str(tmp_path))
    second.put(_key(), _small_result(observe=False))
    merged = ResultStore(str(tmp_path)).get(_key(),
                                            need_accounting=True)
    assert merged is not None and merged.accounting is not None
    assert merged.accounting.to_dict() == observed.accounting.to_dict()
    # The key sidecar survives too.
    entry = ResultStore(str(tmp_path)).load_entry(_key())
    assert entry["key"] == {"kind": "mix"}


def test_need_accounting_misses_on_plain_entries(tmp_path):
    store = ResultStore(str(tmp_path))
    store.put(_key(), _small_result())
    assert store.get(_key(), need_accounting=True) is None
    assert store.get(_key()) is not None


def _writer(directory, key, value):
    ResultStore(directory).put_scalar(key, value)


def test_two_process_writers_both_persist(tmp_path):
    """Two OS processes writing distinct keys into one store directory
    must both land (atomic per-entry files, no shared table to race)."""
    ctx = multiprocessing.get_context(
        "fork" if "fork" in multiprocessing.get_all_start_methods()
        else None)
    keys = [_key(seed=1), _key(seed=2)]
    procs = [ctx.Process(target=_writer,
                         args=(str(tmp_path), key, float(i)))
             for i, key in enumerate(keys)]
    for p in procs:
        p.start()
    for p in procs:
        p.join()
        assert p.exitcode == 0
    store = ResultStore(str(tmp_path))
    assert [store.get_scalar(k) for k in keys] == [0.0, 1.0]


def test_v3_alone_ipc_table_is_ignored_not_misread(tmp_path):
    """Regression for the v3 -> v4 migration: the old single-file
    alone-IPC table must never surface as a store hit."""
    key = AloneIpcDiskCache.key(cfgs.ddr4_baseline(), "mcf", 0.1, 0,
                                250, 4e9)
    # The pre-v4 layout: one JSON table of {key: ipc} at the root.
    with open(tmp_path / "alone_ipc.json", "w") as fh:
        json.dump({"version": 3, "entries": {key: 99.0}}, fh)
    cache = AloneIpcDiskCache(str(tmp_path))
    assert cache.get(key) is None
    # Even a hand-placed *entry file* from another version reads as a
    # miss (the version is checked inside the payload as well).
    store = ResultStore(str(tmp_path))
    path = store.path_for(key)
    os.makedirs(os.path.dirname(path), exist_ok=True)
    with open(path, "w") as fh:
        json.dump({"version": 3, "result": {"ipcs": [99.0]}}, fh)
    assert cache.get(key) is None
    assert store.get(key) is None
    # A fresh put repairs the entry in place.
    cache.put(key, 1.5)
    assert AloneIpcDiskCache(str(tmp_path)).get(key) == 1.5


def test_scalar_and_full_entries_share_one_read_path(tmp_path):
    """A full grid-run summary satisfies an alone-IPC ``get`` and vice
    versa: both read ``ipcs[0]`` of the same entry."""
    store = ResultStore(str(tmp_path))
    live = _small_result()
    store.put(_key(), live)
    view = AloneIpcDiskCache(str(tmp_path))
    assert view.get(_key()) == live.ipcs[0]
    view.put(_key(seed=5), 2.75)
    assert ResultStore(str(tmp_path)).get_scalar(_key(seed=5)) == 2.75


def test_gc_prunes_versions_age_and_excess(tmp_path):
    store = ResultStore(str(tmp_path))
    for seed in range(3):
        store.put_scalar(_key(seed=seed), float(seed))
    # A stale-version file and a corrupt file both go unconditionally.
    stale = store.path_for("stale")
    os.makedirs(os.path.dirname(stale), exist_ok=True)
    with open(stale, "w") as fh:
        json.dump({"version": CACHE_VERSION - 1, "result": {}}, fh)
    with open(os.path.join(os.path.dirname(stale), "bad.json"),
              "w") as fh:
        fh.write("{not json")
    report = store.gc()
    assert (report.scanned, report.removed, report.kept) == (5, 2, 3)
    assert report.freed_bytes > 0
    # Age-based pruning: backdate one survivor.
    old = store.load_entry(_key(seed=0))
    old["written_at"] = 0.0
    with open(store.path_for(_key(seed=0)), "w") as fh:
        json.dump(old, fh)
    report = store.gc(max_age_days=1)
    assert (report.removed, report.kept) == (1, 2)
    # Size cap keeps the newest N.
    report = store.gc(max_entries=1)
    assert (report.removed, report.kept) == (1, 1)
    assert store.counters.evictions == 4


def test_counters_tally_hits_misses_puts(tmp_path):
    store = ResultStore(str(tmp_path))
    assert store.get(_key()) is None
    store.put(_key(), _small_result())
    assert store.get(_key()) is not None
    c = store.counters
    assert (c.hits, c.misses, c.puts) == (1, 1, 1)
