"""Golden-digest equivalence of the two scheduler selection paths.

The incremental scheduler must be *bit-identical* to the reference
(rebuild-from-scratch) path on every configuration preset: same command
stream (kind, time, bank, slot of every issued command) and same
architectural results (IPCs, latencies, energy -- everything
:meth:`SimulationResult.digest` hashes).  Any divergence means a stale
cache or a broken tie-break, not a tolerable approximation.
"""

import hashlib
from dataclasses import replace

import pytest

import repro.controller.scheduler as scheduler_mod
from repro.cpu.core import CoreConfig, TraceCore
from repro.sim import config as cfgs
from repro.sim.simulator import MemorySystem, Simulator
from repro.workloads.mixes import mix_traces

#: The shared preset corpus (every experiment organisation plus stress
#: variants); lives in :mod:`repro.sim.config` so the differential
#: fuzzer (``tools/fuzz_schedules.py``) draws from the same list.
PRESETS = cfgs.all_presets()


def command_stream_hash(system: MemorySystem) -> str:
    """Hash of every issued command across all channels, in issue order."""
    h = hashlib.sha256()
    for controller in system.controllers:
        log = controller.channel.command_log
        assert log is not None, "config must set record_commands"
        for rec in log:
            h.update(f"{rec.kind},{rec.time},{rec.bank},{rec.bank_group},"
                     f"{rec.slot},{rec.row};".encode())
    return h.hexdigest()


def run_with_mode(config, traces, incremental: bool):
    """One full simulation under the given scheduler path.

    Uses the config-level override (``SystemConfig.incremental``), the
    same plumbing the differential fuzzer relies on, instead of
    flipping the module default.
    """
    system = MemorySystem(replace(config, record_commands=True,
                                  incremental=incremental))
    cores = [TraceCore(t, CoreConfig(), core_id=i)
             for i, t in enumerate(traces)]
    result = Simulator(system, cores).run()
    return result, command_stream_hash(system)


@pytest.mark.parametrize("config", PRESETS,
                         ids=[c.name for c in PRESETS])
def test_incremental_matches_reference(config):
    traces = mix_traces("mix0", 250)
    ref, ref_cmds = run_with_mode(config, traces, incremental=False)
    inc, inc_cmds = run_with_mode(config, traces, incremental=True)
    assert inc_cmds == ref_cmds, "command streams diverge"
    assert inc.digest() == ref.digest(), "architectural results diverge"


def test_incremental_is_the_default():
    """The optimisation must actually be on in normal runs."""
    assert scheduler_mod.INCREMENTAL_DEFAULT is True


def test_perf_counters_show_cache_reuse():
    """peeks should far exceed candidate builds when caching works."""
    traces = mix_traces("mix0", 400)
    inc, _ = run_with_mode(cfgs.vsb(), traces, incremental=True)
    ref, _ = run_with_mode(cfgs.vsb(), traces, incremental=False)
    assert inc.stats.peeks == ref.stats.peeks
    # The reference path rebuilds every candidate on every peek; the
    # incremental path only rebuilds dirty banks.
    assert inc.stats.candidates_built < ref.stats.candidates_built / 2
