"""Golden-digest equivalence of the two scheduler selection paths.

The incremental scheduler must be *bit-identical* to the reference
(rebuild-from-scratch) path on every configuration preset: same command
stream (kind, time, bank, slot of every issued command) and same
architectural results (IPCs, latencies, energy -- everything
:meth:`SimulationResult.digest` hashes).  Any divergence means a stale
cache or a broken tie-break, not a tolerable approximation.
"""

import hashlib
from dataclasses import replace

import pytest

import repro.controller.scheduler as scheduler_mod
from repro.core.mechanisms import EruConfig
from repro.cpu.core import CoreConfig, TraceCore
from repro.sim import config as cfgs
from repro.sim.simulator import MemorySystem, Simulator
from repro.workloads.mixes import mix_traces

#: Every preset the experiments evaluate, plus an adaptive-page-policy
#: variant (the policy-close path has its own candidate bookkeeping).
PRESETS = [
    cfgs.ddr4_baseline(),
    cfgs.bg32(),
    cfgs.ideal32(),
    cfgs.vsb(EruConfig.naive(4)),
    cfgs.vsb(EruConfig.naive_ddb(4)),
    cfgs.vsb(EruConfig.ewlr_only(4)),
    cfgs.vsb(EruConfig.rap_only(4)),
    cfgs.vsb(EruConfig.full(4)),
    cfgs.paired_bank(),
    cfgs.paired_bank(EruConfig.full(4, ddb=True)),
    cfgs.half_dram(),
    cfgs.masa(4),
    cfgs.masa(8),
    cfgs.masa_eruca(8),
    cfgs.vsb(EruConfig.full(4)).at_frequency(2.4e9),
    replace(cfgs.ddr4_baseline(), idle_close_ps=400_000,
            name="DDR4+close@400ns"),
    replace(cfgs.vsb(EruConfig.full(4)), idle_close_ps=400_000,
            name="VSB+close@400ns"),
]


def command_stream_hash(system: MemorySystem) -> str:
    """Hash of every issued command across all channels, in issue order."""
    h = hashlib.sha256()
    for controller in system.controllers:
        log = controller.channel.command_log
        assert log is not None, "config must set record_commands"
        for rec in log:
            h.update(f"{rec.kind},{rec.time},{rec.bank},{rec.bank_group},"
                     f"{rec.slot},{rec.row};".encode())
    return h.hexdigest()


def run_with_mode(config, traces, incremental: bool):
    """One full simulation under the given scheduler path."""
    old = scheduler_mod.INCREMENTAL_DEFAULT
    scheduler_mod.INCREMENTAL_DEFAULT = incremental
    try:
        system = MemorySystem(replace(config, record_commands=True))
        cores = [TraceCore(t, CoreConfig(), core_id=i)
                 for i, t in enumerate(traces)]
        result = Simulator(system, cores).run()
        return result, command_stream_hash(system)
    finally:
        scheduler_mod.INCREMENTAL_DEFAULT = old


@pytest.mark.parametrize("config", PRESETS,
                         ids=[c.name for c in PRESETS])
def test_incremental_matches_reference(config):
    traces = mix_traces("mix0", 250)
    ref, ref_cmds = run_with_mode(config, traces, incremental=False)
    inc, inc_cmds = run_with_mode(config, traces, incremental=True)
    assert inc_cmds == ref_cmds, "command streams diverge"
    assert inc.digest() == ref.digest(), "architectural results diverge"


def test_incremental_is_the_default():
    """The optimisation must actually be on in normal runs."""
    assert scheduler_mod.INCREMENTAL_DEFAULT is True


def test_perf_counters_show_cache_reuse():
    """peeks should far exceed candidate builds when caching works."""
    traces = mix_traces("mix0", 400)
    inc, _ = run_with_mode(cfgs.vsb(), traces, incremental=True)
    ref, _ = run_with_mode(cfgs.vsb(), traces, incremental=False)
    assert inc.stats.peeks == ref.stats.peeks
    # The reference path rebuilds every candidate on every peek; the
    # incremental path only rebuilds dirty banks.
    assert inc.stats.candidates_built < ref.stats.candidates_built / 2
