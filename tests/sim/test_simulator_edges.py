"""Edge-case tests for the simulator event loop."""

import pytest

from repro.controller.mapping import AddressMapping, MappingConfig
from repro.cpu.core import CoreConfig, TraceCore
from repro.cpu.trace import Trace, TraceEntry
from repro.sim.config import ddr4_baseline
from repro.sim.simulator import (
    CommandBudgetExceeded,
    DeadlockError,
    MemorySystem,
    Simulator,
    run_traces,
)


def seq_trace(n, gap=20):
    return Trace.from_entries(
        [TraceEntry(gap, False, i * 64) for i in range(n)])


class TestLimits:
    def test_max_commands_raises_budget_error(self):
        system = MemorySystem(ddr4_baseline())
        cores = [TraceCore(seq_trace(100), CoreConfig(), core_id=0)]
        with pytest.raises(CommandBudgetExceeded):
            Simulator(system, cores).run(max_commands=3)

    def test_budget_error_is_not_a_deadlock(self):
        """Budget exhaustion must not masquerade as a modelling bug."""
        system = MemorySystem(ddr4_baseline())
        cores = [TraceCore(seq_trace(100), CoreConfig(), core_id=0)]
        with pytest.raises(CommandBudgetExceeded) as exc:
            Simulator(system, cores).run(max_commands=3)
        assert not isinstance(exc.value, DeadlockError)

    def test_write_only_trace_completes(self):
        t = Trace.from_entries(
            [TraceEntry(10, True, i * 64) for i in range(100)])
        res = run_traces(ddr4_baseline(), [t])
        assert res.energy.writes == 100
        assert res.stats.read_latencies == []

    def test_single_access_trace(self):
        t = Trace.from_entries([TraceEntry(0, False, 0)])
        res = run_traces(ddr4_baseline(), [t])
        assert res.stats.columns == 1

    def test_zero_gap_burst(self):
        t = Trace.from_entries(
            [TraceEntry(0, False, i * 64) for i in range(64)])
        res = run_traces(ddr4_baseline(), [t])
        assert res.stats.columns == 64


class TestHeterogeneousCores:
    def test_cores_with_different_lengths(self):
        a = seq_trace(200)
        b = seq_trace(20)
        res = run_traces(ddr4_baseline(), [a, b])
        assert len(res.finish_times) == 2
        assert res.finish_times[0] > res.finish_times[1]

    def test_idle_core_with_empty_trace(self):
        res = run_traces(ddr4_baseline(),
                         [seq_trace(50), Trace.from_entries([])])
        assert res.stats.columns == 50
        assert res.ipcs[1] == CoreConfig().issue_width  # trivially done


class TestMappingVariants:
    def test_subbank_high_roundtrip(self):
        cfg = MappingConfig(subbank_bits=1, row_bits=16,
                            col_hi_bits=3, subbank_low=False)
        m = AddressMapping(cfg)
        for addr in (0, 0x4040, cfg.capacity_bytes - 64):
            addr &= ~63
            assert m.encode(m.decode(addr)) == addr

    def test_subbank_position_changes_interleave(self):
        low = AddressMapping(MappingConfig(
            subbank_bits=1, row_bits=16, col_hi_bits=3,
            subbank_low=True))
        high = AddressMapping(MappingConfig(
            subbank_bits=1, row_bits=16, col_hi_bits=3,
            subbank_low=False))
        # Walking 8 KiB of consecutive lines flips the sub-bank under
        # the low placement (bit 12) but not under the high placement.
        low_ids = {low.decode(i * 64).subbank for i in range(128)}
        high_ids = {high.decode(i * 64).subbank for i in range(128)}
        assert low_ids == {0, 1}
        assert high_ids == {0}
