"""The channel-sharded event loop: equivalence, horizons, wake-on-room.

Four layers of evidence that :mod:`repro.sim.shards` is a pure
performance transform of the classic loop:

* **Digest matrix**: every preset, every backend (reference scheduler,
  incremental scheduler, sharded-serial, sharded-threads) -- identical
  command streams and behaviour digests.
* **Horizon property** (hypothesis): on randomly drawn traffic, no
  shard ever commits a command at or past its interaction horizon, and
  no cross-channel arrival ever materialises before the horizon of the
  channel it lands on -- i.e. the computed horizon is never later than
  the first true cross-channel dependency.
* **Incremental-vs-oracle** (hypothesis): the version-keyed
  contribution cache assembles exactly the horizons the full
  recomputation would, over random retire/park/switch sequences
  (``check_horizons=True`` asserts equality on every assembly).
* **Wake-on-room determinism**: with queues tight enough to park cores,
  the retire-callback wake path reproduces the classic loop's digests
  exactly -- under the sweep driver and the threaded driver alike.
"""

import hashlib
from dataclasses import replace

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.controller.queue import QueueConfig
from repro.cpu.core import BLOCKED, CoreConfig, TraceCore
from repro.cpu.trace import Trace, TraceEntry
from repro.sim import config as cfgs
from repro.sim.shards import (
    SHARD_MODES,
    ShardedSimulator,
    resolve_shard_mode,
)
from repro.sim.simulator import MemorySystem, Simulator, run_traces
from repro.workloads.mixes import mix_traces

PRESETS = cfgs.all_presets()


def command_stream_hash(system: MemorySystem) -> str:
    h = hashlib.sha256()
    for controller in system.controllers:
        log = controller.channel.command_log
        assert log is not None
        for rec in log:
            h.update(f"{rec.kind},{rec.time},{rec.bank},{rec.bank_group},"
                     f"{rec.slot},{rec.row};".encode())
    return h.hexdigest()


def run_backend(config, traces, backend, incremental=True,
                debug_trace=None):
    """One simulation on the chosen engine; (simulator, result, hash)."""
    system = MemorySystem(replace(config, record_commands=True,
                                  incremental=incremental))
    cores = [TraceCore(t, CoreConfig(), core_id=i)
             for i, t in enumerate(traces)]
    if backend == "off":
        sim = Simulator(system, cores)
    else:
        sim = ShardedSimulator(system, cores, backend=backend,
                               debug_trace=debug_trace)
    result = sim.run()
    return sim, result, command_stream_hash(system)


class TestModeResolution:
    def test_known_modes(self):
        for mode in SHARD_MODES:
            assert resolve_shard_mode(mode) == mode

    def test_none_falls_back_to_default(self):
        assert resolve_shard_mode(None) in SHARD_MODES

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="unknown shard mode"):
            resolve_shard_mode("processes")

    def test_unknown_backend_rejected(self):
        system = MemorySystem(cfgs.ddr4_baseline())
        with pytest.raises(ValueError, match="unknown shard backend"):
            ShardedSimulator(system, [], backend="bogus")


@pytest.mark.parametrize("config", PRESETS,
                         ids=[c.name for c in PRESETS])
def test_digest_matrix(config):
    """Reference / incremental / sharded-serial / sharded-threads."""
    traces = mix_traces("mix0", 200)
    _, ref, ref_cmds = run_backend(config, traces, "off",
                                   incremental=False)
    runs = [run_backend(config, traces, "off"),
            run_backend(config, traces, "serial"),
            run_backend(config, traces, "threads")]
    for _, result, cmds in runs:
        assert cmds == ref_cmds
        assert result.digest() == ref.digest()


def test_mid_round_block_regression():
    """A bound core blocking behind a foreign channel's read.

    Long mix6 runs on DDR4 once produced arrival stamps 1.4 ns late
    under sharding: a core tracked in its home shard's heap blocked
    mid-round behind a read another channel still held, and the unblock
    arrival -- delivered at the barrier -- landed below times the home
    shard had already processed.  The horizon now clamps a ready core's
    home channel to the foreign read-burst bound; this pins the exact
    traffic that exposed the hole (latency histograms differed while
    command streams matched, so only the digest sees it).
    """
    traces = mix_traces("mix6", 600)
    config = cfgs.ddr4_baseline()
    _, ref, ref_cmds = run_backend(config, traces, "off")
    for backend in ("serial", "threads"):
        _, result, cmds = run_backend(config, traces, backend)
        assert cmds == ref_cmds
        assert result.digest() == ref.digest()


def fuzz_traces(seed: int, cores: int, accesses: int):
    import random
    rng = random.Random(seed)
    streaming = rng.uniform(0.2, 0.8)
    traces = []
    for core in range(cores):
        base = rng.randrange(0, 1 << 30) & ~63
        entries = []
        for i in range(accesses):
            if rng.random() < streaming:
                addr = (base + i * 64) & ((1 << 34) - 64)
            else:
                addr = rng.randrange(0, 1 << 34) & ~63
            entries.append(TraceEntry(rng.randrange(0, 12),
                                      rng.random() < 0.3, addr))
        traces.append(Trace.from_entries(entries, name=f"f{core}"))
    return traces


def check_visit_records(visits):
    """Soundness assertions over per-visit debug records."""
    assert visits, "multi-channel run must record at least one visit"
    for record in visits:
        horizons = record["horizons"]
        i = record["shard"]
        if record["max_issue"] >= 0:
            assert record["max_issue"] < horizons[i]
        for ready, _cid, target in record["exports"]:
            assert ready >= horizons[target]
        assert record["s"][i] <= BLOCKED
        assert horizons[i] <= BLOCKED


@settings(max_examples=12, deadline=None)
@given(seed=st.integers(0, 1 << 30), cores=st.integers(2, 4),
       preset=st.sampled_from((0, 9, 13)))
def test_horizon_property(seed, cores, preset):
    """No commit at/past the horizon; no arrival before it.

    The debug trace records one entry per shard *visit* of the sweep
    driver: the horizon vector assembled for that visit, the largest
    issue time the shard committed under it, and every cross-channel
    arrival it produced.  Soundness is exactly: commits stay strictly
    below the visited shard's horizon, and every exported arrival's
    ready time is at or past the horizon of the channel it lands on
    (the horizon is never later than the first true cross-channel
    dependency).
    """
    config = PRESETS[preset]
    traces = fuzz_traces(seed, cores, 120)
    visits = []
    _, sharded, sharded_cmds = run_backend(config, traces, "serial",
                                           debug_trace=visits)
    _, ref, ref_cmds = run_backend(config, traces, "off")
    assert sharded_cmds == ref_cmds
    assert sharded.digest() == ref.digest()
    check_visit_records(visits)


def test_horizon_property_threads_records():
    """The threaded driver emits the same per-visit record schema."""
    config = PRESETS[0]
    traces = mix_traces("mix0", 150)
    visits = []
    _, result, cmds = run_backend(config, traces, "threads",
                                  debug_trace=visits)
    _, ref, ref_cmds = run_backend(config, traces, "off")
    assert cmds == ref_cmds
    assert result.digest() == ref.digest()
    check_visit_records(visits)


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 1 << 30), cores=st.integers(2, 4),
       preset=st.sampled_from((0, 9, 13)), tight=st.booleans())
def test_incremental_horizons_match_oracle(seed, cores, preset, tight):
    """The contribution cache reproduces the full recomputation.

    ``check_horizons=True`` re-derives every assembled horizon vector
    with the cache-free oracle (:meth:`ShardedSimulator._horizons_full`)
    and raises on the first divergence, so simply completing the run is
    the property.  ``tight`` queues force parking so the one input read
    outside the version key (parked-ness) is exercised too.
    """
    config = PRESETS[preset]
    if tight:
        config = replace(config, queue=QueueConfig(
            read_depth=2, write_depth=2, drain_high=2, drain_low=1))
    traces = fuzz_traces(seed, cores, 100)
    system = MemorySystem(config)
    cores_ = [TraceCore(t, CoreConfig(), core_id=i)
              for i, t in enumerate(traces)]
    sim = ShardedSimulator(system, cores_, backend="serial",
                           check_horizons=True)
    sim.run()
    assert sim.horizons_recomputed > 0
    # Every assembly touches every core exactly once, one way or the
    # other.
    assert (sim.horizons_recomputed + sim.horizons_reused) \
        % len(cores_) == 0


def test_oracle_armed_on_threads_backend():
    config = PRESETS[0]
    traces = mix_traces("mix3", 150)
    system = MemorySystem(config)
    cores = [TraceCore(t, CoreConfig(), core_id=i)
             for i, t in enumerate(traces)]
    ShardedSimulator(system, cores, backend="threads",
                     check_horizons=True).run()


def test_check_env_var_arms_oracle(monkeypatch):
    monkeypatch.setenv("REPRO_SHARDS_CHECK", "1")
    system = MemorySystem(PRESETS[0])
    sim = ShardedSimulator(system, [], backend="serial")
    assert sim.check_horizons


def test_shard_perf_counters_surface_in_result():
    """rounds / horizon-cache / peek-cache counters reach the result."""
    config = cfgs.ddr4_baseline()
    traces = mix_traces("mix0", 200)
    _, result, _ = run_backend(config, traces, "serial")
    assert result.rounds > 0
    assert result.horizons_recomputed > 0
    # Cores retire at most one request between consecutive assemblies
    # on average, so reuse must dominate rebuilds on real traffic.
    assert result.horizons_reused > result.horizons_recomputed
    assert result.stats.peek_reuses > 0
    assert result.retire_time_s > 0.0
    assert result.horizon_time_s >= 0.0


class TestDefaultBackend:
    """``sys._is_gil_enabled`` picks the default backend."""

    def test_gil_build_defaults_to_serial(self, monkeypatch):
        from repro.sim import shards
        monkeypatch.setattr(shards.sys, "_is_gil_enabled",
                            lambda: True, raising=False)
        assert shards._default_shard_mode() == "serial"

    def test_free_threaded_build_defaults_to_threads(self, monkeypatch):
        from repro.sim import shards
        monkeypatch.setattr(shards.sys, "_is_gil_enabled",
                            lambda: False, raising=False)
        assert shards._default_shard_mode() == "threads"

    def test_missing_probe_means_serial(self, monkeypatch):
        from repro.sim import shards
        monkeypatch.delattr(shards.sys, "_is_gil_enabled",
                            raising=False)
        assert shards._default_shard_mode() == "serial"


class TestWakeOnRoom:
    #: Queues this tight force parking on mix traffic.
    TIGHT = QueueConfig(read_depth=2, write_depth=2,
                        drain_high=2, drain_low=1)

    def test_parking_is_deterministic_under_sharding(self):
        config = replace(cfgs.ddr4_baseline(), queue=self.TIGHT)
        traces = mix_traces("mix0", 150)
        _, ref, ref_cmds = run_backend(config, traces, "off")
        for backend in ("serial", "threads"):
            sim, result, cmds = run_backend(config, traces, backend)
            assert sum(s.parks for s in sim.shards) > 0, \
                "queues this tight must exercise the parked path"
            assert cmds == ref_cmds
            assert result.digest() == ref.digest()


class TestRunTracesRouting:
    def test_off_and_serial_agree(self):
        traces = mix_traces("mix1", 120)
        config = cfgs.vsb()
        off = run_traces(config, traces, shards="off")
        ser = run_traces(config, traces, shards="serial")
        assert off.digest() == ser.digest()

    def test_config_knob_selects_backend(self):
        traces = mix_traces("mix0", 80)
        config = replace(cfgs.ddr4_baseline(), shards="threads")
        assert run_traces(config, traces).digest() == run_traces(
            cfgs.ddr4_baseline(), traces, shards="off").digest()

    def test_single_core_uses_classic_loop(self):
        # 1-core runs delegate to the classic loop (same digests by
        # construction); just pin the equality.
        traces = mix_traces("mix0", 100)[:1]
        config = cfgs.ddr4_baseline()
        assert run_traces(config, traces, shards="serial").digest() \
            == run_traces(config, traces, shards="off").digest()

    def test_budget_still_enforced(self):
        from repro.sim.simulator import CommandBudgetExceeded
        traces = mix_traces("mix0", 200)
        system = MemorySystem(cfgs.ddr4_baseline())
        cores = [TraceCore(t, CoreConfig(), core_id=i)
                 for i, t in enumerate(traces)]
        sim = ShardedSimulator(system, cores, backend="serial")
        with pytest.raises(CommandBudgetExceeded):
            sim.run(max_commands=50)
