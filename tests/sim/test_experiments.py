"""Tests for the experiment runners (small scale, shape assertions)."""

import pytest

from repro.sim.config import ddr4_baseline, ideal32, vsb
from repro.sim.experiments import (
    ExperimentContext,
    ExperimentSettings,
    fig12,
    fig12_configs,
    fig13,
    fig14,
    fig14_configs,
    fig15,
    fig15_configs,
    fig16,
    fig16_configs,
)

SMALL = ExperimentSettings(accesses_per_core=400, mixes=("mix0",))


@pytest.fixture(scope="module")
def context():
    return ExperimentContext(SMALL)


class TestContext:
    def test_traces_cached(self, context):
        a = context.traces("mix0")
        b = context.traces("mix0")
        assert a is b

    def test_traces_differ_by_fragmentation(self, context):
        a = context.traces("mix0", 0.1)
        b = context.traces("mix0", 0.9)
        assert a is not b

    def test_alone_ipc_cached_and_positive(self, context):
        a = context.alone_ipc("mcf")
        assert a > 0
        assert context.alone_ipc("mcf") == a

    def test_mix_ws_positive(self, context):
        ws, result = context.mix_ws(ddr4_baseline(), "mix0")
        assert ws > 0
        assert result.transactions == 4 * SMALL.accesses_per_core


class TestFig12:
    def test_table_covers_all_configs(self, context):
        table = fig12(context, configs=[ddr4_baseline(), ideal32()])
        assert set(table.values) == {"DDR4", "Ideal32"}

    def test_normalised_baseline_is_one(self, context):
        table = fig12(context, configs=[ddr4_baseline(), ideal32()])
        norm = table.normalized()
        assert all(v == pytest.approx(1.0)
                   for v in norm["DDR4"].values())

    def test_gmeans_exist_per_config(self, context):
        table = fig12(context, configs=[ddr4_baseline(), vsb()])
        gm = table.gmeans()
        assert gm["DDR4"] == pytest.approx(1.0)
        assert gm[vsb().name] > 0

    def test_default_config_list_shape(self):
        names = [c.name for c in fig12_configs()]
        assert names[0] == "DDR4"
        assert any("Ideal32" in n for n in names)
        assert any("Paired-bank" in n for n in names)


class TestFig13:
    def test_points_cover_grid(self, context):
        points = fig13(context, fragmentations=(0.1,), planes=(2, 4),
                       schemes=(("VSB(naive)+DDB",
                                 __import__("repro.core.mechanisms",
                                            fromlist=["EruConfig"])
                                 .EruConfig.naive_ddb),))
        assert len(points) == 2
        assert {p.planes for p in points} == {2, 4}
        for p in points:
            assert p.normalized_ws > 0
            assert 0.0 <= p.plane_precharge_fraction <= 1.0


class TestFig14:
    def test_frequency_points(self, context):
        points = fig14(context, frequencies=(1.333e9, 2.0e9))
        configs = {p.config for p in points}
        assert len(configs) == len(fig14_configs())
        assert len(points) == 2 * len(configs)

    def test_config_list_contains_bg_and_ddb_variants(self):
        names = [c.name for c in fig14_configs()]
        assert any("DDB" in n for n in names)
        assert any("DDB" not in n for n in names)


class TestFig15:
    def test_covers_prior_work(self, context):
        out = fig15(context)
        assert any("Half-DRAM" in k for k in out)
        assert any("MASA8+ERUCA" in k for k in out)
        assert all(v > 0 for v in out.values())

    def test_config_list(self):
        names = [c.name for c in fig15_configs()]
        assert "MASA4" in names and "MASA8" in names


class TestFig16:
    def test_rows_have_latency_and_energy(self, context):
        rows = fig16(context)
        assert [r.config for r in rows] == [c.name
                                            for c in fig16_configs()]
        for row in rows:
            assert set(row.latency_stats_ns) == {
                "mean", "q1", "median", "q3"}
            assert row.total_energy > row.background_energy > 0

    def test_relative_energy(self, context):
        rows = fig16(context)
        rel = rows[1].relative_to(rows[0])
        assert set(rel) == {"background", "activation", "total"}
        assert all(v > 0 for v in rel.values())


class TestSettings:
    def test_quick_shrinks(self):
        s = ExperimentSettings()
        q = s.quick()
        assert q.accesses_per_core < s.accesses_per_core
        assert len(q.mixes) <= 2
