"""The cycle-accounting layer: invariants, neutrality, and exports.

Three families of guarantees:

1. **Sum invariant** -- on every configuration preset, each channel's
   stall buckets sum exactly to its accounted wall time (and the issue
   bucket is exactly one ``tCK`` per command).
2. **Observer neutrality** -- observation never changes behaviour: the
   command stream and result digest are bit-identical with the
   observer on or off.
3. **Explain/earliest agreement** -- the tagged floor decompositions
   (``Channel.explain_*`` / ``ChannelResources.*_floors``) reproduce
   the matching ``earliest_*`` legality query exactly, on live
   pre-issue state throughout real runs.
"""

import io
import json
from dataclasses import replace

import pytest

from repro.core.mechanisms import EruConfig
from repro.cpu.core import CoreConfig, TraceCore
from repro.dram.commands import CommandKind
from repro.sim import config as cfgs
from repro.sim.accounting import (
    AccountingReport,
    ChannelAccounting,
    ObserveOptions,
    StallBucket,
    binding_floor,
)
from repro.sim.simulator import MemorySystem, Simulator, run_traces
from repro.workloads.mixes import mix_traces

from tests.sim.test_equivalence import PRESETS, command_stream_hash


def observed_run(config, traces, trace=False, record_commands=False):
    if record_commands:
        config = replace(config, record_commands=True)
    system = MemorySystem(config, observe=ObserveOptions(trace=trace))
    cores = [TraceCore(t, CoreConfig(), core_id=i)
             for i, t in enumerate(traces)]
    result = Simulator(system, cores).run()
    return result, system


# -- 1. the sum invariant, on every preset -------------------------------


@pytest.mark.parametrize("config", PRESETS,
                         ids=[c.name for c in PRESETS])
def test_buckets_sum_to_wall_time_on_every_preset(config):
    traces = mix_traces("mix1", 250)
    result, _ = observed_run(config, traces)
    report = result.accounting
    assert report is not None
    report.verify()  # per-channel sum + issue-bucket invariants
    assert sum(report.totals().values()) == report.wall_ps()
    for channel in report.channels:
        assert sum(channel.buckets.values()) == channel.horizon_ps
        assert (channel.buckets[StallBucket.ISSUE]
                == channel.commands * channel.tCK)
        # The horizon covers the run: nothing accounted past the end,
        # except a channel whose last command outlived the cores.
        assert channel.horizon_ps >= 0


@pytest.mark.parametrize("config", PRESETS[:4],
                         ids=[c.name for c in PRESETS[:4]])
def test_bank_counters_match_controller_stats(config):
    traces = mix_traces("mix0", 300)
    result, _ = observed_run(config, traces)
    merged = result.accounting.merged_bank_stats()
    assert merged.acts == result.stats.acts
    assert merged.ewlr_hits == result.stats.ewlr_hits
    assert merged.columns == result.stats.columns
    assert merged.precharges == result.stats.precharges
    assert merged.partial_precharges == result.energy.partial_precharges
    by_cause = {c.value: n for c, n in result.precharge_causes.items()}
    assert (merged.plane_conflict_precharges
            == by_cause.get("plane_conflict", 0))
    assert (merged.row_conflict_precharges
            == by_cause.get("row_conflict", 0))
    assert (result.accounting.commands()
            == result.stats.commands_issued)


def test_fig12_mix_attribution_sums():
    """The ISSUE acceptance criterion: fig12-mix stats add up."""
    for config in (cfgs.ddr4_baseline(), cfgs.vsb(EruConfig.full(4))):
        result = run_traces(config, mix_traces("mix0", 400),
                            observe=True)
        report = result.accounting
        report.verify()
        table = report.format_table()
        assert "stall attribution" in table
        assert f"{report.wall_ps():14d}" in table  # the total row


# -- 2. observer neutrality ----------------------------------------------


@pytest.mark.parametrize("config", PRESETS,
                         ids=[c.name for c in PRESETS])
def test_observation_never_changes_the_command_stream(config):
    traces = mix_traces("mix0", 250)
    plain_result, plain_system = observed_run(
        replace(config, record_commands=True), traces, trace=False)
    # Manual un-observed run with command recording.
    system = MemorySystem(replace(config, record_commands=True))
    cores = [TraceCore(t, CoreConfig(), core_id=i)
             for i, t in enumerate(traces)]
    result = Simulator(system, cores).run()
    assert result.accounting is None and result.trace is None
    assert (command_stream_hash(system)
            == command_stream_hash(plain_system))
    assert result.digest() == plain_result.digest()


def test_digest_excludes_observability():
    traces = mix_traces("mix2", 200)
    observed = run_traces(cfgs.vsb(), traces,
                          observe=ObserveOptions(trace=True))
    plain = run_traces(cfgs.vsb(), traces)
    assert observed.accounting is not None
    assert observed.trace is not None
    assert plain.accounting is None
    assert observed.digest() == plain.digest()


# -- 3. explain floors == earliest queries -------------------------------


@pytest.mark.parametrize("config", PRESETS,
                         ids=[c.name for c in PRESETS])
def test_explain_floors_match_earliest_throughout_a_run(config):
    """On live pre-issue state, max(floors) == the legality query.

    Patches the controller commit path to cross-check every command the
    scheduler actually issues, covering every policy/organisation arm
    of the floor decompositions with real traffic.
    """
    system = MemorySystem(config)
    checked = 0
    for controller in system.controllers:
        channel = controller.channel
        original = controller.commit

        def commit(candidate, channel=channel, original=original):
            nonlocal checked
            txn = candidate.txn
            if candidate.kind is CommandKind.PRE:
                bank_index, slot = candidate.victim
                floors = channel.explain_precharge(bank_index, slot)
                expected = channel.earliest_precharge(bank_index, slot)
            elif candidate.kind is CommandKind.ACT:
                floors = channel.explain_act(txn.coords)
                expected = channel.earliest_act(txn.coords)
            else:
                is_write = candidate.kind is CommandKind.WR
                floors = channel.explain_column(txn.coords, is_write)
                expected = channel.earliest_column(txn.coords, is_write)
            assert max(t for _, t in floors) == expected
            checked += 1
            return original(candidate)

        controller.commit = commit
    cores = [TraceCore(t, CoreConfig(), core_id=i)
             for i, t in enumerate(mix_traces("mix3", 150))]
    Simulator(system, cores).run()
    assert checked > 100


def test_binding_floor_prefers_specific_tags_on_ties():
    floors = [("bus", 100), ("ccd_wtr_long", 100), ("bank_busy", 90)]
    bucket, released = binding_floor(floors)
    assert bucket is StallBucket.CCD_WTR_LONG
    assert released == 100
    bucket, _ = binding_floor([("bus", 50), ("bank_busy", 50),
                               ("ddb_window", 50)])
    assert bucket is StallBucket.DDB_WINDOW


# -- unit-level accounting behaviour -------------------------------------


def test_channel_accounting_queue_empty_vs_request_gap():
    acc = ChannelAccounting(0, tCK=750, ewlr=False)
    # Queue empty from 0; first txn arrives at 1000; ACT issues at 4000
    # with a device floor releasing at 4000 (bank busy).
    acc.note_nonempty(1000)
    bucket, wait = acc.on_command(
        4000, CommandKind.ACT, None, bank=0, subbank=0,
        floors=[("bus", 0), ("bank_busy", 4000)], ewlr_hit=False,
        partial=False, queue_empty_after=False)
    assert bucket is StallBucket.BANK_BUSY
    assert wait == 3000  # past the queue-empty prefix
    assert acc.buckets[StallBucket.QUEUE_EMPTY] == 1000
    assert acc.buckets[StallBucket.BANK_BUSY] == 3000
    acc.finish(10_000)
    acc.verify()
    # Queue stayed non-empty after the command, so the tail past the
    # command end files as request_gap, not queue_empty.
    assert acc.buckets[StallBucket.REQUEST_GAP] == 10_000 - 4750
    assert sum(acc.buckets.values()) == 10_000


def test_channel_accounting_idle_tail_is_queue_empty():
    acc = ChannelAccounting(0, tCK=750, ewlr=False)
    acc.note_nonempty(0)
    acc.on_command(0, CommandKind.ACT, None, 0, 0,
                   floors=[("bus", 0)], ewlr_hit=False, partial=False,
                   queue_empty_after=True)
    acc.finish(5750)
    acc.verify()
    assert acc.buckets[StallBucket.ISSUE] == 750
    assert acc.buckets[StallBucket.QUEUE_EMPTY] == 5000


def test_channel_accounting_rejects_overlapping_commands():
    acc = ChannelAccounting(0, tCK=750, ewlr=False)
    acc.on_command(1000, CommandKind.ACT, None, 0, 0, [("bus", 0)],
                   False, False, False)
    with pytest.raises(ValueError):
        acc.on_command(1200, CommandKind.ACT, None, 0, 0, [("bus", 0)],
                       False, False, False)


def test_plane_conflict_files_as_ewlr_miss_only_with_ewlr():
    from repro.dram.commands import PrechargeCause
    for ewlr, expected in ((True, StallBucket.EWLR_MISS),
                           (False, StallBucket.PLANE_CONFLICT)):
        acc = ChannelAccounting(0, tCK=750, ewlr=ewlr)
        acc.note_nonempty(0)
        bucket, _ = acc.on_command(
            2000, CommandKind.PRE, PrechargeCause.PLANE_CONFLICT,
            0, 0, None, False, False, False)
        assert bucket is expected
        assert acc.buckets[expected] == 2000


# -- exports -------------------------------------------------------------


def test_report_json_and_csv_roundtrip(tmp_path):
    result = run_traces(cfgs.vsb(), mix_traces("mix0", 200),
                        observe=True)
    report = result.accounting
    payload = io.StringIO()
    report.write_json(payload)
    data = json.loads(payload.getvalue())
    assert data["config"] == result.config_name
    assert sum(data["buckets_ps"].values()) == data["wall_ps"]
    for channel in data["channels"]:
        assert (sum(channel["buckets_ps"].values())
                == channel["horizon_ps"])
    assert data["commands"] == result.stats.commands_issued
    assert data["banks"], "per-bank rows must be present"
    rows = report.bucket_csv_rows()
    assert rows[0] == ["channel", "bucket", "ps"]
    assert sum(r[2] for r in rows[1:]) == report.wall_ps()


def test_reports_pickle_for_the_process_pool():
    import pickle
    result = run_traces(cfgs.vsb(), mix_traces("mix0", 150),
                        observe=ObserveOptions(trace=True,
                                               trace_limit=50))
    clone = pickle.loads(pickle.dumps(result))
    assert clone.accounting.wall_ps() == result.accounting.wall_ps()
    assert len(clone.trace) == len(result.trace)


def test_emit_stats_sidecars(tmp_path):
    from repro.sim.experiments import (ExperimentContext,
                                       ExperimentSettings,
                                       emit_stats_sidecars)
    settings = ExperimentSettings(accesses_per_core=150,
                                  mixes=("mix0",))
    context = ExperimentContext(settings, disk_cache=False,
                                observe=True)
    context.run(cfgs.ddr4_baseline(), "mix0")
    context.run(cfgs.vsb(), "mix0")
    paths = emit_stats_sidecars(context, str(tmp_path), prefix="t__")
    assert len(paths) == 2
    for path in paths:
        with open(path) as fh:
            data = json.load(fh)
        assert sum(data["buckets_ps"].values()) == data["wall_ps"]


def test_unobserved_context_emits_nothing(tmp_path):
    from repro.sim.experiments import (ExperimentContext,
                                       ExperimentSettings,
                                       emit_stats_sidecars)
    context = ExperimentContext(
        ExperimentSettings(accesses_per_core=120, mixes=("mix0",)),
        disk_cache=False)
    context.run(cfgs.ddr4_baseline(), "mix0")
    assert emit_stats_sidecars(context, str(tmp_path)) == []


def test_observed_grid_jobs_carry_reports():
    from repro.cpu.core import CoreConfig as CC
    from repro.sim.parallel import SimJob, run_grid
    job = SimJob(config=cfgs.vsb(), accesses=120, fragmentation=0.1,
                 seed=0, core_config=CC(), mix="mix0", observe=True)
    plain = replace(job, observe=False)
    observed_result, plain_result = run_grid([job, plain], workers=2)
    assert observed_result.accounting is not None
    observed_result.accounting.verify()
    assert plain_result.accounting is None
    assert observed_result.digest() == plain_result.digest()
