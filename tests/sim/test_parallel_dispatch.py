"""Cost-aware grid dispatch, the warm pool, and trace-memo eviction.

:func:`repro.sim.parallel.run_grid` must not pay pool startup for grids
too small to amortise it (the parallel-overhead cliff): below the
estimated-cost threshold it runs serially even when workers were
requested, ``REPRO_GRID_MIN_COST`` overrides the threshold in either
direction, and grids that do go parallel share one warm executor across
calls instead of re-forking per figure.
"""

import pytest

import repro.sim.parallel as parallel
from repro.cpu.core import CoreConfig
from repro.sim import config as cfgs
from repro.sim.parallel import (
    SimJob,
    _job_cost,
    grid_min_cost,
    run_grid,
    trace_memo_stats,
)


def _job(accesses=50, mix="mix0", benchmark=None, seed=0):
    return SimJob(config=cfgs.ddr4_baseline(), accesses=accesses,
                  fragmentation=0.1, seed=seed,
                  core_config=CoreConfig(), mix=mix,
                  benchmark=benchmark)


class _PoolMustNotStart:
    def map(self, fn, jobs, chunksize=1):  # pragma: no cover
        raise AssertionError("grid took the pool path")


class _RecordingPool:
    def __init__(self):
        self.calls = 0

    def map(self, fn, jobs, chunksize=1):
        self.calls += 1
        return [fn(job) for job in jobs]


class TestCostGate:
    def test_job_cost_scales_with_cores(self):
        assert _job_cost(_job(accesses=100)) == 400  # 4-core mix
        assert _job_cost(_job(accesses=100, mix=None,
                              benchmark="mcf")) == 100

    def test_min_cost_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_GRID_MIN_COST", "123")
        assert grid_min_cost() == 123
        monkeypatch.setenv("REPRO_GRID_MIN_COST", "bogus")
        assert grid_min_cost() == parallel.DEFAULT_GRID_MIN_COST
        monkeypatch.delenv("REPRO_GRID_MIN_COST")
        assert grid_min_cost() == parallel.DEFAULT_GRID_MIN_COST

    def test_small_grid_stays_serial(self, monkeypatch):
        # A 3-job grid with --jobs 4: below the cost threshold, the
        # pool must never start (the cliff this PR fixes).
        monkeypatch.setattr(parallel, "_warm_executor",
                            lambda workers: _PoolMustNotStart())
        results = run_grid([_job(seed=s) for s in range(3)], workers=4)
        assert len(results) == 3

    def test_forced_parallel_path(self, monkeypatch):
        monkeypatch.setenv("REPRO_GRID_MIN_COST", "0")
        pool = _RecordingPool()
        monkeypatch.setattr(parallel, "_warm_executor",
                            lambda workers: pool)
        jobs = [_job(seed=s) for s in range(2)]
        results = run_grid(jobs, workers=2)
        assert pool.calls == 1
        serial = run_grid(jobs, workers=1)
        assert [r.digest() for r in results] == \
            [r.digest() for r in serial]

    def test_forced_serial_path(self, monkeypatch):
        monkeypatch.setenv("REPRO_GRID_MIN_COST", str(1 << 40))
        monkeypatch.setattr(parallel, "_warm_executor",
                            lambda workers: _PoolMustNotStart())
        big = [_job(accesses=400, seed=s) for s in range(6)]
        assert len(run_grid(big, workers=4)) == 6


class TestWarmPool:
    def teardown_method(self):
        parallel._shutdown_warm_pool()

    def test_pool_reused_across_calls(self):
        a = parallel._warm_executor(2)
        b = parallel._warm_executor(2)
        assert a is b

    def test_pool_refreshed_when_defaults_change(self, monkeypatch):
        import repro.sim.shards as shards_mod
        a = parallel._warm_executor(2)
        monkeypatch.setattr(shards_mod, "SHARDS_DEFAULT", "off")
        b = parallel._warm_executor(2)
        assert a is not b

    def test_pool_refreshed_when_width_changes(self):
        a = parallel._warm_executor(2)
        b = parallel._warm_executor(3)
        assert a is not b


class TestTraceMemo:
    def test_oldest_half_eviction(self, monkeypatch):
        monkeypatch.setattr(parallel, "TRACE_MEMO_CAPACITY", 4)
        monkeypatch.setattr(parallel, "_trace_memo", {})
        monkeypatch.setattr(parallel, "_trace_memo_evictions", 0)
        for seed in range(6):
            parallel._job_traces(_job(accesses=8, mix=None,
                                      benchmark="mcf", seed=seed))
        stats = trace_memo_stats()
        assert stats["evictions"] >= 1
        assert stats["size"] <= 4
        # The newest entries survive the sweep.
        memo_keys = list(parallel._trace_memo)
        assert any(key[4] == 5 for key in memo_keys)

    def test_memo_hit_returns_same_object(self, monkeypatch):
        monkeypatch.setattr(parallel, "_trace_memo", {})
        job = _job(accesses=8)
        assert parallel._job_traces(job) is parallel._job_traces(job)
