"""The documentation quality gates, run as part of tier-1.

Mirrors the CI ``docs`` job so a doc regression fails locally too:
docstring coverage of the public ``core``/``dram`` API, intact relative
links in every markdown page, and executable examples in ``docs/``.
"""

import doctest
import importlib.util
import pathlib

import pytest

REPO = pathlib.Path(__file__).resolve().parent.parent


def _load_tool(name):
    spec = importlib.util.spec_from_file_location(
        name, REPO / "tools" / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_public_core_and_dram_api_is_fully_docstringed():
    lint = _load_tool("lint_docstrings")
    problems = lint.lint_paths(
        [str(REPO / "src/repro/core"), str(REPO / "src/repro/dram")])
    assert problems == []


@pytest.mark.parametrize("page", [
    "README.md",
    "DESIGN.md",
    "EXPERIMENTS.md",
    "docs/ARCHITECTURE.md",
    "docs/OBSERVABILITY.md",
    "docs/REFRESH.md",
    "docs/EXPERIMENTS_SERVICE.md",
])
def test_markdown_links_resolve(page):
    check = _load_tool("check_links")
    assert check.check_file(REPO / page) == []


@pytest.mark.parametrize("page", [
    "docs/ARCHITECTURE.md",
    "docs/OBSERVABILITY.md",
    "docs/REFRESH.md",
    "docs/EXPERIMENTS_SERVICE.md",
])
def test_doc_examples_execute(page):
    results = doctest.testfile(str(REPO / page), module_relative=False)
    assert results.failed == 0
    if page.endswith("OBSERVABILITY.md"):
        assert results.attempted >= 10, \
            "the observability guide must keep its worked examples"
    if page.endswith("REFRESH.md"):
        assert results.attempted >= 8, \
            "the refresh chapter must keep its worked examples"
    if page.endswith("EXPERIMENTS_SERVICE.md"):
        assert results.attempted >= 12, \
            "the experiment-service walkthrough must stay doctested"
