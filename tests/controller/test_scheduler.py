"""Tests for FR-FCFS scheduling and the ERUCA operation flow."""

import pytest

from repro.controller.controller import ChannelController
from repro.controller.mapping import RowLayout
from repro.controller.queue import QueueConfig
from repro.controller.transaction import (
    DramCoordinates,
    Transaction,
    TransactionKind,
)
from repro.dram.bank import BankGeometry
from repro.dram.commands import CommandKind, PrechargeCause
from repro.dram.device import Channel
from repro.dram.resources import BusPolicy
from repro.dram.timing import ddr4_timings

T = ddr4_timings()


def flat_controller():
    ch = Channel(T, BusPolicy.BANK_GROUPS, 4, 4,
                 BankGeometry(subbanks=1, row_bits=17))
    return ChannelController(ch)


def vsb_controller(ewlr=True, rap=True, planes=4):
    layout = RowLayout(row_bits=16, plane_count=planes,
                       ewlr_bits=3 if ewlr else 0)
    ch = Channel(T, BusPolicy.DDB, 4, 4,
                 BankGeometry(subbanks=2, row_bits=16),
                 row_layout=layout, ewlr=ewlr, rap=rap)
    return ChannelController(ch)


def txn(bg=0, bank=0, subbank=0, row=0, column=0, write=False):
    coords = DramCoordinates(channel=0, rank=0, bank_group=bg, bank=bank,
                             subbank=subbank, row=row, column=column)
    return Transaction(
        kind=TransactionKind.WRITE if write else TransactionKind.READ,
        address=0, coords=coords)


def drain(controller, limit=100):
    """Issue commands until the queues empty; returns the command log."""
    log = []
    now = 0
    for _ in range(limit):
        cand = controller.peek(now)
        if cand is None:
            break
        log.append((cand.kind, cand.issue_time, cand.txn))
        controller.commit(cand)
        now = cand.issue_time
    assert not controller.pending(), "drain hit the iteration limit"
    return log


class TestBasicFlow:
    def test_idle_controller_peeks_none(self):
        assert flat_controller().peek(0) is None

    def test_single_read_needs_act_then_rd(self):
        c = flat_controller()
        c.enqueue(txn(row=3), 0)
        log = drain(c)
        assert [k for k, _, _ in log] == [CommandKind.ACT, CommandKind.RD]

    def test_rd_waits_trcd(self):
        c = flat_controller()
        c.enqueue(txn(row=3), 0)
        log = drain(c)
        act_t = log[0][1]
        rd_t = log[1][1]
        assert rd_t >= act_t + T.tRCD

    def test_row_hit_skips_act(self):
        c = flat_controller()
        c.enqueue(txn(row=3, column=0), 0)
        c.enqueue(txn(row=3, column=1), 0)
        log = drain(c)
        kinds = [k for k, _, _ in log]
        assert kinds == [CommandKind.ACT, CommandKind.RD, CommandKind.RD]

    def test_row_conflict_precharges(self):
        c = flat_controller()
        c.enqueue(txn(row=3), 0)
        c.enqueue(txn(row=4), 0)
        log = drain(c)
        kinds = [k for k, _, _ in log]
        assert kinds == [CommandKind.ACT, CommandKind.RD,
                         CommandKind.PRE, CommandKind.ACT, CommandKind.RD]

    def test_completion_time_set(self):
        c = flat_controller()
        t = txn(row=3)
        c.enqueue(t, 0)
        drain(c)
        assert t.completion_time >= T.tRCD + T.tCL + T.burst_time
        assert t.queueing_latency == t.completion_time


class TestFrFcfsPriorities:
    def test_hit_beats_older_miss_when_ready(self):
        c = flat_controller()
        miss = txn(bg=1, bank=0, row=5)
        c.enqueue(txn(row=3), 0)
        log = drain(c)
        # Open row 3 in bank (0,0); now a hit and an older miss race.
        hit = txn(row=3, column=2)
        c.enqueue(miss, 100)
        c.enqueue(hit, 200)
        cand = c.peek(10**6)
        assert cand.kind in (CommandKind.RD,)
        assert cand.txn is hit

    def test_older_first_within_class(self):
        c = flat_controller()
        a = txn(bg=0, row=1)
        b = txn(bg=1, row=1)
        c.enqueue(a, 0)
        c.enqueue(b, 1)
        cand = c.peek(10**6)
        assert cand.txn is a

    def test_anti_thrash_guard_blocks_younger_pre(self):
        c = flat_controller()
        older = txn(row=3)
        c.enqueue(older, 0)
        log = drain(c)
        # Row 3 open.  An older pending hit and a younger conflict:
        hit = txn(row=3, column=5)
        conflict = txn(row=9)
        c.enqueue(hit, 10)
        c.enqueue(conflict, 20)
        cand = c.peek(10**6)
        # The younger transaction must not close row 3.
        assert cand.txn is hit
        c.commit(cand)
        cand = c.peek(10**6)
        assert cand.kind is CommandKind.PRE  # now the conflict may close

    def test_pre_offered_when_conflicter_is_older(self):
        """An older conflicting transaction may close the row, but a
        *ready* column command still wins the same cycle (FR-FCFS serves
        open-row hits first); the precharge follows immediately after."""
        c = flat_controller()
        seed = txn(row=3)
        c.enqueue(seed, 0)
        drain(c)
        conflict = txn(row=9)
        hit = txn(row=3, column=5)
        c.enqueue(conflict, 10)  # older than the hit
        c.enqueue(hit, 20)
        cand = c.peek(10**6)
        assert cand.kind is CommandKind.RD
        assert cand.txn is hit
        c.commit(cand)
        cand = c.peek(10**6)
        assert cand.kind is CommandKind.PRE
        assert cand.cause is PrechargeCause.ROW_CONFLICT


class TestErucaFlow:
    def test_plane_conflict_precharges_other_subbank(self):
        c = vsb_controller(ewlr=False, rap=False)
        left = txn(subbank=0, row=0b01 << 14)
        c.enqueue(left, 0)
        drain(c)
        right = txn(subbank=1, row=(0b01 << 14) | 1)
        c.enqueue(right, 10)
        cand = c.peek(10**6)
        assert cand.kind is CommandKind.PRE
        assert cand.cause is PrechargeCause.PLANE_CONFLICT
        assert cand.victim[1] == (0, 0)  # the *left* sub-bank slot

    def test_ewlr_hit_activates_without_precharge(self):
        c = vsb_controller(ewlr=True, rap=False)
        base = 0b01 << 14
        c.enqueue(txn(subbank=0, row=base), 0)
        drain(c)
        c.enqueue(txn(subbank=1, row=base | (1 << 11)), 10)
        log = drain(c)
        kinds = [k for k, _, _ in log]
        assert CommandKind.PRE not in kinds
        assert c.stats.ewlr_hits == 1

    def test_rap_avoids_conflict_for_same_plane_field(self):
        c = vsb_controller(ewlr=False, rap=True)
        row = 0b01 << 14
        c.enqueue(txn(subbank=0, row=row), 0)
        drain(c)
        c.enqueue(txn(subbank=1, row=row | 1), 10)
        log = drain(c)
        assert CommandKind.PRE not in [k for k, _, _ in log]

    def test_plane_conflict_counted_in_channel(self):
        c = vsb_controller(ewlr=False, rap=False)
        c.enqueue(txn(subbank=0, row=0b01 << 14), 0)
        drain(c)
        c.enqueue(txn(subbank=1, row=(0b01 << 14) | 1), 10)
        drain(c)
        causes = c.channel.precharge_causes
        assert causes[PrechargeCause.PLANE_CONFLICT] == 1


class TestWriteHandling:
    def test_write_completes_with_cwl(self):
        c = flat_controller()
        w = txn(row=3, write=True)
        c.enqueue(w, 0)
        drain(c)
        assert w.completion_time >= T.tRCD + T.tCWL + T.burst_time

    def test_stats_track_commands(self):
        c = flat_controller()
        c.enqueue(txn(row=3), 0)
        c.enqueue(txn(row=4), 0)
        drain(c)
        assert c.stats.acts == 2
        assert c.stats.columns == 2
        assert c.stats.precharges == 1
        assert c.stats.commands_issued == 5
        assert len(c.stats.read_latencies) == 2

    def test_act_deduplicated_per_slot(self):
        c = flat_controller()
        c.enqueue(txn(row=3, column=0), 0)
        c.enqueue(txn(row=3, column=1), 0)
        cands = c.scheduler.candidates(0)
        acts = [x for x in cands if x.kind is CommandKind.ACT]
        assert len(acts) == 1
