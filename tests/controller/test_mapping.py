"""Unit and property tests for the address mapping (paper Fig. 9)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.controller.mapping import (
    AddressMapping,
    MappingConfig,
    PlanePlacement,
    RowLayout,
    skylake_mapping,
)
from repro.controller.transaction import DramCoordinates


class TestRowLayout:
    def test_plane_bits(self):
        assert RowLayout(plane_count=4).plane_bits == 2
        assert RowLayout(plane_count=1, ewlr_bits=0).plane_bits == 0
        assert RowLayout(plane_count=16).plane_bits == 4

    def test_rejects_non_power_of_two_planes(self):
        with pytest.raises(ValueError):
            RowLayout(plane_count=3)

    def test_rejects_fields_wider_than_row(self):
        with pytest.raises(ValueError):
            RowLayout(row_bits=4, plane_count=8, ewlr_bits=3)

    def test_msb_plane_id_uses_top_bits(self):
        layout = RowLayout(row_bits=16, plane_count=4,
                           plane_placement=PlanePlacement.MSB)
        assert layout.plane_id(0b11 << 14, 0, rap=False) == 3
        assert layout.plane_id(0b01 << 14, 0, rap=False) == 1

    def test_lsb_plane_id_uses_bottom_bits(self):
        layout = RowLayout(row_bits=16, plane_count=4,
                           plane_placement=PlanePlacement.LSB)
        assert layout.plane_id(0b10, 0, rap=False) == 2

    def test_rap_inverts_plane_on_right_subbank_only(self):
        layout = RowLayout(row_bits=16, plane_count=4)
        row = 0b01 << 14
        assert layout.plane_id(row, 0, rap=True) == 1
        assert layout.plane_id(row, 1, rap=True) == 0b10  # inverted
        assert layout.plane_id(row, 1, rap=False) == 1

    def test_rap_makes_identical_rows_land_in_distinct_planes(self):
        layout = RowLayout(row_bits=16, plane_count=2)
        for row in (0, 1 << 15, 0x1234, 0xFFFF):
            left = layout.plane_id(row, 0, rap=True)
            right = layout.plane_id(row, 1, rap=True)
            assert left != right

    def test_mwl_tag_masks_ewlr_field_msb_placement(self):
        layout = RowLayout(row_bits=16, plane_count=4, ewlr_bits=3,
                           plane_placement=PlanePlacement.MSB)
        # EWLR offset occupies bits [11:14) (below the 2 plane bits).
        row = 0x1234
        assert layout.mwl_tag(row) == row & ~(0b111 << 11)
        assert layout.mwl_tag(row) == layout.mwl_tag(row ^ (0b101 << 11))

    def test_mwl_tag_masks_ewlr_field_lsb_placement(self):
        layout = RowLayout(row_bits=16, plane_count=4, ewlr_bits=3,
                           plane_placement=PlanePlacement.LSB)
        # Plane bits [0:2), EWLR offset bits [2:5).
        row = 0x1234
        assert layout.mwl_tag(row) == row & ~(0b111 << 2)

    def test_ewlr_offset_extraction(self):
        layout = RowLayout(row_bits=16, plane_count=4, ewlr_bits=3,
                           plane_placement=PlanePlacement.MSB)
        row = 0b101 << 11
        assert layout.ewlr_offset(row) == 0b101

    def test_no_ewlr_means_full_row_tag(self):
        layout = RowLayout(plane_count=4, ewlr_bits=0)
        assert layout.mwl_tag(0xBEEF) == 0xBEEF


class TestMappingConfig:
    def test_default_geometry_matches_tab3(self):
        cfg = MappingConfig()
        assert cfg.channels == 2
        assert cfg.banks == 16
        assert cfg.bank_groups == 4

    def test_capacity(self):
        cfg = MappingConfig()
        assert cfg.capacity_bytes == 1 << cfg.total_bits


class TestDecodeEncode:
    def test_offset_bits_ignored(self):
        m = skylake_mapping()
        a = m.decode(0x1000)
        b = m.decode(0x1000 + 63)
        assert a == b

    def test_consecutive_lines_interleave_channels(self):
        m = skylake_mapping()
        line = 64
        # col_lo covers 3 bits above the offset, then the channel bit.
        a = m.decode(0)
        b = m.decode(line << 3)
        assert a.channel != b.channel

    def test_row_in_msbs(self):
        m = skylake_mapping()
        step = 1 << (m.config.total_bits - m.config.row_bits)
        a = m.decode(0)
        b = m.decode(step)
        assert b.row == a.row + 1

    def test_xor_hash_spreads_adjacent_rows_across_groups(self):
        m = skylake_mapping()
        row_stride = 1 << m._row_shift
        groups = {m.decode(i * row_stride).bank_group for i in range(4)}
        assert len(groups) == 4

    def test_subbanked_mapping_has_subbank_bit(self):
        m = skylake_mapping(subbanked=True)
        assert m.config.subbanks == 2
        seen = {m.decode(i << 6).subbank for i in range(4096)}
        assert seen == {0, 1}

    def test_subbanked_and_flat_capacity_match(self):
        flat = skylake_mapping().config
        sub = skylake_mapping(subbanked=True).config
        assert flat.total_bits == sub.total_bits


@st.composite
def addresses(draw, mapping):
    return draw(st.integers(min_value=0,
                            max_value=mapping.config.capacity_bytes - 1))


class TestRoundTrip:
    @settings(max_examples=300)
    @given(data=st.data())
    def test_encode_decode_roundtrip_flat(self, data):
        m = skylake_mapping()
        addr = data.draw(addresses(m)) & ~63  # line-aligned
        assert m.encode(m.decode(addr)) == addr

    @settings(max_examples=300)
    @given(data=st.data())
    def test_encode_decode_roundtrip_subbanked(self, data):
        m = skylake_mapping(subbanked=True)
        addr = data.draw(addresses(m)) & ~63
        assert m.encode(m.decode(addr)) == addr

    @settings(max_examples=300)
    @given(data=st.data())
    def test_roundtrip_without_xor_hash(self, data):
        cfg = MappingConfig(xor_hash=False)
        m = AddressMapping(cfg)
        addr = data.draw(st.integers(0, cfg.capacity_bytes - 1)) & ~63
        assert m.encode(m.decode(addr)) == addr

    @settings(max_examples=200)
    @given(data=st.data())
    def test_distinct_lines_decode_to_distinct_coords(self, data):
        m = skylake_mapping()
        a = data.draw(addresses(m)) & ~63
        b = data.draw(addresses(m)) & ~63
        if a != b:
            assert m.decode(a) != m.decode(b)

    @settings(max_examples=200)
    @given(data=st.data())
    def test_coords_in_range(self, data):
        m = skylake_mapping(subbanked=True)
        c = m.decode(data.draw(addresses(m)))
        cfg = m.config
        assert 0 <= c.channel < cfg.channels
        assert 0 <= c.bank_group < cfg.bank_groups
        assert 0 <= c.bank < cfg.banks_per_group
        assert 0 <= c.subbank < cfg.subbanks
        assert 0 <= c.row < (1 << cfg.row_bits)
        assert 0 <= c.column < (1 << cfg.column_bits)


def test_decode_rejects_out_of_range():
    m = skylake_mapping()
    with pytest.raises(ValueError):
        m.decode(m.config.capacity_bytes)
    with pytest.raises(ValueError):
        m.decode(-1)


def test_row_layout_mismatch_rejected():
    cfg = MappingConfig(row_bits=16)
    with pytest.raises(ValueError):
        AddressMapping(cfg, RowLayout(row_bits=17))


def test_global_bank_flattening():
    c = DramCoordinates(channel=0, rank=0, bank_group=2, bank=3,
                        subbank=0, row=0, column=0)
    assert c.global_bank(banks_per_group=4) == 11
