"""Tests for the adaptive open-page (idle-close) policy."""

from dataclasses import replace

from repro.controller.controller import ChannelController
from repro.controller.transaction import (
    DramCoordinates,
    Transaction,
    TransactionKind,
)
from repro.dram.bank import BankGeometry
from repro.dram.commands import CommandKind, PrechargeCause
from repro.dram.device import Channel
from repro.dram.resources import BusPolicy
from repro.dram.timing import ddr4_timings, ns
from repro.sim.config import ddr4_baseline
from repro.sim.simulator import run_traces

T = ddr4_timings()
IDLE = ns(200)


def controller(idle_close=IDLE):
    ch = Channel(T, BusPolicy.BANK_GROUPS, 4, 4,
                 BankGeometry(subbanks=1, row_bits=17))
    return ChannelController(ch, idle_close_ps=idle_close)


def txn(row=0, column=0, bg=0):
    coords = DramCoordinates(channel=0, rank=0, bank_group=bg, bank=0,
                             subbank=0, row=row, column=column)
    return Transaction(kind=TransactionKind.READ, address=0,
                       coords=coords)


class TestIdleClose:
    def serve_one(self, c):
        now = 0
        while True:
            cand = c.peek(now)
            if cand is None or not c.pending():
                break
            c.commit(cand)
            now = cand.issue_time
            if cand.kind in (CommandKind.RD, CommandKind.WR):
                break
        return now

    def test_idle_row_gets_policy_close(self):
        c = controller()
        c.enqueue(txn(row=5), 0)
        now = self.serve_one(c)
        cand = c.peek(now)
        assert cand is not None
        assert cand.kind is CommandKind.PRE
        assert cand.cause is PrechargeCause.POLICY
        assert cand.issue_time >= now + IDLE - T.tRCD  # idle threshold

    def test_policy_close_empties_open_slots(self):
        c = controller()
        c.enqueue(txn(row=5), 0)
        now = self.serve_one(c)
        cand = c.peek(now)
        c.commit(cand)
        assert not c.channel.open_slots
        assert c.peek(cand.issue_time) is None

    def test_pending_hit_suppresses_close(self):
        c = controller()
        c.enqueue(txn(row=5, column=0), 0)
        now = self.serve_one(c)
        c.enqueue(txn(row=5, column=1), now)
        cand = c.peek(now)
        assert cand.kind is CommandKind.RD  # hit served, no policy PRE

    def test_disabled_policy_never_closes(self):
        c = controller(idle_close=None)
        c.enqueue(txn(row=5), 0)
        now = self.serve_one(c)
        assert c.peek(now) is None
        assert len(c.channel.open_slots) == 1

    def test_policy_respects_pre_allowed(self):
        c = controller(idle_close=0)  # close immediately on idleness
        c.enqueue(txn(row=5), 0)
        now = self.serve_one(c)
        cand = c.peek(now)
        assert cand.kind is CommandKind.PRE
        bank = c.channel.banks[0]
        assert cand.issue_time >= bank.slots[(0, 0)].pre_allowed


class TestEndToEnd:
    def test_adaptive_policy_completes_and_counts_policy_pres(self):
        from repro.cpu.trace import Trace, TraceEntry
        import random
        rng = random.Random(0)
        entries = [TraceEntry(20, rng.random() < 0.3,
                              rng.randrange(0, 1 << 30) & ~63)
                   for _ in range(300)]
        config = replace(ddr4_baseline(), idle_close_ps=ns(300))
        res = run_traces(config, [Trace.from_entries(entries)])
        assert res.stats.columns == 300
        assert res.precharge_causes[PrechargeCause.POLICY] > 0

    def test_adaptive_close_reduces_conflict_precharges(self):
        from repro.cpu.trace import Trace, TraceEntry
        import random
        rng = random.Random(1)
        entries = [TraceEntry(30, False,
                              rng.randrange(0, 1 << 30) & ~63)
                   for _ in range(400)]
        trace = [Trace.from_entries(entries)]
        open_page = run_traces(ddr4_baseline(), trace)
        trace = [Trace.from_entries(entries)]
        adaptive = run_traces(
            replace(ddr4_baseline(), idle_close_ps=ns(200)), trace)
        row_conf = PrechargeCause.ROW_CONFLICT
        assert (adaptive.precharge_causes[row_conf]
                <= open_page.precharge_causes[row_conf])
