"""Tests for transaction queues and write-drain watermarks."""

import pytest

from repro.controller.mapping import skylake_mapping
from repro.controller.queue import QueueConfig, TransactionQueues
from repro.controller.transaction import Transaction, TransactionKind

MAPPING = skylake_mapping()


def txn(kind=TransactionKind.READ, address=0):
    return Transaction(kind=kind, address=address,
                       coords=MAPPING.decode(address))


def read():
    return txn(TransactionKind.READ)


def write():
    return txn(TransactionKind.WRITE)


class TestQueueConfig:
    def test_default_is_valid(self):
        QueueConfig()

    def test_rejects_low_above_high(self):
        with pytest.raises(ValueError):
            QueueConfig(drain_high=8, drain_low=24)

    def test_rejects_high_above_depth(self):
        with pytest.raises(ValueError):
            QueueConfig(write_depth=16, drain_high=24, drain_low=8)

    def test_rejects_zero_read_depth(self):
        with pytest.raises(ValueError):
            QueueConfig(read_depth=0)


class TestAdmission:
    def test_enqueue_stamps_arrival(self):
        q = TransactionQueues()
        t = read()
        q.enqueue(t, 123)
        assert t.arrival_time == 123
        assert len(q) == 1

    def test_has_room_tracks_depth(self):
        q = TransactionQueues(QueueConfig(read_depth=2))
        q.enqueue(read(), 0)
        assert q.has_room(True)
        q.enqueue(read(), 1)
        assert not q.has_room(True)
        assert q.has_room(False)  # write queue independent

    def test_enqueue_full_raises(self):
        q = TransactionQueues(QueueConfig(read_depth=1))
        q.enqueue(read(), 0)
        with pytest.raises(ValueError):
            q.enqueue(read(), 1)

    def test_remove(self):
        q = TransactionQueues()
        t = read()
        q.enqueue(t, 0)
        q.remove(t)
        assert not q.pending()


class TestDrainPolicy:
    def test_reads_have_priority(self):
        q = TransactionQueues()
        q.enqueue(read(), 0)
        q.enqueue(write(), 0)
        assert q.schedulable() == q.reads

    def test_opportunistic_drain_when_no_reads(self):
        q = TransactionQueues()
        q.enqueue(write(), 0)
        assert q.schedulable() == q.writes
        assert not q.draining  # opportunistic, not forced

    def test_forced_drain_at_high_watermark(self):
        cfg = QueueConfig(drain_high=4, drain_low=2)
        q = TransactionQueues(cfg)
        q.enqueue(read(), 0)
        for i in range(4):
            q.enqueue(write(), i)
        assert q.schedulable() == q.writes
        assert q.draining

    def test_drain_continues_until_low_watermark(self):
        cfg = QueueConfig(drain_high=4, drain_low=2)
        q = TransactionQueues(cfg)
        q.enqueue(read(), 0)
        writes = [write() for _ in range(4)]
        for w in writes:
            q.enqueue(w, 0)
        q.schedulable()
        q.remove(writes[0])
        assert q.schedulable() == q.writes  # 3 writes > low
        q.remove(writes[1])
        assert q.schedulable() == q.reads  # 2 writes <= low: back to reads
        assert not q.draining

    def test_empty_queues_schedulable_empty(self):
        q = TransactionQueues()
        assert q.schedulable() == []
        assert not q.pending()
