"""Floor-indexed selection tables: exactness and tie-break safety.

The hypothesis property here is the correctness core of the incremental
scheduler's tentpole data structure: for *any* candidate set and *any*
floor, :meth:`SelectionTable.select` must return exactly the minimum of
the floor-clamped sort keys that a brute-force scan would find.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.controller.scheduler import SelectionTable, _policy_seq
from repro.sim import config as cfgs

# Small time ranges on purpose: collisions in (t, arrival) are the
# interesting cases (the prefix-min and the seq tie-break must resolve
# them), and a floor inside the t range exercises the bisect boundary.
_entry = st.tuples(st.integers(0, 40), st.integers(0, 40),
                   st.integers(0, 10**6))
_entries = st.lists(_entry, min_size=1, max_size=32,
                    unique_by=lambda e: e[2])


def _brute_force(entries, floor):
    """min over floor-clamped keys, the definitionally-correct oracle."""
    clamped = [((e[0] if e[0] > floor else floor), e[1], e[2], e)
               for e in entries]
    return min(clamped, key=lambda c: c[:3])


class TestSelectionProperty:
    @settings(max_examples=300, deadline=None)
    @given(entries=_entries, floor=st.integers(-5, 50))
    def test_select_equals_brute_force_min(self, entries, floor):
        # seq is unique, so the clamped key (t, arrival, seq) is unique
        # and the winner is a single well-defined entry.
        table = SelectionTable(list(entries))
        assert table.select(floor) == _brute_force(entries, floor)

    @settings(max_examples=100, deadline=None)
    @given(entries=_entries)
    def test_floor_below_everything_returns_head(self, entries):
        table = SelectionTable(list(entries))
        t, arrival, seq, entry = table.select(-1)
        assert (t, arrival, seq) == min(e[:3] for e in entries)
        assert entry[:3] == (t, arrival, seq)

    @settings(max_examples=100, deadline=None)
    @given(entries=_entries)
    def test_floor_above_everything_picks_oldest(self, entries):
        # Every t collapses onto the floor: pure (arrival, seq) FCFS.
        floor = max(e[0] for e in entries) + 1
        t, arrival, seq, _ = SelectionTable(list(entries)).select(floor)
        assert t == floor
        assert (arrival, seq) == min((e[1], e[2]) for e in entries)

    def test_payload_fields_ride_along(self):
        # Entries may carry any payload after (t, arrival, seq); the
        # winner's full tuple comes back untouched.
        marker = object()
        entries = [(5, 1, 0, marker, "extra"), (9, 0, 1, None, None)]
        _, _, _, entry = SelectionTable(entries).select(7)
        assert entry[3] is marker

    def test_single_entry_table_clamps(self):
        entry = (10, 3, 7, "x")
        table = SelectionTable([entry])
        assert table.select(4) == (10, 3, 7, entry)
        assert table.select(25) == (25, 3, 7, entry)


class TestPolicySeqPacking:
    def test_historical_collision_is_gone(self):
        # The narrow packing collided at (bank=0, subbank=1, group=0)
        # vs (bank=0, subbank=0, group=2^15).
        assert _policy_seq(0, (1, 0)) != _policy_seq(0, (0, 1 << 15))

    def test_unique_across_every_preset_geometry(self):
        for preset in cfgs.all_presets():
            channel = preset.build_channel()
            seqs = [
                _policy_seq(bank_index, slot)
                for bank_index, bank in enumerate(channel.banks)
                for slot in bank.slots
            ]
            assert len(seqs) == len(set(seqs)), preset.name

    def test_rank_matches_bank_subbank_group_order(self):
        keys = [(b, sb, g) for b in (0, 1, 5) for sb in (0, 1)
                for g in (0, 1, 7, 1 << 20)]
        seqs = [_policy_seq(b, (sb, g)) for b, sb, g in keys]
        assert sorted(seqs) == [_policy_seq(b, (sb, g))
                                for b, sb, g in sorted(keys)]
